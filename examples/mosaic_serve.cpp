// Multi-threaded serving demo: several client threads each open a
// session against one QueryService and fire mixed CLOSED / SEMI-OPEN
// / OPEN traffic at the flights-style world, while the main thread
// reports live service statistics.
//
//   ./mosaic_serve [clients] [queries_per_client]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "service/query_service.h"

using namespace mosaic;

namespace {

void BuildWorld(core::Database* db) {
  auto exec = [db](const std::string& sql) {
    auto r = db->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "setup failed (%s): %s\n", sql.c_str(),
                   r.status().ToString().c_str());
      std::exit(1);
    }
  };
  exec("CREATE GLOBAL POPULATION People (email VARCHAR, device VARCHAR)");
  exec("CREATE TABLE EmailReport (email VARCHAR, cnt INT)");
  exec("INSERT INTO EmailReport VALUES ('gmail', 550), ('yahoo', 300), "
       "('aol', 150)");
  exec("CREATE TABLE DeviceReport (device VARCHAR, cnt INT)");
  exec("INSERT INTO DeviceReport VALUES ('phone', 600), ('laptop', 400)");
  exec("CREATE METADATA People_M1 AS (SELECT email, cnt FROM EmailReport)");
  exec("CREATE METADATA People_M2 AS "
       "(SELECT device, cnt FROM DeviceReport)");
  exec("CREATE SAMPLE Panel AS (SELECT * FROM People WHERE email = "
       "'gmail')");
  exec("INSERT INTO Panel VALUES ('gmail','phone'), ('gmail','phone'), "
       "('gmail','phone'), ('gmail','phone'), ('gmail','laptop'), "
       "('gmail','laptop')");

  auto* open = db->mutable_open_options();
  open->mswg.epochs = 5;
  open->mswg.steps_per_epoch = 10;
  open->mswg.batch_size = 64;
  open->mswg.num_projections = 64;
  open->mswg.projections_per_step = 8;
  open->generated_rows = 500;
  open->num_generated_samples = 10;
}

const char* kQueries[] = {
    "SELECT CLOSED email, COUNT(*) AS c FROM People GROUP BY email",
    "SELECT CLOSED COUNT(*) AS c FROM People WHERE device = 'phone'",
    "SELECT SEMI-OPEN COUNT(*) AS c FROM People",
    "SELECT SEMI-OPEN device, COUNT(*) AS c FROM People GROUP BY device",
    "SELECT OPEN email, COUNT(*) AS c FROM People GROUP BY email",
    "SHOW METADATA",
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  size_t num_clients = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  size_t per_client = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 20;

  service::ServiceOptions opts;
  opts.num_request_threads = 4;
  opts.num_generation_threads = 4;
  service::QueryService service(opts);
  BuildWorld(service.database());

  std::printf("mosaic_serve: %zu clients x %zu queries, "
              "4 request + 4 generation threads\n\n",
              num_clients, per_client);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> failures{0};
  auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&service, &failures, c, per_client] {
      service::Session session = service.OpenSession();
      size_t n = sizeof(kQueries) / sizeof(kQueries[0]);
      for (size_t i = 0; i < per_client; ++i) {
        auto result = session.Execute(kQueries[(c + i) % n]);
        if (!result.ok()) ++failures;
      }
    });
  }

  std::thread reporter([&service, &done] {
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      service::ServiceStats s = service.Stats();
      std::printf("  [stats] %llu queries (%llu reads / %llu writes), "
                  "result cache %.0f%% hit, model cache %llu hits\n",
                  (unsigned long long)s.queries_total,
                  (unsigned long long)s.reads,
                  (unsigned long long)s.writes,
                  100.0 * s.result_cache.hit_rate(),
                  (unsigned long long)s.model_cache.hits);
    }
  });

  for (auto& c : clients) c.join();
  done.store(true);
  reporter.join();

  auto seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  service::ServiceStats s = service.Stats();
  std::printf("\nserved %llu queries in %.2fs (%.1f q/s), %llu failed\n",
              (unsigned long long)s.queries_total, seconds,
              static_cast<double>(s.queries_total) / seconds,
              (unsigned long long)failures.load());
  std::printf("sessions: %llu; result cache: %llu/%llu hits "
              "(%zu entries, %llu invalidations); model cache: "
              "%llu hits, %llu trained\n",
              (unsigned long long)s.sessions_opened,
              (unsigned long long)s.result_cache.hits,
              (unsigned long long)(s.result_cache.hits +
                                   s.result_cache.misses),
              s.result_cache.entries,
              (unsigned long long)s.result_cache.invalidations,
              (unsigned long long)s.model_cache.hits,
              (unsigned long long)s.model_cache.insertions);
  return failures.load() == 0 ? 0 : 1;
}
