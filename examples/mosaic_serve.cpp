// Mosaic network server: binds a TCP port and serves the wire
// protocol (src/net/protocol.h) in front of a concurrent
// QueryService. Clients connect with examples/mosaic_client.cpp or
// the net::Client library.
//
//   ./mosaic_serve [flags]
//     --host=ADDR              bind address     (default 127.0.0.1)
//     --port=N                 TCP port; 0 = ephemeral (default 7878)
//     --port-file=PATH         write the bound port to PATH (for
//                              scripts; written after listen succeeds)
//     --request-threads=N      request pool size          (default 4)
//     --generation-threads=N   OPEN generation pool size  (default 4)
//     --max-connections=N      concurrent connection cap  (default 64)
//     --morsels=N              intra-query morsel size    (default off)
//     --metrics-port=N         serve Prometheus text on
//                              http://HOST:N/metrics (default off;
//                              0 = ephemeral, port printed at startup)
//     --trace                  trace every statement (spans feed the
//                              slow-query log and EXPLAIN ANALYZE)
//     --slow-query-ms=N        log the span tree of statements taking
//                              >= N ms (implies tracing)
//     --data-dir=PATH          durable mode: recover catalog + samples
//                              + weights from PATH on startup and WAL
//                              every mutation (also settable via the
//                              MOSAIC_DATA_DIR environment variable;
//                              the flag wins)
//     --snapshot-interval-s=N  in durable mode, write a snapshot every
//                              N seconds (default 300; 0 = only the
//                              clean-shutdown snapshot)
//     --no-fsync               durable mode without per-statement WAL
//                              fsync (throughput over crash safety)
//     --demo-world             preload the flights-style demo catalog
//                              (skipped when a recovered data dir
//                              already holds a catalog)
//     --log-json=PATH          structured JSON-lines event log: server
//                              lifecycle, recovery, snapshots, and the
//                              slow-query log land in PATH (rotated to
//                              PATH.1 at the size cap)
//     --log-json-max-bytes=N   rotate the JSON event log at N bytes
//                              (default 8 MiB)
//     --verbose                info-level logging
//
// Runs until SIGINT/SIGTERM, then drains: in-flight statements
// finish, replies flush, connections close, and the process exits 0.
// In durable mode a final snapshot is written before exit, so the
// next start replays no WAL.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "common/event_log.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "net/metrics_http.h"
#include "net/server.h"
#include "service/query_service.h"

using namespace mosaic;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

bool NumericFlag(const char* arg, const char* name, uint64_t* out) {
  return mosaic::NumericFlag(arg, name, out, "mosaic_serve");
}

/// The flights-style demo world from the earlier in-process demo,
/// kept behind --demo-world so the server can also start empty.
void BuildWorld(core::Database* db) {
  auto exec = [db](const std::string& sql) {
    auto r = db->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "setup failed (%s): %s\n", sql.c_str(),
                   r.status().ToString().c_str());
      std::exit(1);
    }
  };
  exec("CREATE GLOBAL POPULATION People (email VARCHAR, device VARCHAR)");
  exec("CREATE TABLE EmailReport (email VARCHAR, cnt INT)");
  exec("INSERT INTO EmailReport VALUES ('gmail', 550), ('yahoo', 300), "
       "('aol', 150)");
  exec("CREATE TABLE DeviceReport (device VARCHAR, cnt INT)");
  exec("INSERT INTO DeviceReport VALUES ('phone', 600), ('laptop', 400)");
  exec("CREATE METADATA People_M1 AS (SELECT email, cnt FROM EmailReport)");
  exec("CREATE METADATA People_M2 AS "
       "(SELECT device, cnt FROM DeviceReport)");
  exec("CREATE SAMPLE Panel AS (SELECT * FROM People WHERE email = "
       "'gmail')");
  exec("INSERT INTO Panel VALUES ('gmail','phone'), ('gmail','phone'), "
       "('gmail','phone'), ('gmail','phone'), ('gmail','laptop'), "
       "('gmail','laptop')");

  auto* open = db->mutable_open_options();
  open->mswg.epochs = 5;
  open->mswg.steps_per_epoch = 10;
  open->mswg.batch_size = 64;
  open->mswg.num_projections = 64;
  open->mswg.projections_per_step = 8;
  open->generated_rows = 500;
  open->num_generated_samples = 10;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  net::ServerOptions server_opts;
  server_opts.port = 7878;
  service::ServiceOptions service_opts;
  std::string port_file;
  std::string log_json_path;
  uint64_t log_json_max_bytes = elog::EventLog::kDefaultMaxBytes;
  uint64_t morsel_size = 0;
  uint64_t snapshot_interval_s = 300;
  bool demo_world = false;
  bool metrics_enabled = false;
  uint64_t metrics_port = 0;
  if (const char* env = std::getenv("MOSAIC_DATA_DIR")) {
    service_opts.data_dir = env;
  }

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t n = 0;
    if (NumericFlag(arg, "port", &n)) {
      if (n > 65535) {
        std::fprintf(stderr, "mosaic_serve: --port=%llu out of range\n",
                     static_cast<unsigned long long>(n));
        return 2;
      }
      server_opts.port = static_cast<uint16_t>(n);
    } else if (NumericFlag(arg, "request-threads", &n)) {
      service_opts.num_request_threads = n;
    } else if (NumericFlag(arg, "generation-threads", &n)) {
      service_opts.num_generation_threads = n;
    } else if (NumericFlag(arg, "max-connections", &n)) {
      server_opts.max_connections = n;
    } else if (NumericFlag(arg, "morsels", &n)) {
      morsel_size = n;
    } else if (NumericFlag(arg, "metrics-port", &n)) {
      if (n > 65535) {
        std::fprintf(stderr,
                     "mosaic_serve: --metrics-port=%llu out of range\n",
                     static_cast<unsigned long long>(n));
        return 2;
      }
      metrics_enabled = true;
      metrics_port = n;
    } else if (NumericFlag(arg, "slow-query-ms", &n)) {
      service_opts.slow_query_ms = static_cast<int64_t>(n);
    } else if (NumericFlag(arg, "snapshot-interval-s", &n)) {
      snapshot_interval_s = n;
    } else if (std::strcmp(arg, "--trace") == 0) {
      service_opts.trace_queries = true;
    } else if (std::strcmp(arg, "--no-fsync") == 0) {
      service_opts.durable_fsync_dml = false;
    } else if (NumericFlag(arg, "log-json-max-bytes", &n)) {
      log_json_max_bytes = n;
    } else if (StringFlag(arg, "host", &server_opts.host) ||
               StringFlag(arg, "port-file", &port_file) ||
               StringFlag(arg, "log-json", &log_json_path) ||
               StringFlag(arg, "data-dir", &service_opts.data_dir)) {
    } else if (std::strcmp(arg, "--demo-world") == 0) {
      demo_world = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      SetLogLevel(LogLevel::kInfo);
    } else {
      std::fprintf(stderr, "mosaic_serve: unknown flag %s\n", arg);
      return 2;
    }
  }
  service_opts.morsel_size = static_cast<size_t>(morsel_size);

  // Open the structured event sink before the service exists so
  // recovery events from the durable engine land in it too.
  if (!log_json_path.empty()) {
    Status opened = elog::EventLog::Global().Open(
        log_json_path, static_cast<size_t>(log_json_max_bytes));
    if (!opened.ok()) {
      std::fprintf(stderr, "mosaic_serve: --log-json: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
  }

  service::QueryService service(service_opts);
  if (!service.durability_status().ok()) {
    // A failed recovery must never serve: the in-memory catalog may
    // be partial and answers silently wrong.
    std::fprintf(stderr, "mosaic_serve: recovery failed: %s\n",
                 service.durability_status().ToString().c_str());
    return 1;
  }
  const bool recovered_catalog =
      service.storage_engine() != nullptr &&
      (service.storage_engine()->recovery_info().tables > 0 ||
       service.storage_engine()->recovery_info().populations > 0);
  if (service.storage_engine() != nullptr) {
    const durable::RecoveryInfo& rec =
        service.storage_engine()->recovery_info();
    std::printf("mosaic_serve: recovered %llu tables, %llu populations, "
                "%llu samples from %s (%s snapshot, %llu WAL records, "
                "%llu us)\n",
                (unsigned long long)rec.tables,
                (unsigned long long)rec.populations,
                (unsigned long long)rec.samples,
                service_opts.data_dir.c_str(),
                rec.snapshot_loaded ? "with" : "no",
                (unsigned long long)rec.wal_records_applied,
                (unsigned long long)rec.recovery_us);
  }
  // The demo world is only seeded into a fresh data dir — a recovered
  // catalog already holds it (re-running the DDL would fail anyway).
  if (demo_world && !recovered_catalog) BuildWorld(service.database());

  net::Server server(&service, server_opts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "mosaic_serve: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("mosaic_serve: listening on %s:%u (%zu request + %zu "
              "generation threads%s)\n",
              server_opts.host.c_str(), server.port(),
              service_opts.num_request_threads,
              service_opts.num_generation_threads,
              demo_world ? ", demo world loaded" : "");

  // Optional Prometheus endpoint. The render callback mirrors the
  // server/service counters into registry gauges at scrape time, so
  // one page carries both the registry's native metrics (latency
  // histograms) and the wire/server counters.
  std::unique_ptr<net::MetricsHttpServer> metrics_http;
  if (metrics_enabled) {
    net::MetricsHttpServer::Options mopts;
    mopts.host = server_opts.host;
    mopts.port = static_cast<uint16_t>(metrics_port);
    metrics_http = std::make_unique<net::MetricsHttpServer>(
        [&server] {
          auto& registry = metrics::Registry::Global();
          const net::StatsSnapshot snap = server.Snapshot();
          registry.GetGauge("mosaic_queries_total")
              ->Set(static_cast<int64_t>(snap.queries_total));
          registry.GetGauge("mosaic_queries_failed")
              ->Set(static_cast<int64_t>(snap.queries_failed));
          registry.GetGauge("mosaic_reads")
              ->Set(static_cast<int64_t>(snap.reads));
          registry.GetGauge("mosaic_writes")
              ->Set(static_cast<int64_t>(snap.writes));
          registry.GetGauge("mosaic_sessions_opened")
              ->Set(static_cast<int64_t>(snap.sessions_opened));
          registry.GetGauge("mosaic_sessions_closed")
              ->Set(static_cast<int64_t>(snap.sessions_closed));
          registry.GetGauge("mosaic_result_cache_hits")
              ->Set(static_cast<int64_t>(snap.result_cache_hits));
          registry.GetGauge("mosaic_result_cache_misses")
              ->Set(static_cast<int64_t>(snap.result_cache_misses));
          registry.GetGauge("mosaic_result_cache_entries")
              ->Set(static_cast<int64_t>(snap.result_cache_entries));
          registry.GetGauge("mosaic_model_cache_hits")
              ->Set(static_cast<int64_t>(snap.model_cache_hits));
          registry.GetGauge("mosaic_model_cache_insertions")
              ->Set(static_cast<int64_t>(snap.model_cache_insertions));
          registry.GetGauge("mosaic_connections_opened")
              ->Set(static_cast<int64_t>(snap.connections_opened));
          registry.GetGauge("mosaic_connections_active")
              ->Set(static_cast<int64_t>(snap.connections_active));
          registry.GetGauge("mosaic_connections_rejected")
              ->Set(static_cast<int64_t>(snap.connections_rejected));
          registry.GetGauge("mosaic_connections_closed")
              ->Set(static_cast<int64_t>(snap.connections_closed));
          registry.GetGauge("mosaic_frames_received")
              ->Set(static_cast<int64_t>(snap.frames_received));
          registry.GetGauge("mosaic_frames_sent")
              ->Set(static_cast<int64_t>(snap.frames_sent));
          registry.GetGauge("mosaic_protocol_errors")
              ->Set(static_cast<int64_t>(snap.protocol_errors));
          registry.GetGauge("mosaic_malformed_frames")
              ->Set(static_cast<int64_t>(snap.malformed_frames));
          registry.GetGauge("mosaic_inflight_highwater")
              ->Set(static_cast<int64_t>(snap.inflight_highwater));
          registry.GetGauge("mosaic_weight_epochs_published")
              ->Set(static_cast<int64_t>(snap.weight_epochs_published));
          registry.GetGauge("mosaic_weight_refits_total")
              ->Set(static_cast<int64_t>(snap.weight_refits_total));
          return registry.RenderPrometheus();
        },
        mopts);
    Status mstarted = metrics_http->Start();
    if (!mstarted.ok()) {
      std::fprintf(stderr, "mosaic_serve: %s\n",
                   mstarted.ToString().c_str());
      return 1;
    }
    std::printf("mosaic_serve: metrics on http://%s:%u/metrics\n",
                server_opts.host.c_str(), metrics_http->port());
  }
  std::fflush(stdout);
  if (!port_file.empty()) {
    // Write-then-rename so a watching script can never read a torn or
    // empty port file, with every stdio result checked (a full disk
    // must not leave the script waiting on garbage).
    const std::string tmp = port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    bool ok = f != nullptr;
    if (ok) {
      ok = std::fprintf(f, "%u\n", server.port()) > 0;
      ok = (std::fclose(f) == 0) && ok;
    }
    if (ok) ok = std::rename(tmp.c_str(), port_file.c_str()) == 0;
    if (!ok) {
      std::fprintf(stderr, "mosaic_serve: cannot write %s: %s\n",
                   port_file.c_str(), std::strerror(errno));
      std::remove(tmp.c_str());
      return 1;
    }
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  const bool durable = service.storage_engine() != nullptr;
  const auto snapshot_interval =
      std::chrono::seconds(snapshot_interval_s);
  auto last_snapshot = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (durable && snapshot_interval_s > 0 &&
        std::chrono::steady_clock::now() - last_snapshot >=
            snapshot_interval) {
      Status snap = service.TriggerSnapshot();
      if (!snap.ok()) {
        std::fprintf(stderr, "mosaic_serve: snapshot failed: %s\n",
                     snap.ToString().c_str());
      }
      last_snapshot = std::chrono::steady_clock::now();
    }
  }

  std::printf("mosaic_serve: draining...\n");
  server.Shutdown();
  if (durable) {
    // Final snapshot: the next start replays no WAL. Failure is not
    // fatal — the WAL already holds everything.
    Status snap = service.TriggerSnapshot();
    if (!snap.ok()) {
      std::fprintf(stderr, "mosaic_serve: final snapshot failed: %s\n",
                   snap.ToString().c_str());
    }
  }
  const net::NetServerStats nets = server.stats();
  const service::ServiceStats svc = service.Stats();
  std::printf("mosaic_serve: served %llu queries (%llu failed) over %llu "
              "connections; %llu frames in / %llu out, %llu protocol "
              "errors\n",
              (unsigned long long)svc.queries_total,
              (unsigned long long)svc.queries_failed,
              (unsigned long long)nets.connections_opened,
              (unsigned long long)nets.frames_received,
              (unsigned long long)nets.frames_sent,
              (unsigned long long)nets.protocol_errors);
  elog::EventLog::Global().Emit(
      LogLevel::kInfo, "serve_exit",
      {{"queries_total", std::to_string(svc.queries_total)},
       {"queries_failed", std::to_string(svc.queries_failed)},
       {"connections_opened", std::to_string(nets.connections_opened)}});
  elog::EventLog::Global().Close();
  return 0;
}
