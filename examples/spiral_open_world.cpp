// Open-world generation with the M-SWG library API (no SQL): train a
// marginal-constrained sliced-Wasserstein generator on a biased 2-D
// sample and use the generated population for range-count queries —
// the paper's Figure 5/6 workflow, condensed.
//
// Run: ./spiral_open_world
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "core/mswg.h"
#include "data/spiral.h"
#include "storage/csv.h"

using namespace mosaic;

namespace {
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}
}  // namespace

int main() {
  SetLogLevel(LogLevel::kInfo);
  Rng rng(42);

  // A spiral population we pretend not to have, and the biased sample
  // we do have.
  data::SpiralOptions pop_opts;
  pop_opts.population_size = 40000;
  Table population = data::GenerateSpiralPopulation(pop_opts, &rng);
  data::SpiralBiasOptions bias;
  bias.sample_size = 5000;
  Table sample = Unwrap(data::DrawBiasedSpiralSample(population, bias, &rng),
                        "sample");

  // What we legitimately know about the population: its 1-D marginals
  // (think: two published histograms).
  auto mx = Unwrap(stats::Marginal::FromData(population, {"x"}, 40), "mx");
  auto my = Unwrap(stats::Marginal::FromData(population, {"y"}, 40), "my");

  // Train the generator (paper's spiral config, shortened).
  core::MswgOptions opts;
  opts.latent_dim = 2;
  opts.hidden_layers = 3;
  opts.hidden_nodes = 100;
  opts.lambda = 0.04;
  opts.batch_size = 500;
  opts.epochs = 15;
  opts.steps_per_epoch = 40;
  opts.verbose = true;  // watch the loss fall
  std::printf("training M-SWG on %zu biased tuples + 2 marginals...\n",
              sample.num_rows());
  auto model = Unwrap(core::Mswg::Train(sample, {mx, my}, opts), "train");
  std::printf("final loss: %s\n\n",
              FormatDouble(model->final_loss(), 5).c_str());

  // Generate an open-world population and compare range counts.
  Rng gen_rng(1);
  Table generated = Unwrap(model->Generate(5000, &gen_rng), "generate");
  (void)WriteCsvFile(generated, "spiral_generated.csv");

  double scale_gen = static_cast<double>(population.num_rows()) /
                     static_cast<double>(generated.num_rows());
  double scale_sample = static_cast<double>(population.num_rows()) /
                        static_cast<double>(sample.num_rows());
  std::vector<double> wg(generated.num_rows(), scale_gen);
  std::vector<double> ws(sample.num_rows(), scale_sample);

  std::printf("range-count queries (truth vs biased sample vs M-SWG):\n");
  std::vector<std::vector<std::string>> rows;
  Rng qrng(9);
  for (double coverage : {0.3, 0.5, 0.7}) {
    data::RangeQuery box =
        data::MakeRandomRangeQuery(population, coverage, &qrng);
    double truth = data::CountInBox(population, box);
    double naive = data::CountInBox(sample, box, &ws);
    double open = data::CountInBox(generated, box, &wg);
    rows.push_back({StrFormat("box %.0f%% wide", coverage * 100),
                    FormatDouble(truth, 0),
                    StrFormat("%s (%.0f%% off)", FormatDouble(naive, 0).c_str(),
                              PercentDiff(naive, truth)),
                    StrFormat("%s (%.0f%% off)", FormatDouble(open, 0).c_str(),
                              PercentDiff(open, truth))});
  }
  std::printf("%s\n",
              RenderTable({"query", "truth", "biased sample", "M-SWG"},
                          rows)
                  .c_str());
  std::printf("generated cloud written to spiral_generated.csv\n");
  return 0;
}
