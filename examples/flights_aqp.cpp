// Approximate query processing over a biased flights sample — the
// paper's §5.3 scenario as a library user would script it.
//
// A data portal published a 5 percent sample of US domestic flights,
// but the sample was collected from long-haul gate logs: 95 percent
// of its tuples have elapsed_time > 200 minutes. The government also
// publishes aggregate counts (marginals). This example shows how far
// off naive answers are, and how Mosaic's SEMI-OPEN queries fix them
// via IPF — all through the SQL surface.
//
// Run: ./flights_aqp
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "core/database.h"
#include "data/flights.h"

using namespace mosaic;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  Rng rng(7);

  // The hidden truth (in reality this lives at the FAA, not on your
  // laptop).
  data::FlightsOptions fopts;
  fopts.num_rows = 120000;
  Table population = data::GenerateFlights(fopts, &rng);
  data::FlightsBiasOptions bias;
  Table sample = Unwrap(
      data::DrawBiasedFlightsSample(population, bias, &rng), "sample");
  std::printf("hidden population: %zu flights; published sample: %zu "
              "(95%% long-haul)\n\n",
              population.num_rows(), sample.num_rows());

  core::Database db;
  Check(db.Execute("CREATE GLOBAL POPULATION Flights ("
                   "carrier VARCHAR, taxi_out INT, taxi_in INT, "
                   "elapsed_time INT, distance INT)")
            .status(),
        "create population");

  // Government reports: carrier counts and elapsed-time histogram.
  // (Here we aggregate them from the population; a real user would
  // COPY the published report CSVs.)
  Check(db.CreateTable("Reports", population), "reports");
  Check(db.Execute("CREATE METADATA Flights_M1 FOR Flights AS "
                   "(SELECT carrier, COUNT(*) FROM Reports "
                   "GROUP BY carrier)")
            .status(),
        "metadata 1");
  Check(db.Execute("CREATE METADATA Flights_M2 FOR Flights AS "
                   "(SELECT elapsed_time, COUNT(*) FROM Reports "
                   "GROUP BY elapsed_time)")
            .status(),
        "metadata 2");

  Check(db.Execute("CREATE SAMPLE GateLogs AS (SELECT * FROM Flights)")
            .status(),
        "create sample");
  Check(db.IngestSample("GateLogs", sample), "ingest");

  struct Probe {
    const char* label;
    std::string query;
  };
  std::vector<Probe> probes = {
      {"total flights", "SELECT %s COUNT(*) FROM Flights"},
      {"avg distance", "SELECT %s AVG(distance) FROM Flights"},
      {"avg taxi_out, short flights",
       "SELECT %s AVG(taxi_out) FROM Flights WHERE elapsed_time < 200"},
      {"Southwest flights",
       "SELECT %s COUNT(*) FROM Flights WHERE carrier = 'WN'"},
  };

  std::vector<std::vector<std::string>> rows;
  for (const auto& probe : probes) {
    // Ground truth: the same query against the aux copy of the
    // population (which the data scientist would not have).
    std::string aux_q = StrFormat(probe.query.c_str(), "");
    size_t pos = aux_q.find("Flights");
    aux_q.replace(pos, 7, "Reports");
    double truth = *Unwrap(db.Execute(aux_q), "truth").GetValue(0, 0)
                        .ToDouble();
    double closed =
        *Unwrap(db.Execute(StrFormat(probe.query.c_str(), "CLOSED")),
                "closed")
             .GetValue(0, 0)
             .ToDouble();
    double semi =
        *Unwrap(db.Execute(StrFormat(probe.query.c_str(), "SEMI-OPEN")),
                "semi")
             .GetValue(0, 0)
             .ToDouble();
    rows.push_back({probe.label, FormatDouble(truth, 1),
                    StrFormat("%s (%.0f%% off)", FormatDouble(closed, 1).c_str(),
                              PercentDiff(closed, truth)),
                    StrFormat("%s (%.0f%% off)", FormatDouble(semi, 1).c_str(),
                              PercentDiff(semi, truth))});
  }
  std::printf("%s\n",
              RenderTable({"question", "truth", "CLOSED (naive)",
                           "SEMI-OPEN (IPF)"},
                          rows)
                  .c_str());
  std::printf("SEMI-OPEN answers are debiased against the published "
              "marginals; no knowledge of how the sample was collected "
              "was needed.\n");
  return 0;
}
