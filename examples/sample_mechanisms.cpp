// Known sampling mechanisms (§4.1): when the mechanism is declared
// with the sample, SEMI-OPEN queries reweight by the inverse
// inclusion probability (Horvitz–Thompson) — no marginals needed for
// the uniform case, a single 1-D marginal for the stratified case.
//
// Run: ./sample_mechanisms
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/database.h"
#include "data/flights.h"

using namespace mosaic;

namespace {
void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}
}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  Rng rng(99);
  data::FlightsOptions fopts;
  fopts.num_rows = 50000;
  Table population = data::GenerateFlights(fopts, &rng);

  core::Database db;
  Check(db.Execute("CREATE GLOBAL POPULATION Flights ("
                   "carrier VARCHAR, taxi_out INT, taxi_in INT, "
                   "elapsed_time INT, distance INT)")
            .status(),
        "population");

  // --- Uniform mechanism: a true 10% uniform sample -------------------
  Check(db.Execute("CREATE SAMPLE Uni AS (SELECT * FROM Flights "
                   "USING MECHANISM UNIFORM PERCENT 10)")
            .status(),
        "uniform sample");
  auto pick = rng.SampleWithoutReplacement(population.num_rows(),
                                           population.num_rows() / 10);
  std::sort(pick.begin(), pick.end());
  Check(db.IngestSample("Uni", population.Filter(pick)), "ingest uniform");

  Table r = Unwrap(db.Execute("SELECT SEMI-OPEN COUNT(*) FROM Flights"),
                   "semi-open count");
  std::printf("uniform 10%% sample, SEMI-OPEN COUNT(*): %s "
              "(truth %zu)\n",
              FormatDouble(*r.GetValue(0, 0).ToDouble(), 0).c_str(),
              population.num_rows());

  // --- Stratified mechanism: equal tuples per carrier ------------------
  // Needs the stratum sizes: a 1-D marginal over carrier.
  Check(db.CreateTable("Report", population), "report");
  Check(db.Execute("CREATE METADATA Flights_M1 FOR Flights AS "
                   "(SELECT carrier, COUNT(*) FROM Report "
                   "GROUP BY carrier)")
            .status(),
        "carrier marginal");
  Check(db.Execute("DROP SAMPLE Uni").status(), "drop uniform");
  Check(db.Execute("CREATE SAMPLE Strat AS (SELECT * FROM Flights "
                   "USING MECHANISM STRATIFIED ON carrier PERCENT 2)")
            .status(),
        "stratified sample");
  // Build the stratified sample: up to 70 tuples per carrier.
  {
    Schema schema = population.schema();
    std::map<std::string, size_t> taken;
    std::vector<size_t> rows;
    auto perm = rng.Permutation(population.num_rows());
    for (size_t idx : perm) {
      std::string carrier = population.GetValue(idx, 0).AsString();
      if (taken[carrier] < 70) {
        taken[carrier]++;
        rows.push_back(idx);
      }
    }
    std::sort(rows.begin(), rows.end());
    Check(db.IngestSample("Strat", population.Filter(rows)),
          "ingest stratified");
  }
  Table s = Unwrap(
      db.Execute("SELECT SEMI-OPEN carrier, COUNT(*) AS flights "
                 "FROM Flights GROUP BY carrier ORDER BY flights DESC "
                 "LIMIT 5"),
      "stratified query");
  std::printf("\nstratified-on-carrier sample, SEMI-OPEN top carriers "
              "(each stratum reweighted by N_h/n_h):\n%s",
              s.ToString().c_str());
  Table truth = Unwrap(
      db.Execute("SELECT carrier, COUNT(*) AS flights FROM Report "
                 "GROUP BY carrier ORDER BY flights DESC LIMIT 5"),
      "truth");
  std::printf("\nground truth:\n%s", truth.ToString().c_str());
  return 0;
}
