// Command-line client for a running mosaic_serve: connects over TCP,
// runs statements, prints result tables.
//
//   ./mosaic_client --port=N [--host=ADDR] "SELECT ..." ["SQL" ...]
//   ./mosaic_client --port=N --stats      print server counters
//   ./mosaic_client --port=N --smoke      demo-world smoke check
//                                         (pairs with mosaic_serve
//                                         --demo-world; used by
//                                         scripts/check.sh)
//
// Exit code 0 iff every requested statement succeeded.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "net/client.h"

using namespace mosaic;

namespace {

bool NumericFlag(const char* arg, const char* name, uint64_t* out) {
  return mosaic::NumericFlag(arg, name, out, "mosaic_client");
}

int RunSmoke(net::Client* client) {
  // Mixed visibility levels against the --demo-world catalog; every
  // statement must succeed and the CLOSED count must be exact.
  const std::vector<std::string> queries = {
      "SELECT CLOSED email, COUNT(*) AS c FROM People GROUP BY email",
      "SELECT CLOSED COUNT(*) AS c FROM People WHERE device = 'phone'",
      "SELECT SEMI-OPEN COUNT(*) AS c FROM People",
      "SELECT OPEN email, COUNT(*) AS c FROM People GROUP BY email "
      "ORDER BY email",
      "SHOW METADATA",
  };
  for (const auto& sql : queries) {
    auto result = client->Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "smoke FAILED (%s): %s\n", sql.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
  }
  // And once more as a single BATCH frame, exercising the fan-out.
  auto batch = client->Batch(queries);
  if (!batch.ok()) {
    std::fprintf(stderr, "smoke FAILED (batch): %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < batch->size(); ++i) {
    if (!(*batch)[i].ok()) {
      std::fprintf(stderr, "smoke FAILED (batch[%zu]): %s\n", i,
                   (*batch)[i].status.ToString().c_str());
      return 1;
    }
  }
  auto stats = client->Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "smoke FAILED (stats): %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("smoke OK: %llu queries served, %llu protocol errors\n",
              (unsigned long long)stats->queries_total,
              (unsigned long long)stats->protocol_errors);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  net::ClientOptions opts;
  bool want_stats = false;
  bool want_smoke = false;
  std::vector<std::string> statements;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t n = 0;
    if (NumericFlag(arg, "port", &n)) {
      if (n == 0 || n > 65535) {
        std::fprintf(stderr, "mosaic_client: --port=%llu out of range\n",
                     static_cast<unsigned long long>(n));
        return 2;
      }
      opts.port = static_cast<uint16_t>(n);
    } else if (StringFlag(arg, "host", &opts.host)) {
    } else if (std::strcmp(arg, "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      want_smoke = true;
    } else if (StartsWith(arg, "--")) {
      std::fprintf(stderr, "mosaic_client: unknown flag %s\n", arg);
      return 2;
    } else {
      statements.emplace_back(arg);
    }
  }
  if (opts.port == 0) {
    std::fprintf(stderr,
                 "usage: mosaic_client --port=N [--host=ADDR] "
                 "[--stats|--smoke] [SQL ...]\n");
    return 2;
  }

  net::Client client;
  Status connected = client.Connect(opts);
  if (!connected.ok()) {
    std::fprintf(stderr, "mosaic_client: %s\n",
                 connected.ToString().c_str());
    return 1;
  }

  int rc = 0;
  if (want_smoke) rc = RunSmoke(&client);
  for (const auto& sql : statements) {
    auto result = client.Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "error (%s): %s\n", sql.c_str(),
                   result.status().ToString().c_str());
      rc = 1;
      if (!client.connected()) break;  // transport gone; stop here
      continue;
    }
    std::printf("%s\n", result->ToString(50).c_str());
  }
  if (want_stats && client.connected()) {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      rc = 1;
    } else {
      std::printf(
          "queries_total=%llu queries_failed=%llu reads=%llu "
          "writes=%llu\n"
          "sessions=%llu open / %llu closed; connections=%llu opened, "
          "%llu active, %llu rejected\n"
          "result_cache: %llu hits / %llu misses (%llu entries); "
          "model_cache: %llu hits, %llu trained\n"
          "frames: %llu in / %llu out, %llu protocol errors\n"
          "weights: %llu epochs published; refits %llu total / "
          "%llu skipped / %llu incremental\n",
          (unsigned long long)stats->queries_total,
          (unsigned long long)stats->queries_failed,
          (unsigned long long)stats->reads,
          (unsigned long long)stats->writes,
          (unsigned long long)stats->sessions_opened,
          (unsigned long long)stats->sessions_closed,
          (unsigned long long)stats->connections_opened,
          (unsigned long long)stats->connections_active,
          (unsigned long long)stats->connections_rejected,
          (unsigned long long)stats->result_cache_hits,
          (unsigned long long)stats->result_cache_misses,
          (unsigned long long)stats->result_cache_entries,
          (unsigned long long)stats->model_cache_hits,
          (unsigned long long)stats->model_cache_insertions,
          (unsigned long long)stats->frames_received,
          (unsigned long long)stats->frames_sent,
          (unsigned long long)stats->protocol_errors,
          (unsigned long long)stats->weight_epochs_published,
          (unsigned long long)stats->weight_refits_total,
          (unsigned long long)stats->weight_refits_skipped,
          (unsigned long long)stats->weight_refits_incremental);
    }
  }
  if (client.connected()) (void)client.Close();
  return rc;
}
