// Command-line client for a running mosaic_serve: connects over TCP,
// runs statements, prints result tables.
//
//   ./mosaic_client --port=N [--host=ADDR] "SELECT ..." ["SQL" ...]
//   ./mosaic_client --port=N --stats      print server counters
//   ./mosaic_client --port=N --smoke      demo-world smoke check
//                                         (pairs with mosaic_serve
//                                         --demo-world; used by
//                                         scripts/check.sh)
//   ./mosaic_client --port=N --trace SQL  tag each statement with a
//                                         fresh trace context (wire
//                                         minor 2) and print its
//                                         trace_id; an EXPLAIN
//                                         ANALYZE statement then
//                                         returns the server-side
//                                         span tree carrying that id
//
// Exit code 0 iff every requested statement succeeded.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "net/client.h"

using namespace mosaic;

namespace {

bool NumericFlag(const char* arg, const char* name, uint64_t* out) {
  return mosaic::NumericFlag(arg, name, out, "mosaic_client");
}

int RunSmoke(net::Client* client) {
  // Mixed visibility levels against the --demo-world catalog; every
  // statement must succeed and the CLOSED count must be exact.
  const std::vector<std::string> queries = {
      "SELECT CLOSED email, COUNT(*) AS c FROM People GROUP BY email",
      "SELECT CLOSED COUNT(*) AS c FROM People WHERE device = 'phone'",
      "SELECT SEMI-OPEN COUNT(*) AS c FROM People",
      "SELECT OPEN email, COUNT(*) AS c FROM People GROUP BY email "
      "ORDER BY email",
      "SHOW METADATA",
  };
  for (const auto& sql : queries) {
    auto result = client->Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "smoke FAILED (%s): %s\n", sql.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
  }
  // And once more as a single BATCH frame, exercising the fan-out.
  auto batch = client->Batch(queries);
  if (!batch.ok()) {
    std::fprintf(stderr, "smoke FAILED (batch): %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < batch->size(); ++i) {
    if (!(*batch)[i].ok()) {
      std::fprintf(stderr, "smoke FAILED (batch[%zu]): %s\n", i,
                   (*batch)[i].status.ToString().c_str());
      return 1;
    }
  }
  auto stats = client->Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "smoke FAILED (stats): %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("smoke OK: %llu queries served, %llu protocol errors\n",
              (unsigned long long)stats->queries_total,
              (unsigned long long)stats->protocol_errors);
  return 0;
}

/// --stats output: one `name=value` per line, sorted by name, so the
/// format is stable under diff and grep whatever order fields were
/// added to the protocol in. Histograms print derived summary rows.
void PrintStats(const net::StatsSnapshot& s) {
  std::vector<std::pair<std::string, std::string>> rows = {
      {"connections_active", std::to_string(s.connections_active)},
      {"connections_closed", std::to_string(s.connections_closed)},
      {"connections_opened", std::to_string(s.connections_opened)},
      {"connections_rejected", std::to_string(s.connections_rejected)},
      {"frames_received", std::to_string(s.frames_received)},
      {"frames_sent", std::to_string(s.frames_sent)},
      {"inflight_highwater", std::to_string(s.inflight_highwater)},
      {"malformed_frames", std::to_string(s.malformed_frames)},
      {"model_cache_hits", std::to_string(s.model_cache_hits)},
      {"model_cache_insertions", std::to_string(s.model_cache_insertions)},
      {"protocol_errors", std::to_string(s.protocol_errors)},
      {"queries_failed", std::to_string(s.queries_failed)},
      {"queries_total", std::to_string(s.queries_total)},
      {"reads", std::to_string(s.reads)},
      {"result_cache_entries", std::to_string(s.result_cache_entries)},
      {"result_cache_hits", std::to_string(s.result_cache_hits)},
      {"result_cache_misses", std::to_string(s.result_cache_misses)},
      {"sessions_closed", std::to_string(s.sessions_closed)},
      {"sessions_opened", std::to_string(s.sessions_opened)},
      {"weight_epochs_published",
       std::to_string(s.weight_epochs_published)},
      {"weight_refits_incremental",
       std::to_string(s.weight_refits_incremental)},
      {"weight_refits_skipped", std::to_string(s.weight_refits_skipped)},
      {"weight_refits_total", std::to_string(s.weight_refits_total)},
      {"writes", std::to_string(s.writes)},
  };
  char buf[64];
  for (const auto& h : s.histograms) {
    rows.emplace_back(h.name + ".count",
                      std::to_string(h.histogram.count));
    std::snprintf(buf, sizeof(buf), "%.1f", h.histogram.Mean());
    rows.emplace_back(h.name + ".mean", buf);
    std::snprintf(buf, sizeof(buf), "%.1f", h.histogram.Quantile(0.50));
    rows.emplace_back(h.name + ".p50", buf);
    std::snprintf(buf, sizeof(buf), "%.1f", h.histogram.Quantile(0.95));
    rows.emplace_back(h.name + ".p95", buf);
    std::snprintf(buf, sizeof(buf), "%.1f", h.histogram.Quantile(0.99));
    rows.emplace_back(h.name + ".p99", buf);
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& [name, value] : rows) {
    std::printf("%s=%s\n", name.c_str(), value.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  net::ClientOptions opts;
  bool want_stats = false;
  bool want_smoke = false;
  bool want_trace = false;
  std::vector<std::string> statements;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t n = 0;
    if (NumericFlag(arg, "port", &n)) {
      if (n == 0 || n > 65535) {
        std::fprintf(stderr, "mosaic_client: --port=%llu out of range\n",
                     static_cast<unsigned long long>(n));
        return 2;
      }
      opts.port = static_cast<uint16_t>(n);
    } else if (StringFlag(arg, "host", &opts.host)) {
    } else if (std::strcmp(arg, "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      want_smoke = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      want_trace = true;
    } else if (StartsWith(arg, "--")) {
      std::fprintf(stderr, "mosaic_client: unknown flag %s\n", arg);
      return 2;
    } else {
      statements.emplace_back(arg);
    }
  }
  if (opts.port == 0) {
    std::fprintf(stderr,
                 "usage: mosaic_client --port=N [--host=ADDR] "
                 "[--stats|--smoke] [SQL ...]\n");
    return 2;
  }

  net::Client client;
  Status connected = client.Connect(opts);
  if (!connected.ok()) {
    std::fprintf(stderr, "mosaic_client: %s\n",
                 connected.ToString().c_str());
    return 1;
  }

  if (want_trace && client.server_minor_version() < 2) {
    std::fprintf(stderr,
                 "mosaic_client: server speaks wire minor %u; --trace "
                 "needs minor 2 — statements will run untraced\n",
                 client.server_minor_version());
  }

  int rc = 0;
  if (want_smoke) rc = RunSmoke(&client);
  std::mt19937_64 trace_rng(std::random_device{}());
  for (const auto& sql : statements) {
    net::TraceContext ctx;
    if (want_trace) {
      do {
        ctx.trace_id = trace_rng();
      } while (ctx.trace_id == 0);  // 0 means "no trace" on the wire
      ctx.sampled = true;
      std::printf("trace_id=%016llx %s\n",
                  static_cast<unsigned long long>(ctx.trace_id),
                  sql.c_str());
    }
    auto result = want_trace ? client.Query(sql, ctx) : client.Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "error (%s): %s\n", sql.c_str(),
                   result.status().ToString().c_str());
      rc = 1;
      if (!client.connected()) break;  // transport gone; stop here
      continue;
    }
    std::printf("%s\n", result->ToString(50).c_str());
  }
  if (want_stats && client.connected()) {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      rc = 1;
    } else {
      PrintStats(*stats);
    }
  }
  if (client.connected()) (void)client.Close();
  return rc;
}
