// Interactive Mosaic SQL shell: type statements terminated by ';',
// results print as tables. Works both interactively and piped:
//
//   echo "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); \
//         SELECT * FROM t;" | ./mosaic_shell
//
// Meta-commands: \h (help), \q (quit). SHOW TABLES / POPULATIONS /
// SAMPLES / METADATA inspect the catalog.
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/database.h"

using namespace mosaic;

namespace {

void PrintHelp() {
  std::printf(
      "Mosaic SQL shell. Statements end with ';'. Highlights:\n"
      "  CREATE GLOBAL POPULATION p (a VARCHAR, ...)\n"
      "  CREATE METADATA p_M1 AS (SELECT a, cnt FROM report)\n"
      "  CREATE SAMPLE s AS (SELECT * FROM p [WHERE ...]\n"
      "                      [USING MECHANISM UNIFORM PERCENT 10])\n"
      "  INSERT INTO s VALUES (...);  COPY s FROM 'file.csv'\n"
      "  SELECT CLOSED|SEMI-OPEN|OPEN ... FROM p [GROUP BY ...]\n"
      "  SHOW TABLES | POPULATIONS | SAMPLES | METADATA\n"
      "  \\h help, \\q quit\n");
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  core::Database db;
  bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("Mosaic shell — open-world queries over biased samples.\n"
                "Type \\h for help, \\q to quit.\n");
  }
  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) {
      std::printf(buffer.empty() ? "mosaic> " : "   ...> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = Trim(line);
    if (buffer.empty() && StartsWith(trimmed, "\\")) {
      if (trimmed == "\\q") break;
      if (trimmed == "\\h") {
        PrintHelp();
        continue;
      }
      std::printf("unknown meta-command %s (try \\h)\n",
                  std::string(trimmed).c_str());
      continue;
    }
    buffer += line;
    buffer += '\n';
    // Execute every complete (';'-terminated) statement in the buffer.
    size_t semi;
    while ((semi = buffer.find(';')) != std::string::npos) {
      std::string stmt = buffer.substr(0, semi);
      buffer.erase(0, semi + 1);
      if (Trim(stmt).empty()) continue;
      auto result = db.Execute(stmt);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      if (result->num_columns() > 0) {
        std::printf("%s", result->ToString(50).c_str());
      } else {
        std::printf("ok\n");
      }
    }
  }
  return 0;
}
