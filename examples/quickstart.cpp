// Quickstart: the paper's §2 motivating example, end to end in Mosaic
// SQL — create a global population of European migrants, register
// Eurostat-style marginals as metadata, define the biased Yahoo!
// sample, and compare CLOSED / SEMI-OPEN / OPEN answers.
//
// Run:  ./quickstart
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "core/database.h"
#include "data/migrants.h"
#include "storage/csv.h"

using namespace mosaic;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  Rng rng(2020);

  // Ground truth we pretend not to have: the full migrant population.
  data::MigrantsOptions pop_opts;
  pop_opts.population_size = 100000;
  Table population = data::GenerateMigrantsPopulation(pop_opts, &rng);
  Table eurostat_country =
      Unwrap(data::EurostatCountryReport(population), "country report");
  Table eurostat_email =
      Unwrap(data::EurostatEmailReport(population), "email report");
  Table yahoo = Unwrap(data::YahooSample(population), "yahoo sample");

  core::Database db;

  // 1. Ingest the Eurostat reports as auxiliary tables.
  Check(db.CreateTable("EurostatCountry", eurostat_country),
        "create EurostatCountry");
  Check(db.CreateTable("EurostatEmail", eurostat_email),
        "create EurostatEmail");

  // 2. Declare the global population and its metadata (lines 3-9 of
  //    the paper's example).
  Check(db.Execute(
              "CREATE GLOBAL POPULATION EuropeMigrants ("
              "country VARCHAR, email VARCHAR, age_group VARCHAR)")
            .status(),
        "create population");
  Check(db.Execute(
              "CREATE METADATA EuropeMigrants_M1 AS "
              "(SELECT country, reported_count FROM EurostatCountry)")
            .status(),
        "metadata M1");
  Check(db.Execute(
              "CREATE METADATA EuropeMigrants_M2 AS "
              "(SELECT email, reported_count FROM EurostatEmail)")
            .status(),
        "metadata M2");

  // 3. Declare and ingest the Yahoo! sample (lines 10-12).
  Check(db.Execute(
              "CREATE SAMPLE YahooMigrants AS "
              "(SELECT * FROM EuropeMigrants WHERE email = 'Yahoo')")
            .status(),
        "create sample");
  Check(db.IngestSample("YahooMigrants", yahoo), "ingest sample");

  std::printf("Population (hidden truth): %zu migrants\n",
              population.num_rows());
  std::printf("Yahoo! sample: %zu tuples\n\n", yahoo.num_rows());

  // 4. Query the population at each visibility level.
  std::printf("--- CLOSED (sample as-is) ---\n");
  Table closed = Unwrap(
      db.Execute("SELECT CLOSED email, COUNT(*) AS cnt FROM EuropeMigrants "
                 "GROUP BY email ORDER BY cnt DESC"),
      "closed query");
  std::printf("%s\n", closed.ToString().c_str());

  std::printf("--- SEMI-OPEN (IPF reweighting) ---\n");
  Table semi = Unwrap(
      db.Execute("SELECT SEMI-OPEN email, COUNT(*) AS cnt "
                 "FROM EuropeMigrants GROUP BY email ORDER BY cnt DESC"),
      "semi-open query");
  std::printf("%s\n", semi.ToString().c_str());

  std::printf("--- OPEN (M-SWG generates missing tuples) ---\n");
  Table open = Unwrap(
      db.Execute("SELECT OPEN email, COUNT(*) AS cnt FROM EuropeMigrants "
                 "GROUP BY email ORDER BY cnt DESC"),
      "open query");
  std::printf("%s\n", open.ToString().c_str());

  std::printf("--- Ground truth ---\n");
  std::printf("%s\n", eurostat_email.ToString().c_str());

  std::printf(
      "Note how CLOSED only sees Yahoo; SEMI-OPEN matches the Yahoo total "
      "but cannot invent other providers; OPEN generates them.\n");
  return 0;
}
