// Concurrent query-serving subsystem in front of core::Database.
//
// Threading model
//   - A request pool runs submitted statements. Statements are
//     classified up front (service/sql_canonical.h): reads (SELECT at
//     every visibility level, SHOW) execute under a shared lock,
//     concurrently with each other — SEMI-OPEN included, because its
//     refit publishes the fitted weights as an immutable
//     copy-on-write epoch (core/weights.h) that swaps in without
//     disturbing readers pinned to the previous one. Writers (DDL,
//     DML, UPDATE) take the lock exclusively, serializing catalog
//     mutations.
//   - A second, dedicated generation pool is handed to the Database
//     for parallel OPEN-query sample generation. Keeping the two
//     pools separate means a request task blocking on generation
//     futures can never deadlock the pool serving it.
//   - The request pool doubles as the intra-query morsel pool
//     (ServiceOptions::morsel_size / MOSAIC_MORSELS): a query splits
//     its batch pipeline into morsels that idle request workers help
//     execute. Safe to share because the morsel driver claims work
//     from an atomic counter and never blocks on queued pool work
//     (exec/morsel.h) — a saturated pool just runs each query's
//     morsels on its own thread.
//
// Caching
//   - Model cache: the Database's bounded LRU of trained generators
//     (shared across sessions; invalidated by metadata changes).
//   - Result cache: (canonicalized SQL, catalog version, weight
//     epoch) -> result table, bounded LRU. Only read-class statements
//     are cached. Nothing is ever flushed wholesale: a write bumps
//     the catalog version and a SEMI-OPEN refit bumps the sample's
//     weight epoch, so exactly the stale entries stop matching and
//     age out while unrelated entries keep serving hits. OPEN answers
//     are cacheable because generation seeds are deterministic (seed
//     + sample index).
#ifndef MOSAIC_SERVICE_QUERY_SERVICE_H_
#define MOSAIC_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/database.h"
#include "service/sql_canonical.h"
#include "storage/durable/engine.h"
#include "storage/table.h"

namespace mosaic {
namespace service {

struct ServiceOptions {
  /// Workers executing submitted statements.
  size_t num_request_threads = 4;
  /// Workers producing OPEN-query generated samples; 0 disables
  /// parallel generation (the sequential engine path).
  size_t num_generation_threads = 4;
  /// Result-cache bound in entries; 0 disables result caching.
  size_t result_cache_capacity = 256;
  /// Trained-generator cache bound, applied to the owned Database.
  size_t model_cache_capacity = 16;
  /// Serve queries through the legacy row-at-a-time executor instead
  /// of the vectorized batch path (bit-identical results; parity
  /// oracle / escape hatch). Result cache keys are unaffected.
  bool force_row_exec = false;
  /// Rows per intra-query morsel for batch-path SELECTs; 0 leaves
  /// morsel execution to the MOSAIC_MORSELS environment knob (unset:
  /// disabled). Morsels run on the request pool, which is shared
  /// between inter-query and intra-query work — the morsel driver
  /// never blocks on queued pool work, so the sharing cannot deadlock
  /// (exec/morsel.h). Results are bit-identical at every setting.
  size_t morsel_size = 0;
  /// Max concurrent morsels per query, counting the thread executing
  /// the query; 0 = that thread plus every request worker.
  size_t morsel_parallelism = 0;
  /// Trace every statement (parse, cache, execute, per-phase executor
  /// spans). Results are bit-identical traced or not; the cost is the
  /// span bookkeeping. Also enabled by MOSAIC_TRACE=1. EXPLAIN
  /// ANALYZE statements are always traced regardless of this flag.
  bool trace_queries = false;
  /// Statements taking at least this many milliseconds log their span
  /// tree at WARNING. Negative = disabled; also settable via
  /// MOSAIC_SLOW_QUERY_MS (the option wins when >= 0). Enabling the
  /// slow-query log implies trace_queries — without spans there would
  /// be nothing to print.
  int64_t slow_query_ms = -1;
  /// Directory for durable state (snapshots + WAL,
  /// storage/durable/engine.h). Empty = in-memory only. When set, the
  /// service recovers the catalog from it at construction (check
  /// durability_status() before serving) and write-ahead-logs every
  /// mutation afterwards.
  std::string data_dir;
  /// fsync the WAL on every logged mutation (durable::
  /// StorageEngineOptions::fsync_dml).
  bool durable_fsync_dml = true;
};

/// Aggregate service counters; a consistent-enough snapshot for
/// monitoring (counters are sampled individually).
struct ServiceStats {
  uint64_t queries_total = 0;
  uint64_t queries_failed = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  CacheStats result_cache;
  CacheStats model_cache;
  /// Versioned weight-store activity (core/database.h).
  uint64_t weight_epochs_published = 0;
  uint64_t weight_refits_total = 0;
  uint64_t weight_refits_skipped = 0;
  uint64_t weight_refits_incremental = 0;
};

class QueryService;

/// Caller-supplied distributed-trace context for one statement,
/// transport-agnostic (the network server decodes it from the wire's
/// minor-v2 trace fields; in-process callers can fill it directly —
/// the same plumbing a scatter-gather coordinator reuses to stitch
/// shard spans under one trace_id).
struct RequestContext {
  /// Trace this statement belongs to; 0 = none. Adopted onto the
  /// QueryTrace so span trees and query-log records carry it.
  uint64_t trace_id = 0;
  /// The caller's enclosing span id (annotated on the statement span
  /// so a collector can stitch the cross-process parent edge).
  uint64_t parent_span_id = 0;
  /// Force span collection for this statement even when the service
  /// does not trace by default.
  bool sampled = false;
};

/// A lightweight client handle. Sessions share the service's catalog
/// and caches but keep their own submission counters; handles are
/// cheap to copy and safe to use from several threads.
class Session {
 public:
  /// Run one statement synchronously on the calling thread.
  [[nodiscard]] Result<Table> Execute(const std::string& sql);

  /// Same, under a caller-supplied trace context.
  [[nodiscard]] Result<Table> Execute(const std::string& sql, const RequestContext& ctx);

  /// Enqueue one statement on the request pool.
  std::future<Result<Table>> Submit(const std::string& sql);

  /// Enqueue one statement on the request pool and deliver the result
  /// to `done` on the worker that executed it (instead of a future).
  /// The callback form lets event-driven callers — the TCP server's
  /// poll loop — avoid parking a thread per in-flight statement. The
  /// callback must not block on other request-pool work.
  void SubmitAsync(std::string sql,
                   std::function<void(Result<Table>)> done);

  /// SubmitAsync under a caller-supplied trace context (the network
  /// server's QUERY/BATCH dispatch path).
  void SubmitAsync(std::string sql, RequestContext ctx,
                   std::function<void(Result<Table>)> done);

  /// Fan a batch out across the request pool, one future per
  /// statement, in input order.
  std::vector<std::future<Result<Table>>> SubmitBatch(
      const std::vector<std::string>& sqls);

  uint64_t id() const;
  uint64_t queries_submitted() const;

 private:
  friend class QueryService;
  struct State {
    uint64_t id = 0;
    std::atomic<uint64_t> submitted{0};
  };
  Session(QueryService* service, std::shared_ptr<State> state)
      : service_(service), state_(std::move(state)) {}

  QueryService* service_;
  std::shared_ptr<State> state_;
};

class QueryService {
 public:
  explicit QueryService(ServiceOptions options = ServiceOptions());
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Open a client handle.
  Session OpenSession();

  /// Record the end of a session's lifetime (handles are plain
  /// values, so closure is an explicit event — the network server
  /// calls this when a connection goes away). Purely observational
  /// today: the handle stays usable, only the stats move.
  void CloseSession(const Session& session);

  /// Service-level variants of the Session API (an anonymous
  /// session).
  [[nodiscard]] Result<Table> Execute(const std::string& sql);
  std::future<Result<Table>> Submit(const std::string& sql);
  std::vector<std::future<Result<Table>>> SubmitBatch(
      const std::vector<std::string>& sqls);

  /// The owned engine, for programmatic setup (ingest, options).
  /// Exclusive access — do not call while queries are in flight.
  /// Catalog and ingest mutations through this pointer bump the
  /// engine's cache stamps like their SQL counterparts, but option
  /// mutations (mutable_open_options and friends) do not: follow
  /// those with InvalidateCaches() if the service already answered
  /// queries.
  core::Database* database() { return &db_; }

  /// Drop both the result cache and the trained-model cache.
  void InvalidateCaches();

  // ---- Durability (ServiceOptions::data_dir) --------------------------

  /// OK when the service runs without a data dir or recovery
  /// succeeded; the recovery/open error otherwise. A server must
  /// refuse to serve on a non-OK status — the in-memory catalog may
  /// be partial.
  [[nodiscard]] Status durability_status() const { return durability_status_; }

  /// Null without a data dir.
  const durable::StorageEngine* storage_engine() const {
    return storage_engine_.get();
  }

  /// Write a snapshot of the current state and GC obsolete WALs.
  /// Takes the catalog lock exclusively only for the in-memory
  /// capture; the file write runs outside the lock, concurrent with
  /// queries. No-op error when the service is not durable.
  [[nodiscard]] Status TriggerSnapshot();

  ServiceStats Stats() const;

  /// Drain both pools and stop accepting work. Called by the
  /// destructor; statements submitted afterwards run inline.
  void Shutdown();

 private:
  friend class Session;

  [[nodiscard]] Result<Table> Run(const std::string& sql, Session::State* session,
                    const RequestContext& ctx = RequestContext());

  /// Run's parse/classify/lock/cache/execute pipeline. Failure
  /// accounting (queries_failed) and latency recording live in Run —
  /// the single exit point — so every error path counts exactly once.
  [[nodiscard]] Result<Table> RunInternal(const std::string& sql,
                            trace::QueryTrace* trace,
                            const RequestContext& ctx, bool* is_read,
                            bool* explain, int* cache_hit);

  /// Register the service-backed system tables (`system.sessions`,
  /// `system.snapshots`) on the owned database.
  void RegisterSystemTables();

  /// The `system.sessions` snapshot (providers run on request-pool
  /// threads; the lambda registered with the database delegates here
  /// so the guarded map is only touched inside an analyzed method).
  [[nodiscard]] Result<Table> SessionsTable();

  /// In-memory snapshot capture. REQUIRES makes
  /// durable::StorageEngine::BeginSnapshot's contract — writers must
  /// be excluded while the image is captured — machine-checked at
  /// every call site instead of a comment.
  [[nodiscard]] Result<durable::StorageEngine::PendingSnapshot> CaptureSnapshotLocked()
      REQUIRES(catalog_mu_);

  ServiceOptions options_;
  core::Database db_;
  /// Owns the data dir; attached to db_ as its durability sink after
  /// recovery. Declared after db_ but destroyed first (members
  /// destruct in reverse order), so the sink must be detached in
  /// Shutdown before db_ could outlive it — it isn't: db_ only logs
  /// through the pointer during statement execution, which Shutdown's
  /// pool drain ends first.
  std::unique_ptr<durable::StorageEngine> storage_engine_;
  Status durability_status_ = Status::OK();
  ThreadPool request_pool_;
  /// Null when num_generation_threads == 0 (sequential OPEN path).
  std::unique_ptr<ThreadPool> generation_pool_;
  /// Readers = read-class statements, writers = catalog mutations.
  SharedMutex catalog_mu_;
  LruCache<std::string, std::shared_ptr<const Table>> result_cache_;

  /// Live session states for `system.sessions`, keyed by id. Weak
  /// pointers: a session whose handles are all gone drops out on the
  /// next snapshot; CloseSession erases eagerly.
  mutable Mutex sessions_mu_;
  std::map<uint64_t, std::weak_ptr<Session::State>> sessions_
      GUARDED_BY(sessions_mu_);

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> queries_total_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_closed_{0};

  /// Resolved tracing config (options + MOSAIC_TRACE /
  /// MOSAIC_SLOW_QUERY_MS environment fallbacks).
  bool trace_enabled_ = false;
  int64_t slow_query_us_ = -1;  ///< < 0 disables the slow-query log
  /// Latency histograms in the process-wide registry; recorded for
  /// every statement whether or not tracing is on (a Record is three
  /// relaxed atomic adds).
  metrics::Histogram* latency_all_;
  metrics::Histogram* latency_read_;
  metrics::Histogram* latency_write_;
};

}  // namespace service
}  // namespace mosaic

#endif  // MOSAIC_SERVICE_QUERY_SERVICE_H_
