// SQL canonicalization and read/write classification for the query
// service's result cache and locking policy.
#ifndef MOSAIC_SERVICE_SQL_CANONICAL_H_
#define MOSAIC_SERVICE_SQL_CANONICAL_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace mosaic {
namespace service {

/// Canonical cache key for a statement: tokens re-joined with single
/// spaces, identifiers lower-cased, keywords upper-cased, numeric
/// literals normalized — so "select  COUNT(*) from T" and
/// "SELECT count(*) FROM t" share one result-cache entry. Fails on
/// statements the lexer rejects.
[[nodiscard]] Result<std::string> CanonicalizeSql(const std::string& sql);

/// How the service must schedule a statement.
enum class StatementClass {
  /// Runs under the shared lock; its result may be cached (SELECT at
  /// any visibility level, SHOW). SEMI-OPEN belongs here even though
  /// it persists fitted weights (§3.2): weights are published as
  /// immutable copy-on-write epochs (core/weights.h), a
  /// self-synchronizing swap that never disturbs concurrent readers —
  /// only catalog structure and sample data need the exclusive lock.
  kRead,
  /// Mutates catalog state and runs exclusively: DDL/DML/UPDATE.
  kWrite,
};

/// Classify an already-parsed statement. OPEN queries count as reads
/// (the model cache synchronizes itself), and so does SELECT
/// SEMI-OPEN (epoch publication synchronizes itself; see above).
StatementClass ClassifyStatement(const sql::Statement& stmt);

/// Parse and classify one statement. Parse failures are returned
/// verbatim so the caller can surface them without re-parsing.
[[nodiscard]] Result<StatementClass> ClassifySql(const std::string& sql);

}  // namespace service
}  // namespace mosaic

#endif  // MOSAIC_SERVICE_SQL_CANONICAL_H_
