#include "service/sql_canonical.h"

#include <cctype>

#include "common/string_util.h"
#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "storage/value.h"

namespace mosaic {
namespace service {

namespace {

const char* PunctText(sql::TokenType type) {
  switch (type) {
    case sql::TokenType::kLParen: return "(";
    case sql::TokenType::kRParen: return ")";
    case sql::TokenType::kComma: return ",";
    case sql::TokenType::kSemicolon: return ";";
    case sql::TokenType::kStar: return "*";
    case sql::TokenType::kPlus: return "+";
    case sql::TokenType::kMinus: return "-";
    case sql::TokenType::kSlash: return "/";
    case sql::TokenType::kEq: return "=";
    case sql::TokenType::kNe: return "<>";
    case sql::TokenType::kLt: return "<";
    case sql::TokenType::kLe: return "<=";
    case sql::TokenType::kGt: return ">";
    case sql::TokenType::kGe: return ">=";
    case sql::TokenType::kDot: return ".";
    default: return nullptr;
  }
}

}  // namespace

[[nodiscard]] Result<std::string> CanonicalizeSql(const std::string& sql) {
  MOSAIC_ASSIGN_OR_RETURN(auto tokens, sql::Lex(sql));
  std::string out;
  out.reserve(sql.size());
  for (const auto& tok : tokens) {
    if (tok.type == sql::TokenType::kEof) break;
    // Trailing semicolons don't change the statement.
    if (tok.type == sql::TokenType::kSemicolon) continue;
    if (!out.empty()) out += ' ';
    switch (tok.type) {
      case sql::TokenType::kIdentifier:
        out += ToLower(tok.text);
        break;
      case sql::TokenType::kKeyword:
        out += tok.text;  // lexer upper-cases keywords
        break;
      case sql::TokenType::kIntLiteral:
        out += std::to_string(tok.int_value);
        break;
      case sql::TokenType::kDoubleLiteral:
        out += FormatDouble(tok.double_value, 17);
        break;
      case sql::TokenType::kStringLiteral: {
        out += '\'';
        for (char c : tok.text) {
          out += c;
          if (c == '\'') out += '\'';
        }
        out += '\'';
        break;
      }
      default: {
        const char* p = PunctText(tok.type);
        if (p == nullptr) {
          return Status::Internal("unprintable token in canonicalizer");
        }
        out += p;
        break;
      }
    }
  }
  return out;
}

StatementClass ClassifyStatement(const sql::Statement& stmt) {
  if (stmt.Is<sql::ShowStmt>()) return StatementClass::kRead;
  if (stmt.Is<sql::SelectStmt>()) {
    // Every SELECT — SEMI-OPEN included — is a shared-lock reader.
    // SEMI-OPEN does persist fitted weights (§3.2), but it publishes
    // them as a copy-on-write epoch that swaps in atomically
    // (core/weights.h); classifying it as a writer would serialize
    // every refit against all readers for no isolation gain.
    return StatementClass::kRead;
  }
  return StatementClass::kWrite;
}

[[nodiscard]] Result<StatementClass> ClassifySql(const std::string& sql) {
  MOSAIC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  return ClassifyStatement(stmt);
}

}  // namespace service
}  // namespace mosaic
