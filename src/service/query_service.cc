#include "service/query_service.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "common/env.h"
#include "common/event_log.h"
#include "common/logging.h"
#include "common/query_log.h"
#include "common/string_util.h"
#include "core/system_tables.h"
#include "exec/simd.h"
#include "exec/trace_table.h"
#include "sql/parser.h"

namespace mosaic {
namespace service {

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Result<Table> Session::Execute(const std::string& sql) {
  state_->submitted.fetch_add(1, std::memory_order_relaxed);
  return service_->Run(sql, state_.get());
}

Result<Table> Session::Execute(const std::string& sql,
                               const RequestContext& ctx) {
  state_->submitted.fetch_add(1, std::memory_order_relaxed);
  return service_->Run(sql, state_.get(), ctx);
}

std::future<Result<Table>> Session::Submit(const std::string& sql) {
  state_->submitted.fetch_add(1, std::memory_order_relaxed);
  QueryService* service = service_;
  auto state = state_;
  return service->request_pool_.Submit(
      [service, state, sql] { return service->Run(sql, state.get()); });
}

void Session::SubmitAsync(std::string sql,
                          std::function<void(Result<Table>)> done) {
  SubmitAsync(std::move(sql), RequestContext(), std::move(done));
}

void Session::SubmitAsync(std::string sql, RequestContext ctx,
                          std::function<void(Result<Table>)> done) {
  state_->submitted.fetch_add(1, std::memory_order_relaxed);
  QueryService* service = service_;
  auto state = state_;
  service->request_pool_.Submit(
      [service, state, sql = std::move(sql), ctx,
       done = std::move(done)] {
        done(service->Run(sql, state.get(), ctx));
      });
}

std::vector<std::future<Result<Table>>> Session::SubmitBatch(
    const std::vector<std::string>& sqls) {
  std::vector<std::future<Result<Table>>> futures;
  futures.reserve(sqls.size());
  for (const auto& sql : sqls) futures.push_back(Submit(sql));
  return futures;
}

uint64_t Session::id() const { return state_->id; }

uint64_t Session::queries_submitted() const {
  return state_->submitted.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

QueryService::QueryService(ServiceOptions options)
    : options_(options),
      request_pool_(options.num_request_threads),
      result_cache_(options.result_cache_capacity) {
  db_.set_model_cache_capacity(options.model_cache_capacity);
  if (options.force_row_exec) db_.set_force_row_exec(true);
  // Intra-query morsels share the request pool (deadlock-free by the
  // morsel driver's claim-loop design). The engine may already have a
  // morsel size from MOSAIC_MORSELS; explicit options override it.
  if (options.morsel_size > 0) {
    db_.set_morsel_options(options.morsel_size, options.morsel_parallelism);
  } else if (options.morsel_parallelism > 0) {
    db_.set_morsel_options(db_.morsel_size(), options.morsel_parallelism);
  }
  db_.set_morsel_pool(&request_pool_);
  if (options.num_generation_threads > 0) {
    generation_pool_ =
        std::make_unique<ThreadPool>(options.num_generation_threads);
    db_.set_generation_pool(generation_pool_.get());
  }
  slow_query_us_ = options.slow_query_ms;
  if (slow_query_us_ < 0) {
    if (auto env = EnvSize("MOSAIC_SLOW_QUERY_MS")) {
      slow_query_us_ = static_cast<int64_t>(*env);
    }
  }
  if (slow_query_us_ >= 0) slow_query_us_ *= 1000;
  // The slow-query log needs a span tree to print, so it implies
  // tracing.
  trace_enabled_ =
      options.trace_queries || EnvFlag("MOSAIC_TRACE") || slow_query_us_ >= 0;
  auto& registry = metrics::Registry::Global();
  latency_all_ = registry.GetHistogram("mosaic_query_latency_us");
  latency_read_ = registry.GetHistogram("mosaic_read_latency_us");
  latency_write_ = registry.GetHistogram("mosaic_write_latency_us");

  // Durable mode: rebuild the catalog from the data dir before any
  // query can run, then let the engine WAL everything from here on.
  // Construction continues on failure (no exceptions); servers gate
  // on durability_status().
  if (!options.data_dir.empty()) {
    durable::StorageEngineOptions eng_options;
    eng_options.fsync_dml = options.durable_fsync_dml;
    auto engine = durable::StorageEngine::Open(options.data_dir, eng_options);
    if (!engine.ok()) {
      durability_status_ = engine.status();
    } else {
      storage_engine_ = std::move(*engine);
      durability_status_ = storage_engine_->Recover(&db_).status();
    }
  }

  RegisterSystemTables();
}

void QueryService::RegisterSystemTables() {
  // Overrides the Database's empty-stub providers with live ones. The
  // lambdas run on request-pool threads (inside a SELECT), so they
  // may only touch thread-safe state.
  db_.RegisterSystemTable("sessions",
                          [this]() { return SessionsTable(); });
  if (storage_engine_ != nullptr) {
    const std::string dir = storage_engine_->data_dir();
    db_.RegisterSystemTable("snapshots", [dir]() -> Result<Table> {
      MOSAIC_ASSIGN_OR_RETURN(Table out, core::EmptySnapshotsTable());
      DIR* d = opendir(dir.c_str());
      if (d == nullptr) return out;
      std::vector<std::string> names;
      while (struct dirent* entry = readdir(d)) {
        const std::string name = entry->d_name;
        const std::string suffix = ".snap";
        if (name.rfind("snapshot-", 0) == 0 && name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
          names.push_back(name);
        }
      }
      closedir(d);
      std::sort(names.begin(), names.end());
      for (const std::string& name : names) {
        const uint64_t seq =
            std::strtoull(name.c_str() + sizeof("snapshot-") - 1, nullptr, 10);
        struct stat st;
        int64_t bytes = 0;
        if (::stat((dir + "/" + name).c_str(), &st) == 0) {
          bytes = static_cast<int64_t>(st.st_size);
        }
        MOSAIC_RETURN_IF_ERROR(
            out.AppendRow({Value(name), Value(static_cast<int64_t>(seq)),
                           Value(bytes)}));
      }
      return out;
    });
  }
}

Result<Table> QueryService::SessionsTable() {
  MOSAIC_ASSIGN_OR_RETURN(Table out, core::EmptySessionsTable());
  MutexLock lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (auto state = it->second.lock()) {
      MOSAIC_RETURN_IF_ERROR(out.AppendRow(
          {Value(static_cast<int64_t>(state->id)),
           Value(static_cast<int64_t>(
               state->submitted.load(std::memory_order_relaxed)))}));
      ++it;
    } else {
      // All handles gone without CloseSession: drop lazily.
      it = sessions_.erase(it);
    }
  }
  return out;
}

QueryService::~QueryService() { Shutdown(); }

Session QueryService::OpenSession() {
  auto state = std::make_shared<Session::State>();
  state->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(sessions_mu_);
    sessions_[state->id] = state;
  }
  return Session(this, std::move(state));
}

void QueryService::CloseSession(const Session& session) {
  {
    MutexLock lock(sessions_mu_);
    sessions_.erase(session.state_->id);
  }
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);
}

Result<Table> QueryService::Execute(const std::string& sql) {
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  return Run(sql, nullptr);
}

std::future<Result<Table>> QueryService::Submit(const std::string& sql) {
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  return request_pool_.Submit([this, sql] { return Run(sql, nullptr); });
}

std::vector<std::future<Result<Table>>> QueryService::SubmitBatch(
    const std::vector<std::string>& sqls) {
  std::vector<std::future<Result<Table>>> futures;
  futures.reserve(sqls.size());
  for (const auto& sql : sqls) futures.push_back(Submit(sql));
  return futures;
}

namespace {

/// Result-cache key: canonical SQL tagged with the engine stamp. The
/// unit separator only ever appears inside quoted string literals of
/// canonicalized SQL, so the trailing stamp parses unambiguously.
/// Entries are never flushed wholesale: a write bumps
/// the catalog version and a refit bumps the sample's weight epoch,
/// so stale entries simply stop matching and age out of the LRU while
/// every unaffected entry keeps serving hits.
std::string ComposeCacheKey(const std::string& canonical,
                            const core::Database::CacheStamp& stamp) {
  return canonical + '\x1f' + "v" + std::to_string(stamp.catalog_version) +
         "w" + std::to_string(stamp.weight_epoch);
}

/// Cheap pre-parse check for EXPLAIN as the first token, so the trace
/// (and its parse span) exists before parsing. A leading comment
/// defeats it; the parser still sets the flag and the trace is then
/// created after the fact (losing only the parse span).
bool LooksLikeExplain(const std::string& sql) {
  static const char kKeyword[] = "EXPLAIN";
  size_t i = 0;
  while (i < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  for (size_t k = 0; k + 1 < sizeof(kKeyword); ++k) {
    if (i + k >= sql.size() ||
        std::toupper(static_cast<unsigned char>(sql[i + k])) !=
            kKeyword[k]) {
      return false;
    }
  }
  size_t end = i + sizeof(kKeyword) - 1;
  return end >= sql.size() ||
         !(std::isalnum(static_cast<unsigned char>(sql[end])) ||
           sql[end] == '_');
}

}  // namespace

Result<Table> QueryService::Run(const std::string& sql,
                                Session::State* session,
                                const RequestContext& ctx) {
  if (session != nullptr) {
    queries_total_.fetch_add(1, std::memory_order_relaxed);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  // EXPLAIN ANALYZE statements get a trace even when tracing is off —
  // the trace IS their result. A sampled request context forces
  // tracing the same way (remote EXPLAIN ANALYZE, client --trace).
  std::unique_ptr<trace::QueryTrace> trace;
  if (trace_enabled_ || ctx.sampled || LooksLikeExplain(sql)) {
    trace = std::make_unique<trace::QueryTrace>();
    trace->set_trace_id(ctx.trace_id);
  }

  bool is_read = false;
  bool explain = false;
  int cache_hit = -1;
  Result<Table> result =
      RunInternal(sql, trace.get(), ctx, &is_read, &explain, &cache_hit);

  const uint64_t elapsed_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  latency_all_->Record(elapsed_us);
  (is_read ? latency_read_ : latency_write_)->Record(elapsed_us);

  // The single failure-accounting point: every error path inside
  // RunInternal (parse, classification, execution) lands here exactly
  // once (tests/test_service.cc pins this down).
  if (!result.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
  }

  // Every statement — traced or not, failed or not — leaves a record
  // in the bounded query log (`system.queries`). Untraced statements
  // record wall time and status only; traced ones add the span tree
  // and resource counters.
  {
    qlog::QueryRecord record;
    record.session_id = session != nullptr ? session->id : 0;
    record.trace_id = ctx.trace_id;
    record.sql = sql;
    record.status =
        result.ok() ? "OK" : StatusCodeName(result.status().code());
    record.cache_hit = cache_hit;
    record.wall_us = elapsed_us;
    record.simd_isa = exec::simd::ActiveIsaName();
    if (trace != nullptr) {
      const trace::ResourceCounters& c = trace->counters();
      record.rows_scanned = c.rows_scanned.load(std::memory_order_relaxed);
      record.rows_produced = c.rows_produced.load(std::memory_order_relaxed);
      record.morsels = c.morsels.load(std::memory_order_relaxed);
      record.epoch_pins = c.epoch_pins.load(std::memory_order_relaxed);
      std::vector<trace::Span> spans = trace->Spans();
      record.spans.reserve(spans.size());
      for (const trace::Span& s : spans) {
        record.spans.push_back({s.id, s.parent, s.name, s.start_us,
                                s.duration_us(), s.cpu_ns, s.note});
        // The root "statement" span's thread-CPU time is the
        // statement's own CPU cost (children nest inside it; morsel
        // work on other threads is not included).
        if (s.parent == trace::kNoParent && record.cpu_ns == 0) {
          record.cpu_ns = s.cpu_ns;
        }
      }
    }
    qlog::QueryLog::Global().Append(std::move(record));
  }

  if (trace != nullptr && slow_query_us_ >= 0 &&
      elapsed_us >= static_cast<uint64_t>(slow_query_us_)) {
    elog::EventLog& events = elog::EventLog::Global();
    if (events.enabled()) {
      events.Emit(LogLevel::kWarning, "slow_query",
                  {{"sql", sql},
                   {"elapsed_ms", std::to_string(elapsed_us / 1000)},
                   {"status", result.ok() ? "OK"
                                          : StatusCodeName(
                                                result.status().code())},
                   {"spans", trace->ToString()}},
                  ctx.trace_id);
    } else {
      MOSAIC_LOG(Warning) << "slow query (" << elapsed_us / 1000 << " ms): "
                          << sql << "\n"
                          << trace->ToString();
    }
  }

  if (result.ok() && explain && trace != nullptr) {
    // All spans are closed by now (RunInternal returned), so the
    // rendered tree accounts for the full pipeline.
    return exec::TraceToTable(*trace);
  }
  return result;
}

Result<Table> QueryService::RunInternal(const std::string& sql,
                                        trace::QueryTrace* trace,
                                        const RequestContext& ctx,
                                        bool* is_read, bool* explain,
                                        int* cache_hit) {
  trace::ScopedSpan stmt_span(trace, trace::kNoParent, "statement");
  // Surface the caller's trace context on the statement span so a
  // remote EXPLAIN ANALYZE (or span collector) can stitch the
  // cross-process edge: the client sees its own trace_id come back.
  if (trace != nullptr && ctx.trace_id != 0) {
    stmt_span.Note(StrFormat("trace_id=%016llx",
                             static_cast<unsigned long long>(ctx.trace_id)));
    if (ctx.parent_span_id != 0) {
      stmt_span.Note(StrFormat(
          "parent_span=%llu",
          static_cast<unsigned long long>(ctx.parent_span_id)));
    }
  }

  // Parse once: the AST classifies the statement and is then handed
  // to the engine for execution (ExecuteParsed).
  sql::Statement stmt;
  {
    trace::ScopedSpan span(trace, stmt_span.id(), "parse");
    auto parsed = sql::ParseStatement(sql);
    if (!parsed.ok()) return parsed.status();
    stmt = std::move(parsed).value();
  }
  *explain = stmt.Is<sql::SelectStmt>() &&
             stmt.As<sql::SelectStmt>().explain_analyze;

  // §7 "Multiple Samples" mode rebuilds the union scratch sample
  // lazily inside SELECT, so reads stop being read-only.
  bool treat_as_read = ClassifyStatement(stmt) == StatementClass::kRead &&
                       !db_.union_samples();

  if (treat_as_read) {
    *is_read = true;
    reads_.fetch_add(1, std::memory_order_relaxed);
    std::string canonical;
    {
      trace::ScopedSpan span(trace, stmt_span.id(), "canonicalize");
      if (auto canon = CanonicalizeSql(sql); canon.ok()) {
        canonical = std::move(*canon);
      }
    }
    ReaderLock read_lock(catalog_mu_, std::defer_lock);
    {
      trace::ScopedSpan span(trace, stmt_span.id(), "lock_wait");
      read_lock.Lock();
    }
    // Stamped lookup under the shared lock: the stamp pins which
    // catalog version and weight epoch the entry must have been
    // computed under. EXPLAIN ANALYZE never consults the cache — its
    // answer is this execution's timings (StampFor also reports it
    // uncacheable).
    core::Database::CacheStamp stamp;
    if (!canonical.empty() && !*explain) {
      trace::ScopedSpan span(trace, stmt_span.id(), "cache_lookup");
      stamp = db_.StampFor(stmt);
      if (stamp.cacheable) {
        if (auto cached = result_cache_.Get(ComposeCacheKey(canonical,
                                                            stamp))) {
          span.Note("hit");
          *cache_hit = 1;
          trace::NoteCacheHit(trace, true);
          return Table(**cached);
        }
        span.Note("miss");
        *cache_hit = 0;
        trace::NoteCacheHit(trace, false);
      }
    }
    Result<Table> result = [&]() -> Result<Table> {
      trace::ScopedSpan span(trace, stmt_span.id(), "execute");
      return db_.ExecuteParsed(&stmt, trace, span.id());
    }();
    if (!result.ok()) return result;
    if (stamp.cacheable) {
      trace::ScopedSpan span(trace, stmt_span.id(), "cache_store");
      // Keyed under the lookup stamp, never a re-read one: an entry
      // can only be hit by statements that stamped the same (catalog
      // version, epoch), i.e. that raced the same publications this
      // execution did, and for those the pinned answer is a
      // linearizable outcome. Re-stamping after execution could
      // attribute the answer to an epoch published concurrently by an
      // unrelated refit, serving it to strictly-later statements that
      // would compute something else. The one cost: a SEMI-OPEN
      // statement caches under its pre-refit epoch, so its first
      // re-run at the post-refit epoch misses — but that re-run's
      // refit no-op-skips (fit signatures, core/database.cc) and its
      // Put then lands on the settled epoch, where every further
      // repeat hits.
      result_cache_.Put(ComposeCacheKey(canonical, stamp),
                        std::make_shared<const Table>(result.value()));
    }
    return result;
  }

  writes_.fetch_add(1, std::memory_order_relaxed);
  WriterLock write_lock(catalog_mu_, std::defer_lock);
  {
    trace::ScopedSpan span(trace, stmt_span.id(), "lock_wait");
    write_lock.Lock();
  }
  Result<Table> result = [&]() -> Result<Table> {
    trace::ScopedSpan span(trace, stmt_span.id(), "execute");
    return db_.ExecuteParsed(&stmt, trace, span.id());
  }();
  // No cache flush: the write bumped the catalog version (or
  // published a weight epoch), so every entry it could have staled is
  // now unreachable by key. Unrelated entries keep their hits.
  return result;
}

void QueryService::InvalidateCaches() {
  result_cache_.Clear();
  db_.InvalidateModelCache();
}

Status QueryService::TriggerSnapshot() {
  if (storage_engine_ == nullptr) {
    return Status::InvalidArgument("service has no data dir");
  }
  if (!durability_status_.ok()) return durability_status_;
  durable::StorageEngine::PendingSnapshot pending;
  {
    // Writers excluded: the captured image is a statement boundary.
    WriterLock lock(catalog_mu_);
    auto begun = CaptureSnapshotLocked();
    if (!begun.ok()) return begun.status();
    pending = std::move(*begun);
  }
  return storage_engine_->CommitSnapshot(std::move(pending));
}

Result<durable::StorageEngine::PendingSnapshot>
QueryService::CaptureSnapshotLocked() {
  return storage_engine_->BeginSnapshot(&db_);
}

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  s.queries_total = queries_total_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  s.reads = reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  s.result_cache = result_cache_.Stats();
  s.model_cache = db_.ModelCacheStats();
  core::Database::WeightCounters w = db_.WeightCountersSnapshot();
  s.weight_epochs_published = w.epochs_published;
  s.weight_refits_total = w.refits_total;
  s.weight_refits_skipped = w.refits_skipped;
  s.weight_refits_incremental = w.refits_incremental;
  return s;
}

void QueryService::Shutdown() {
  // Request tasks may block on generation futures, so the request
  // pool drains first while generation is still serving it.
  request_pool_.Shutdown();
  if (generation_pool_ != nullptr) generation_pool_->Shutdown();
}

}  // namespace service
}  // namespace mosaic
