#include "service/query_service.h"

#include <utility>

#include "sql/parser.h"

namespace mosaic {
namespace service {

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Result<Table> Session::Execute(const std::string& sql) {
  state_->submitted.fetch_add(1, std::memory_order_relaxed);
  return service_->Run(sql, state_.get());
}

std::future<Result<Table>> Session::Submit(const std::string& sql) {
  state_->submitted.fetch_add(1, std::memory_order_relaxed);
  QueryService* service = service_;
  auto state = state_;
  return service->request_pool_.Submit(
      [service, state, sql] { return service->Run(sql, state.get()); });
}

void Session::SubmitAsync(std::string sql,
                          std::function<void(Result<Table>)> done) {
  state_->submitted.fetch_add(1, std::memory_order_relaxed);
  QueryService* service = service_;
  auto state = state_;
  service->request_pool_.Submit(
      [service, state, sql = std::move(sql), done = std::move(done)] {
        done(service->Run(sql, state.get()));
      });
}

std::vector<std::future<Result<Table>>> Session::SubmitBatch(
    const std::vector<std::string>& sqls) {
  std::vector<std::future<Result<Table>>> futures;
  futures.reserve(sqls.size());
  for (const auto& sql : sqls) futures.push_back(Submit(sql));
  return futures;
}

uint64_t Session::id() const { return state_->id; }

uint64_t Session::queries_submitted() const {
  return state_->submitted.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

QueryService::QueryService(ServiceOptions options)
    : options_(options),
      request_pool_(options.num_request_threads),
      result_cache_(options.result_cache_capacity) {
  db_.set_model_cache_capacity(options.model_cache_capacity);
  if (options.force_row_exec) db_.set_force_row_exec(true);
  // Intra-query morsels share the request pool (deadlock-free by the
  // morsel driver's claim-loop design). The engine may already have a
  // morsel size from MOSAIC_MORSELS; explicit options override it.
  if (options.morsel_size > 0) {
    db_.set_morsel_options(options.morsel_size, options.morsel_parallelism);
  } else if (options.morsel_parallelism > 0) {
    db_.set_morsel_options(db_.morsel_size(), options.morsel_parallelism);
  }
  db_.set_morsel_pool(&request_pool_);
  if (options.num_generation_threads > 0) {
    generation_pool_ =
        std::make_unique<ThreadPool>(options.num_generation_threads);
    db_.set_generation_pool(generation_pool_.get());
  }
}

QueryService::~QueryService() { Shutdown(); }

Session QueryService::OpenSession() {
  auto state = std::make_shared<Session::State>();
  state->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return Session(this, std::move(state));
}

void QueryService::CloseSession(const Session& session) {
  (void)session;
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);
}

Result<Table> QueryService::Execute(const std::string& sql) {
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  return Run(sql, nullptr);
}

std::future<Result<Table>> QueryService::Submit(const std::string& sql) {
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  return request_pool_.Submit([this, sql] { return Run(sql, nullptr); });
}

std::vector<std::future<Result<Table>>> QueryService::SubmitBatch(
    const std::vector<std::string>& sqls) {
  std::vector<std::future<Result<Table>>> futures;
  futures.reserve(sqls.size());
  for (const auto& sql : sqls) futures.push_back(Submit(sql));
  return futures;
}

Result<Table> QueryService::Run(const std::string& sql,
                                Session::State* session) {
  if (session != nullptr) {
    queries_total_.fetch_add(1, std::memory_order_relaxed);
  }
  auto fail = [this](Status status) -> Result<Table> {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return status;
  };

  // Parse once: the AST classifies the statement and is then handed
  // to the engine for execution (ExecuteParsed).
  auto parsed = sql::ParseStatement(sql);
  if (!parsed.ok()) return fail(parsed.status());
  sql::Statement stmt = std::move(parsed).value();

  // §7 "Multiple Samples" mode rebuilds the union scratch sample
  // lazily inside SELECT, so reads stop being read-only.
  bool treat_as_read = ClassifyStatement(stmt) == StatementClass::kRead &&
                       !db_.union_samples();

  if (treat_as_read) {
    reads_.fetch_add(1, std::memory_order_relaxed);
    std::string key;
    if (auto canon = CanonicalizeSql(sql); canon.ok()) {
      key = std::move(*canon);
      if (auto cached = result_cache_.Get(key)) {
        return Table(**cached);
      }
    }
    std::shared_lock<std::shared_mutex> read_lock(catalog_mu_);
    Result<Table> result = db_.ExecuteParsed(&stmt);
    if (!result.ok()) return fail(result.status());
    if (!key.empty()) {
      result_cache_.Put(key,
                        std::make_shared<const Table>(result.value()));
    }
    return result;
  }

  writes_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> write_lock(catalog_mu_);
  Result<Table> result = db_.ExecuteParsed(&stmt);
  // Catalog state may have changed; cached results are stale.
  result_cache_.Clear();
  if (!result.ok()) return fail(result.status());
  return result;
}

void QueryService::InvalidateCaches() {
  result_cache_.Clear();
  db_.InvalidateModelCache();
}

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  s.queries_total = queries_total_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  s.reads = reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  s.result_cache = result_cache_.Stats();
  s.model_cache = db_.ModelCacheStats();
  return s;
}

void QueryService::Shutdown() {
  // Request tasks may block on generation futures, so the request
  // pool drains first while generation is still serving it.
  request_pool_.Shutdown();
  if (generation_pool_ != nullptr) generation_pool_->Shutdown();
}

}  // namespace service
}  // namespace mosaic
