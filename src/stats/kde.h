// Weighted mixed-data kernel density estimator, the nonparametric
// alternative the paper's §7 ("Open World Density Estimation") asks
// about: "it is an open question whether alternative density
// estimation techniques, like nonparametric kernel density estimation
// [31], will be more accurate or efficient."
//
// The estimator follows Li & Racine's mixed-data construction [31] in
// sampling form: a generated tuple picks a seed row with probability
// proportional to its weight, then perturbs each numeric attribute
// with a Gaussian kernel (per-attribute Silverman bandwidth) and
// resamples each categorical attribute with an Aitchison–Aitken-style
// kernel (keep with probability 1-λ_c, else uniform over the domain).
#ifndef MOSAIC_STATS_KDE_H_
#define MOSAIC_STATS_KDE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"

namespace mosaic {
namespace stats {

struct KdeOptions {
  /// Multiplier on the Silverman rule-of-thumb bandwidth
  /// h = 1.06 σ n^{-1/5} for numeric attributes.
  double bandwidth_scale = 1.0;
  /// Categorical kernel smoothing: probability of replacing a seed
  /// tuple's categorical value with a uniform draw from the domain.
  double categorical_lambda = 0.02;
};

/// Weighted mixed-data KDE over a table; Sample() draws synthetic
/// tuples from the smoothed distribution.
class MixedKde {
 public:
  /// Fit to (weighted) data; weights must be non-negative with
  /// positive total. Numeric bandwidths use the weighted standard
  /// deviation.
  [[nodiscard]] static Result<MixedKde> Fit(const Table& data,
                              const std::vector<double>& weights,
                              const KdeOptions& options = {});

  /// Draw n tuples with the source schema. Integer attributes are
  /// rounded after perturbation.
  [[nodiscard]] Result<Table> Sample(size_t n, Rng* rng) const;

  /// Per-numeric-attribute bandwidths (diagnostics / tests).
  const std::vector<double>& bandwidths() const { return bandwidths_; }

 private:
  Table data_;
  std::vector<double> cumulative_weights_;
  std::vector<double> bandwidths_;  ///< 0 for categorical columns
  KdeOptions options_;
};

}  // namespace stats
}  // namespace mosaic

#endif  // MOSAIC_STATS_KDE_H_
