#include "stats/bayes_net.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

#include "common/string_util.h"

namespace mosaic {
namespace stats {

namespace {

/// Binning for one table column: categorical for strings/ints/bools,
/// equi-width for doubles.
[[nodiscard]] Result<AttributeBinning> BinningForColumn(const Table& data, size_t col,
                                          size_t continuous_bins) {
  const Column& c = data.column(col);
  const std::string& name = data.schema().column(col).name;
  if (c.type() == DataType::kDouble) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < c.size(); ++r) {
      double x = *c.GetDouble(r);
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (hi <= lo) hi = lo + 1.0;
    return AttributeBinning::Continuous(name, lo, hi, continuous_bins);
  }
  std::set<Value> distinct;
  for (size_t r = 0; r < c.size(); ++r) distinct.insert(c.GetValue(r));
  if (distinct.empty()) {
    return Status::InvalidArgument("empty column '" + name + "'");
  }
  return AttributeBinning::Categorical(
      name, std::vector<Value>(distinct.begin(), distinct.end()));
}

}  // namespace

Result<ChowLiuTree> ChowLiuTree::Fit(const Table& data,
                                     const std::string& weight_column,
                                     const BayesNetOptions& options) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit BN to empty data");
  }
  // Nodes = all columns except the weight column.
  std::vector<size_t> node_cols;
  std::optional<size_t> weight_idx;
  for (size_t c = 0; c < data.num_columns(); ++c) {
    if (!weight_column.empty() &&
        EqualsIgnoreCase(data.schema().column(c).name, weight_column)) {
      weight_idx = c;
      continue;
    }
    node_cols.push_back(c);
  }
  if (node_cols.size() < 1) {
    return Status::InvalidArgument("BN needs at least one attribute");
  }

  ChowLiuTree tree;
  tree.nodes_.resize(node_cols.size());
  for (size_t i = 0; i < node_cols.size(); ++i) {
    MOSAIC_ASSIGN_OR_RETURN(
        tree.nodes_[i].binning,
        BinningForColumn(data, node_cols[i], options.continuous_bins));
    tree.nodes_[i].original_type =
        data.schema().column(node_cols[i]).type;
  }

  // Discretize all rows once.
  size_t n = data.num_rows();
  size_t d = node_cols.size();
  std::vector<std::vector<size_t>> bins(d, std::vector<size_t>(n));
  for (size_t i = 0; i < d; ++i) {
    const Column& col = data.column(node_cols[i]);
    for (size_t r = 0; r < n; ++r) {
      MOSAIC_ASSIGN_OR_RETURN(bins[i][r],
                              tree.nodes_[i].binning.BinOf(col.GetValue(r)));
    }
  }
  std::vector<double> w(n, 1.0);
  if (weight_idx) {
    const Column& wc = data.column(*weight_idx);
    for (size_t r = 0; r < n; ++r) {
      MOSAIC_ASSIGN_OR_RETURN(w[r], wc.GetDouble(r));
    }
  }

  // Pairwise mutual information.
  auto mutual_information = [&](size_t a, size_t b) {
    size_t ka = tree.nodes_[a].binning.num_bins();
    size_t kb = tree.nodes_[b].binning.num_bins();
    std::vector<double> joint(ka * kb, options.smoothing);
    std::vector<double> pa(ka, 0.0), pb(kb, 0.0);
    double total = options.smoothing * static_cast<double>(ka * kb);
    for (size_t r = 0; r < n; ++r) {
      joint[bins[a][r] * kb + bins[b][r]] += w[r];
      total += w[r];
    }
    for (size_t i = 0; i < ka; ++i) {
      for (size_t j = 0; j < kb; ++j) {
        joint[i * kb + j] /= total;
        pa[i] += joint[i * kb + j];
        pb[j] += joint[i * kb + j];
      }
    }
    double mi = 0.0;
    for (size_t i = 0; i < ka; ++i) {
      for (size_t j = 0; j < kb; ++j) {
        double p = joint[i * kb + j];
        if (p > 0.0 && pa[i] > 0.0 && pb[j] > 0.0) {
          mi += p * std::log(p / (pa[i] * pb[j]));
        }
      }
    }
    return mi;
  };

  // Prim's maximum spanning tree over MI; node 0 is the root.
  std::vector<bool> in_tree(d, false);
  std::vector<double> best_mi(d, -1.0);
  std::vector<int> best_parent(d, -1);
  in_tree[0] = true;
  for (size_t i = 1; i < d; ++i) {
    best_mi[i] = mutual_information(0, i);
    best_parent[i] = 0;
  }
  for (size_t added = 1; added < d; ++added) {
    int pick = -1;
    double pick_mi = -1.0;
    for (size_t i = 0; i < d; ++i) {
      if (!in_tree[i] && best_mi[i] > pick_mi) {
        pick = static_cast<int>(i);
        pick_mi = best_mi[i];
      }
    }
    assert(pick >= 0);
    in_tree[static_cast<size_t>(pick)] = true;
    tree.nodes_[static_cast<size_t>(pick)].parent = best_parent[pick];
    for (size_t i = 0; i < d; ++i) {
      if (!in_tree[i]) {
        double mi = mutual_information(static_cast<size_t>(pick), i);
        if (mi > best_mi[i]) {
          best_mi[i] = mi;
          best_parent[i] = pick;
        }
      }
    }
  }

  // Topological order (parents first) by BFS from the root.
  tree.topo_order_.clear();
  std::queue<size_t> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    size_t v = frontier.front();
    frontier.pop();
    tree.topo_order_.push_back(v);
    for (size_t i = 0; i < d; ++i) {
      if (tree.nodes_[i].parent == static_cast<int>(v)) frontier.push(i);
    }
  }

  // CPTs with Laplace smoothing.
  for (size_t i = 0; i < d; ++i) {
    Node& node = tree.nodes_[i];
    size_t k = node.binning.num_bins();
    node.parent_bins =
        node.parent < 0
            ? 1
            : tree.nodes_[static_cast<size_t>(node.parent)].binning.num_bins();
    node.cpt.assign(node.parent_bins * k, options.smoothing);
    for (size_t r = 0; r < n; ++r) {
      size_t pb = node.parent < 0
                      ? 0
                      : bins[static_cast<size_t>(node.parent)][r];
      node.cpt[pb * k + bins[i][r]] += w[r];
    }
    for (size_t pb = 0; pb < node.parent_bins; ++pb) {
      double row_total = 0.0;
      for (size_t b = 0; b < k; ++b) row_total += node.cpt[pb * k + b];
      for (size_t b = 0; b < k; ++b) node.cpt[pb * k + b] /= row_total;
    }
  }
  return tree;
}

const std::string& ChowLiuTree::attribute(size_t node) const {
  return nodes_[node].binning.attr();
}

const AttributeBinning& ChowLiuTree::binning(size_t node) const {
  return nodes_[node].binning;
}

Result<size_t> ChowLiuTree::NodeIndex(const std::string& attr) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (EqualsIgnoreCase(nodes_[i].binning.attr(), attr)) return i;
  }
  return Status::NotFound("no BN node for attribute '" + attr + "'");
}

double ChowLiuTree::Probability(const std::vector<size_t>& bins) const {
  assert(bins.size() == nodes_.size());
  double p = 1.0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    size_t pb = nodes_[i].parent < 0
                    ? 0
                    : bins[static_cast<size_t>(nodes_[i].parent)];
    p *= CptEntry(nodes_[i], pb, bins[i]);
  }
  return p;
}

Result<double> ChowLiuTree::MarginalProbability(
    const std::vector<std::vector<size_t>>& allowed_bins) const {
  if (allowed_bins.size() != nodes_.size()) {
    return Status::InvalidArgument(
        "allowed_bins must have one entry per node");
  }
  // Upward (child -> parent) message passing in reverse topo order.
  // message[v][pb] = sum over allowed bins b of v of
  //     p(b | pb) * prod_{c child of v} message[c][b]
  std::vector<std::vector<double>> messages(nodes_.size());
  for (size_t idx = topo_order_.size(); idx-- > 0;) {
    size_t v = topo_order_[idx];
    const Node& node = nodes_[v];
    size_t k = node.binning.num_bins();
    // Children messages indexed by this node's bin.
    std::vector<double> child_prod(k, 1.0);
    for (size_t c = 0; c < nodes_.size(); ++c) {
      if (nodes_[c].parent == static_cast<int>(v)) {
        for (size_t b = 0; b < k; ++b) child_prod[b] *= messages[c][b];
      }
    }
    const std::vector<size_t>& allowed = allowed_bins[v];
    auto bin_allowed = [&](size_t b) {
      return allowed.empty() ||
             std::find(allowed.begin(), allowed.end(), b) != allowed.end();
    };
    std::vector<double> msg(node.parent_bins, 0.0);
    for (size_t pb = 0; pb < node.parent_bins; ++pb) {
      double acc = 0.0;
      for (size_t b = 0; b < k; ++b) {
        if (!bin_allowed(b)) continue;
        acc += CptEntry(node, pb, b) * child_prod[b];
      }
      msg[pb] = acc;
    }
    messages[v] = std::move(msg);
  }
  // Root message has parent_bins == 1.
  return messages[topo_order_[0]][0];
}

Result<double> ChowLiuTree::EstimateCount(
    const std::vector<std::vector<size_t>>& allowed_bins,
    double population_size) const {
  MOSAIC_ASSIGN_OR_RETURN(double p, MarginalProbability(allowed_bins));
  return p * population_size;
}

Result<Table> ChowLiuTree::SampleRows(size_t n, Rng* rng) const {
  Schema schema;
  for (const auto& node : nodes_) {
    MOSAIC_RETURN_IF_ERROR(schema.AddColumn(
        ColumnDef{node.binning.attr(), node.original_type}));
  }
  Table out(schema);
  out.Reserve(n);
  std::vector<size_t> bins(nodes_.size());
  std::vector<Value> row(nodes_.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t v : topo_order_) {
      const Node& node = nodes_[v];
      size_t k = node.binning.num_bins();
      size_t pb =
          node.parent < 0 ? 0 : bins[static_cast<size_t>(node.parent)];
      std::vector<double> probs(k);
      for (size_t b = 0; b < k; ++b) probs[b] = CptEntry(node, pb, b);
      bins[v] = rng->Categorical(probs);
      if (node.binning.is_categorical()) {
        row[v] = node.binning.BinRepresentative(bins[v]);
      } else {
        double x = rng->Uniform(node.binning.BinLo(bins[v]),
                                node.binning.BinHi(bins[v]));
        row[v] = Value(x);
      }
    }
    MOSAIC_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace stats
}  // namespace mosaic
