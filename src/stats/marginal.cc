#include "stats/marginal.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <set>

#include "common/string_util.h"

namespace mosaic {
namespace stats {

// ---------------------------------------------------------------------------
// AttributeBinning
// ---------------------------------------------------------------------------

AttributeBinning AttributeBinning::Categorical(std::string attr,
                                               std::vector<Value> categories) {
  AttributeBinning b;
  b.attr_ = std::move(attr);
  b.categorical_ = true;
  b.categories_ = std::move(categories);
  for (size_t i = 0; i < b.categories_.size(); ++i) {
    b.category_index_.emplace(b.categories_[i], i);
  }
  return b;
}

AttributeBinning AttributeBinning::Continuous(std::string attr, double lo,
                                              double hi, size_t num_bins) {
  assert(hi > lo && num_bins >= 1);
  AttributeBinning b;
  b.attr_ = std::move(attr);
  b.categorical_ = false;
  b.lo_ = lo;
  b.hi_ = hi;
  b.num_continuous_bins_ = num_bins;
  b.width_ = (hi - lo) / static_cast<double>(num_bins);
  return b;
}

size_t AttributeBinning::num_bins() const {
  return categorical_ ? categories_.size() : num_continuous_bins_;
}

Result<size_t> AttributeBinning::BinOf(const Value& v) const {
  if (categorical_) {
    auto it = category_index_.find(v);
    if (it == category_index_.end()) {
      // Numeric categories may arrive as a different numeric type
      // (int64 vs double); Value::operator< treats numerics
      // uniformly, so the map lookup above already handles that.
      return Status::NotFound("value " + v.ToString() +
                              " not in marginal support of '" + attr_ + "'");
    }
    return it->second;
  }
  MOSAIC_ASSIGN_OR_RETURN(double x, v.ToDouble());
  if (x <= lo_) return size_t{0};
  if (x >= hi_) return num_continuous_bins_ - 1;
  size_t bin = static_cast<size_t>((x - lo_) / width_);
  return std::min(bin, num_continuous_bins_ - 1);
}

Value AttributeBinning::BinRepresentative(size_t bin) const {
  if (categorical_) return categories_[bin];
  return Value(lo_ + (static_cast<double>(bin) + 0.5) * width_);
}

double AttributeBinning::BinLo(size_t bin) const {
  assert(!categorical_);
  return lo_ + static_cast<double>(bin) * width_;
}

double AttributeBinning::BinHi(size_t bin) const {
  assert(!categorical_);
  return lo_ + static_cast<double>(bin + 1) * width_;
}

// ---------------------------------------------------------------------------
// Marginal
// ---------------------------------------------------------------------------

Result<Marginal> Marginal::FromCounts(std::vector<AttributeBinning> attrs,
                                      std::vector<double> counts) {
  if (attrs.empty() || attrs.size() > 2) {
    return Status::InvalidArgument(
        "marginals must have 1 or 2 attributes (got " +
        std::to_string(attrs.size()) + ")");
  }
  size_t cells = 1;
  for (const auto& a : attrs) {
    if (a.num_bins() == 0) {
      return Status::InvalidArgument("attribute '" + a.attr() +
                                     "' has zero bins");
    }
    cells *= a.num_bins();
  }
  if (counts.size() != cells) {
    return Status::InvalidArgument(
        StrFormat("marginal needs %zu counts, got %zu", cells,
                  counts.size()));
  }
  double total = 0.0;
  for (double c : counts) {
    if (c < 0.0 || !std::isfinite(c)) {
      return Status::InvalidArgument("marginal counts must be >= 0");
    }
    total += c;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("marginal has zero total mass");
  }
  Marginal m;
  m.attrs_ = std::move(attrs);
  m.counts_ = std::move(counts);
  m.total_ = total;
  return m;
}

Result<Marginal> Marginal::FromMetadataTable(const Table& table) {
  size_t ncols = table.num_columns();
  if (ncols != 2 && ncols != 3) {
    return Status::InvalidArgument(
        "metadata relation must be (attr, count) or (attr, attr, count); "
        "got " +
        std::to_string(ncols) + " columns");
  }
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("metadata relation is empty");
  }
  size_t count_col = ncols - 1;
  DataType ct = table.schema().column(count_col).type;
  if (ct != DataType::kInt64 && ct != DataType::kDouble) {
    return Status::TypeError("metadata count column '" +
                             table.schema().column(count_col).name +
                             "' must be numeric");
  }
  // Distinct values per attribute column, in sorted order for
  // determinism.
  std::vector<AttributeBinning> attrs;
  std::vector<std::map<Value, size_t>> value_bins(count_col);
  for (size_t c = 0; c < count_col; ++c) {
    std::set<Value> distinct;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      distinct.insert(table.GetValue(r, c));
    }
    std::vector<Value> cats(distinct.begin(), distinct.end());
    attrs.push_back(AttributeBinning::Categorical(
        table.schema().column(c).name, std::move(cats)));
  }
  size_t cells = 1;
  for (const auto& a : attrs) cells *= a.num_bins();
  std::vector<double> counts(cells, 0.0);
  Marginal probe;
  probe.attrs_ = attrs;  // for CellIndex arithmetic
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<size_t> bins(count_col);
    for (size_t c = 0; c < count_col; ++c) {
      MOSAIC_ASSIGN_OR_RETURN(bins[c], attrs[c].BinOf(table.GetValue(r, c)));
    }
    MOSAIC_ASSIGN_OR_RETURN(double cnt,
                            table.GetValue(r, count_col).ToDouble());
    counts[probe.CellIndex(bins)] += cnt;
  }
  return FromCounts(std::move(attrs), std::move(counts));
}

Result<Marginal> Marginal::FromData(const Table& data,
                                    const std::vector<std::string>& attr_names,
                                    size_t continuous_bins,
                                    const std::string& weight_column,
                                    size_t max_int_categories) {
  if (attr_names.empty() || attr_names.size() > 2) {
    return Status::InvalidArgument("marginals must have 1 or 2 attributes");
  }
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot build marginal from empty data");
  }
  std::vector<AttributeBinning> attrs;
  std::vector<size_t> col_idx;
  for (const auto& name : attr_names) {
    MOSAIC_ASSIGN_OR_RETURN(size_t idx, data.schema().ColumnIndex(name));
    col_idx.push_back(idx);
    const Column& col = data.column(idx);
    bool continuous = col.type() == DataType::kDouble;
    std::set<Value> distinct;
    if (!continuous) {
      for (size_t r = 0; r < col.size(); ++r) {
        distinct.insert(col.GetValue(r));
      }
      if (col.type() == DataType::kInt64 &&
          distinct.size() > max_int_categories) {
        continuous = true;
      }
    }
    if (continuous) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < col.size(); ++r) {
        double x = *col.GetDouble(r);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      if (hi <= lo) hi = lo + 1.0;  // degenerate constant column
      attrs.push_back(AttributeBinning::Continuous(name, lo, hi,
                                                   continuous_bins));
    } else {
      attrs.push_back(AttributeBinning::Categorical(
          name, std::vector<Value>(distinct.begin(), distinct.end())));
    }
  }
  const Column* wcol = nullptr;
  if (!weight_column.empty()) {
    MOSAIC_ASSIGN_OR_RETURN(wcol, data.ColumnByName(weight_column));
  }
  size_t cells = 1;
  for (const auto& a : attrs) cells *= a.num_bins();
  std::vector<double> counts(cells, 0.0);
  Marginal probe;
  probe.attrs_ = attrs;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    std::vector<size_t> bins(attrs.size());
    for (size_t a = 0; a < attrs.size(); ++a) {
      MOSAIC_ASSIGN_OR_RETURN(
          bins[a], attrs[a].BinOf(data.GetValue(r, col_idx[a])));
    }
    double w = 1.0;
    if (wcol != nullptr) {
      MOSAIC_ASSIGN_OR_RETURN(w, wcol->GetDouble(r));
    }
    counts[probe.CellIndex(bins)] += w;
  }
  return FromCounts(std::move(attrs), std::move(counts));
}

const std::vector<std::string> Marginal::attribute_names() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const auto& a : attrs_) out.push_back(a.attr());
  return out;
}

size_t Marginal::NumCells() const { return counts_.size(); }

size_t Marginal::CellIndex(const std::vector<size_t>& bins) const {
  assert(bins.size() == attrs_.size());
  size_t cell = 0;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    cell = cell * attrs_[i].num_bins() + bins[i];
  }
  return cell;
}

std::vector<size_t> Marginal::CellCoords(size_t cell) const {
  std::vector<size_t> bins(attrs_.size());
  for (size_t i = attrs_.size(); i-- > 0;) {
    bins[i] = cell % attrs_[i].num_bins();
    cell /= attrs_[i].num_bins();
  }
  return bins;
}

Result<size_t> Marginal::CellOfRow(const Table& table, size_t row) const {
  std::vector<size_t> bins(attrs_.size());
  for (size_t a = 0; a < attrs_.size(); ++a) {
    MOSAIC_ASSIGN_OR_RETURN(size_t col,
                            table.schema().ColumnIndex(attrs_[a].attr()));
    MOSAIC_ASSIGN_OR_RETURN(bins[a],
                            attrs_[a].BinOf(table.GetValue(row, col)));
  }
  return CellIndex(bins);
}

Result<std::vector<int64_t>> Marginal::CellIds(const Table& table) const {
  std::vector<size_t> cols(attrs_.size());
  for (size_t a = 0; a < attrs_.size(); ++a) {
    MOSAIC_ASSIGN_OR_RETURN(cols[a],
                            table.schema().ColumnIndex(attrs_[a].attr()));
  }
  std::vector<int64_t> cells(table.num_rows(), -1);
  std::vector<size_t> bins(attrs_.size());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool in_support = true;
    for (size_t a = 0; a < attrs_.size(); ++a) {
      auto bin = attrs_[a].BinOf(table.GetValue(r, cols[a]));
      if (!bin.ok()) {
        in_support = false;
        break;
      }
      bins[a] = *bin;
    }
    if (in_support) cells[r] = static_cast<int64_t>(CellIndex(bins));
  }
  return cells;
}

std::vector<size_t> Marginal::SampleCells(size_t n, Rng* rng) const {
  // Inverse-CDF sampling over the flattened counts.
  std::vector<double> cdf(counts_.size());
  double acc = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    cdf[i] = acc;
  }
  std::vector<size_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double target = rng->Uniform() * acc;
    size_t cell = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), target) - cdf.begin());
    out.push_back(std::min(cell, counts_.size() - 1));
  }
  return out;
}

Result<double> Marginal::L1Error(const Table& table,
                                 const std::vector<double>& weights) const {
  if (weights.size() != table.num_rows()) {
    return Status::InvalidArgument("weights size mismatch");
  }
  MOSAIC_ASSIGN_OR_RETURN(auto cells, CellIds(table));
  std::vector<double> observed(NumCells(), 0.0);
  double observed_total = 0.0;
  double out_of_support = 0.0;
  for (size_t r = 0; r < cells.size(); ++r) {
    if (cells[r] >= 0) {
      observed[static_cast<size_t>(cells[r])] += weights[r];
    } else {
      out_of_support += weights[r];
    }
    observed_total += weights[r];
  }
  if (observed_total <= 0.0) return 1.0;
  double err = 0.0;
  for (size_t c = 0; c < NumCells(); ++c) {
    err += std::fabs(counts_[c] / total_ - observed[c] / observed_total);
  }
  err += out_of_support / observed_total;
  return err;
}

std::string Marginal::ToString(size_t max_cells) const {
  std::string out = "Marginal(";
  out += Join(attribute_names(), ", ");
  out += StrFormat("; %zu cells, total=%s)", NumCells(),
                   FormatDouble(total_).c_str());
  size_t n = std::min(max_cells, NumCells());
  for (size_t c = 0; c < n; ++c) {
    auto coords = CellCoords(c);
    out += "\n  ";
    for (size_t a = 0; a < attrs_.size(); ++a) {
      if (a > 0) out += " x ";
      out += attrs_[a].BinRepresentative(coords[a]).ToString();
    }
    out += " -> " + FormatDouble(counts_[c]);
  }
  if (NumCells() > n) out += "\n  ...";
  return out;
}

}  // namespace stats
}  // namespace mosaic
