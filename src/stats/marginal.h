// Marginals: the population metadata Mosaic debiases against (§3.2).
//
// A Marginal is a 1- or 2-dimensional histogram of ground-truth
// population counts — "commonly released by corporations or
// governments ... e.g., Data.Gov yearly reports". Attributes are
// binned either *categorically* (one bin per distinct value — used for
// string attributes and for integer attributes, matching the paper's
// flights setup where "the marginals are just projections of the
// population data") or *continuously* (equi-width bins — used for
// real-valued attributes like the synthetic spiral).
#ifndef MOSAIC_STATS_MARGINAL_H_
#define MOSAIC_STATS_MARGINAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"

namespace mosaic {
namespace stats {

/// How one attribute of a marginal is discretized.
class AttributeBinning {
 public:
  /// One bin per category value (string or integer attributes).
  static AttributeBinning Categorical(std::string attr,
                                      std::vector<Value> categories);

  /// Equi-width bins over [lo, hi] (real-valued attributes).
  static AttributeBinning Continuous(std::string attr, double lo, double hi,
                                     size_t num_bins);

  const std::string& attr() const { return attr_; }
  bool is_categorical() const { return categorical_; }
  size_t num_bins() const;

  /// Bin index of a value. Continuous values clamp into the edge
  /// bins; unseen categorical values return NotFound (they are
  /// outside the marginal's support).
  [[nodiscard]] Result<size_t> BinOf(const Value& v) const;

  /// Representative value of a bin: the category, or the bin center.
  Value BinRepresentative(size_t bin) const;

  /// Continuous bin bounds (requires !is_categorical()).
  double BinLo(size_t bin) const;
  double BinHi(size_t bin) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  const std::vector<Value>& categories() const { return categories_; }

 private:
  std::string attr_;
  bool categorical_ = true;
  std::vector<Value> categories_;
  std::map<Value, size_t> category_index_;
  double lo_ = 0.0, hi_ = 1.0, width_ = 1.0;
  size_t num_continuous_bins_ = 0;
};

/// A 1- or 2-dimensional marginal: attribute binnings plus a
/// flattened, row-major count tensor.
class Marginal {
 public:
  /// From explicit binnings and counts (counts.size() must equal the
  /// product of bin counts; all counts must be >= 0).
  [[nodiscard]] static Result<Marginal> FromCounts(std::vector<AttributeBinning> attrs,
                                     std::vector<double> counts);

  /// From a metadata relation shaped like the paper's
  /// `CREATE METADATA ... AS (SELECT A[, B], COUNT(*) ... GROUP BY ...)`
  /// output: 1 or 2 attribute columns followed by one numeric count
  /// column. String/int attribute columns get categorical bins over
  /// their distinct values.
  [[nodiscard]] static Result<Marginal> FromMetadataTable(const Table& table);

  /// Ground-truth construction from raw data (used by benches for the
  /// true population and for adding sample marginals over uncovered
  /// attributes, §5.2). String columns -> categorical bins; double
  /// columns -> `continuous_bins` equi-width bins over the data range;
  /// integer columns -> value-level categorical bins (the paper's
  /// flights setting: "the marginals are just projections"), unless
  /// they have more than `max_int_categories` distinct values, in
  /// which case they fall back to equi-width bins. `weight_column`
  /// optionally weights rows.
  [[nodiscard]] static Result<Marginal> FromData(
      const Table& data, const std::vector<std::string>& attrs,
      size_t continuous_bins = 50, const std::string& weight_column = "",
      size_t max_int_categories = static_cast<size_t>(-1));

  size_t arity() const { return attrs_.size(); }
  const AttributeBinning& binning(size_t i) const { return attrs_[i]; }
  const std::vector<std::string> attribute_names() const;

  size_t NumCells() const;
  double count(size_t cell) const { return counts_[cell]; }
  const std::vector<double>& counts() const { return counts_; }
  double total() const { return total_; }

  /// Flattened cell index from per-attribute bin indices.
  size_t CellIndex(const std::vector<size_t>& bins) const;
  /// Per-attribute bin indices from a flattened cell index.
  std::vector<size_t> CellCoords(size_t cell) const;

  /// Flattened cell of one table row (resolves attribute columns by
  /// name). NotFound when a categorical value is outside the
  /// marginal's support.
  [[nodiscard]] Result<size_t> CellOfRow(const Table& table, size_t row) const;

  /// Cell ids for every row of `table`; -1 marks rows outside the
  /// marginal's support. Column lookups are hoisted out of the loop.
  [[nodiscard]] Result<std::vector<int64_t>> CellIds(const Table& table) const;

  /// Draw n cells with probability proportional to their counts.
  std::vector<size_t> SampleCells(size_t n, Rng* rng) const;

  /// L1 distance between this marginal's *normalized* distribution
  /// and the weighted empirical distribution of `table` (rows outside
  /// the support contribute their mass to the error). This is the
  /// convergence diagnostic for IPF and the marginal-fit metric in
  /// the benches.
  [[nodiscard]] Result<double> L1Error(const Table& table,
                         const std::vector<double>& weights) const;

  /// Pretty rendering for debugging.
  std::string ToString(size_t max_cells = 10) const;

 private:
  std::vector<AttributeBinning> attrs_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace stats
}  // namespace mosaic

#endif  // MOSAIC_STATS_MARGINAL_H_
