#include "stats/wasserstein.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace mosaic {
namespace stats {

namespace {

struct Atom {
  double x;
  double mass;
};

[[nodiscard]] Result<std::vector<Atom>> NormalizedAtoms(const std::vector<double>& xs,
                                          const std::vector<double>& ws) {
  if (xs.size() != ws.size()) {
    return Status::InvalidArgument("values/weights size mismatch");
  }
  if (xs.empty()) {
    return Status::InvalidArgument("empty distribution");
  }
  double total = 0.0;
  for (double w : ws) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("weights must be non-negative finite");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("distribution has zero total mass");
  }
  std::vector<Atom> atoms(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    atoms[i] = {xs[i], ws[i] / total};
  }
  std::sort(atoms.begin(), atoms.end(),
            [](const Atom& a, const Atom& b) { return a.x < b.x; });
  return atoms;
}

}  // namespace

[[nodiscard]] Result<double> Wasserstein1D(const std::vector<double>& xs,
                             const std::vector<double>& wx,
                             const std::vector<double>& ys,
                             const std::vector<double>& wy) {
  MOSAIC_ASSIGN_OR_RETURN(auto p, NormalizedAtoms(xs, wx));
  MOSAIC_ASSIGN_OR_RETURN(auto q, NormalizedAtoms(ys, wy));
  // W1 = ∫ |F_P(t) - F_Q(t)| dt, computed by sweeping the merged
  // support: between consecutive support points the CDF difference is
  // constant.
  double w1 = 0.0;
  size_t i = 0, j = 0;
  double fp = 0.0, fq = 0.0;
  double prev = std::min(p.front().x, q.front().x);
  while (i < p.size() || j < q.size()) {
    double next;
    if (i < p.size() && (j >= q.size() || p[i].x <= q[j].x)) {
      next = p[i].x;
    } else {
      next = q[j].x;
    }
    w1 += std::fabs(fp - fq) * (next - prev);
    while (i < p.size() && p[i].x == next) fp += p[i++].mass;
    while (j < q.size() && q[j].x == next) fq += q[j++].mass;
    prev = next;
  }
  return w1;
}

[[nodiscard]] Result<double> Wasserstein1D(const std::vector<double>& xs,
                             const std::vector<double>& ys) {
  std::vector<double> wx(xs.size(), 1.0), wy(ys.size(), 1.0);
  return Wasserstein1D(xs, wx, ys, wy);
}

[[nodiscard]] Result<double> Wasserstein2SquaredMatched(std::vector<double> xs,
                                          std::vector<double> ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    return Status::InvalidArgument(
        "W2 matched form requires equal-size non-empty samples");
  }
  std::sort(xs.begin(), xs.end());
  std::sort(ys.begin(), ys.end());
  double acc = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double d = xs[i] - ys[i];
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size());
}

[[nodiscard]] Result<std::vector<std::pair<size_t, size_t>>> SortedMatching(
    const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("SortedMatching requires equal sizes");
  }
  std::vector<size_t> xi(xs.size()), yi(ys.size());
  std::iota(xi.begin(), xi.end(), size_t{0});
  std::iota(yi.begin(), yi.end(), size_t{0});
  std::sort(xi.begin(), xi.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::sort(yi.begin(), yi.end(),
            [&](size_t a, size_t b) { return ys[a] < ys[b]; });
  std::vector<std::pair<size_t, size_t>> pairs(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) pairs[i] = {xi[i], yi[i]};
  return pairs;
}

std::vector<double> Project(const PointSet& points,
                            const std::vector<double>& dir) {
  assert(dir.size() == points.d);
  std::vector<double> out(points.n, 0.0);
  for (size_t i = 0; i < points.n; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < points.d; ++j) {
      acc += points.at(i, j) * dir[j];
    }
    out[i] = acc;
  }
  return out;
}

[[nodiscard]] Result<double> SlicedWasserstein(const PointSet& p, const PointSet& q,
                                 size_t num_projections, Rng* rng) {
  if (p.d != q.d) {
    return Status::InvalidArgument("dimension mismatch in sliced W");
  }
  if (p.n == 0 || q.n == 0) {
    return Status::InvalidArgument("empty point set");
  }
  if (num_projections == 0) {
    return Status::InvalidArgument("need at least one projection");
  }
  double acc = 0.0;
  for (size_t k = 0; k < num_projections; ++k) {
    auto dir = rng->UnitVector(p.d);
    auto px = Project(p, dir);
    auto qx = Project(q, dir);
    MOSAIC_ASSIGN_OR_RETURN(double w1, Wasserstein1D(px, qx));
    acc += w1;
  }
  return acc / static_cast<double>(num_projections);
}

}  // namespace stats
}  // namespace mosaic
