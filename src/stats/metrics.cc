#include "stats/metrics.h"

#include <algorithm>
#include <cmath>

namespace mosaic {
namespace stats {

[[nodiscard]] Result<double> KolmogorovSmirnov(const std::vector<double>& xs,
                                 const std::vector<double>& ys) {
  if (xs.empty() || ys.empty()) {
    return Status::InvalidArgument("KS requires non-empty samples");
  }
  std::vector<double> a = xs, b = ys;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  size_t i = 0, j = 0;
  double sup = 0.0;
  while (i < a.size() && j < b.size()) {
    double t = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= t) ++i;
    while (j < b.size() && b[j] <= t) ++j;
    sup = std::max(sup, std::fabs(static_cast<double>(i) / na -
                                  static_cast<double>(j) / nb));
  }
  return sup;
}

[[nodiscard]] Result<double> PearsonCorrelation(const std::vector<double>& xs,
                                  const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("correlation requires equal sizes");
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument("correlation requires >= 2 points");
  }
  double n = static_cast<double>(xs.size());
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double cov = 0.0, vx = 0.0, vy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx, dy = ys[i] - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

[[nodiscard]] Result<double> ChiSquare(const std::vector<double>& observed,
                         const std::vector<double>& expected) {
  if (observed.size() != expected.size() || observed.empty()) {
    return Status::InvalidArgument("chi-square requires equal-size inputs");
  }
  double obs_total = 0.0, exp_total = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (observed[i] < 0.0 || expected[i] < 0.0) {
      return Status::InvalidArgument("counts must be non-negative");
    }
    obs_total += observed[i];
    exp_total += expected[i];
  }
  if (exp_total <= 0.0) {
    return Status::InvalidArgument("expected counts are all zero");
  }
  double scale = obs_total / exp_total;
  double stat = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    double e = expected[i] * scale;
    if (e <= 0.0) {
      if (observed[i] > 0.0) {
        return Status::InvalidArgument(
            "observed mass in a zero-expectation cell");
      }
      continue;
    }
    double d = observed[i] - e;
    stat += d * d / e;
  }
  return stat;
}

[[nodiscard]] Result<double> JensenShannon(const std::vector<double>& p,
                             const std::vector<double>& q) {
  if (p.size() != q.size() || p.empty()) {
    return Status::InvalidArgument("JS requires equal-size inputs");
  }
  double tp = 0.0, tq = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < 0.0 || q[i] < 0.0) {
      return Status::InvalidArgument("counts must be non-negative");
    }
    tp += p[i];
    tq += q[i];
  }
  if (tp <= 0.0 || tq <= 0.0) {
    return Status::InvalidArgument("distributions have zero mass");
  }
  auto kl_to_mix = [&](double a, double ta, double b, double tb) {
    double pa = a / ta;
    if (pa <= 0.0) return 0.0;
    double m = 0.5 * (pa + b / tb);
    return pa * std::log2(pa / m);
  };
  double js = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    js += 0.5 * kl_to_mix(p[i], tp, q[i], tq);
    js += 0.5 * kl_to_mix(q[i], tq, p[i], tp);
  }
  return js;
}

}  // namespace stats
}  // namespace mosaic
