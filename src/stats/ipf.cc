#include "stats/ipf.h"

#include <cmath>

#include "common/logging.h"

namespace mosaic {
namespace stats {

Result<IpfReport> IterativeProportionalFit(
    const Table& sample, const std::vector<Marginal>& marginals,
    std::vector<double>* weights, const IpfOptions& options) {
  if (weights == nullptr || weights->size() != sample.num_rows()) {
    return Status::InvalidArgument("weights must match sample row count");
  }
  if (marginals.empty()) {
    return Status::InvalidArgument("IPF needs at least one marginal");
  }
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("IPF over empty sample");
  }
  for (double w : *weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("initial weights must be >= 0");
    }
  }

  // Precompute per-marginal cell ids for every row.
  std::vector<std::vector<int64_t>> cells(marginals.size());
  for (size_t m = 0; m < marginals.size(); ++m) {
    MOSAIC_ASSIGN_OR_RETURN(cells[m], marginals[m].CellIds(sample));
  }

  // Uncovered target mass: cells with target > 0 but no sample rows.
  double uncovered = 0.0;
  for (size_t m = 0; m < marginals.size(); ++m) {
    std::vector<bool> covered(marginals[m].NumCells(), false);
    for (int64_t c : cells[m]) {
      if (c >= 0) covered[static_cast<size_t>(c)] = true;
    }
    double miss = 0.0;
    for (size_t c = 0; c < marginals[m].NumCells(); ++c) {
      if (!covered[c]) miss += marginals[m].count(c);
    }
    uncovered += miss / marginals[m].total();
  }
  uncovered /= static_cast<double>(marginals.size());

  IpfReport report;
  report.uncovered_target_mass = uncovered;

  std::vector<double>& w = *weights;
  std::vector<double> cell_mass;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // One raking cycle: scale to each marginal in turn.
    for (size_t m = 0; m < marginals.size(); ++m) {
      const Marginal& marg = marginals[m];
      cell_mass.assign(marg.NumCells(), 0.0);
      double covered_weight = 0.0;
      for (size_t r = 0; r < w.size(); ++r) {
        if (cells[m][r] >= 0) {
          cell_mass[static_cast<size_t>(cells[m][r])] += w[r];
          covered_weight += w[r];
        }
      }
      if (covered_weight <= 0.0) {
        return Status::ExecutionError(
            "IPF: sample has zero weight in the support of marginal over (" +
            marg.binning(0).attr() + ")");
      }
      // Target restricted to covered cells, renormalized so each
      // raking step matches the achievable distribution.
      double covered_target = 0.0;
      for (size_t c = 0; c < marg.NumCells(); ++c) {
        if (cell_mass[c] > 0.0) covered_target += marg.count(c);
      }
      if (covered_target <= 0.0) {
        return Status::ExecutionError(
            "IPF: no overlap between sample and marginal support");
      }
      for (size_t r = 0; r < w.size(); ++r) {
        int64_t c = cells[m][r];
        if (c < 0) continue;
        double cur = cell_mass[static_cast<size_t>(c)];
        if (cur <= 0.0) continue;
        double target = marg.count(static_cast<size_t>(c)) / covered_target;
        double current = cur / covered_weight;
        if (current > 0.0) {
          w[r] *= target / current;
        }
      }
    }
    report.iterations = iter + 1;

    // Convergence check on the normalized L1 error of every marginal.
    double max_err = 0.0;
    for (size_t m = 0; m < marginals.size(); ++m) {
      MOSAIC_ASSIGN_OR_RETURN(double err, marginals[m].L1Error(sample, w));
      // Subtract the irreducible uncovered part of this marginal so
      // convergence is judged on what reweighting can actually fix.
      max_err = std::max(max_err, err);
    }
    report.max_l1_error = max_err;
    if (max_err <= options.tolerance + 2.0 * uncovered) {
      report.converged = true;
      break;
    }
  }

  if (options.scale_to_population) {
    double avg_total = 0.0;
    for (const auto& m : marginals) avg_total += m.total();
    avg_total /= static_cast<double>(marginals.size());
    double w_total = 0.0;
    for (double x : w) w_total += x;
    if (w_total > 0.0) {
      double scale = avg_total / w_total;
      for (double& x : w) x *= scale;
    }
  }
  return report;
}

}  // namespace stats
}  // namespace mosaic
