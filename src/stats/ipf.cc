#include "stats/ipf.h"

#include <cmath>

#include "common/logging.h"

namespace mosaic {
namespace stats {

[[nodiscard]] Result<IpfReport> IterativeProportionalFit(
    const Table& sample, const std::vector<Marginal>& marginals,
    std::vector<double>* weights, const IpfOptions& options) {
  if (weights == nullptr || weights->size() != sample.num_rows()) {
    return Status::InvalidArgument("weights must match sample row count");
  }
  if (marginals.empty()) {
    return Status::InvalidArgument("IPF needs at least one marginal");
  }
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("IPF over empty sample");
  }
  for (double w : *weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("initial weights must be >= 0");
    }
  }

  // Precompute per-marginal cell ids for every row.
  std::vector<std::vector<int64_t>> cells(marginals.size());
  for (size_t m = 0; m < marginals.size(); ++m) {
    MOSAIC_ASSIGN_OR_RETURN(cells[m], marginals[m].CellIds(sample));
  }

  // Uncovered target mass: cells with target > 0 but no sample rows.
  double uncovered = 0.0;
  for (size_t m = 0; m < marginals.size(); ++m) {
    std::vector<bool> covered(marginals[m].NumCells(), false);
    for (int64_t c : cells[m]) {
      if (c >= 0) covered[static_cast<size_t>(c)] = true;
    }
    double miss = 0.0;
    for (size_t c = 0; c < marginals[m].NumCells(); ++c) {
      if (!covered[c]) miss += marginals[m].count(c);
    }
    uncovered += miss / marginals[m].total();
  }
  uncovered /= static_cast<double>(marginals.size());

  IpfReport report;
  report.uncovered_target_mass = uncovered;

  std::vector<double>& w = *weights;
  std::vector<double> cell_mass;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // One raking cycle: scale to each marginal in turn.
    for (size_t m = 0; m < marginals.size(); ++m) {
      const Marginal& marg = marginals[m];
      cell_mass.assign(marg.NumCells(), 0.0);
      double covered_weight = 0.0;
      for (size_t r = 0; r < w.size(); ++r) {
        if (cells[m][r] >= 0) {
          cell_mass[static_cast<size_t>(cells[m][r])] += w[r];
          covered_weight += w[r];
        }
      }
      if (covered_weight <= 0.0) {
        return Status::ExecutionError(
            "IPF: sample has zero weight in the support of marginal over (" +
            marg.binning(0).attr() + ")");
      }
      // Target restricted to covered cells, renormalized so each
      // raking step matches the achievable distribution.
      double covered_target = 0.0;
      for (size_t c = 0; c < marg.NumCells(); ++c) {
        if (cell_mass[c] > 0.0) covered_target += marg.count(c);
      }
      if (covered_target <= 0.0) {
        return Status::ExecutionError(
            "IPF: no overlap between sample and marginal support");
      }
      for (size_t r = 0; r < w.size(); ++r) {
        int64_t c = cells[m][r];
        if (c < 0) continue;
        double cur = cell_mass[static_cast<size_t>(c)];
        if (cur <= 0.0) continue;
        double target = marg.count(static_cast<size_t>(c)) / covered_target;
        double current = cur / covered_weight;
        if (current > 0.0) {
          w[r] *= target / current;
        }
      }
    }
    report.iterations = iter + 1;

    // Convergence check on the normalized L1 error of every marginal.
    double max_err = 0.0;
    for (size_t m = 0; m < marginals.size(); ++m) {
      MOSAIC_ASSIGN_OR_RETURN(double err, marginals[m].L1Error(sample, w));
      // Subtract the irreducible uncovered part of this marginal so
      // convergence is judged on what reweighting can actually fix.
      max_err = std::max(max_err, err);
    }
    report.max_l1_error = max_err;
    if (max_err <= options.tolerance + 2.0 * uncovered) {
      report.converged = true;
      break;
    }
  }

  if (options.scale_to_population) {
    double avg_total = 0.0;
    for (const auto& m : marginals) avg_total += m.total();
    avg_total /= static_cast<double>(marginals.size());
    double w_total = 0.0;
    for (double x : w) w_total += x;
    if (w_total > 0.0) {
      double scale = avg_total / w_total;
      for (double& x : w) x *= scale;
    }
  }
  return report;
}

[[nodiscard]] Result<IpfReport> IncrementalProportionalFit(
    const Table& sample, const std::vector<Marginal>& marginals,
    const std::vector<double>& previous_weights,
    std::vector<double>* weights, const IpfOptions& options) {
  if (weights == nullptr) {
    return Status::InvalidArgument("weights must be non-null");
  }
  if (previous_weights.size() > sample.num_rows()) {
    return Status::InvalidArgument(
        "previous weights cover more rows than the sample");
  }
  // Seed: the previous epoch's fitted weights, unit weight for the
  // newly ingested tail. IPF's fixpoint has the form w_i = seed_i *
  // prod(cell factors), so a near-fitted seed leaves only the factors
  // the new rows perturbed to be re-raked.
  std::vector<double> warm(previous_weights);
  warm.resize(sample.num_rows(), 1.0);
  IpfOptions warm_opts = options;
  if (options.incremental_max_iterations > 0) {
    warm_opts.max_iterations = options.incremental_max_iterations;
  }
  auto warm_result =
      IterativeProportionalFit(sample, marginals, &warm, warm_opts);
  size_t warm_iterations = 0;
  if (warm_result.ok()) {
    IpfReport report = warm_result.value();
    report.warm_started = true;
    // With a threshold the warm fit is judged by its exit error alone
    // — uncovered marginal mass can put a floor under the achievable
    // error that keeps `converged` false for cold fits too, and a
    // warm fit plateauing at the same floor is no regression. Without
    // one, fall back whenever the warm fit failed to converge.
    bool regressed = options.incremental_regress_threshold > 0.0
                         ? report.max_l1_error >
                               options.incremental_regress_threshold
                         : !report.converged;
    if (!regressed) {
      *weights = std::move(warm);
      return report;
    }
    warm_iterations = report.iterations;
  }
  // Warm attempt regressed (a seed can sit in a poorly covered corner
  // of the marginal polytope) or errored outright (e.g. the seed has
  // zero mass inside a marginal's support): cold full refit.
  std::vector<double> cold(sample.num_rows(), 1.0);
  MOSAIC_ASSIGN_OR_RETURN(
      IpfReport cold_report,
      IterativeProportionalFit(sample, marginals, &cold, options));
  cold_report.warm_started = true;
  cold_report.fell_back_to_cold = true;
  cold_report.iterations += warm_iterations;
  *weights = std::move(cold);
  return cold_report;
}

}  // namespace stats
}  // namespace mosaic
