// Equi-width 1-D histograms over doubles, with weights. Used for
// marginal construction over continuous attributes and for
// distribution diagnostics in tests and benches.
#ifndef MOSAIC_STATS_HISTOGRAM_H_
#define MOSAIC_STATS_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace mosaic {
namespace stats {

class Histogram {
 public:
  /// Equi-width bins over [lo, hi]; values outside are clamped into
  /// the edge bins. Requires hi > lo and num_bins >= 1.
  Histogram(double lo, double hi, size_t num_bins);

  /// Build from data with unit weights.
  static Histogram FromData(const std::vector<double>& xs, double lo,
                            double hi, size_t num_bins);

  /// Build from weighted data.
  static Histogram FromWeightedData(const std::vector<double>& xs,
                                    const std::vector<double>& ws, double lo,
                                    double hi, size_t num_bins);

  void Add(double x, double w = 1.0);

  size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }

  /// Bin index for a value (clamped to [0, num_bins-1]).
  size_t BinOf(double x) const;

  /// Center of a bin.
  double BinCenter(size_t bin) const;

  double count(size_t bin) const { return counts_[bin]; }
  const std::vector<double>& counts() const { return counts_; }
  double total() const { return total_; }

  /// Probability mass per bin (empty histogram -> all zeros).
  std::vector<double> Normalized() const;

  /// Total variation distance between two histograms with identical
  /// binning (0.5 * L1 of normalized masses).
  [[nodiscard]] static Result<double> TotalVariation(const Histogram& a,
                                       const Histogram& b);

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace stats
}  // namespace mosaic

#endif  // MOSAIC_STATS_HISTOGRAM_H_
