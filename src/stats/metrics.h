// Distribution-comparison metrics used by the evaluation harnesses
// and tests to judge generated data against ground truth, beyond the
// Wasserstein/L1 measures the training itself optimizes.
#ifndef MOSAIC_STATS_METRICS_H_
#define MOSAIC_STATS_METRICS_H_

#include <vector>

#include "common/status.h"

namespace mosaic {
namespace stats {

/// Two-sample Kolmogorov–Smirnov statistic: sup_t |F_P(t) - F_Q(t)|
/// over the empirical CDFs. Unlike W1 it is scale-free, so it
/// complements the transport metrics on heavy-tailed attributes.
[[nodiscard]] Result<double> KolmogorovSmirnov(const std::vector<double>& xs,
                                 const std::vector<double>& ys);

/// Pearson correlation coefficient; 0 when either side is constant.
[[nodiscard]] Result<double> PearsonCorrelation(const std::vector<double>& xs,
                                  const std::vector<double>& ys);

/// Chi-square statistic of observed vs expected counts (cells with
/// zero expected count must also be zero observed, else
/// InvalidArgument). Expected counts are rescaled to the observed
/// total first, so the two inputs may be on different scales.
[[nodiscard]] Result<double> ChiSquare(const std::vector<double>& observed,
                         const std::vector<double>& expected);

/// Jensen–Shannon divergence (base-2, in [0,1]) between two
/// non-negative count vectors of equal length, normalized internally.
[[nodiscard]] Result<double> JensenShannon(const std::vector<double>& p,
                             const std::vector<double>& q);

}  // namespace stats
}  // namespace mosaic

#endif  // MOSAIC_STATS_METRICS_H_
