#include "stats/histogram.h"

#include <cassert>
#include <cmath>

namespace mosaic {
namespace stats {

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0.0) {
  assert(hi > lo);
  assert(num_bins >= 1);
  width_ = (hi - lo) / static_cast<double>(num_bins);
}

Histogram Histogram::FromData(const std::vector<double>& xs, double lo,
                              double hi, size_t num_bins) {
  Histogram h(lo, hi, num_bins);
  for (double x : xs) h.Add(x);
  return h;
}

Histogram Histogram::FromWeightedData(const std::vector<double>& xs,
                                      const std::vector<double>& ws,
                                      double lo, double hi, size_t num_bins) {
  assert(xs.size() == ws.size());
  Histogram h(lo, hi, num_bins);
  for (size_t i = 0; i < xs.size(); ++i) h.Add(xs[i], ws[i]);
  return h;
}

void Histogram::Add(double x, double w) {
  counts_[BinOf(x)] += w;
  total_ += w;
}

size_t Histogram::BinOf(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  size_t bin = static_cast<size_t>((x - lo_) / width_);
  return std::min(bin, counts_.size() - 1);
}

double Histogram::BinCenter(size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::vector<double> Histogram::Normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) return out;
  for (size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / total_;
  return out;
}

Result<double> Histogram::TotalVariation(const Histogram& a,
                                         const Histogram& b) {
  if (a.num_bins() != b.num_bins() || a.lo() != b.lo() || a.hi() != b.hi()) {
    return Status::InvalidArgument(
        "TotalVariation requires identical binning");
  }
  auto pa = a.Normalized();
  auto pb = b.Normalized();
  double l1 = 0.0;
  for (size_t i = 0; i < pa.size(); ++i) l1 += std::fabs(pa[i] - pb[i]);
  return 0.5 * l1;
}

}  // namespace stats
}  // namespace mosaic
