// Iterative Proportional Fitting (raking / Sinkhorn matrix scaling):
// Mosaic's SEMI-OPEN debiasing technique when the sampling mechanism
// is unknown (§4.1, inherited from Themis [42]; classic reference is
// Deming & Stephan 1940 [13]).
//
// Given a sample and a set of population marginals, IPF rescales the
// per-tuple weights so that the weighted sample reproduces every
// marginal: it cycles through the marginals and, for each cell,
// multiplies the weights of the sample tuples falling in that cell by
// target_mass / current_mass. With consistent marginals this
// converges to the maximum-entropy reweighting subject to the
// marginal constraints.
//
// Cells with positive target mass but *no* sample tuples cannot be
// fixed by reweighting — those are exactly the false negatives the
// paper attributes to SEMI-OPEN queries (§3.3); the report exposes the
// uncovered mass so callers can quantify it.
#ifndef MOSAIC_STATS_IPF_H_
#define MOSAIC_STATS_IPF_H_

#include <vector>

#include "common/status.h"
#include "stats/marginal.h"
#include "storage/table.h"

namespace mosaic {
namespace stats {

struct IpfOptions {
  size_t max_iterations = 200;  ///< full cycles through all marginals
  /// Converged when the max normalized L1 marginal error (see
  /// Marginal::L1Error) across marginals falls below this.
  double tolerance = 1e-6;
  /// Scale the final weights so the total equals the (average)
  /// marginal total — i.e. the weighted sample represents the
  /// population size, not the sample size.
  bool scale_to_population = true;
  /// Knobs for IncrementalProportionalFit (warm-started refits on
  /// sample ingest). Cycle budget for the warm attempt; 0 uses
  /// max_iterations.
  size_t incremental_max_iterations = 0;
  /// Fall back to a cold full refit when the warm-started fit exits
  /// with max_l1_error above this. When set it replaces the converged
  /// flag as the acceptance test (uncovered marginal mass can floor
  /// the achievable error above the convergence tolerance for warm
  /// and cold fits alike); 0 falls back only when the warm fit failed
  /// to converge.
  double incremental_regress_threshold = 0.0;
};

struct IpfReport {
  size_t iterations = 0;
  double max_l1_error = 0.0;  ///< at exit, across all marginals
  bool converged = false;
  /// Fraction of target mass (averaged over marginals) living in
  /// cells with zero sample coverage: reweighting can never recover
  /// it (SEMI-OPEN false negatives).
  double uncovered_target_mass = 0.0;
  /// Set by IncrementalProportionalFit: a warm-seeded attempt ran
  /// (the returned weights are cold-seeded anyway when
  /// fell_back_to_cold is also set).
  bool warm_started = false;
  /// Set when the warm-started fit regressed past the threshold (or
  /// failed to converge) and a cold full refit ran instead;
  /// iterations then counts both attempts.
  bool fell_back_to_cold = false;
};

/// Run IPF. `weights` must have one entry per sample row; it is used
/// as the starting point (the paper initializes weights to 1) and is
/// overwritten with the fitted weights. Rows outside a marginal's
/// support keep their weight for that marginal's update.
[[nodiscard]] Result<IpfReport> IterativeProportionalFit(
    const Table& sample, const std::vector<Marginal>& marginals,
    std::vector<double>* weights, const IpfOptions& options = {});

/// Incremental IPF for sample ingest: seed the fit from a previous
/// epoch's fitted weights (`previous_weights`, covering the first
/// rows of `sample`; newly ingested rows start at 1) instead of a
/// cold all-ones start. Near-fitted seeds converge in a fraction of
/// the cold cycle count. If the warm attempt fails to converge — or
/// exits above options.incremental_regress_threshold — the function
/// falls back to a cold full refit so the result is never worse than
/// IterativeProportionalFit. `weights` receives the fitted weights.
[[nodiscard]] Result<IpfReport> IncrementalProportionalFit(
    const Table& sample, const std::vector<Marginal>& marginals,
    const std::vector<double>& previous_weights,
    std::vector<double>* weights, const IpfOptions& options = {});

}  // namespace stats
}  // namespace mosaic

#endif  // MOSAIC_STATS_IPF_H_
