// Iterative Proportional Fitting (raking / Sinkhorn matrix scaling):
// Mosaic's SEMI-OPEN debiasing technique when the sampling mechanism
// is unknown (§4.1, inherited from Themis [42]; classic reference is
// Deming & Stephan 1940 [13]).
//
// Given a sample and a set of population marginals, IPF rescales the
// per-tuple weights so that the weighted sample reproduces every
// marginal: it cycles through the marginals and, for each cell,
// multiplies the weights of the sample tuples falling in that cell by
// target_mass / current_mass. With consistent marginals this
// converges to the maximum-entropy reweighting subject to the
// marginal constraints.
//
// Cells with positive target mass but *no* sample tuples cannot be
// fixed by reweighting — those are exactly the false negatives the
// paper attributes to SEMI-OPEN queries (§3.3); the report exposes the
// uncovered mass so callers can quantify it.
#ifndef MOSAIC_STATS_IPF_H_
#define MOSAIC_STATS_IPF_H_

#include <vector>

#include "common/status.h"
#include "stats/marginal.h"
#include "storage/table.h"

namespace mosaic {
namespace stats {

struct IpfOptions {
  size_t max_iterations = 200;  ///< full cycles through all marginals
  /// Converged when the max normalized L1 marginal error (see
  /// Marginal::L1Error) across marginals falls below this.
  double tolerance = 1e-6;
  /// Scale the final weights so the total equals the (average)
  /// marginal total — i.e. the weighted sample represents the
  /// population size, not the sample size.
  bool scale_to_population = true;
};

struct IpfReport {
  size_t iterations = 0;
  double max_l1_error = 0.0;  ///< at exit, across all marginals
  bool converged = false;
  /// Fraction of target mass (averaged over marginals) living in
  /// cells with zero sample coverage: reweighting can never recover
  /// it (SEMI-OPEN false negatives).
  double uncovered_target_mass = 0.0;
};

/// Run IPF. `weights` must have one entry per sample row; it is used
/// as the starting point (the paper initializes weights to 1) and is
/// overwritten with the fitted weights. Rows outside a marginal's
/// support keep their weight for that marginal's update.
Result<IpfReport> IterativeProportionalFit(
    const Table& sample, const std::vector<Marginal>& marginals,
    std::vector<double>* weights, const IpfOptions& options = {});

}  // namespace stats
}  // namespace mosaic

#endif  // MOSAIC_STATS_IPF_H_
