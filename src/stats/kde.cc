#include "stats/kde.h"

#include <algorithm>
#include <cmath>

namespace mosaic {
namespace stats {

Result<MixedKde> MixedKde::Fit(const Table& data,
                               const std::vector<double>& weights,
                               const KdeOptions& options) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit KDE to empty data");
  }
  if (weights.size() != data.num_rows()) {
    return Status::InvalidArgument("weights size mismatch");
  }
  MixedKde kde;
  kde.options_ = options;
  kde.data_ = data;
  kde.cumulative_weights_.resize(weights.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0 || !std::isfinite(weights[i])) {
      return Status::InvalidArgument("weights must be non-negative finite");
    }
    total += weights[i];
    kde.cumulative_weights_[i] = total;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("weights have zero total");
  }
  // Per-column Silverman bandwidths from the weighted moments.
  kde.bandwidths_.assign(data.num_columns(), 0.0);
  double n_eff = total * total;
  {
    // Kish effective sample size: (Σw)² / Σw².
    double sum_sq = 0.0;
    for (double w : weights) sum_sq += w * w;
    n_eff = sum_sq > 0.0 ? (total * total) / sum_sq
                         : static_cast<double>(weights.size());
  }
  for (size_t c = 0; c < data.num_columns(); ++c) {
    const Column& col = data.column(c);
    if (col.type() == DataType::kString) continue;
    double mean = 0.0;
    for (size_t r = 0; r < col.size(); ++r) {
      mean += weights[r] * *col.GetDouble(r);
    }
    mean /= total;
    double var = 0.0;
    for (size_t r = 0; r < col.size(); ++r) {
      double d = *col.GetDouble(r) - mean;
      var += weights[r] * d * d;
    }
    var /= total;
    double sigma = std::sqrt(var);
    kde.bandwidths_[c] = options.bandwidth_scale * 1.06 * sigma *
                         std::pow(std::max(n_eff, 2.0), -0.2);
  }
  return kde;
}

Result<Table> MixedKde::Sample(size_t n, Rng* rng) const {
  Table out(data_.schema());
  out.Reserve(n);
  double total = cumulative_weights_.back();
  std::vector<Value> row(data_.num_columns());
  for (size_t i = 0; i < n; ++i) {
    // Weighted seed-row draw by inverse CDF.
    double target = rng->Uniform() * total;
    size_t seed = static_cast<size_t>(
        std::lower_bound(cumulative_weights_.begin(),
                         cumulative_weights_.end(), target) -
        cumulative_weights_.begin());
    seed = std::min(seed, data_.num_rows() - 1);
    for (size_t c = 0; c < data_.num_columns(); ++c) {
      const Column& col = data_.column(c);
      if (col.type() == DataType::kString) {
        if (rng->Bernoulli(options_.categorical_lambda)) {
          // Aitchison–Aitken escape: uniform over the observed domain.
          size_t k = rng->UniformInt(
              static_cast<uint64_t>(col.dictionary().size()));
          row[c] = Value(col.dictionary().Decode(static_cast<int32_t>(k)));
        } else {
          row[c] = col.GetValue(seed);
        }
      } else {
        double x = *col.GetDouble(seed) +
                   rng->Gaussian(0.0, bandwidths_[c]);
        if (col.type() == DataType::kInt64) {
          row[c] = Value(static_cast<int64_t>(std::llround(x)));
        } else if (col.type() == DataType::kBool) {
          row[c] = col.GetValue(seed);  // no meaningful jitter
        } else {
          row[c] = Value(x);
        }
      }
    }
    MOSAIC_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace stats
}  // namespace mosaic
