// Known-mechanism reweighting (§4.1, "when the sampling mechanism is
// known"): Horvitz–Thompson weights w(t) = 1 / Pr_S(t), plus the
// uniform-reweighting baseline ("Unif") the paper compares against —
// "the standard approximate query processing technique when there is
// no knowledge of how the sample was generated" (§5.3).
#ifndef MOSAIC_STATS_REWEIGHT_H_
#define MOSAIC_STATS_REWEIGHT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stats/marginal.h"
#include "storage/table.h"

namespace mosaic {
namespace stats {

/// Uniform mechanism with the given sampling percent: every tuple had
/// inclusion probability percent/100, so every weight is 100/percent.
[[nodiscard]] Result<std::vector<double>> UniformMechanismWeights(size_t num_rows,
                                                    double percent);

/// Uniform reweighting to a known population size: w = N / n for all
/// tuples (the paper's Unif baseline, which assumes nothing about the
/// bias).
[[nodiscard]] Result<std::vector<double>> UniformWeightsToPopulation(
    size_t num_rows, double population_size);

/// Stratified mechanism on one attribute: within stratum h the
/// inclusion probability is n_h / N_h, where n_h counts sample tuples
/// in the stratum and N_h comes from a 1-D population marginal over
/// the stratification attribute. Weights are N_h / n_h.
[[nodiscard]] Result<std::vector<double>> StratifiedMechanismWeights(
    const Table& sample, const std::string& attr,
    const Marginal& population_marginal);

}  // namespace stats
}  // namespace mosaic

#endif  // MOSAIC_STATS_REWEIGHT_H_
