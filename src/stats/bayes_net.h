// Chow–Liu tree Bayesian network over discretized attributes.
//
// The paper's §4.1 notes that Themis [42] (Mosaic's predecessor)
// answers count queries either by IPF reweighting or by building a
// Bayesian network over the population distribution. We implement the
// BN path as an extension: a Chow–Liu tree (the maximum-likelihood
// tree-structured BN) fitted to the weighted sample, usable both for
// direct COUNT inference and as an *explicit* generative model to
// contrast with the implicit M-SWG in the ablation benches.
#ifndef MOSAIC_STATS_BAYES_NET_H_
#define MOSAIC_STATS_BAYES_NET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "stats/marginal.h"
#include "storage/table.h"

namespace mosaic {
namespace stats {

struct BayesNetOptions {
  /// Equi-width bins used for real-valued attributes.
  size_t continuous_bins = 16;
  /// Laplace smoothing added to every CPT cell.
  double smoothing = 0.1;
};

/// Tree-structured discrete Bayesian network.
class ChowLiuTree {
 public:
  /// Learn structure (maximum spanning tree on pairwise mutual
  /// information) and CPTs from `data`, optionally weighted by
  /// `weight_column`. All table columns become nodes.
  [[nodiscard]] static Result<ChowLiuTree> Fit(const Table& data,
                                 const std::string& weight_column = "",
                                 const BayesNetOptions& options = {});

  size_t num_nodes() const { return nodes_.size(); }
  const std::string& attribute(size_t node) const;
  /// Parent node index, or -1 for the root.
  int parent(size_t node) const { return nodes_[node].parent; }

  /// Joint probability of a full assignment of bin indices.
  double Probability(const std::vector<size_t>& bins) const;

  /// Probability that each attribute falls in its allowed bin set
  /// (empty set = unconstrained). Exact tree inference by upward
  /// message passing.
  [[nodiscard]] Result<double> MarginalProbability(
      const std::vector<std::vector<size_t>>& allowed_bins) const;

  /// Estimated COUNT(*) for the constraint, given the population
  /// size.
  [[nodiscard]] Result<double> EstimateCount(
      const std::vector<std::vector<size_t>>& allowed_bins,
      double population_size) const;

  /// Ancestral sampling: generate n rows with the original schema.
  /// Continuous attributes are jittered uniformly within the bin.
  [[nodiscard]] Result<Table> SampleRows(size_t n, Rng* rng) const;

  /// Binning of a node (to map predicate values to bin sets).
  const AttributeBinning& binning(size_t node) const;

  /// Node index by attribute name.
  [[nodiscard]] Result<size_t> NodeIndex(const std::string& attr) const;

 private:
  struct Node {
    AttributeBinning binning{AttributeBinning::Categorical("", {})};
    int parent = -1;
    /// CPT: p(bin | parent_bin), row-major [parent_bin][bin]; for the
    /// root, a single row of priors.
    std::vector<double> cpt;
    size_t parent_bins = 1;
    DataType original_type = DataType::kDouble;
  };

  double CptEntry(const Node& node, size_t parent_bin, size_t bin) const {
    return node.cpt[parent_bin * node.binning.num_bins() + bin];
  }

  std::vector<Node> nodes_;
  std::vector<size_t> topo_order_;  ///< parents before children
};

}  // namespace stats
}  // namespace mosaic

#endif  // MOSAIC_STATS_BAYES_NET_H_
