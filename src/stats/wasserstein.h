// Exact 1-D Wasserstein distances and the sliced Wasserstein distance
// used by the M-SWG (§5.2).
//
// For 1-D distributions the optimal-transport cost has a closed form
// via the quantile coupling:  W_p(P,Q)^p = ∫ |F_P^{-1}(u) - F_Q^{-1}(u)|^p du
// which we compute exactly on weighted empirical distributions by a
// sorted sweep over the merged CDF (the [49] histogram-distance
// observation the paper cites). Higher-dimensional marginals are
// handled by projecting onto random unit vectors and averaging the
// resulting 1-D distances (the *sliced* Wasserstein distance [46,15]).
#ifndef MOSAIC_STATS_WASSERSTEIN_H_
#define MOSAIC_STATS_WASSERSTEIN_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace mosaic {
namespace stats {

/// Exact W1 between two weighted 1-D empirical distributions. Weights
/// are normalized internally; both sides need positive total mass.
[[nodiscard]] Result<double> Wasserstein1D(const std::vector<double>& xs,
                             const std::vector<double>& wx,
                             const std::vector<double>& ys,
                             const std::vector<double>& wy);

/// Exact W1 between two *uniform* empirical distributions (unit
/// weights).
[[nodiscard]] Result<double> Wasserstein1D(const std::vector<double>& xs,
                             const std::vector<double>& ys);

/// Exact squared W2 between equal-size uniform empirical
/// distributions: (1/n) Σ (x_(i) - y_(i))².  This is the
/// differentiable per-batch loss term the M-SWG trains on: its
/// gradient with respect to x_(i) is 2 (x_(i) - y_(i)) / n under the
/// (fixed) sorted matching.
[[nodiscard]] Result<double> Wasserstein2SquaredMatched(std::vector<double> xs,
                                          std::vector<double> ys);

/// Sorted matching permutation: pairs[i] = (index into xs, index into
/// ys) such that the i-th smallest x is matched to the i-th smallest
/// y. Requires xs.size() == ys.size(). Exposed so the NN training
/// loop can backpropagate through the matching.
[[nodiscard]] Result<std::vector<std::pair<size_t, size_t>>> SortedMatching(
    const std::vector<double>& xs, const std::vector<double>& ys);

/// Points in R^d, row-major (n x d).
struct PointSet {
  std::vector<double> data;
  size_t n = 0;
  size_t d = 0;

  double at(size_t row, size_t col) const { return data[row * d + col]; }
};

/// Project an (n x d) point set onto a unit direction: out[i] = Σ_j
/// points[i][j] * dir[j].
std::vector<double> Project(const PointSet& points,
                            const std::vector<double>& dir);

/// Sliced W1 between two d-dimensional point sets: the average of the
/// exact 1-D W1 over `num_projections` random unit directions drawn
/// from `rng`.
[[nodiscard]] Result<double> SlicedWasserstein(const PointSet& p, const PointSet& q,
                                 size_t num_projections, Rng* rng);

}  // namespace stats
}  // namespace mosaic

#endif  // MOSAIC_STATS_WASSERSTEIN_H_
