#include "stats/reweight.h"

namespace mosaic {
namespace stats {

[[nodiscard]] Result<std::vector<double>> UniformMechanismWeights(size_t num_rows,
                                                    double percent) {
  if (percent <= 0.0 || percent > 100.0) {
    return Status::InvalidArgument("percent must be in (0, 100]");
  }
  return std::vector<double>(num_rows, 100.0 / percent);
}

[[nodiscard]] Result<std::vector<double>> UniformWeightsToPopulation(
    size_t num_rows, double population_size) {
  if (num_rows == 0) {
    return Status::InvalidArgument("empty sample");
  }
  if (population_size <= 0.0) {
    return Status::InvalidArgument("population size must be positive");
  }
  return std::vector<double>(num_rows,
                             population_size / static_cast<double>(num_rows));
}

[[nodiscard]] Result<std::vector<double>> StratifiedMechanismWeights(
    const Table& sample, const std::string& attr,
    const Marginal& population_marginal) {
  if (population_marginal.arity() != 1 ||
      population_marginal.binning(0).attr() != attr) {
    return Status::InvalidArgument(
        "stratified reweighting needs a 1-D population marginal over '" +
        attr + "'");
  }
  MOSAIC_ASSIGN_OR_RETURN(auto cells, population_marginal.CellIds(sample));
  // Count sample tuples per stratum.
  std::vector<double> n_h(population_marginal.NumCells(), 0.0);
  for (int64_t c : cells) {
    if (c < 0) {
      return Status::ExecutionError(
          "sample tuple outside the stratification marginal's support");
    }
    n_h[static_cast<size_t>(c)] += 1.0;
  }
  std::vector<double> weights(sample.num_rows(), 1.0);
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    size_t h = static_cast<size_t>(cells[r]);
    weights[r] = population_marginal.count(h) / n_h[h];
  }
  return weights;
}

}  // namespace stats
}  // namespace mosaic
