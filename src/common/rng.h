// Deterministic pseudo-random number generation for reproducible
// experiments. All randomness in Mosaic flows through Rng so that a
// fixed seed reproduces a run bit-for-bit.
#ifndef MOSAIC_COMMON_RNG_H_
#define MOSAIC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mosaic {

/// PCG32 generator (O'Neill, 2014): small state, good statistical
/// quality, and identical output across platforms — unlike
/// std::mt19937 whose distributions are implementation-defined.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next raw 32-bit output.
  uint32_t NextU32();

  /// Next raw 64-bit output (two NextU32 calls).
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached second variate).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Index drawn from the (unnormalized, non-negative) weights.
  /// Requires at least one positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of [0, n) indices.
  std::vector<size_t> Permutation(size_t n);

  /// k distinct indices sampled uniformly from [0, n) (k <= n),
  /// returned in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Uniformly random point on the unit sphere in R^dim.
  std::vector<double> UnitVector(size_t dim);

  /// Re-seed the generator (also clears the Gaussian cache).
  void Seed(uint64_t seed);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mosaic

#endif  // MOSAIC_COMMON_RNG_H_
