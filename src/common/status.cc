#include "common/status.h"

namespace mosaic {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotConverged:
      return "NotConverged";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace mosaic
