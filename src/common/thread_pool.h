// A general-purpose fixed-size worker pool: callers Submit callables
// and get std::futures back; the destructor drains the queue and
// joins the workers (graceful shutdown).
//
// Used by the query service for request fan-out, by the Database for
// parallel OPEN-query sample generation, and by the morsel executor
// for intra-query parallelism. Nested blocking — a pool task waiting
// on futures served by the *same* pool — can deadlock once every
// worker blocks. Two escape hatches exist:
//   - the service keeps two pools (requests vs generation), so a
//     request task blocking on generation futures always has workers
//     to serve it;
//   - TryRunOne()/HelpUntil() are the generic run-inline fallback for
//     a task that must wait on sibling work in its *own* pool: queued
//     tasks run inline while waiting, so progress never depends on a
//     free worker. No production path currently needs them — the
//     morsel driver avoids blocking on queued work altogether via its
//     claim loop (exec/morsel.h) — but any future nested wait must go
//     through them rather than a bare future.get().
#ifndef MOSAIC_COMMON_THREAD_POOL_H_
#define MOSAIC_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/synchronization.h"

namespace mosaic {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains remaining queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future for its result. Tasks
  /// submitted after Shutdown() run inline on the calling thread (the
  /// pool never silently drops work).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(mu_);
      if (!accepting_) {
        lock.Unlock();
        (*task)();
        return future;
      }
      queue_.emplace_back([task] { (*task)(); });
      ++scheduled_;
    }
    wake_worker_.NotifyOne();
    return future;
  }

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Pop one queued task and run it on the calling thread; returns
  /// false when the queue is empty. The run-inline fallback for tasks
  /// that would otherwise block on work stuck behind them in the
  /// queue (safe to call from inside a pool task).
  bool TryRunOne();

  /// Block until `ready()` returns true, draining queued tasks on the
  /// calling thread while waiting. Unlike waiting on a future, this
  /// cannot deadlock when called from a pool task: the work being
  /// waited for is either running on another worker (and will
  /// finish) or still queued (and gets run here inline). `ready` is
  /// called with no pool lock held and must be thread-safe.
  void HelpUntil(const std::function<bool()>& ready);

  /// Stop accepting new tasks, finish the queue, join the workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet finished (queued + running).
  size_t pending() const;

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  /// Serializes concurrent Shutdown() callers over the join loop.
  Mutex join_mu_;
  CondVar wake_worker_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  /// Written only in the constructor (before any sharing), joined
  /// under join_mu_; num_threads() reads it lock-free.
  std::vector<std::thread> workers_;
  size_t scheduled_ GUARDED_BY(mu_) = 0;  ///< queued + running
  bool accepting_ GUARDED_BY(mu_) = true;
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace mosaic

#endif  // MOSAIC_COMMON_THREAD_POOL_H_
