// A general-purpose fixed-size worker pool: callers Submit callables
// and get std::futures back; the destructor drains the queue and
// joins the workers (graceful shutdown).
//
// Used by the query service for request fan-out and by the Database
// for parallel OPEN-query sample generation. Nested blocking — a pool
// task waiting on futures served by the *same* pool — can deadlock
// once every worker blocks, so the service keeps two pools: one for
// requests, one for generation (see service/query_service.h).
#ifndef MOSAIC_COMMON_THREAD_POOL_H_
#define MOSAIC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mosaic {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains remaining queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future for its result. Tasks
  /// submitted after Shutdown() run inline on the calling thread (the
  /// pool never silently drops work).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!accepting_) {
        lock.unlock();
        (*task)();
        return future;
      }
      queue_.emplace_back([task] { (*task)(); });
      ++scheduled_;
    }
    wake_worker_.notify_one();
    return future;
  }

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Stop accepting new tasks, finish the queue, join the workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet finished (queued + running).
  size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::mutex join_mu_;
  std::condition_variable wake_worker_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t scheduled_ = 0;  ///< queued + running
  bool accepting_ = true;
  bool stopping_ = false;
};

}  // namespace mosaic

#endif  // MOSAIC_COMMON_THREAD_POOL_H_
