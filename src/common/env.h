// Hardened environment-variable parsing for Mosaic's numeric knobs
// (MOSAIC_MORSELS and friends). A mistyped value used to be silently
// ignored or, worse, silently truncated by atoll; these helpers warn
// once on stderr and fall back to "unset" so a bad knob can never
// half-configure the engine.
#ifndef MOSAIC_COMMON_ENV_H_
#define MOSAIC_COMMON_ENV_H_

#include <cstddef>
#include <optional>

namespace mosaic {

/// Value of a numeric environment variable. Unset or empty returns
/// nullopt; garbage, a negative sign, or a value that overflows
/// size_t logs one warning naming the variable and also returns
/// nullopt (strict parse via ParseUint64, common/string_util.h).
std::optional<size_t> EnvSize(const char* name);

/// True when the flag-style variable is set to "1" (the repo's
/// convention for MOSAIC_ROW_PATH / MOSAIC_BENCH_FULL). Any other
/// non-empty value logs a warning and reads as false.
bool EnvFlag(const char* name);

}  // namespace mosaic

#endif  // MOSAIC_COMMON_ENV_H_
