#include "common/env.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"

namespace mosaic {

std::optional<size_t> EnvSize(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  auto parsed = ParseUint64(raw);
  if (!parsed.ok()) {
    MOSAIC_LOG(Warning) << name << "='" << raw
                        << "' ignored: " << parsed.status().message();
    return std::nullopt;
  }
  if constexpr (sizeof(size_t) < sizeof(uint64_t)) {
    if (*parsed > static_cast<uint64_t>(SIZE_MAX)) {
      MOSAIC_LOG(Warning) << name << "='" << raw
                          << "' ignored: exceeds size_t";
      return std::nullopt;
    }
  }
  return static_cast<size_t>(*parsed);
}

bool EnvFlag(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return false;
  if (std::strcmp(raw, "1") == 0) return true;
  if (std::strcmp(raw, "0") != 0) {
    MOSAIC_LOG(Warning) << name << "='" << raw
                        << "' is not 0/1; treating as unset";
  }
  return false;
}

}  // namespace mosaic
