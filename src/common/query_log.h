// The query log: a process-wide bounded ring of per-query resource
// records. Every statement the service runs — traced or not — rolls
// its wall/CPU time, row/morsel/epoch tallies, cache outcome, SIMD
// ISA, and (when traced) the full span tree into one QueryRecord and
// appends it here. `system.queries` is a snapshot of this ring
// rendered as a table, so the introspection surface is plain SQL.
//
// Concurrency. Appends claim a slot with one relaxed fetch_add on the
// global sequence — writers never serialize against each other except
// on the rare wraparound collision, where a per-slot mutex keeps the
// record internally consistent (a QueryRecord holds strings and a
// span vector, so a seqlock would torn-read). Readers copy slot by
// slot under the same per-slot mutex; a snapshot is consistent per
// record, not across records, which is the right contract for an
// observability table.
#ifndef MOSAIC_COMMON_QUERY_LOG_H_
#define MOSAIC_COMMON_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/synchronization.h"

namespace mosaic {
namespace qlog {

/// One span flattened out of the QueryTrace (creation-order id and
/// parent preserved so consumers can rebuild the tree).
struct RecordSpan {
  uint32_t id = 0;
  uint32_t parent = 0;
  std::string name;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint64_t cpu_ns = 0;
  std::string note;
};

/// Everything the service knows about one completed statement.
struct QueryRecord {
  uint64_t query_id = 0;   ///< assigned by Append, monotonically rising
  uint64_t session_id = 0;
  uint64_t trace_id = 0;   ///< 0 = not part of a distributed trace
  std::string sql;
  std::string status;      ///< "OK" or the error code ("InvalidArgument")
  int cache_hit = -1;      ///< -1 n/a, 0 miss, 1 hit
  uint64_t wall_us = 0;
  uint64_t cpu_ns = 0;     ///< thread CPU of the statement span
  uint64_t rows_scanned = 0;
  uint64_t rows_produced = 0;
  uint64_t morsels = 0;
  uint64_t epoch_pins = 0;
  std::string simd_isa;
  std::vector<RecordSpan> spans;  ///< empty when the query was untraced
};

class QueryLog {
 public:
  /// The process-wide log that `system.queries` reads.
  static QueryLog& Global();

  explicit QueryLog(size_t capacity = kDefaultCapacity);

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Append one record (its query_id field is overwritten with the
  /// claimed sequence number, which is returned). Overwrites the
  /// oldest record once the ring is full.
  uint64_t Append(QueryRecord record);

  /// Copy of the live records, oldest first (query_id ascending).
  std::vector<QueryRecord> Snapshot() const;

  size_t capacity() const { return slots_.size(); }

  /// Total appends ever (== highest query_id handed out).
  uint64_t total_appended() const {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }

  /// Drop all records and restart ids at 1. Test-only: concurrent
  /// appenders may race the reset.
  void ResetForTesting();

  static constexpr size_t kDefaultCapacity = 1024;

 private:
  struct Slot {
    mutable Mutex mu;
    uint64_t seq GUARDED_BY(mu) = 0;  ///< 0 = never written
    QueryRecord record GUARDED_BY(mu);
  };

  std::atomic<uint64_t> next_id_{1};
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace qlog
}  // namespace mosaic

#endif  // MOSAIC_COMMON_QUERY_LOG_H_
