#include "common/math_util.h"

#include <algorithm>
#include <cmath>

namespace mosaic {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double WeightedMean(const std::vector<double>& xs,
                    const std::vector<double>& ws) {
  double num = 0.0, den = 0.0;
  size_t n = std::min(xs.size(), ws.size());
  for (size_t i = 0; i < n; ++i) {
    num += xs[i] * ws[i];
    den += ws[i];
  }
  return den == 0.0 ? 0.0 : num / den;
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50.0); }

double PercentDiff(double estimate, double truth) {
  if (truth == 0.0) return estimate == 0.0 ? 0.0 : 100.0;
  return std::fabs(estimate - truth) / std::fabs(truth) * 100.0;
}

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

bool AlmostEqual(double a, double b, double abs_tol, double rel_tol) {
  double diff = std::fabs(a - b);
  double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

BoxStats ComputeBoxStats(const std::vector<double>& xs) {
  BoxStats stats;
  stats.n = xs.size();
  if (xs.empty()) return stats;
  stats.mean = Mean(xs);
  stats.median = Median(xs);
  stats.p03 = Percentile(xs, 3.0);
  stats.p25 = Percentile(xs, 25.0);
  stats.p75 = Percentile(xs, 75.0);
  stats.p97 = Percentile(xs, 97.0);
  stats.min = *std::min_element(xs.begin(), xs.end());
  stats.max = *std::max_element(xs.begin(), xs.end());
  return stats;
}

}  // namespace mosaic
