#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace mosaic {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
constexpr uint64_t kDefaultStream = 0xda3e39cb94b95bdbULL;
}  // namespace

Rng::Rng(uint64_t seed) { Seed(seed); }

void Rng::Seed(uint64_t seed) {
  state_ = 0;
  inc_ = (kDefaultStream << 1u) | 1u;
  NextU32();
  state_ += seed;
  NextU32();
  has_cached_gaussian_ = false;
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return (NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to remove modulo bias.
  uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double target = Uniform() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    size_t j = UniformInt(static_cast<uint64_t>(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher–Yates over an index array; O(n) memory, O(n + k) time.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(static_cast<uint64_t>(n - i));
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

std::vector<double> Rng::UnitVector(size_t dim) {
  std::vector<double> v(dim);
  double norm_sq = 0.0;
  do {
    norm_sq = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      v[i] = Gaussian();
      norm_sq += v[i] * v[i];
    }
  } while (norm_sq == 0.0);
  double inv = 1.0 / std::sqrt(norm_sq);
  for (double& x : v) x *= inv;
  return v;
}

}  // namespace mosaic
