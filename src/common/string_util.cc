#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace mosaic {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

[[nodiscard]] Result<uint64_t> ParseUint64(std::string_view s) {
  const std::string_view trimmed = Trim(s);
  if (trimmed.empty()) {
    return Status::InvalidArgument("expected a number, got empty string");
  }
  uint64_t value = 0;
  for (char c : trimmed) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid number '" +
                                     std::string(trimmed) + "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("number '" + std::string(trimmed) +
                                     "' overflows uint64");
    }
    value = value * 10 + digit;
  }
  return value;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double v, int max_precision) {
  std::string s = StrFormat("%.*f", max_precision, v);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header);
  std::string rule = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows) out += render_row(row);
  return out;
}

}  // namespace mosaic
