#include "common/trace.h"

#include <time.h>

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/string_util.h"

namespace mosaic {
namespace trace {

uint64_t ThreadCpuNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

uint32_t QueryTrace::Begin(uint32_t parent, const std::string& name) {
  uint64_t now = NowUs();
  uint64_t cpu = ThreadCpuNs();
  MutexLock lock(mu_);
  Span span;
  span.id = static_cast<uint32_t>(spans_.size() + 1);
  span.parent = parent;
  span.name = name;
  span.start_us = now;
  spans_.push_back(std::move(span));
  cpu_start_ns_.push_back(cpu);
  return spans_.back().id;
}

void QueryTrace::End(uint32_t id) {
  // CPU clock first: CLOCK_THREAD_CPUTIME_ID is a real syscall on
  // most kernels (~1-2us), and reading it before the wall timestamp
  // keeps that cost inside this span instead of in the parent's
  // uncovered gap (Begin orders the reads the mirror way).
  uint64_t cpu = ThreadCpuNs();
  uint64_t now = NowUs();
  MutexLock lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.end_us != 0) return;
  span.end_us = now;
  // Thread CPU attribution is only valid when End runs on the thread
  // that called Begin (the ScopedSpan pattern); a cross-thread close
  // would read a different thread's clock and could go "backwards".
  uint64_t start_cpu = cpu_start_ns_[id - 1];
  if (start_cpu != 0 && cpu >= start_cpu) span.cpu_ns = cpu - start_cpu;
}

void QueryTrace::AddTimed(uint32_t parent, const std::string& name,
                          uint64_t start_us, uint64_t end_us) {
  MutexLock lock(mu_);
  Span span;
  span.id = static_cast<uint32_t>(spans_.size() + 1);
  span.parent = parent;
  span.name = name;
  span.start_us = start_us;
  span.end_us = end_us;
  spans_.push_back(std::move(span));
  cpu_start_ns_.push_back(0);
}

void QueryTrace::Note(uint32_t id, const std::string& text) {
  MutexLock lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (!span.note.empty()) span.note += ' ';
  span.note += text;
}

uint64_t QueryTrace::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::vector<Span> QueryTrace::Spans() const {
  MutexLock lock(mu_);
  return spans_;
}

namespace {

/// Pre-order walk over the span forest. Children keep creation order,
/// which is also start-time order for same-thread spans.
void Walk(const std::vector<Span>& spans, uint32_t parent, size_t depth,
          const std::function<void(const Span&, size_t)>& visit) {
  for (const Span& span : spans) {
    if (span.parent != parent) continue;
    visit(span, depth);
    Walk(spans, span.id, depth + 1, visit);
  }
}

}  // namespace

void QueryTrace::Visit(
    const std::function<void(const Span&, size_t)>& visit) const {
  Walk(Spans(), kNoParent, 0, visit);
}

std::string QueryTrace::ToString() const {
  std::vector<Span> spans = Spans();
  std::ostringstream out;
  Walk(spans, kNoParent, 0, [&](const Span& span, size_t depth) {
    out << std::string(depth * 2, ' ') << span.name;
    // Pad the name column so durations align for shallow trees.
    size_t used = depth * 2 + span.name.size();
    if (used < 32) out << std::string(32 - used, ' ');
    out << StrFormat("%8llu us",
                     static_cast<unsigned long long>(span.duration_us()));
    if (!span.note.empty()) out << "  [" << span.note << "]";
    out << "\n";
  });
  return out.str();
}

}  // namespace trace
}  // namespace mosaic
