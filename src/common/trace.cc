#include "common/trace.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/string_util.h"

namespace mosaic {
namespace trace {

uint32_t QueryTrace::Begin(uint32_t parent, const std::string& name) {
  uint64_t now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = static_cast<uint32_t>(spans_.size() + 1);
  span.parent = parent;
  span.name = name;
  span.start_us = now;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::End(uint32_t id) {
  uint64_t now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.end_us == 0) span.end_us = now;
}

void QueryTrace::AddTimed(uint32_t parent, const std::string& name,
                          uint64_t start_us, uint64_t end_us) {
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = static_cast<uint32_t>(spans_.size() + 1);
  span.parent = parent;
  span.name = name;
  span.start_us = start_us;
  span.end_us = end_us;
  spans_.push_back(std::move(span));
}

void QueryTrace::Note(uint32_t id, const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (!span.note.empty()) span.note += ' ';
  span.note += text;
}

uint64_t QueryTrace::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::vector<Span> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

namespace {

/// Pre-order walk over the span forest. Children keep creation order,
/// which is also start-time order for same-thread spans.
void Walk(const std::vector<Span>& spans, uint32_t parent, size_t depth,
          const std::function<void(const Span&, size_t)>& visit) {
  for (const Span& span : spans) {
    if (span.parent != parent) continue;
    visit(span, depth);
    Walk(spans, span.id, depth + 1, visit);
  }
}

}  // namespace

void QueryTrace::Visit(
    const std::function<void(const Span&, size_t)>& visit) const {
  Walk(Spans(), kNoParent, 0, visit);
}

std::string QueryTrace::ToString() const {
  std::vector<Span> spans = Spans();
  std::ostringstream out;
  Walk(spans, kNoParent, 0, [&](const Span& span, size_t depth) {
    out << std::string(depth * 2, ' ') << span.name;
    // Pad the name column so durations align for shallow trees.
    size_t used = depth * 2 + span.name.size();
    if (used < 32) out << std::string(32 - used, ' ');
    out << StrFormat("%8llu us",
                     static_cast<unsigned long long>(span.duration_us()));
    if (!span.note.empty()) out << "  [" << span.note << "]";
    out << "\n";
  });
  return out.str();
}

}  // namespace trace
}  // namespace mosaic
