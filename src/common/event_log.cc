#include "common/event_log.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/string_util.h"

namespace mosaic {
namespace elog {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

uint64_t WallUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

EventLog& EventLog::Global() {
  // lint:allow naked-new: intentionally leaked singleton so events
  // emitted during static destruction never touch a dead object.
  static EventLog* log = new EventLog();
  return *log;
}

EventLog::~EventLog() { Close(); }

Status EventLog::Open(const std::string& path, uint64_t max_bytes) {
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    enabled_.store(false, std::memory_order_release);
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::IOError("cannot open event log " + path + ": " +
                           std::strerror(errno));
  }
  long pos = std::ftell(f);
  file_ = f;
  path_ = path;
  max_bytes_ = max_bytes == 0 ? kDefaultMaxBytes : max_bytes;
  bytes_ = pos > 0 ? static_cast<uint64_t>(pos) : 0;
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

void EventLog::Close() {
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  enabled_.store(false, std::memory_order_release);
}

void EventLog::Emit(LogLevel level, const std::string& event,
                    const Fields& fields, uint64_t trace_id) {
  if (!enabled()) return;

  std::string line;
  line.reserve(128);
  line += StrFormat("{\"ts_us\":%llu,\"level\":\"%s\",\"event\":\"",
                    static_cast<unsigned long long>(WallUs()),
                    LevelName(level));
  line += JsonEscape(event);
  line += '"';
  if (trace_id != 0) {
    line += StrFormat(",\"trace_id\":\"%016llx\"",
                      static_cast<unsigned long long>(trace_id));
  }
  for (const auto& [key, value] : fields) {
    line += ",\"";
    line += JsonEscape(key);
    line += "\":\"";
    line += JsonEscape(value);
    line += '"';
  }
  line += "}\n";

  MutexLock lock(mu_);
  if (file_ == nullptr) return;  // closed between the check and here
  if (bytes_ + line.size() > max_bytes_ && bytes_ > 0) {
    // Rotate: the live file becomes <path>.1 (clobbering the previous
    // generation), and the line starts a fresh file. rename(2) keeps
    // this atomic for readers tailing by path.
    std::fclose(file_);
    file_ = nullptr;
    const std::string old = path_ + ".1";
    if (std::rename(path_.c_str(), old.c_str()) != 0) {
      // Rotation failed (e.g. EXDEV is impossible here, but EACCES is
      // not): truncate in place rather than grow without bound.
      std::remove(path_.c_str());
    }
    std::FILE* f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) {
      enabled_.store(false, std::memory_order_release);
      return;
    }
    file_ = f;
    bytes_ = 0;
    rotations_.fetch_add(1, std::memory_order_relaxed);
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) == line.size()) {
    bytes_ += line.size();
    events_written_.fetch_add(1, std::memory_order_relaxed);
  }
  std::fflush(file_);
}

}  // namespace elog
}  // namespace mosaic
