#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace mosaic {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_worker_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --scheduled_;
      if (scheduled_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return scheduled_ == 0; });
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --scheduled_;
    if (scheduled_ == 0) all_done_.notify_all();
  }
  return true;
}

void ThreadPool::HelpUntil(const std::function<bool()>& ready) {
  while (!ready()) {
    if (TryRunOne()) continue;
    // Queue empty and not ready: the awaited task is running on
    // another worker. Sleep until new work is queued (we might help
    // with it) or a short timeout re-checks `ready` — the awaited
    // completion has no dedicated signal.
    std::unique_lock<std::mutex> lock(mu_);
    if (!queue_.empty()) continue;
    wake_worker_.wait_for(lock, std::chrono::milliseconds(1));
  }
  // While waiting we may have consumed a Submit's notify_one that was
  // meant for an idle worker; if work is still queued as we leave,
  // pass the baton on so no task is stranded behind our exit.
  std::lock_guard<std::mutex> lock(mu_);
  if (!queue_.empty()) wake_worker_.notify_one();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
  }
  wake_worker_.notify_all();
  // join_mu_ makes Shutdown safe to call from several threads: the
  // joinable() check and join() must be atomic per worker.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scheduled_;
}

}  // namespace mosaic
