#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace mosaic {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) wake_worker_.Wait(lock);
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      --scheduled_;
      if (scheduled_ == 0) all_done_.NotifyAll();
    }
  }
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (scheduled_ != 0) all_done_.Wait(lock);
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    MutexLock lock(mu_);
    --scheduled_;
    if (scheduled_ == 0) all_done_.NotifyAll();
  }
  return true;
}

void ThreadPool::HelpUntil(const std::function<bool()>& ready) {
  while (!ready()) {
    if (TryRunOne()) continue;
    // Queue empty and not ready: the awaited task is running on
    // another worker. Sleep until new work is queued (we might help
    // with it) or a short timeout re-checks `ready` — the awaited
    // completion has no dedicated signal.
    MutexLock lock(mu_);
    if (!queue_.empty()) continue;
    wake_worker_.WaitFor(lock, std::chrono::milliseconds(1));
  }
  // While waiting we may have consumed a Submit's notify_one that was
  // meant for an idle worker; if work is still queued as we leave,
  // pass the baton on so no task is stranded behind our exit.
  MutexLock lock(mu_);
  if (!queue_.empty()) wake_worker_.NotifyOne();
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    accepting_ = false;
    stopping_ = true;
  }
  wake_worker_.NotifyAll();
  // join_mu_ makes Shutdown safe to call from several threads: the
  // joinable() check and join() must be atomic per worker.
  MutexLock join_lock(join_mu_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::pending() const {
  MutexLock lock(mu_);
  return scheduled_;
}

}  // namespace mosaic
