// Process-wide metrics: lock-free counters, gauges, and log-bucketed
// latency histograms behind a named registry.
//
// Updates (Counter::Inc, Gauge::Set, Histogram::Record) are single
// relaxed atomic operations — safe and cheap from any thread, no
// locks on the hot path. Registration (Registry::GetCounter and
// friends) takes a mutex but returns a stable pointer, so callers
// resolve names once at startup and update lock-free afterwards.
//
// Histograms use fixed power-of-two buckets: bucket 0 holds the value
// 0 and bucket k holds [2^(k-1), 2^k). With kNumBuckets = 40 and
// microsecond samples that spans 1us .. ~6.4 days, which covers every
// latency this engine can produce. Quantiles (p50/p95/p99) are
// estimated from the bucket counts by linear interpolation inside the
// covering bucket — a bounded-relative-error estimate that needs no
// per-sample storage and stays TSan-clean under concurrent Record().
#ifndef MOSAIC_COMMON_METRICS_H_
#define MOSAIC_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/synchronization.h"

namespace mosaic {
namespace metrics {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (in-flight requests, cache entries, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if it is below it (CAS loop) — the
  /// high-watermark update used for per-connection in-flight peaks.
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a histogram's buckets, safe to serialize,
/// merge, and query without touching the live atomics.
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  ///< per-bucket sample counts
  uint64_t count = 0;             ///< total samples
  uint64_t sum = 0;               ///< sum of recorded values

  /// Estimated quantile (q in [0,1]) by linear interpolation inside
  /// the covering bucket. Returns 0 when empty.
  double Quantile(double q) const;

  double Mean() const { return count == 0 ? 0.0 : double(sum) / count; }
};

/// Fixed log2-bucketed histogram of non-negative integer samples
/// (microseconds by convention). Concurrent Record() is lock-free.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  /// Index of the bucket covering `v`: 0 for v == 0, else
  /// floor(log2(v)) + 1, clamped to the last bucket.
  static size_t BucketIndex(uint64_t v);

  /// Inclusive upper bound of bucket `i` (2^i - 1; the last bucket is
  /// unbounded and reports UINT64_MAX).
  static uint64_t BucketUpperBound(size_t i);

  void Record(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// Named metric registry. Find-or-create returns stable pointers;
/// snapshot accessors return name-sorted maps so output diffs are
/// deterministic.
class Registry {
 public:
  /// The process-wide registry every subsystem reports through.
  static Registry& Global();

  /// Find-or-create by name. `help` (optional) is the Prometheus HELP
  /// string; the first non-empty help registered for a name wins, so
  /// hot-path lookups can keep passing just the name.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, int64_t> GaugeValues() const;
  std::map<std::string, HistogramSnapshot> HistogramSnapshots() const;

  /// Prometheus text exposition format (# HELP when registered plus
  /// one # TYPE line per metric; histograms expand to
  /// _bucket{le=...}/_sum/_count series). Names are validated against
  /// the text-format charset [a-zA-Z_:][a-zA-Z0-9_:]* (invalid bytes
  /// become '_'); HELP text is escaped per the format's rules
  /// (backslash and newline).
  std::string RenderPrometheus() const;

  /// Zero every registered metric (registration survives). Tests
  /// share the process-wide registry, so each starts from zero.
  void ResetForTesting();

 private:
  void SetHelpLocked(const std::string& name, const std::string& help)
      REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
  std::map<std::string, std::string> helps_ GUARDED_BY(mu_);
};

/// Sanitize a metric name to the Prometheus text-format charset:
/// [a-zA-Z_:][a-zA-Z0-9_:]*. Exposed for the golden-output test.
std::string PrometheusName(const std::string& name);

/// Escape a HELP string per the text format: backslash -> \\ and
/// newline -> \n (other bytes pass through).
std::string PrometheusHelpEscape(const std::string& help);

}  // namespace metrics
}  // namespace mosaic

#endif  // MOSAIC_COMMON_METRICS_H_
