// Per-query tracing: a QueryTrace collects timestamped spans as the
// statement moves through parse -> cache -> plan -> execution, and
// renders them as an indented tree (slow-query log) or a result table
// (EXPLAIN ANALYZE).
//
// Threading model. Spans name their parent explicitly (Begin takes a
// parent id) instead of keeping an implicit per-thread stack: morsel
// workers and generation-pool threads record spans for the same query
// from several threads at once, so "current span" is ambiguous — the
// call site always knows its parent and captures the id into worker
// lambdas. One mutex guards the span vector; it is only ever touched
// when tracing is on.
//
// Cost when disabled. Everything takes the trace as a nullable
// pointer: ScopedSpan(nullptr, ...) compiles to two branches and no
// clock read, so instrumented code paths stay at production speed
// with tracing off.
#ifndef MOSAIC_COMMON_TRACE_H_
#define MOSAIC_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace mosaic {
namespace trace {

/// One timed region. Span ids are 1-based; parent 0 means top-level.
struct Span {
  uint32_t id = 0;
  uint32_t parent = 0;     ///< 0 = top-level
  std::string name;
  uint64_t start_us = 0;   ///< microseconds since the trace began
  uint64_t end_us = 0;     ///< 0 while the span is open
  std::string note;        ///< free-form annotation ("rows=120 ...")

  uint64_t duration_us() const {
    return end_us >= start_us ? end_us - start_us : 0;
  }
};

/// Parent id for top-level spans.
inline constexpr uint32_t kNoParent = 0;

class QueryTrace {
 public:
  QueryTrace() : epoch_(std::chrono::steady_clock::now()) {}

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Open a span under `parent` (kNoParent for top level); returns
  /// its id for use as a parent and for End().
  uint32_t Begin(uint32_t parent, const std::string& name);

  /// Close the span. Idempotent enough for error paths: closing an
  /// already-closed span keeps the first end time.
  void End(uint32_t id);

  /// Record an already-measured region (start/end in microseconds
  /// since the trace epoch, see NowUs).
  void AddTimed(uint32_t parent, const std::string& name, uint64_t start_us,
                uint64_t end_us);

  /// Append an annotation to the span ("rows=120"). Multiple notes
  /// join with a space.
  void Note(uint32_t id, const std::string& text);

  /// Microseconds elapsed since this trace was constructed.
  uint64_t NowUs() const;

  /// Copy of all spans, in creation order.
  std::vector<Span> Spans() const;

  /// Indented tree, one span per line:
  ///   execute                     1234us
  ///     filter                     987us  [rows=120]
  std::string ToString() const;

  /// Pre-order walk over the span forest (children in creation
  /// order); `visit` receives each span with its depth. This is how
  /// renderers in higher layers (EXPLAIN ANALYZE's result table)
  /// consume a trace without common/ depending on them.
  void Visit(const std::function<void(const Span&, size_t)>& visit) const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// RAII span that is a no-op when the trace pointer is null. id()
/// returns 0 (= kNoParent) in that case, so untraced parents chain
/// through transparently.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, uint32_t parent, const char* name)
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->Begin(parent, name);
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->End(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint32_t id() const { return id_; }
  QueryTrace* trace() const { return trace_; }

  /// Annotate this span (no-op when untraced).
  void Note(const std::string& text) {
    if (trace_ != nullptr) trace_->Note(id_, text);
  }

 private:
  QueryTrace* trace_;
  uint32_t id_ = 0;
};

}  // namespace trace
}  // namespace mosaic

#endif  // MOSAIC_COMMON_TRACE_H_
