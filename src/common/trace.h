// Per-query tracing: a QueryTrace collects timestamped spans as the
// statement moves through parse -> cache -> plan -> execution, and
// renders them as an indented tree (slow-query log) or a result table
// (EXPLAIN ANALYZE).
//
// Threading model. Spans name their parent explicitly (Begin takes a
// parent id) instead of keeping an implicit per-thread stack: morsel
// workers and generation-pool threads record spans for the same query
// from several threads at once, so "current span" is ambiguous — the
// call site always knows its parent and captures the id into worker
// lambdas. One mutex guards the span vector; it is only ever touched
// when tracing is on.
//
// Cost when disabled. Everything takes the trace as a nullable
// pointer: ScopedSpan(nullptr, ...) compiles to two branches and no
// clock read, so instrumented code paths stay at production speed
// with tracing off.
#ifndef MOSAIC_COMMON_TRACE_H_
#define MOSAIC_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/synchronization.h"

namespace mosaic {
namespace trace {

/// One timed region. Span ids are 1-based; parent 0 means top-level.
struct Span {
  uint32_t id = 0;
  uint32_t parent = 0;     ///< 0 = top-level
  std::string name;
  uint64_t start_us = 0;   ///< microseconds since the trace began
  uint64_t end_us = 0;     ///< 0 while the span is open
  uint64_t cpu_ns = 0;     ///< thread CPU time spent inside the span;
                           ///< only meaningful for spans begun and
                           ///< ended on the same thread (ScopedSpan),
                           ///< 0 for AddTimed spans
  std::string note;        ///< free-form annotation ("rows=120 ...")

  uint64_t duration_us() const {
    return end_us >= start_us ? end_us - start_us : 0;
  }
};

/// Parent id for top-level spans.
inline constexpr uint32_t kNoParent = 0;

/// Nanoseconds of CPU consumed by the calling thread
/// (CLOCK_THREAD_CPUTIME_ID); 0 if the platform lacks the clock.
uint64_t ThreadCpuNs();

/// Per-query resource tallies, accumulated alongside the spans. All
/// counters are relaxed atomics: morsel workers bump them from many
/// threads, and exact interleaving does not matter — only the final
/// totals, read after the query completes, do.
struct ResourceCounters {
  std::atomic<uint64_t> rows_scanned{0};   ///< rows examined by WHERE
  std::atomic<uint64_t> rows_produced{0};  ///< rows in the result
  std::atomic<uint64_t> morsels{0};        ///< morsel tasks executed
  std::atomic<uint64_t> epoch_pins{0};     ///< weight epochs pinned
  /// -1 unknown (not a cacheable read), 0 miss, 1 hit.
  std::atomic<int> cache_hit{-1};
};

class QueryTrace {
 public:
  QueryTrace() : epoch_(std::chrono::steady_clock::now()) {}

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Distributed trace id this query belongs to. 0 = unsampled local
  /// trace; a client (or the upstream coordinator) supplies a nonzero
  /// id over the wire and every span tree rendered from this trace
  /// carries it. Set once at creation, before the trace is shared.
  void set_trace_id(uint64_t id) { trace_id_ = id; }
  uint64_t trace_id() const { return trace_id_; }

  /// Resource tallies for the whole query (thread-safe to bump from
  /// morsel workers; see ResourceCounters).
  ResourceCounters& counters() { return counters_; }
  const ResourceCounters& counters() const { return counters_; }

  /// Open a span under `parent` (kNoParent for top level); returns
  /// its id for use as a parent and for End().
  uint32_t Begin(uint32_t parent, const std::string& name);

  /// Close the span. Idempotent enough for error paths: closing an
  /// already-closed span keeps the first end time.
  void End(uint32_t id);

  /// Record an already-measured region (start/end in microseconds
  /// since the trace epoch, see NowUs).
  void AddTimed(uint32_t parent, const std::string& name, uint64_t start_us,
                uint64_t end_us);

  /// Append an annotation to the span ("rows=120"). Multiple notes
  /// join with a space.
  void Note(uint32_t id, const std::string& text);

  /// Microseconds elapsed since this trace was constructed.
  uint64_t NowUs() const;

  /// Copy of all spans, in creation order.
  std::vector<Span> Spans() const;

  /// Indented tree, one span per line:
  ///   execute                     1234us
  ///     filter                     987us  [rows=120]
  std::string ToString() const;

  /// Pre-order walk over the span forest (children in creation
  /// order); `visit` receives each span with its depth. This is how
  /// renderers in higher layers (EXPLAIN ANALYZE's result table)
  /// consume a trace without common/ depending on them.
  void Visit(const std::function<void(const Span&, size_t)>& visit) const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  uint64_t trace_id_ = 0;
  ResourceCounters counters_;
  mutable Mutex mu_;
  std::vector<Span> spans_ GUARDED_BY(mu_);
  /// Thread-CPU clock reading captured at Begin, consumed by End on
  /// the same thread; 0 for AddTimed spans (no live interval).
  std::vector<uint64_t> cpu_start_ns_ GUARDED_BY(mu_);
};

/// Null-safe counter bumps: the instrumented executor paths call
/// these unconditionally; with tracing off they are one branch.
inline void CountRowsScanned(QueryTrace* trace, uint64_t n) {
  if (trace != nullptr)
    trace->counters().rows_scanned.fetch_add(n, std::memory_order_relaxed);
}
inline void CountRowsProduced(QueryTrace* trace, uint64_t n) {
  if (trace != nullptr)
    trace->counters().rows_produced.fetch_add(n, std::memory_order_relaxed);
}
inline void CountMorsel(QueryTrace* trace) {
  if (trace != nullptr)
    trace->counters().morsels.fetch_add(1, std::memory_order_relaxed);
}
/// Bulk variant for fan-out sites where the task count is known up
/// front. Call it once outside the per-morsel lambda: an atomic RMW
/// inside a hot lambda body (even behind a null check) pessimizes the
/// surrounding loop's codegen, which showed up as ~5% on the group-by
/// batch bench.
inline void CountMorsels(QueryTrace* trace, uint64_t n) {
  if (trace != nullptr)
    trace->counters().morsels.fetch_add(n, std::memory_order_relaxed);
}
inline void CountEpochPin(QueryTrace* trace) {
  if (trace != nullptr)
    trace->counters().epoch_pins.fetch_add(1, std::memory_order_relaxed);
}
inline void NoteCacheHit(QueryTrace* trace, bool hit) {
  if (trace != nullptr)
    trace->counters().cache_hit.store(hit ? 1 : 0,
                                      std::memory_order_relaxed);
}

/// RAII span that is a no-op when the trace pointer is null. id()
/// returns 0 (= kNoParent) in that case, so untraced parents chain
/// through transparently.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, uint32_t parent, const char* name)
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->Begin(parent, name);
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->End(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint32_t id() const { return id_; }
  QueryTrace* trace() const { return trace_; }

  /// Annotate this span (no-op when untraced).
  void Note(const std::string& text) {
    if (trace_ != nullptr) trace_->Note(id_, text);
  }

 private:
  QueryTrace* trace_;
  uint32_t id_ = 0;
};

}  // namespace trace
}  // namespace mosaic

#endif  // MOSAIC_COMMON_TRACE_H_
