#include "common/query_log.h"

#include <algorithm>

namespace mosaic {
namespace qlog {

QueryLog& QueryLog::Global() {
  // lint:allow naked-new: intentionally leaked singleton, outlives all
  // threads (records can arrive during static destruction).
  static QueryLog* log = new QueryLog();
  return *log;
}

QueryLog::QueryLog(size_t capacity) {
  slots_.reserve(capacity == 0 ? 1 : capacity);
  for (size_t i = 0; i < std::max<size_t>(capacity, 1); ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

uint64_t QueryLog::Append(QueryRecord record) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  record.query_id = id;
  Slot& slot = *slots_[(id - 1) % slots_.size()];
  MutexLock lock(slot.mu);
  // Wraparound race: two writers 'capacity' apart can contend for the
  // slot; keep whichever record is newer so ids never go backwards
  // within a slot.
  if (record.query_id > slot.seq) {
    slot.seq = record.query_id;
    slot.record = std::move(record);
  }
  return id;
}

std::vector<QueryRecord> QueryLog::Snapshot() const {
  std::vector<QueryRecord> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    MutexLock lock(slot->mu);
    if (slot->seq != 0) out.push_back(slot->record);
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.query_id < b.query_id;
            });
  return out;
}

void QueryLog::ResetForTesting() {
  for (auto& slot : slots_) {
    MutexLock lock(slot->mu);
    slot->seq = 0;
    slot->record = QueryRecord();
  }
  next_id_.store(1, std::memory_order_relaxed);
}

}  // namespace qlog
}  // namespace mosaic
