#include "common/cpu.h"

#include <thread>

namespace mosaic {

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kSse2:
      return "sse2";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "scalar";
}

bool CpuSupports(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is baseline on aarch64
#else
      return false;
#endif
    case SimdIsa::kSse2:
#if defined(__x86_64__) || defined(_M_X64)
      return true;  // SSE2 is baseline on x86-64
#else
      return false;
#endif
    case SimdIsa::kAvx2:
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
      // The AVX2 kernels use BMI2 (pdep/pext) for mask<->byte
      // expansion, so both must be present.
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2");
#else
      return false;
#endif
  }
  return false;
}

SimdIsa DetectBestSimdIsa() {
  if (CpuSupports(SimdIsa::kNeon)) return SimdIsa::kNeon;
  if (CpuSupports(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
  if (CpuSupports(SimdIsa::kSse2)) return SimdIsa::kSse2;
  return SimdIsa::kScalar;
}

size_t HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace mosaic
