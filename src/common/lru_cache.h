// A bounded, thread-safe LRU cache with hit/miss/eviction counters.
//
// Replaces the Database's former unbounded std::map model cache and
// backs the query service's canonicalized-SQL result cache. Values
// are returned by copy (cache std::shared_ptr for heavyweight values
// such as trained generators) so entries can be evicted while callers
// still hold a reference.
#ifndef MOSAIC_COMMON_LRU_CACHE_H_
#define MOSAIC_COMMON_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/synchronization.h"

namespace mosaic {

/// Counters describing cache effectiveness; all monotonically
/// increasing except `entries`.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  uint64_t invalidations = 0;  ///< entries dropped by Clear()/Erase()
  size_t entries = 0;
  size_t capacity = 0;

  double hit_rate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

template <typename K, typename V>
class LruCache {
 public:
  /// `capacity` = max entries; 0 disables caching (every Get misses,
  /// Put is a no-op).
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the value and refreshes recency, or nullopt on miss.
  std::optional<V> Get(const K& key) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Like Get, but without touching the hit/miss counters: for the
  /// re-check in double-checked locking, where the first Get already
  /// accounted for the lookup.
  std::optional<V> Peek(const K& key) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Insert or overwrite; evicts the least-recently-used entry when
  /// over capacity.
  void Put(const K& key, V value) {
    MutexLock lock(mu_);
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    ++stats_.insertions;
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++stats_.evictions;
    }
  }

  /// Drops one entry if present.
  void Erase(const K& key) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
  }

  /// Drops every entry (counted as invalidations, not evictions).
  void Clear() {
    MutexLock lock(mu_);
    stats_.invalidations += order_.size();
    order_.clear();
    index_.clear();
  }

  /// Change the bound; evicts LRU entries if shrinking below the
  /// current size.
  void set_capacity(size_t capacity) {
    MutexLock lock(mu_);
    capacity_ = capacity;
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++stats_.evictions;
    }
  }

  size_t size() const {
    MutexLock lock(mu_);
    return order_.size();
  }

  CacheStats Stats() const {
    MutexLock lock(mu_);
    CacheStats out = stats_;
    out.entries = order_.size();
    out.capacity = capacity_;
    return out;
  }

 private:
  mutable Mutex mu_;
  size_t capacity_ GUARDED_BY(mu_);
  std::list<std::pair<K, V>> order_ GUARDED_BY(mu_);  ///< front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator>
      index_ GUARDED_BY(mu_);
  CacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace mosaic

#endif  // MOSAIC_COMMON_LRU_CACHE_H_
