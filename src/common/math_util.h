// Scalar statistics helpers used by the stats module, the benchmark
// harnesses, and the evaluation reports.
#ifndef MOSAIC_COMMON_MATH_UTIL_H_
#define MOSAIC_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace mosaic {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Population variance; 0 for fewer than two values.
double Variance(const std::vector<double>& xs);

/// Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// Weighted mean: sum(w*x)/sum(w); 0 when total weight is 0.
double WeightedMean(const std::vector<double>& xs,
                    const std::vector<double>& ws);

/// p-th percentile (p in [0,100]) by linear interpolation over the
/// sorted values; 0 for an empty vector.
double Percentile(std::vector<double> xs, double p);

/// Median (= 50th percentile).
double Median(std::vector<double> xs);

/// |a - b| / |b| * 100, with the convention that b == 0 yields 0 when
/// a == 0 and 100 otherwise. This is the "percent difference" metric
/// used throughout the paper's evaluation (Figs. 6, 7).
double PercentDiff(double estimate, double truth);

/// Clamp x to [lo, hi].
double Clamp(double x, double lo, double hi);

/// True when |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
bool AlmostEqual(double a, double b, double abs_tol = 1e-9,
                 double rel_tol = 1e-9);

/// Summary statistics of a set of observations, matching what the
/// paper's box plots report (mean marker, whiskers at 3rd/97th pct).
struct BoxStats {
  double mean = 0.0;
  double median = 0.0;
  double p03 = 0.0;   ///< 3rd percentile (lower whisker in Fig. 6)
  double p25 = 0.0;
  double p75 = 0.0;
  double p97 = 0.0;   ///< 97th percentile (upper whisker in Fig. 6)
  double min = 0.0;
  double max = 0.0;
  size_t n = 0;
};

/// Compute BoxStats over the observations.
BoxStats ComputeBoxStats(const std::vector<double>& xs);

}  // namespace mosaic

#endif  // MOSAIC_COMMON_MATH_UTIL_H_
