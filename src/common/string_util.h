// Small string helpers shared across modules (lexer, CSV, pretty
// printers). Kept header-light: no locale dependence, ASCII only —
// SQL keywords and identifiers in Mosaic are ASCII.
#ifndef MOSAIC_COMMON_STRING_UTIL_H_
#define MOSAIC_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mosaic {

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// ASCII upper-case copy.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strip leading and trailing whitespace.
std::string_view Trim(std::string_view s);

/// Split on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Join with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Strict non-negative base-10 integer parse: the whole string
/// (surrounding whitespace allowed) must be digits, and the value
/// must fit uint64. Rejects empty input, signs, trailing garbage, and
/// overflow — the shared parser behind numeric environment knobs
/// (common/env.h) and the server binaries' flag parsing, so a typo'd
/// `MOSAIC_MORSELS=1e6` or `--port=80x` fails loudly instead of
/// silently misconfiguring.
[[nodiscard]] Result<uint64_t> ParseUint64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Format a double trimming trailing zeros ("1.5", "3", "0.001").
std::string FormatDouble(double v, int max_precision = 6);

/// Render rows as an aligned, pipe-separated text table (for bench
/// harness output).
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

}  // namespace mosaic

#endif  // MOSAIC_COMMON_STRING_UTIL_H_
