// 64-byte-aligned vector storage for SIMD-scanned buffers.
//
// Column payloads, selection vectors, and batch outputs are read by
// the vector kernels in exec/simd.h; starting every such allocation on
// a cache-line boundary means a full-width load at a span head never
// straddles lines (morsel slices still start mid-buffer — the kernels
// use unaligned loads and only the base allocation is guaranteed).
#ifndef MOSAIC_COMMON_ALIGNED_H_
#define MOSAIC_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace mosaic {

/// Cache-line alignment for all SIMD-visible buffers; also at least
/// the widest vector register the kernels use (64 >= 32-byte AVX2).
inline constexpr size_t kSimdAlignment = 64;

template <typename T, size_t Alignment = kSimdAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment below the type's own");

  AlignedAllocator() = default;
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): converting rebind
  // copy, required implicit by the allocator protocol.
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    if (n == 0) return nullptr;
    // Over-aligned operator new (C++17) — matched by the sized,
    // aligned delete below.
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

/// std::vector whose data() is 64-byte aligned. Element access and
/// iteration are identical to std::vector; only the allocator differs,
/// so converting a call site is a type change, not a behavior change.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace mosaic

#endif  // MOSAIC_COMMON_ALIGNED_H_
