#include "common/metrics.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace mosaic {
namespace metrics {

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target sample (1-based, ceil like Prometheus's
  // histogram_quantile).
  double rank = q * double(count);
  if (rank < 1.0) rank = 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    uint64_t next = cumulative + buckets[i];
    if (double(next) >= rank) {
      // Interpolate inside bucket i: lower bound is the previous
      // bucket's upper bound + 1 (0 for the zero bucket).
      double lo = i == 0 ? 0.0 : double(Histogram::BucketUpperBound(i - 1));
      double hi = i == 0 ? 0.0
                  : i + 1 >= buckets.size()
                      ? lo * 2.0  // open-ended last bucket: assume 2x
                      : double(Histogram::BucketUpperBound(i));
      double frac = (rank - double(cumulative)) / double(buckets[i]);
      return lo + (hi - lo) * frac;
    }
    cumulative = next;
  }
  return double(Histogram::BucketUpperBound(buckets.size() - 1));
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

size_t Histogram::BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  size_t bits = 0;
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return std::min(bits, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i >= kNumBuckets - 1) return UINT64_MAX;
  if (i >= 64) return UINT64_MAX;
  return (uint64_t(1) << i) - 1;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  // count is derived from the buckets so it always equals their
  // total, even when the snapshot races a concurrent Record.
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::Global() {
  // lint:allow naked-new: intentionally leaked singleton, outlives all
  // threads so metrics recorded during static destruction stay safe.
  static Registry* g = new Registry();
  return *g;
}

void Registry::SetHelpLocked(const std::string& name,
                             const std::string& help) {
  if (help.empty()) return;
  auto& slot = helps_[name];
  if (slot.empty()) slot = help;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help) {
  MutexLock lock(mu_);
  SetHelpLocked(name, help);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help) {
  MutexLock lock(mu_);
  SetHelpLocked(name, help);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help) {
  MutexLock lock(mu_);
  SetHelpLocked(name, help);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, uint64_t> Registry::CounterValues() const {
  MutexLock lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->Value();
  return out;
}

std::map<std::string, int64_t> Registry::GaugeValues() const {
  MutexLock lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, g] : gauges_) out[name] = g->Value();
  return out;
}

std::map<std::string, HistogramSnapshot> Registry::HistogramSnapshots()
    const {
  MutexLock lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h->Snapshot();
  return out;
}

std::string PrometheusName(const std::string& name) {
  // Text-format metric names match [a-zA-Z_:][a-zA-Z0-9_:]*. Replace
  // every out-of-charset byte (isalnum is locale-sensitive and admits
  // non-ASCII alphanumerics under some locales, so test bytes
  // explicitly) and force a legal first character.
  std::string out = name.empty() ? "_" : name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string PrometheusHelpEscape(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Registry::RenderPrometheus() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  // Local alias: the lambda body is analyzed as its own function with
  // no capabilities held, so it must not touch the guarded field
  // directly.
  const std::map<std::string, std::string>& helps = helps_;
  auto help_line = [&](const std::string& name, const std::string& n) {
    auto it = helps.find(name);
    if (it != helps.end() && !it->second.empty()) {
      out << "# HELP " << n << " " << PrometheusHelpEscape(it->second)
          << "\n";
    }
  };
  for (const auto& [name, c] : counters_) {
    std::string n = PrometheusName(name);
    help_line(name, n);
    out << "# TYPE " << n << " counter\n";
    out << n << " " << c->Value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    std::string n = PrometheusName(name);
    help_line(name, n);
    out << "# TYPE " << n << " gauge\n";
    out << n << " " << g->Value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::string n = PrometheusName(name);
    HistogramSnapshot snap = h->Snapshot();
    help_line(name, n);
    out << "# TYPE " << n << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      cumulative += snap.buckets[i];
      // Collapse empty leading/trailing buckets is tempting, but a
      // fixed bucket list keeps scrape output schema-stable.
      out << n << "_bucket{le=\"";
      if (i + 1 >= snap.buckets.size()) {
        out << "+Inf";
      } else {
        out << Histogram::BucketUpperBound(i);
      }
      out << "\"} " << cumulative << "\n";
    }
    out << n << "_sum " << snap.sum << "\n";
    out << n << "_count " << snap.count << "\n";
  }
  return out.str();
}

void Registry::ResetForTesting() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace metrics
}  // namespace mosaic
