// Minimal `--flag=value` parsing for the example binaries, sharing
// the strict numeric parse (ParseUint64) with the engine's env knobs
// so a typo'd flag aborts startup instead of half-configuring the
// process. Header-only: two helpers, no registry — the binaries have
// a handful of flags each.
#ifndef MOSAIC_COMMON_FLAGS_H_
#define MOSAIC_COMMON_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"

namespace mosaic {

/// If `arg` is `--<name>=<number>`, store the strictly parsed value
/// and return true; on garbage/overflow print an error naming `prog`
/// and exit(2). Returns false when `arg` is some other flag.
inline bool NumericFlag(const char* arg, const char* name, uint64_t* out,
                        const char* prog) {
  const std::string prefix = std::string("--") + name + "=";
  if (!StartsWith(arg, prefix)) return false;
  auto parsed = ParseUint64(arg + prefix.size());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: bad %s: %s\n", prog, arg,
                 parsed.status().message().c_str());
    std::exit(2);
  }
  *out = *parsed;
  return true;
}

/// If `arg` is `--<name>=<value>`, store the value and return true.
inline bool StringFlag(const char* arg, const char* name,
                       std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (!StartsWith(arg, prefix)) return false;
  *out = arg + prefix.size();
  return true;
}

}  // namespace mosaic

#endif  // MOSAIC_COMMON_FLAGS_H_
