// Structured event log: a JSON-lines sink for machine-readable
// operational events (slow queries, server lifecycle, recovery,
// snapshots), complementing the free-text MOSAIC_LOG stream.
//
// One line per event:
//   {"ts_us":1754550000123456,"level":"warning","event":"slow_query",
//    "trace_id":"00000000075bcd15","sql":"SELECT ...","elapsed_ms":"17"}
//
// `ts_us` is wall-clock microseconds since the Unix epoch (a number);
// every other field value is an escaped JSON string — observability
// pipelines parse strings fine, and uniform typing keeps the writer
// trivial. `trace_id` (zero-padded hex, omitted when 0) correlates
// events with the wire-propagated trace context in QueryTrace.
//
// Rotation. The sink is size-capped: when the live file would exceed
// max_bytes it is renamed to <path>.1 (replacing the previous .1) and
// a fresh file is opened, so disk use is bounded by ~2*max_bytes and
// the most recent events always survive — the failure mode this
// replaces was the slow-query log growing without bound.
//
// Thread-safety: Emit serializes on one mutex (an event is rare
// relative to queries; the hot path never logs). When no file is open
// the sink is disabled and Emit returns after one atomic load.
#ifndef MOSAIC_COMMON_EVENT_LOG_H_
#define MOSAIC_COMMON_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/synchronization.h"

namespace mosaic {
namespace elog {

using Fields = std::vector<std::pair<std::string, std::string>>;

/// Escape `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

class EventLog {
 public:
  /// The process-wide sink (disabled until Open is called; programs
  /// opt in via --log-json).
  static EventLog& Global();

  EventLog() = default;
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Open (appending) the sink at `path`, rotating to <path>.1 when
  /// the file would exceed `max_bytes`. Replaces any previously open
  /// sink.
  [[nodiscard]] Status Open(const std::string& path, uint64_t max_bytes = kDefaultMaxBytes);

  /// Flush and close; Emit becomes a no-op again.
  void Close();

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Write one event line. No-op (one atomic load) when disabled.
  /// Events at a level below the global log level are still written —
  /// the JSON sink is for machines, the stderr level is for humans.
  void Emit(LogLevel level, const std::string& event, const Fields& fields,
            uint64_t trace_id = 0);

  /// Events written since Open (survives rotation, not Close).
  uint64_t events_written() const {
    return events_written_.load(std::memory_order_relaxed);
  }
  uint64_t rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }

  static constexpr uint64_t kDefaultMaxBytes = 8ull << 20;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> events_written_{0};
  std::atomic<uint64_t> rotations_{0};
  Mutex mu_;
  std::FILE* file_ GUARDED_BY(mu_) = nullptr;
  std::string path_ GUARDED_BY(mu_);
  uint64_t max_bytes_ GUARDED_BY(mu_) = kDefaultMaxBytes;
  uint64_t bytes_ GUARDED_BY(mu_) = 0;  ///< size of the live file
};

}  // namespace elog
}  // namespace mosaic

#endif  // MOSAIC_COMMON_EVENT_LOG_H_
