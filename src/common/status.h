// Status and Result<T> error-handling primitives, in the RocksDB/Arrow
// idiom: fallible operations return Status (or Result<T> when they
// produce a value) instead of throwing.
#ifndef MOSAIC_COMMON_STATUS_H_
#define MOSAIC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace mosaic {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kTypeError,
  kExecutionError,
  kNotImplemented,
  kInternal,
  kIOError,
  kNotConverged,
};

/// Human-readable name of a StatusCode, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus a free-form message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// [[nodiscard]] on the class makes silently dropping any returned
/// Status a compiler warning (an error under -Werror builds); discard
/// deliberately with a `(void)` cast and a comment saying why.
class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  [[nodiscard]] static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  [[nodiscard]] static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  [[nodiscard]] static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value or an error. Moves the value out with ValueOrDie()/operator*.
/// [[nodiscard]] for the same reason as Status: an ignored Result is
/// an ignored error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accesses the held value.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// Requires ok(). Moves the held value out.
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate errors up the call stack.
#define MOSAIC_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::mosaic::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

// Evaluate a Result-returning expression; on error propagate, otherwise
// bind the value to `lhs`. `lhs` may be a declaration.
#define MOSAIC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define MOSAIC_CONCAT_INNER(a, b) a##b
#define MOSAIC_CONCAT(a, b) MOSAIC_CONCAT_INNER(a, b)

#define MOSAIC_ASSIGN_OR_RETURN(lhs, expr) \
  MOSAIC_ASSIGN_OR_RETURN_IMPL(            \
      MOSAIC_CONCAT(_result_, __LINE__), lhs, expr)

}  // namespace mosaic

#endif  // MOSAIC_COMMON_STATUS_H_
