#include "common/logging.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "common/synchronization.h"

namespace mosaic {

namespace {
LogLevel g_level = LogLevel::kInfo;

/// Serializes emission so concurrent server/pool threads never
/// interleave partial lines.
Mutex& EmitMutex() {
  // Leaked so it outlives all threads; a function-local static object
  // would be destroyed before detached pool threads stop logging.
  static Mutex* mu = new Mutex();  // lint:allow naked-new: intentional leak
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

/// Short stable id for the calling thread (dense 1,2,3... in first-
/// log order — readable, unlike the hashed native handle).
unsigned ThreadLogId() {
  static std::atomic<unsigned> next{1};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Wall-clock timestamp with microseconds: HH:MM:SS.uuuuuu.
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  struct tm tm_buf;
  localtime_r(&ts.tv_sec, &tm_buf);
  char when[32];
  std::snprintf(when, sizeof(when), "%02d:%02d:%02d.%06ld", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, ts.tv_nsec / 1000);
  stream_ << "[" << when << " T" << ThreadLogId() << " " << LevelName(level)
          << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_level) return;
  std::string line = stream_.str();
  line += '\n';
  // One write(2) per line under the mutex: the mutex orders lines
  // within this process, the single syscall keeps a line contiguous
  // even when stderr is shared with child processes.
  MutexLock lock(EmitMutex());
  ssize_t ignored = ::write(STDERR_FILENO, line.data(), line.size());
  (void)ignored;
}

}  // namespace internal

}  // namespace mosaic
