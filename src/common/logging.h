// Minimal leveled logging. Benchmarks and training loops use INFO for
// progress; tests run with the level raised to WARNING to stay quiet.
#ifndef MOSAIC_COMMON_LOGGING_H_
#define MOSAIC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mosaic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MOSAIC_LOG(level)                                       \
  ::mosaic::internal::LogMessage(::mosaic::LogLevel::k##level, \
                                 __FILE__, __LINE__)

}  // namespace mosaic

#endif  // MOSAIC_COMMON_LOGGING_H_
