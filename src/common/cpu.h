// CPU feature detection for the SIMD kernel dispatch (exec/simd.h).
//
// Detection answers "what can this CPU run", not "what did we compile"
// — the exec layer combines both (plus the MOSAIC_SIMD override) to
// pick the active kernel table. Levels are ordered: a higher level
// implies every lower x86 level (AVX2 CPUs run the SSE2 kernels), so
// the dispatcher can fall down the ladder when a variant was not
// compiled in.
#ifndef MOSAIC_COMMON_CPU_H_
#define MOSAIC_COMMON_CPU_H_

#include <cstddef>

namespace mosaic {

/// Instruction-set level of a SIMD kernel variant. kScalar is always
/// available and is the bit-parity reference for every other level.
enum class SimdIsa { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

/// Stable lowercase name ("scalar", "sse2", "avx2", "neon") — used in
/// bench JSON, EXPLAIN ANALYZE notes, and the MOSAIC_SIMD override.
const char* SimdIsaName(SimdIsa isa);

/// Best level this CPU supports at runtime (cpuid on x86; NEON is
/// baseline on aarch64). Independent of what was compiled.
SimdIsa DetectBestSimdIsa();

/// True when `isa` can run on this CPU.
bool CpuSupports(SimdIsa isa);

/// Hardware threads (>= 1) — recorded in bench JSON so a 1.0x morsel
/// "speedup" on a 1-core container is attributable from the file
/// alone.
size_t HardwareThreads();

}  // namespace mosaic

#endif  // MOSAIC_COMMON_CPU_H_
