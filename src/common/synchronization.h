// Annotated synchronization primitives: drop-in wrappers over
// std::mutex / std::shared_mutex carrying Clang thread-safety
// capability attributes, so the locking discipline of every
// mutex-coordinated subsystem is checked at *compile time* under
// `clang -Wthread-safety` (wired up as cmake -DMOSAIC_ANALYZE=ON and
// the `static` leg of scripts/check.sh).
//
// Conventions (see README "Static analysis"):
//   - Fields a mutex protects are declared `T field_ GUARDED_BY(mu_);`
//     any access outside a critical section on mu_ is a build error
//     under the analysis.
//   - Private helpers that assume the caller holds a lock are declared
//     `void FooLocked() REQUIRES(mu_);` — the contract that used to
//     live in a comment becomes machine-checked at every call site.
//   - Critical sections use the scoped guards (MutexLock, ReaderLock,
//     WriterLock), never bare Lock()/Unlock() pairs, so the analysis
//     sees every acquire/release and exceptions cannot leak a lock.
//   - Condition waits go through CondVar, whose Wait* methods take the
//     MutexLock by reference: the lock is held before and after the
//     wait, which is exactly what the (condvar-oblivious) analysis
//     assumes. Wait predicates are written as explicit while-loops at
//     the call site — a lambda body is analyzed as a separate function
//     with no capabilities held and would false-positive on guarded
//     reads.
//
// On non-Clang compilers (and Clang without the attribute support)
// every macro expands to nothing and every wrapper is a zero-overhead
// veneer over the std primitive, so GCC builds are byte-for-byte
// unaffected.
#ifndef MOSAIC_COMMON_SYNCHRONIZATION_H_
#define MOSAIC_COMMON_SYNCHRONIZATION_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// --- Clang thread-safety attribute macros ----------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MOSAIC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MOSAIC_THREAD_ANNOTATION
#define MOSAIC_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) MOSAIC_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY MOSAIC_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) MOSAIC_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) MOSAIC_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  MOSAIC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  MOSAIC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) MOSAIC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  MOSAIC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) MOSAIC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  MOSAIC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  MOSAIC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) MOSAIC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) MOSAIC_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) MOSAIC_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  MOSAIC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mosaic {

// --- Capabilities -----------------------------------------------------------

/// std::mutex with the `mutex` capability. Prefer the scoped guards;
/// Lock()/Unlock() exist for the rare staged-handoff patterns and for
/// building new guards.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Dynamic fallback for invariants the static analysis cannot see
  /// (e.g. a lock handed across threads): aborts the analysis path
  /// instead of warning.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

  /// The wrapped std::mutex, for interop with std APIs that demand it
  /// (std::condition_variable via CondVar below).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with the `shared_mutex` capability: exclusive for
/// writers (Lock), shared for readers (LockShared).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE(true) { return mu_.try_lock_shared(); }

  void AssertHeld() ASSERT_CAPABILITY(this) {}

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

// --- Scoped guards ----------------------------------------------------------

/// RAII exclusive lock on a Mutex (std::lock_guard replacement). The
/// manual Unlock()/Lock() pair supports the drop-the-lock-run-inline
/// pattern (ThreadPool::Submit); the destructor releases only if held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release early (destructor then does nothing).
  void Unlock() RELEASE() { lock_.unlock(); }
  /// Reacquire after Unlock().
  void Lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu)
      : lock_(mu.native()) {}
  /// Deferred form: construct unlocked, acquire later with Lock().
  ReaderLock(SharedMutex& mu, std::defer_lock_t) EXCLUDES(mu)
      : lock_(mu.native(), std::defer_lock) {}
  ~ReaderLock() RELEASE() = default;

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

  void Lock() ACQUIRE_SHARED() { lock_.lock(); }
  void Unlock() RELEASE() { lock_.unlock(); }

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : lock_(mu.native()) {}
  WriterLock(SharedMutex& mu, std::defer_lock_t) EXCLUDES(mu)
      : lock_(mu.native(), std::defer_lock) {}
  ~WriterLock() RELEASE() = default;

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  void Lock() ACQUIRE() { lock_.lock(); }
  void Unlock() RELEASE() { lock_.unlock(); }

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

// --- Condition variable -----------------------------------------------------

/// std::condition_variable over Mutex/MutexLock. The analysis does not
/// model the release-wait-reacquire inside Wait; since the lock is
/// held on entry and on return, guarded accesses on either side check
/// out — but the caller must re-test its predicate in a while-loop, as
/// with any condvar.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `lock`, wait for a notification, reacquire.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Wait with a timeout; returns false on timeout. Predicate-free on
  /// purpose (see the lambda note in the file comment) — loop at the
  /// call site.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mosaic

#endif  // MOSAIC_COMMON_SYNCHRONIZATION_H_
