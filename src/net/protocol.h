// Mosaic wire protocol v1: the versioned binary boundary between the
// TCP server (net/server.h) and clients (net/client.h).
//
// Framing
//   Every message is one length-prefixed frame:
//
//     | bytes | field                                        |
//     |-------|----------------------------------------------|
//     | 4     | frame length N, uint32 little-endian         |
//     | 1     | message type tag (MessageType)               |
//     | N - 1 | payload, message-type specific               |
//
//   N counts everything after the length field (tag + payload), so an
//   empty-payload message has N = 1. Frames larger than
//   kMaxFrameBytes are a protocol error: the decoder rejects the
//   length prefix without buffering (a hostile 4 GiB length can never
//   trigger an allocation).
//
// Conversation
//   client: HELLO  -> server: HELLO_OK       (version handshake)
//   client: QUERY  -> server: RESULT         (one statement)
//   client: BATCH  -> server: BATCH_RESULT   (fan-out on the pool)
//   client: STATS  -> server: STATS_RESULT   (service + server view)
//   client: CLOSE  -> server: GOODBYE        (then the socket closes)
//   server: ERROR                            (protocol violation; the
//                                             connection closes after)
//
//   Requests may be pipelined; the server answers in request order.
//
// Encoding
//   Integers are little-endian fixed width; doubles are IEEE-754 bit
//   patterns in a uint64; strings are a uint32 length plus raw bytes;
//   bools are one byte. Result tables travel columnar: schema, row
//   count, then per-column payloads — string columns ship their
//   dictionary once plus int32 codes, so a 1M-row categorical column
//   costs 4 bytes/row, not a string each. Every decoder is
//   bounds-checked and returns Status on truncated, oversized, or
//   malformed input; decoding never reads past the payload and never
//   trusts a declared size it has not verified against the bytes
//   actually present (tests/test_net_protocol.cc fuzzes this).
#ifndef MOSAIC_NET_PROTOCOL_H_
#define MOSAIC_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/table.h"
#include "storage/value.h"

namespace mosaic {
namespace net {

/// Protocol revision spoken by this build. HELLO carries the client's
/// version; the server refuses mismatches with an ERROR frame so old
/// clients fail loudly instead of misparsing.
constexpr uint32_t kProtocolVersion = 1;

/// Backwards-compatible revision within kProtocolVersion. Minor 1
/// appends histogram snapshots and extra counters to STATS_RESULT and
/// the server's minor version to HELLO_OK — all strictly appended, so
/// a minor-0 peer decodes the prefix it knows and ignores the tail
/// (decoders never require the appended bytes to be present). Minor 2
/// appends a trace context (trace_id, parent_span_id, sample flag) to
/// QUERY and BATCH under the same rule: an absent tail decodes as "no
/// trace context", a partially present one is a protocol error.
constexpr uint32_t kProtocolMinorVersion = 2;

/// Upper bound on one frame's length field. Limits both directions:
/// decoders reject bigger prefixes before allocating, encoders refuse
/// to produce unreadable frames.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Bytes of the length prefix preceding every frame.
constexpr size_t kFrameLengthBytes = 4;

enum class MessageType : uint8_t {
  // Client -> server.
  kHello = 0x01,
  kQuery = 0x02,
  kBatch = 0x03,
  kStats = 0x04,
  kClose = 0x05,
  // Server -> client (high bit set).
  kHelloOk = 0x81,
  kResult = 0x82,
  kBatchResult = 0x83,
  kStatsResult = 0x84,
  kGoodbye = 0x85,
  kError = 0x86,
};

/// True for tags this protocol revision understands.
bool IsKnownMessageType(uint8_t tag);

/// Debug name ("QUERY", "RESULT", ...); "UNKNOWN" for foreign tags.
const char* MessageTypeName(MessageType type);

/// One decoded frame: the tag plus its raw payload bytes.
struct Frame {
  MessageType type = MessageType::kError;
  std::string payload;
};

/// Serialize one frame (length prefix + tag + payload).
std::string EncodeFrame(MessageType type, std::string_view payload);

/// Incremental frame decoder for a byte stream. Feed whatever the
/// socket produced — any split, down to one byte at a time — and pop
/// complete frames. A malformed length prefix poisons the stream
/// (every later Next returns the same error), matching the server's
/// close-on-protocol-error behaviour.
class FrameReader {
 public:
  /// Append raw bytes from the transport.
  void Feed(const char* data, size_t n);

  /// Pop the next complete frame into `*frame`. Returns true when a
  /// frame was produced, false when more bytes are needed; Status on
  /// an oversized or corrupt length prefix.
  [[nodiscard]] Result<bool> Next(Frame* frame);

  /// Bytes buffered but not yet returned as frames.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  Status error_;
};

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

/// Append-only payload builder.
class WireWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  /// uint32 length + raw bytes.
  void PutString(std::string_view s);

  const std::string& buffer() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked payload reader over a non-owning byte view.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  [[nodiscard]] Result<uint8_t> ReadU8();
  [[nodiscard]] Result<bool> ReadBool();
  [[nodiscard]] Result<uint32_t> ReadU32();
  [[nodiscard]] Result<uint64_t> ReadU64();
  [[nodiscard]] Result<int64_t> ReadI64();
  [[nodiscard]] Result<double> ReadDouble();
  /// Rejects declared lengths exceeding the bytes actually present.
  [[nodiscard]] Result<std::string> ReadString();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return remaining() == 0; }

 private:
  [[nodiscard]] Status Need(size_t n, const char* what);

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Mosaic object codecs
// ---------------------------------------------------------------------------

/// Scalar Value: one type tag byte + payload; NULL is the tag alone.
void EncodeValue(const Value& v, WireWriter* w);
[[nodiscard]] Result<Value> DecodeValue(WireReader* r);

/// Status: code byte + message string. (Decode uses an out-parameter
/// because Result<Status> would be ill-formed.)
void EncodeStatus(const Status& s, WireWriter* w);
[[nodiscard]] Status DecodeStatus(WireReader* r, Status* out);

/// Columnar table codec (schema, row count, column payloads; string
/// columns as dictionary + codes).
void EncodeTable(const Table& t, WireWriter* w);
[[nodiscard]] Result<Table> DecodeTable(WireReader* r);

/// Outcome of one statement as it travels the wire: `table` is
/// meaningful iff `status.ok()`.
struct QueryOutcome {
  Status status;
  Table table;

  bool ok() const { return status.ok(); }
};

void EncodeQueryOutcome(const QueryOutcome& o, WireWriter* w);
[[nodiscard]] Result<QueryOutcome> DecodeQueryOutcome(WireReader* r);

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

struct HelloRequest {
  uint32_t version = kProtocolVersion;
  std::string client_name;
};

struct HelloReply {
  uint32_t version = kProtocolVersion;
  uint64_t session_id = 0;
  std::string server_name;
  /// Appended in minor 1; decodes as 0 from a minor-0 server.
  uint32_t minor_version = kProtocolMinorVersion;
};

/// Combined service + network counters answered to STATS. Encoded as
/// a field-count-prefixed list of uint64s so a newer server can append
/// counters without breaking older clients (they skip the tail).
struct StatsSnapshot {
  uint64_t queries_total = 0;
  uint64_t queries_failed = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_entries = 0;
  uint64_t model_cache_hits = 0;
  uint64_t model_cache_insertions = 0;
  uint64_t connections_opened = 0;
  uint64_t connections_active = 0;
  uint64_t connections_rejected = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t protocol_errors = 0;
  /// Versioned weight-store activity (appended in protocol v1 — old
  /// clients skip the tail, old servers leave these zero).
  uint64_t weight_epochs_published = 0;
  uint64_t weight_refits_total = 0;
  uint64_t weight_refits_skipped = 0;
  uint64_t weight_refits_incremental = 0;
  /// Appended in minor 1 (same skip-the-tail rule).
  uint64_t connections_closed = 0;
  uint64_t malformed_frames = 0;
  uint64_t inflight_highwater = 0;

  /// Named latency histograms, appended in minor 1 AFTER the uint64
  /// list: a minor-0 client's decoder stops at the declared field
  /// count and never sees them; a minor-1 decoder treats an absent
  /// section (minor-0 server) as empty.
  struct HistogramEntry {
    std::string name;
    metrics::HistogramSnapshot histogram;
  };
  std::vector<HistogramEntry> histograms;
};

/// Histogram codec (name + sum + buckets; the sample count is derived
/// from the bucket totals on decode).
void EncodeHistogramSnapshot(const std::string& name,
                             const metrics::HistogramSnapshot& h,
                             WireWriter* w);
[[nodiscard]] Result<StatsSnapshot::HistogramEntry> DecodeHistogramSnapshot(
    WireReader* r);

std::string EncodeHelloRequest(const HelloRequest& m);
[[nodiscard]] Result<HelloRequest> DecodeHelloRequest(std::string_view payload);

std::string EncodeHelloReply(const HelloReply& m);
[[nodiscard]] Result<HelloReply> DecodeHelloReply(std::string_view payload);

/// Distributed-trace context appended (minor 2) to QUERY and BATCH.
/// All-zero means "no context"; `sampled` asks the server to collect
/// spans for the statement even when it does not trace by default.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = false;

  bool empty() const {
    return trace_id == 0 && parent_span_id == 0 && !sampled;
  }
};

/// Encoded size of a TraceContext tail (two u64 + one bool).
constexpr size_t kTraceContextBytes = 17;

/// QUERY payload: the SQL text, then (minor 2) the trace context.
struct QueryRequest {
  std::string sql;
  TraceContext trace;
};

/// BATCH payload: uint32 count + SQL strings, then (minor 2) one
/// trace context covering every statement in the batch.
struct BatchRequest {
  std::vector<std::string> sqls;
  TraceContext trace;
};

/// Legacy (minor 0/1) shape: SQL only, no trace tail. Kept for wire
/// compatibility tests and old-client emulation.
std::string EncodeQueryRequest(const std::string& sql);
std::string EncodeQueryRequest(const QueryRequest& m);
[[nodiscard]] Result<QueryRequest> DecodeQueryRequest(std::string_view payload);

std::string EncodeBatchRequest(const std::vector<std::string>& sqls);
std::string EncodeBatchRequest(const BatchRequest& m);
[[nodiscard]] Result<BatchRequest> DecodeBatchRequest(std::string_view payload);

/// RESULT payload: one QueryOutcome.
std::string EncodeResultReply(const QueryOutcome& outcome);
[[nodiscard]] Result<QueryOutcome> DecodeResultReply(std::string_view payload);

/// BATCH_RESULT payload: uint32 count + outcomes, in request order.
std::string EncodeBatchResultReply(const std::vector<QueryOutcome>& outcomes);
[[nodiscard]] Result<std::vector<QueryOutcome>> DecodeBatchResultReply(
    std::string_view payload);

std::string EncodeStatsReply(const StatsSnapshot& m);
[[nodiscard]] Result<StatsSnapshot> DecodeStatsReply(std::string_view payload);

/// ERROR payload: the Status that killed the conversation.
std::string EncodeErrorReply(const Status& status);
[[nodiscard]] Status DecodeErrorReply(std::string_view payload, Status* out);

}  // namespace net
}  // namespace mosaic

#endif  // MOSAIC_NET_PROTOCOL_H_
