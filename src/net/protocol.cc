#include "net/protocol.h"

#include <cstring>

#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/schema.h"

namespace mosaic {
namespace net {

namespace {

[[nodiscard]] Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated frame: ") + what);
}

/// Highest valid StatusCode, for decoding.
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(
    StatusCode::kNotConverged);

/// Highest valid DataType tag, for decoding.
constexpr uint8_t kMaxDataTypeTag = static_cast<uint8_t>(DataType::kBool);

}  // namespace

bool IsKnownMessageType(uint8_t tag) {
  switch (static_cast<MessageType>(tag)) {
    case MessageType::kHello:
    case MessageType::kQuery:
    case MessageType::kBatch:
    case MessageType::kStats:
    case MessageType::kClose:
    case MessageType::kHelloOk:
    case MessageType::kResult:
    case MessageType::kBatchResult:
    case MessageType::kStatsResult:
    case MessageType::kGoodbye:
    case MessageType::kError:
      return true;
  }
  return false;
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello:
      return "HELLO";
    case MessageType::kQuery:
      return "QUERY";
    case MessageType::kBatch:
      return "BATCH";
    case MessageType::kStats:
      return "STATS";
    case MessageType::kClose:
      return "CLOSE";
    case MessageType::kHelloOk:
      return "HELLO_OK";
    case MessageType::kResult:
      return "RESULT";
    case MessageType::kBatchResult:
      return "BATCH_RESULT";
    case MessageType::kStatsResult:
      return "STATS_RESULT";
    case MessageType::kGoodbye:
      return "GOODBYE";
    case MessageType::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(MessageType type, std::string_view payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size() + 1);
  std::string out;
  out.reserve(kFrameLengthBytes + length);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  out.push_back(static_cast<char>(type));
  out.append(payload.data(), payload.size());
  return out;
}

void FrameReader::Feed(const char* data, size_t n) {
  // Compact lazily: drop consumed bytes once they dominate the buffer
  // so long-lived connections do not grow without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

Result<bool> FrameReader::Next(Frame* frame) {
  if (!error_.ok()) return error_;
  if (buffered() < kFrameLengthBytes) return false;
  // This *is* the bounds-checked cursor: buffered() was tested
  // against kFrameLengthBytes above.
  const unsigned char* p = reinterpret_cast<const unsigned char*>(
      buf_.data() + pos_);  // lint:allow wire-pointer-arith: see above
  const uint32_t length = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  if (length == 0) {
    error_ = Status::InvalidArgument("frame length 0: missing type tag");
    return error_;
  }
  if (length > kMaxFrameBytes) {
    error_ = Status::InvalidArgument(
        "frame length " + std::to_string(length) + " exceeds limit " +
        std::to_string(kMaxFrameBytes));
    return error_;
  }
  if (buffered() < kFrameLengthBytes + length) return false;
  frame->type =
      static_cast<MessageType>(buf_[pos_ + kFrameLengthBytes]);
  frame->payload.assign(buf_, pos_ + kFrameLengthBytes + 1, length - 1);
  pos_ += kFrameLengthBytes + length;
  return true;
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

Status WireReader::Need(size_t n, const char* what) {
  if (remaining() < n) return Truncated(what);
  return Status::OK();
}

Result<uint8_t> WireReader::ReadU8() {
  MOSAIC_RETURN_IF_ERROR(Need(1, "u8"));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<bool> WireReader::ReadBool() {
  MOSAIC_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  return v != 0;
}

Result<uint32_t> WireReader::ReadU32() {
  MOSAIC_RETURN_IF_ERROR(Need(4, "u32"));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::ReadU64() {
  MOSAIC_RETURN_IF_ERROR(Need(8, "u64"));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> WireReader::ReadI64() {
  MOSAIC_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> WireReader::ReadDouble() {
  MOSAIC_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::ReadString() {
  MOSAIC_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  // The declared length must be covered by bytes already present —
  // never allocate on the strength of an unverified prefix.
  MOSAIC_RETURN_IF_ERROR(Need(len, "string body"));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

// ---------------------------------------------------------------------------
// Value / Status
// ---------------------------------------------------------------------------

void EncodeValue(const Value& v, WireWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kInt64:
      w->PutI64(v.AsInt64());
      break;
    case DataType::kDouble:
      w->PutDouble(v.AsDouble());
      break;
    case DataType::kString:
      w->PutString(v.AsString());
      break;
    case DataType::kBool:
      w->PutBool(v.AsBool());
      break;
  }
}

[[nodiscard]] Result<Value> DecodeValue(WireReader* r) {
  MOSAIC_ASSIGN_OR_RETURN(uint8_t tag, r->ReadU8());
  if (tag > kMaxDataTypeTag) {
    return Status::InvalidArgument("unknown value type tag " +
                                   std::to_string(tag));
  }
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kInt64: {
      MOSAIC_ASSIGN_OR_RETURN(int64_t v, r->ReadI64());
      return Value(v);
    }
    case DataType::kDouble: {
      MOSAIC_ASSIGN_OR_RETURN(double v, r->ReadDouble());
      return Value(v);
    }
    case DataType::kString: {
      MOSAIC_ASSIGN_OR_RETURN(std::string v, r->ReadString());
      return Value(std::move(v));
    }
    case DataType::kBool: {
      MOSAIC_ASSIGN_OR_RETURN(bool v, r->ReadBool());
      return Value(v);
    }
  }
  return Status::Internal("unreachable value tag");
}

void EncodeStatus(const Status& s, WireWriter* w) {
  w->PutU8(static_cast<uint8_t>(s.code()));
  w->PutString(s.message());
}

[[nodiscard]] Status DecodeStatus(WireReader* r, Status* out) {
  MOSAIC_ASSIGN_OR_RETURN(uint8_t code, r->ReadU8());
  if (code > kMaxStatusCode) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  MOSAIC_ASSIGN_OR_RETURN(std::string msg, r->ReadString());
  *out = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

void EncodeTable(const Table& t, WireWriter* w) {
  const Schema& schema = t.schema();
  w->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    w->PutString(schema.column(c).name);
    w->PutU8(static_cast<uint8_t>(schema.column(c).type));
  }
  w->PutU64(t.num_rows());
  const size_t n = t.num_rows();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = t.column(c);
    switch (col.type()) {
      case DataType::kInt64:
        for (size_t i = 0; i < n; ++i) w->PutI64(col.raw_int64()[i]);
        break;
      case DataType::kDouble:
        for (size_t i = 0; i < n; ++i) w->PutDouble(col.raw_double()[i]);
        break;
      case DataType::kBool:
        for (size_t i = 0; i < n; ++i) w->PutU8(col.raw_bool()[i]);
        break;
      case DataType::kString: {
        const Dictionary& dict = col.dictionary();
        w->PutU32(static_cast<uint32_t>(dict.size()));
        for (const std::string& s : dict.values()) w->PutString(s);
        for (size_t i = 0; i < n; ++i) {
          w->PutU32(static_cast<uint32_t>(col.raw_codes()[i]));
        }
        break;
      }
      case DataType::kNull:
        break;  // unreachable: columns are typed
    }
  }
}

[[nodiscard]] Result<Table> DecodeTable(WireReader* r) {
  MOSAIC_ASSIGN_OR_RETURN(uint32_t num_columns, r->ReadU32());
  // Each declared column costs at least 5 bytes (empty name + type),
  // so a count the payload cannot hold is rejected up front.
  if (num_columns > r->remaining() / 5) {
    return Status::InvalidArgument("column count exceeds payload");
  }
  Schema schema;
  for (uint32_t c = 0; c < num_columns; ++c) {
    MOSAIC_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    MOSAIC_ASSIGN_OR_RETURN(uint8_t tag, r->ReadU8());
    if (tag == static_cast<uint8_t>(DataType::kNull) ||
        tag > kMaxDataTypeTag) {
      return Status::InvalidArgument("invalid column type tag " +
                                     std::to_string(tag));
    }
    MOSAIC_RETURN_IF_ERROR(
        schema.AddColumn({std::move(name), static_cast<DataType>(tag)}));
  }
  MOSAIC_ASSIGN_OR_RETURN(uint64_t num_rows, r->ReadU64());
  // No row can be narrower than one byte per column, so anything the
  // remaining payload cannot possibly cover is malformed — this keeps
  // hostile row counts from driving the resize calls below.
  if (num_columns > 0 && num_rows > r->remaining()) {
    return Status::InvalidArgument("row count exceeds payload");
  }
  if (num_columns == 0 && num_rows > 0) {
    return Status::InvalidArgument("rows declared for zero columns");
  }
  const size_t n = static_cast<size_t>(num_rows);
  std::vector<Column> columns;
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    switch (schema.column(c).type) {
      case DataType::kInt64: {
        if (r->remaining() < n * 8) return Truncated("int64 column");
        AlignedVector<int64_t> vals(n);
        for (size_t i = 0; i < n; ++i) {
          MOSAIC_ASSIGN_OR_RETURN(vals[i], r->ReadI64());
        }
        columns.push_back(Column::FromInt64(std::move(vals)));
        break;
      }
      case DataType::kDouble: {
        if (r->remaining() < n * 8) return Truncated("double column");
        AlignedVector<double> vals(n);
        for (size_t i = 0; i < n; ++i) {
          MOSAIC_ASSIGN_OR_RETURN(vals[i], r->ReadDouble());
        }
        columns.push_back(Column::FromDouble(std::move(vals)));
        break;
      }
      case DataType::kBool: {
        if (r->remaining() < n) return Truncated("bool column");
        AlignedVector<uint8_t> vals(n);
        for (size_t i = 0; i < n; ++i) {
          MOSAIC_ASSIGN_OR_RETURN(vals[i], r->ReadU8());
        }
        columns.push_back(Column::FromBool(std::move(vals)));
        break;
      }
      case DataType::kString: {
        MOSAIC_ASSIGN_OR_RETURN(uint32_t dict_size, r->ReadU32());
        if (dict_size > r->remaining() / 4) {
          return Status::InvalidArgument("dictionary size exceeds payload");
        }
        auto dict = std::make_shared<Dictionary>();
        for (uint32_t d = 0; d < dict_size; ++d) {
          MOSAIC_ASSIGN_OR_RETURN(std::string s, r->ReadString());
          if (dict->GetOrInsert(s) != static_cast<int32_t>(d)) {
            return Status::InvalidArgument(
                "duplicate dictionary entry '" + s + "'");
          }
        }
        if (r->remaining() < n * 4) return Truncated("string codes");
        AlignedVector<int32_t> codes(n);
        for (size_t i = 0; i < n; ++i) {
          MOSAIC_ASSIGN_OR_RETURN(uint32_t code, r->ReadU32());
          if (code >= dict_size) {
            return Status::InvalidArgument(
                "dictionary code " + std::to_string(code) +
                " out of range (dictionary has " +
                std::to_string(dict_size) + " entries)");
          }
          codes[i] = static_cast<int32_t>(code);
        }
        columns.push_back(Column::FromCodes(std::move(dict),
                                            std::move(codes)));
        break;
      }
      case DataType::kNull:
        return Status::Internal("unreachable column type");
    }
  }
  return Table(std::move(schema), std::move(columns), n);
}

void EncodeQueryOutcome(const QueryOutcome& o, WireWriter* w) {
  w->PutBool(o.status.ok());
  if (o.status.ok()) {
    EncodeTable(o.table, w);
  } else {
    EncodeStatus(o.status, w);
  }
}

[[nodiscard]] Result<QueryOutcome> DecodeQueryOutcome(WireReader* r) {
  MOSAIC_ASSIGN_OR_RETURN(bool ok, r->ReadBool());
  QueryOutcome outcome;
  if (ok) {
    MOSAIC_ASSIGN_OR_RETURN(outcome.table, DecodeTable(r));
  } else {
    MOSAIC_RETURN_IF_ERROR(DecodeStatus(r, &outcome.status));
    if (outcome.status.ok()) {
      return Status::InvalidArgument("failed outcome carries OK status");
    }
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

std::string EncodeHelloRequest(const HelloRequest& m) {
  WireWriter w;
  w.PutU32(m.version);
  w.PutString(m.client_name);
  return w.Take();
}

[[nodiscard]] Result<HelloRequest> DecodeHelloRequest(std::string_view payload) {
  WireReader r(payload);
  HelloRequest m;
  MOSAIC_ASSIGN_OR_RETURN(m.version, r.ReadU32());
  MOSAIC_ASSIGN_OR_RETURN(m.client_name, r.ReadString());
  return m;
}

std::string EncodeHelloReply(const HelloReply& m) {
  WireWriter w;
  w.PutU32(m.version);
  w.PutU64(m.session_id);
  w.PutString(m.server_name);
  w.PutU32(m.minor_version);
  return w.Take();
}

[[nodiscard]] Result<HelloReply> DecodeHelloReply(std::string_view payload) {
  WireReader r(payload);
  HelloReply m;
  MOSAIC_ASSIGN_OR_RETURN(m.version, r.ReadU32());
  MOSAIC_ASSIGN_OR_RETURN(m.session_id, r.ReadU64());
  MOSAIC_ASSIGN_OR_RETURN(m.server_name, r.ReadString());
  // Minor-0 servers end the payload here.
  m.minor_version = 0;
  if (r.remaining() >= 4) {
    MOSAIC_ASSIGN_OR_RETURN(m.minor_version, r.ReadU32());
  }
  return m;
}

namespace {

/// An empty context encodes as no tail at all, so untraced minor-2
/// frames are byte-identical to what a minor-0/1 client sends — old
/// servers accept them unchanged.
void PutTraceContext(const TraceContext& ctx, WireWriter* w) {
  if (ctx.empty()) return;
  w->PutU64(ctx.trace_id);
  w->PutU64(ctx.parent_span_id);
  w->PutBool(ctx.sampled);
}

/// Minor-2 tail rule: nothing after the prefix means "no trace
/// context" (a minor-0/1 peer sent the frame); a partial tail is a
/// protocol error, never silently zero-filled.
[[nodiscard]] Status ReadTraceContextTail(WireReader* r, TraceContext* out) {
  if (r->AtEnd()) {
    *out = TraceContext();
    return Status::OK();
  }
  if (r->remaining() < kTraceContextBytes) {
    return Status::InvalidArgument("truncated trace context tail");
  }
  MOSAIC_ASSIGN_OR_RETURN(out->trace_id, r->ReadU64());
  MOSAIC_ASSIGN_OR_RETURN(out->parent_span_id, r->ReadU64());
  MOSAIC_ASSIGN_OR_RETURN(out->sampled, r->ReadBool());
  // Anything further is a future minor's appended tail: ignored.
  return Status::OK();
}

}  // namespace

std::string EncodeQueryRequest(const std::string& sql) {
  WireWriter w;
  w.PutString(sql);
  return w.Take();
}

std::string EncodeQueryRequest(const QueryRequest& m) {
  WireWriter w;
  w.PutString(m.sql);
  PutTraceContext(m.trace, &w);
  return w.Take();
}

[[nodiscard]] Result<QueryRequest> DecodeQueryRequest(std::string_view payload) {
  WireReader r(payload);
  QueryRequest m;
  MOSAIC_ASSIGN_OR_RETURN(m.sql, r.ReadString());
  MOSAIC_RETURN_IF_ERROR(ReadTraceContextTail(&r, &m.trace));
  return m;
}

std::string EncodeBatchRequest(const std::vector<std::string>& sqls) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(sqls.size()));
  for (const auto& sql : sqls) w.PutString(sql);
  return w.Take();
}

std::string EncodeBatchRequest(const BatchRequest& m) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(m.sqls.size()));
  for (const auto& sql : m.sqls) w.PutString(sql);
  PutTraceContext(m.trace, &w);
  return w.Take();
}

[[nodiscard]] Result<BatchRequest> DecodeBatchRequest(std::string_view payload) {
  WireReader r(payload);
  MOSAIC_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (count > r.remaining() / 4) {
    return Status::InvalidArgument("batch count exceeds payload");
  }
  BatchRequest m;
  m.sqls.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MOSAIC_ASSIGN_OR_RETURN(std::string sql, r.ReadString());
    m.sqls.push_back(std::move(sql));
  }
  MOSAIC_RETURN_IF_ERROR(ReadTraceContextTail(&r, &m.trace));
  return m;
}

std::string EncodeResultReply(const QueryOutcome& outcome) {
  WireWriter w;
  EncodeQueryOutcome(outcome, &w);
  return w.Take();
}

[[nodiscard]] Result<QueryOutcome> DecodeResultReply(std::string_view payload) {
  WireReader r(payload);
  return DecodeQueryOutcome(&r);
}

std::string EncodeBatchResultReply(
    const std::vector<QueryOutcome>& outcomes) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(outcomes.size()));
  for (const auto& o : outcomes) EncodeQueryOutcome(o, &w);
  return w.Take();
}

[[nodiscard]] Result<std::vector<QueryOutcome>> DecodeBatchResultReply(
    std::string_view payload) {
  WireReader r(payload);
  MOSAIC_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (count > r.remaining()) {
    return Status::InvalidArgument("batch result count exceeds payload");
  }
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MOSAIC_ASSIGN_OR_RETURN(QueryOutcome o, DecodeQueryOutcome(&r));
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

void EncodeHistogramSnapshot(const std::string& name,
                             const metrics::HistogramSnapshot& h,
                             WireWriter* w) {
  w->PutString(name);
  w->PutU64(h.sum);
  w->PutU32(static_cast<uint32_t>(h.buckets.size()));
  for (uint64_t b : h.buckets) w->PutU64(b);
}

[[nodiscard]] Result<StatsSnapshot::HistogramEntry> DecodeHistogramSnapshot(
    WireReader* r) {
  StatsSnapshot::HistogramEntry e;
  MOSAIC_ASSIGN_OR_RETURN(e.name, r->ReadString());
  MOSAIC_ASSIGN_OR_RETURN(e.histogram.sum, r->ReadU64());
  MOSAIC_ASSIGN_OR_RETURN(uint32_t num_buckets, r->ReadU32());
  if (static_cast<uint64_t>(num_buckets) * 8 > r->remaining()) {
    return Status::InvalidArgument("histogram bucket count exceeds payload");
  }
  e.histogram.buckets.resize(num_buckets);
  e.histogram.count = 0;
  for (uint32_t i = 0; i < num_buckets; ++i) {
    MOSAIC_ASSIGN_OR_RETURN(e.histogram.buckets[i], r->ReadU64());
    // The total is derived, never trusted from the wire: a hostile
    // count cannot contradict the buckets it claims to summarize.
    e.histogram.count += e.histogram.buckets[i];
  }
  return e;
}

std::string EncodeStatsReply(const StatsSnapshot& m) {
  const uint64_t fields[] = {
      m.queries_total,        m.queries_failed,
      m.reads,                m.writes,
      m.sessions_opened,      m.sessions_closed,
      m.result_cache_hits,    m.result_cache_misses,
      m.result_cache_entries, m.model_cache_hits,
      m.model_cache_insertions, m.connections_opened,
      m.connections_active,   m.connections_rejected,
      m.frames_received,      m.frames_sent,
      m.protocol_errors,      m.weight_epochs_published,
      m.weight_refits_total,  m.weight_refits_skipped,
      m.weight_refits_incremental,
      // Minor 1 — strictly appended.
      m.connections_closed,   m.malformed_frames,
      m.inflight_highwater,
  };
  constexpr size_t kNumFields = sizeof(fields) / sizeof(fields[0]);
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(kNumFields));
  for (uint64_t f : fields) w.PutU64(f);
  // Histogram section (minor 1), after the uint64 list: a minor-0
  // decoder reads its declared field count and ignores the rest.
  w.PutU32(static_cast<uint32_t>(m.histograms.size()));
  for (const auto& e : m.histograms) {
    EncodeHistogramSnapshot(e.name, e.histogram, &w);
  }
  return w.Take();
}

[[nodiscard]] Result<StatsSnapshot> DecodeStatsReply(std::string_view payload) {
  WireReader r(payload);
  MOSAIC_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (static_cast<uint64_t>(count) * 8 > r.remaining()) {
    return Status::InvalidArgument("stats field count exceeds payload");
  }
  StatsSnapshot m;
  uint64_t* fields[] = {
      &m.queries_total,        &m.queries_failed,
      &m.reads,                &m.writes,
      &m.sessions_opened,      &m.sessions_closed,
      &m.result_cache_hits,    &m.result_cache_misses,
      &m.result_cache_entries, &m.model_cache_hits,
      &m.model_cache_insertions, &m.connections_opened,
      &m.connections_active,   &m.connections_rejected,
      &m.frames_received,      &m.frames_sent,
      &m.protocol_errors,      &m.weight_epochs_published,
      &m.weight_refits_total,  &m.weight_refits_skipped,
      &m.weight_refits_incremental, &m.connections_closed,
      &m.malformed_frames,     &m.inflight_highwater,
  };
  constexpr size_t kNumFields = sizeof(fields) / sizeof(fields[0]);
  for (uint32_t i = 0; i < count; ++i) {
    MOSAIC_ASSIGN_OR_RETURN(uint64_t v, r.ReadU64());
    // Unknown trailing fields from a newer server are skipped.
    if (i < kNumFields) *fields[i] = v;
  }
  // Histogram section: absent entirely from a minor-0 server.
  if (r.AtEnd()) return m;
  MOSAIC_ASSIGN_OR_RETURN(uint32_t num_histograms, r.ReadU32());
  // Each histogram costs at least 16 bytes (empty name + sum +
  // bucket count), so a count the payload cannot hold is rejected
  // before any allocation.
  if (num_histograms > r.remaining() / 16) {
    return Status::InvalidArgument("histogram count exceeds payload");
  }
  m.histograms.reserve(num_histograms);
  for (uint32_t i = 0; i < num_histograms; ++i) {
    MOSAIC_ASSIGN_OR_RETURN(StatsSnapshot::HistogramEntry e,
                            DecodeHistogramSnapshot(&r));
    m.histograms.push_back(std::move(e));
  }
  return m;
}

std::string EncodeErrorReply(const Status& status) {
  WireWriter w;
  EncodeStatus(status, &w);
  return w.Take();
}

[[nodiscard]] Status DecodeErrorReply(std::string_view payload, Status* out) {
  WireReader r(payload);
  return DecodeStatus(&r, out);
}

}  // namespace net
}  // namespace mosaic
