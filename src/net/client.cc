#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mosaic {
namespace net {

namespace {

[[nodiscard]] Status Errno(const char* what) {
  // lint:allow errno-no-syscall: called on the failure path right
  // after the syscall; errno still holds that call's error.
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Client::~Client() {
  if (connected()) (void)Close();
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      session_id_(other.session_id_),
      reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Disconnect();
    fd_ = other.fd_;
    session_id_ = other.session_id_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // Drop buffered bytes and any poisoned framing error, so a later
  // Connect() starts from a clean stream.
  reader_ = FrameReader();
}

Status Client::Connect(const ClientOptions& options) {
  if (connected()) return Status::InvalidArgument("already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse server address '" +
                                   options.host + "'");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Errno("connect");
    Disconnect();
    return s;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  HelloRequest hello;
  hello.client_name = options.client_name;
  auto reply = Roundtrip(MessageType::kHello, EncodeHelloRequest(hello),
                         MessageType::kHelloOk);
  if (!reply.ok()) {
    Disconnect();
    return reply.status();
  }
  auto decoded = DecodeHelloReply(reply->payload);
  if (!decoded.ok()) {
    Disconnect();
    return decoded.status();
  }
  session_id_ = decoded->session_id;
  server_minor_ = decoded->minor_version;
  return Status::OK();
}

Status Client::SendFrame(MessageType type, std::string_view payload) {
  if (!connected()) return Status::IOError("not connected");
  if (payload.size() + 1 > kMaxFrameBytes) {
    return Status::InvalidArgument("request exceeds max frame size");
  }
  const std::string frame = EncodeFrame(type, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    Status s = Errno("send");
    Disconnect();
    return s;
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame() {
  if (!connected()) return Status::IOError("not connected");
  char buf[16 * 1024];
  while (true) {
    Frame frame;
    auto got = reader_.Next(&frame);
    if (!got.ok()) {
      Disconnect();
      return got.status();
    }
    if (*got) {
      if (frame.type == MessageType::kError) {
        Status carried;
        Status decoded = DecodeErrorReply(frame.payload, &carried);
        Disconnect();
        return decoded.ok() ? carried : decoded;
      }
      return frame;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      Disconnect();
      return Status::IOError("server closed connection");
    }
    if (errno == EINTR) continue;
    Status s = Errno("recv");
    Disconnect();
    return s;
  }
}

Result<Frame> Client::Roundtrip(MessageType type, std::string_view payload,
                                MessageType expected_reply) {
  MOSAIC_RETURN_IF_ERROR(SendFrame(type, payload));
  MOSAIC_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
  if (reply.type != expected_reply) {
    Status s = Status::InvalidArgument(
        std::string("expected ") + MessageTypeName(expected_reply) +
        " reply, got " + MessageTypeName(reply.type));
    Disconnect();
    return s;
  }
  return reply;
}

Result<Table> Client::Query(const std::string& sql) {
  return Query(sql, TraceContext());
}

Result<Table> Client::Query(const std::string& sql,
                            const TraceContext& ctx) {
  // Pre-minor-2 servers never saw a trace tail; send them the legacy
  // payload so the context degrades to "untraced" instead of an error.
  const std::string payload =
      (ctx.empty() || server_minor_ < 2)
          ? EncodeQueryRequest(sql)
          : EncodeQueryRequest(QueryRequest{sql, ctx});
  MOSAIC_ASSIGN_OR_RETURN(
      Frame reply,
      Roundtrip(MessageType::kQuery, payload, MessageType::kResult));
  MOSAIC_ASSIGN_OR_RETURN(QueryOutcome outcome,
                          DecodeResultReply(reply.payload));
  if (!outcome.ok()) return outcome.status;
  return std::move(outcome.table);
}

Result<std::vector<QueryOutcome>> Client::Batch(
    const std::vector<std::string>& sqls) {
  return Batch(sqls, TraceContext());
}

Result<std::vector<QueryOutcome>> Client::Batch(
    const std::vector<std::string>& sqls, const TraceContext& ctx) {
  const std::string payload =
      (ctx.empty() || server_minor_ < 2)
          ? EncodeBatchRequest(sqls)
          : EncodeBatchRequest(BatchRequest{sqls, ctx});
  MOSAIC_ASSIGN_OR_RETURN(
      Frame reply,
      Roundtrip(MessageType::kBatch, payload, MessageType::kBatchResult));
  MOSAIC_ASSIGN_OR_RETURN(std::vector<QueryOutcome> outcomes,
                          DecodeBatchResultReply(reply.payload));
  if (outcomes.size() != sqls.size()) {
    Disconnect();
    return Status::InvalidArgument(
        "batch reply count mismatch: sent " + std::to_string(sqls.size()) +
        ", got " + std::to_string(outcomes.size()));
  }
  return outcomes;
}

Result<StatsSnapshot> Client::Stats() {
  MOSAIC_ASSIGN_OR_RETURN(Frame reply,
                          Roundtrip(MessageType::kStats, "",
                                    MessageType::kStatsResult));
  return DecodeStatsReply(reply.payload);
}

Status Client::Close() {
  if (!connected()) return Status::OK();
  auto reply = Roundtrip(MessageType::kClose, "", MessageType::kGoodbye);
  Disconnect();
  return reply.status();
}

}  // namespace net
}  // namespace mosaic
