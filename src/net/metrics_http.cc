#include "net/metrics_http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace mosaic {
namespace net {

namespace {

[[nodiscard]] Status Errno(const char* what) {
  // lint:allow errno-no-syscall: called on the failure path right
  // after the syscall; errno still holds that call's error.
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

/// Read until the end of the request head ("\r\n\r\n"), a size cap,
/// the deadline, or EOF. The body (if any) is ignored — GET carries
/// none and we answer 405 to everything else anyway.
bool ReadRequestHead(int fd, std::string* head) {
  constexpr size_t kMaxHead = 8 * 1024;
  constexpr int kDeadlineMs = 2000;
  int budget_ms = kDeadlineMs;
  char buf[1024];
  while (head->size() < kMaxHead &&
         head->find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    const int step_ms = 100;
    const int nready = ::poll(&pfd, 1, step_ms);
    if (nready < 0 && errno != EINTR) return false;
    if (nready == 0) {
      budget_ms -= step_ms;
      if (budget_ms <= 0) return false;  // stalled client
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // EOF: take what we have
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    head->append(buf, static_cast<size_t>(n));
  }
  return !head->empty();
}

void WriteAll(int fd, const std::string& data) {
  constexpr int kDeadlineMs = 2000;
  int budget_ms = kDeadlineMs;
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Send buffer full: wait for drain instead of dropping the rest
      // of the response, bounded so a stalled scraper cannot pin the
      // serving thread.
      pollfd pfd{fd, POLLOUT, 0};
      const int step_ms = 100;
      const int nready = ::poll(&pfd, 1, step_ms);
      if (nready < 0 && errno != EINTR) return;
      if (nready == 0) {
        budget_ms -= step_ms;
        if (budget_ms <= 0) return;  // stalled client
      }
      continue;
    }
    return;  // client gone; a scrape reply is best-effort
  }
}

std::string HttpResponse(const char* status_line, const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status_line;
  out += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8";
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(RenderFn render, Options options)
    : render_(std::move(render)), options_(std::move(options)) {}

MetricsHttpServer::~MetricsHttpServer() { Shutdown(); }

Status MetricsHttpServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("metrics server already started");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse bind address '" +
                                   options_.host + "'");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  auto fail = [this](Status status) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  };
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail(Errno("bind"));
  }
  if (::listen(listen_fd_, 8) != 0) return fail(Errno("listen"));
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return fail(Errno("getsockname"));
  }
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  MOSAIC_LOG(Info) << "metrics endpoint on http://" << options_.host << ":"
                   << port_ << "/metrics";
  return Status::OK();
}

void MetricsHttpServer::Shutdown() {
  if (!started_.load() || !running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int nready = ::poll(&pfd, 1, 100);
    if (nready < 0 && errno != EINTR) {
      MOSAIC_LOG(Error) << "metrics poll failed: " << std::strerror(errno);
      return;
    }
    if (nready <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.send_buffer_bytes > 0) {
      // Tiny-buffer test mode: shrink the send buffer and go
      // non-blocking, so WriteAll exercises its short-write/EAGAIN
      // retry path instead of parking inside a blocking send.
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof(options_.send_buffer_bytes));
      const int flags = ::fcntl(fd, F_GETFL, 0);
      if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
    HandleOne(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::HandleOne(int fd) {
  std::string head;
  if (!ReadRequestHead(fd, &head)) return;
  // Request line: METHOD SP PATH SP VERSION. Query strings are
  // tolerated (Prometheus never sends one, curl users might).
  const size_t line_end = head.find("\r\n");
  const std::string line =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    WriteAll(fd, HttpResponse("400 Bad Request", "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);
  }
  if (method != "GET") {
    WriteAll(fd, HttpResponse("405 Method Not Allowed",
                              "only GET is supported\n"));
    return;
  }
  if (path != "/metrics") {
    WriteAll(fd, HttpResponse("404 Not Found", "try /metrics\n"));
    return;
  }
  WriteAll(fd, HttpResponse("200 OK", render_()));
}

}  // namespace net
}  // namespace mosaic
