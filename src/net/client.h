// Blocking C++ client for the Mosaic wire protocol: the library
// behind examples/mosaic_client.cpp and the loopback tests/benches.
//
// One Client is one TCP connection = one server-side session. Calls
// are synchronous (send request, block for the reply) and the object
// is NOT thread-safe — concurrency comes from one Client per thread,
// which is also what exercises the server's inter-query parallelism.
#ifndef MOSAIC_NET_CLIENT_H_
#define MOSAIC_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "storage/table.h"

namespace mosaic {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Reported to the server in HELLO (shows up in logs).
  std::string client_name = "mosaic_client";
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect and run the HELLO handshake. The client is usable only
  /// after this succeeds.
  [[nodiscard]] Status Connect(const ClientOptions& options);

  bool connected() const { return fd_ >= 0; }

  /// Server-assigned session id (valid after Connect).
  uint64_t session_id() const { return session_id_; }

  /// Minor protocol revision the server reported in HELLO_OK (0 for a
  /// pre-minor-1 server). Trace contexts reach the server only when
  /// this is >= 2; older servers would reject the appended tail.
  uint32_t server_minor_version() const { return server_minor_; }

  /// Run one statement; returns the result table or the statement's
  /// error. Transport or protocol failures also surface as Status and
  /// leave the connection closed.
  [[nodiscard]] Result<Table> Query(const std::string& sql);

  /// Same, carrying a distributed-trace context (minor 2). With
  /// `ctx.sampled` set, an EXPLAIN ANALYZE statement returns the full
  /// server-side span tree annotated with `ctx.trace_id`. Against a
  /// pre-minor-2 server the context is silently dropped (the legacy
  /// payload is sent) rather than poisoning the connection.
  [[nodiscard]] Result<Table> Query(const std::string& sql, const TraceContext& ctx);

  /// Run a batch; the server fans the statements across its request
  /// pool and replies once with per-statement outcomes in input order.
  [[nodiscard]] Result<std::vector<QueryOutcome>> Batch(
      const std::vector<std::string>& sqls);

  /// Batch under one trace context covering every statement.
  [[nodiscard]] Result<std::vector<QueryOutcome>> Batch(
      const std::vector<std::string>& sqls, const TraceContext& ctx);

  /// Fetch the server's combined service + network counters.
  [[nodiscard]] Result<StatsSnapshot> Stats();

  /// Polite shutdown: CLOSE, wait for GOODBYE, close the socket.
  /// Also called by the destructor (best effort, errors swallowed).
  [[nodiscard]] Status Close();

 private:
  [[nodiscard]] Status SendFrame(MessageType type, std::string_view payload);
  /// Block until one full frame arrives. An ERROR frame is surfaced
  /// as its carried Status and closes the connection.
  [[nodiscard]] Result<Frame> ReadFrame();
  [[nodiscard]] Result<Frame> Roundtrip(MessageType type, std::string_view payload,
                          MessageType expected_reply);
  void Disconnect();

  int fd_ = -1;
  uint64_t session_id_ = 0;
  uint32_t server_minor_ = 0;
  FrameReader reader_;
};

}  // namespace net
}  // namespace mosaic

#endif  // MOSAIC_NET_CLIENT_H_
