// Minimal HTTP/1.0 exposition endpoint for Prometheus-style scrapes.
//
// Serves exactly one route, GET /metrics, whose body comes from a
// caller-supplied render callback (typically
// metrics::Registry::RenderPrometheus, optionally preceded by pushing
// server counters into gauges — see examples/mosaic_serve.cpp). Any
// other path answers 404; anything that is not a GET answers 405.
//
// Deliberately tiny: one thread, one request per connection,
// Connection: close. A scrape endpoint is polled every few seconds by
// one collector; concurrency machinery would be dead weight. The
// accept loop polls with a short timeout so Shutdown() is prompt, and
// slow or stalled clients are cut by a per-request deadline rather
// than allowed to pin the serving thread.
#ifndef MOSAIC_NET_METRICS_HTTP_H_
#define MOSAIC_NET_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace mosaic {
namespace net {

class MetricsHttpServer {
 public:
  /// Called per scrape; returns the text-format body.
  using RenderFn = std::function<std::string()>;

  struct Options {
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port (read back via port()).
    uint16_t port = 0;
    /// SO_SNDBUF for accepted connections (0 = OS default). Mainly a
    /// test knob: a tiny buffer forces the response writer through
    /// its short-write/EAGAIN path deterministically.
    int send_buffer_bytes = 0;
  };

  MetricsHttpServer(RenderFn render, Options options);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind, listen, and start the serving thread.
  [[nodiscard]] Status Start();

  /// Port actually bound; valid after Start().
  uint16_t port() const { return port_; }

  /// Stop serving and join. Idempotent; called by the destructor.
  void Shutdown();

 private:
  void Serve();
  void HandleOne(int fd);

  RenderFn render_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
};

}  // namespace net
}  // namespace mosaic

#endif  // MOSAIC_NET_METRICS_HTTP_H_
