#include "net/server.h"

#include "common/synchronization.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <utility>

#include "common/event_log.h"
#include "common/logging.h"
#include "core/system_tables.h"

namespace mosaic {
namespace net {

namespace {

[[nodiscard]] Status Errno(const char* what) {
  // lint:allow errno-no-syscall: called on the failure path right
  // after the syscall; errno still holds that call's error.
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

[[nodiscard]] Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Replies that cannot fit one frame are downgraded to an in-band
/// error so the connection survives (the client sees a failed
/// statement, not a dead socket).
std::string EncodeBoundedResult(const QueryOutcome& outcome) {
  std::string payload = EncodeResultReply(outcome);
  if (payload.size() + 1 > kMaxFrameBytes) {
    payload = EncodeResultReply(
        {Status::ExecutionError("result table exceeds the wire protocol's "
                                "frame limit"),
         Table()});
  }
  return payload;
}

std::string EncodeBoundedBatchResult(std::vector<QueryOutcome> outcomes) {
  std::string payload = EncodeBatchResultReply(outcomes);
  if (payload.size() + 1 > kMaxFrameBytes) {
    for (auto& o : outcomes) {
      o = {Status::ExecutionError("batch result exceeds the wire "
                                  "protocol's frame limit"),
           Table()};
    }
    payload = EncodeBatchResultReply(outcomes);
  }
  return payload;
}

}  // namespace

/// Handle shared between the poll thread and request-pool completion
/// callbacks: lets a callback nudge the poll loop without touching the
/// Server object (which may already be destroyed when a straggling
/// callback fires after Shutdown).
struct WakePipe {
  Mutex mu;
  int write_fd GUARDED_BY(mu) = -1;  ///< -1 once the server is gone

  void Wake() {
    MutexLock lock(mu);
    if (write_fd < 0) return;
    const char byte = 1;
    // Best effort: a full pipe already guarantees a pending wake-up.
    [[maybe_unused]] ssize_t n = ::write(write_fd, &byte, 1);
  }
};

struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;  ///< stable id for `system.connections`
  std::optional<service::Session> session;
  FrameReader reader;

  // Poll-thread-only state.
  std::string outbuf;
  size_t outpos = 0;
  bool hello_done = false;
  bool reads_stopped = false;       ///< no further frames accepted
  bool close_after_flush = false;   ///< close once outbuf drains
  uint64_t next_seq = 0;            ///< next request sequence number
  uint64_t next_to_send = 0;        ///< earliest un-flushed reply
  uint64_t close_seq = UINT64_MAX;  ///< seq of the GOODBYE reply

  // Shared with completion callbacks.
  Mutex mu;
  bool closed GUARDED_BY(mu) = false;
  size_t inflight GUARDED_BY(mu) = 0;
  /// Encoded reply frames, keyed by request sequence number.
  std::map<uint64_t, std::string> ready GUARDED_BY(mu);

  size_t PendingLocked() const REQUIRES(mu) {
    return inflight + ready.size();
  }

  size_t Pending() {
    MutexLock lock(mu);
    return PendingLocked();
  }
};

struct Server::ConnRegistry {
  Mutex mu;
  /// Live connections by conn id.
  std::map<uint64_t, std::shared_ptr<Connection>> conns GUARDED_BY(mu);
};

namespace {

/// Deposit one completed reply and wake the poll loop. Free function
/// on purpose: callbacks must not dereference the Server.
void DeliverReply(const std::shared_ptr<Server::Connection>& conn,
                  const std::shared_ptr<WakePipe>& wake, uint64_t seq,
                  std::string frame) {
  {
    MutexLock lock(conn->mu);
    conn->inflight--;
    if (!conn->closed) conn->ready.emplace(seq, std::move(frame));
  }
  wake->Wake();
}

}  // namespace

Server::Server(service::QueryService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse bind address '" +
                                   options_.host + "'");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  auto fail = [this](Status status) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  };
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail(Errno("bind"));
  }
  if (::listen(listen_fd_, 64) != 0) return fail(Errno("listen"));
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return fail(Errno("getsockname"));
  }
  port_ = ntohs(addr.sin_port);
  if (Status nb = SetNonBlocking(listen_fd_); !nb.ok()) return fail(nb);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return fail(Errno("pipe"));
  wake_read_fd_ = pipe_fds[0];
  (void)SetNonBlocking(wake_read_fd_);
  (void)SetNonBlocking(pipe_fds[1]);
  wake_ = std::make_shared<WakePipe>();
  {
    // Not shared yet, but the analysis (rightly) has no way to know.
    MutexLock lock(wake_->mu);
    wake_->write_fd = pipe_fds[1];
  }

  // Back `system.connections` with a registry the provider can hold
  // past this Server's lifetime (queries run on request-pool threads).
  conn_registry_ = std::make_shared<ConnRegistry>();
  {
    auto registry = conn_registry_;
    service_->database()->RegisterSystemTable(
        "connections", [registry]() -> Result<Table> {
          MOSAIC_ASSIGN_OR_RETURN(Table out, core::EmptyConnectionsTable());
          MutexLock lock(registry->mu);
          for (const auto& [id, conn] : registry->conns) {
            MOSAIC_RETURN_IF_ERROR(out.AppendRow(
                {Value(static_cast<int64_t>(id)),
                 Value(static_cast<int64_t>(
                     conn->session.has_value() ? conn->session->id() : 0)),
                 Value(static_cast<int64_t>(conn->Pending()))}));
          }
          return out;
        });
  }

  running_.store(true, std::memory_order_release);
  poll_thread_ = std::thread([this] { PollLoop(); });
  MOSAIC_LOG(Info) << "mosaic server listening on " << options_.host << ":"
                   << port_;
  elog::EventLog::Global().Emit(
      LogLevel::kInfo, "server_start",
      {{"host", options_.host}, {"port", std::to_string(port_)}});
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_.load() || !running_.exchange(false)) {
    // Never started, or a previous Shutdown already ran.
    if (poll_thread_.joinable()) poll_thread_.join();
    return;
  }
  stop_requested_.store(true, std::memory_order_release);
  if (wake_ != nullptr) wake_->Wake();
  if (poll_thread_.joinable()) poll_thread_.join();
  // Detach the wake pipe so straggling callbacks become no-ops, then
  // release the fds.
  if (wake_ != nullptr) {
    MutexLock lock(wake_->mu);
    ::close(wake_->write_fd);
    wake_->write_fd = -1;
  }
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (conn_registry_ != nullptr) {
    MutexLock lock(conn_registry_->mu);
    conn_registry_->conns.clear();
  }
  elog::EventLog::Global().Emit(
      LogLevel::kInfo, "server_stop",
      {{"connections_closed", std::to_string(connections_closed_.load())},
       {"frames_received", std::to_string(frames_received_.load())}});
}

NetServerStats Server::stats() const {
  NetServerStats s;
  s.connections_opened = connections_opened_.load();
  s.connections_rejected = connections_rejected_.load();
  s.connections_closed = connections_closed_.load();
  s.frames_received = frames_received_.load();
  s.frames_sent = frames_sent_.load();
  s.protocol_errors = protocol_errors_.load();
  s.malformed_frames = malformed_frames_.load();
  s.inflight_highwater = inflight_highwater_.load();
  s.connections_active = connections_active_.load();
  return s;
}

StatsSnapshot Server::Snapshot() const {
  const service::ServiceStats svc = service_->Stats();
  const NetServerStats nets = stats();
  StatsSnapshot snap;
  snap.queries_total = svc.queries_total;
  snap.queries_failed = svc.queries_failed;
  snap.reads = svc.reads;
  snap.writes = svc.writes;
  snap.sessions_opened = svc.sessions_opened;
  snap.sessions_closed = svc.sessions_closed;
  snap.result_cache_hits = svc.result_cache.hits;
  snap.result_cache_misses = svc.result_cache.misses;
  snap.result_cache_entries = svc.result_cache.entries;
  snap.model_cache_hits = svc.model_cache.hits;
  snap.model_cache_insertions = svc.model_cache.insertions;
  snap.connections_opened = nets.connections_opened;
  snap.connections_active = nets.connections_active;
  snap.connections_rejected = nets.connections_rejected;
  snap.frames_received = nets.frames_received;
  snap.frames_sent = nets.frames_sent;
  snap.protocol_errors = nets.protocol_errors;
  snap.weight_epochs_published = svc.weight_epochs_published;
  snap.weight_refits_total = svc.weight_refits_total;
  snap.weight_refits_skipped = svc.weight_refits_skipped;
  snap.weight_refits_incremental = svc.weight_refits_incremental;
  snap.connections_closed = nets.connections_closed;
  snap.malformed_frames = nets.malformed_frames;
  snap.inflight_highwater = nets.inflight_highwater;
  // Ship every registry histogram (the service's latency histograms
  // and whatever else the process registered) so remote clients see
  // the same distribution a local /metrics scrape would.
  for (auto& [name, h] : metrics::Registry::Global().HistogramSnapshots()) {
    snap.histograms.push_back({name, std::move(h)});
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Poll loop
// ---------------------------------------------------------------------------

void Server::PollLoop() {
  using Clock = std::chrono::steady_clock;
  bool draining = false;
  Clock::time_point drain_deadline{};

  while (true) {
    if (!draining && stop_requested_.load(std::memory_order_acquire)) {
      draining = true;
      drain_deadline = Clock::now() +
                       std::chrono::milliseconds(options_.drain_timeout_ms);
      // Stop accepting; in-flight statements keep running.
      ::close(listen_fd_);
      listen_fd_ = -1;
    }

    // Move completed replies into write buffers, retire drained
    // zombies, and (while draining) close fully quiesced connections.
    for (auto& conn : connections_) FlushReady(conn.get());
    zombies_.erase(std::remove_if(zombies_.begin(), zombies_.end(),
                                  [](const auto& z) {
                                    return z->Pending() == 0;
                                  }),
                   zombies_.end());
    if (draining) {
      for (size_t i = connections_.size(); i-- > 0;) {
        Connection* conn = connections_[i].get();
        if (conn->Pending() == 0 && conn->outpos == conn->outbuf.size()) {
          CloseConnection(i, /*abort_inflight=*/false);
        }
      }
      const bool expired = Clock::now() >= drain_deadline;
      if (expired) {
        for (size_t i = connections_.size(); i-- > 0;) {
          CloseConnection(i, /*abort_inflight=*/true);
        }
        zombies_.clear();
      }
      if (connections_.empty() && zombies_.empty()) break;
    }

    std::vector<pollfd> fds;
    std::vector<size_t> conn_of_fd;  // parallel; SIZE_MAX for specials
    fds.push_back({wake_read_fd_, POLLIN, 0});
    conn_of_fd.push_back(SIZE_MAX);
    if (!draining && listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      conn_of_fd.push_back(SIZE_MAX);
    }
    for (size_t i = 0; i < connections_.size(); ++i) {
      Connection* conn = connections_[i].get();
      short events = 0;
      const bool backpressured =
          conn->Pending() >= options_.max_inflight_per_connection;
      if (!draining && !conn->reads_stopped && !backpressured) {
        events |= POLLIN;
      }
      if (conn->outpos < conn->outbuf.size()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
      conn_of_fd.push_back(i);
    }

    const int timeout_ms = draining ? 20 : 200;
    const int nready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (nready < 0 && errno != EINTR) {
      MOSAIC_LOG(Error) << "poll failed: " << std::strerror(errno);
      break;
    }

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (!draining && listen_fd_ >= 0 && fds.size() > 1 &&
        conn_of_fd[1] == SIZE_MAX && (fds[1].revents & POLLIN)) {
      AcceptPending();
    }

    // Walk connection fds back to front so CloseConnection's
    // swap-remove cannot disturb indices not yet visited.
    for (size_t f = fds.size(); f-- > 0;) {
      const size_t idx = conn_of_fd[f];
      if (idx == SIZE_MAX || idx >= connections_.size()) continue;
      Connection* conn = connections_[idx].get();
      if (fds[f].fd != conn->fd) continue;  // replaced meanwhile
      const short revents = fds[f].revents;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseConnection(idx, /*abort_inflight=*/true);
        continue;
      }
      if (revents & POLLIN) {
        Status s = ReadFromConnection(conn);
        if (!s.ok()) {
          CloseConnection(idx, /*abort_inflight=*/true);
          continue;
        }
      }
      FlushReady(conn);
      if (conn->outpos < conn->outbuf.size()) {
        Status s = WriteToConnection(conn);
        if (!s.ok()) {
          CloseConnection(idx, /*abort_inflight=*/true);
          continue;
        }
      }
      if (conn->close_after_flush && conn->outpos == conn->outbuf.size()) {
        CloseConnection(idx, /*abort_inflight=*/false);
      }
    }
  }

  // Loop exit (drain complete or poll failure): cut whatever is left.
  for (size_t i = connections_.size(); i-- > 0;) {
    CloseConnection(i, /*abort_inflight=*/true);
  }
  zombies_.clear();
}

void Server::AcceptPending() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      MOSAIC_LOG(Warning) << "accept failed: " << std::strerror(errno);
      return;
    }
    if (connections_.size() >= options_.max_connections) {
      // Best-effort refusal so the client sees why, then hang up.
      const std::string frame = EncodeFrame(
          MessageType::kError,
          EncodeErrorReply(Status::ExecutionError(
              "server connection limit reached (" +
              std::to_string(options_.max_connections) + ")")));
      [[maybe_unused]] ssize_t n =
          ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      connections_rejected_.fetch_add(1);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = connections_opened_.fetch_add(1) + 1;
    conn->session = service_->OpenSession();
    if (conn_registry_ != nullptr) {
      MutexLock lock(conn_registry_->mu);
      conn_registry_->conns.emplace(conn->id, conn);
    }
    connections_.push_back(std::move(conn));
    connections_active_.store(connections_.size());
  }
}

Status Server::ReadFromConnection(Connection* conn) {
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->reader.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) return Status::IOError("peer closed connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return Errno("recv");
  }
  while (!conn->reads_stopped) {
    Frame frame;
    auto got = conn->reader.Next(&frame);
    if (!got.ok()) {
      SendProtocolError(conn, got.status());
      break;
    }
    if (!*got) break;
    frames_received_.fetch_add(1);
    Status s = HandleFrame(conn, std::move(frame));
    if (!s.ok()) {
      malformed_frames_.fetch_add(1);
      SendProtocolError(conn, s);
    }
  }
  return Status::OK();
}

Status Server::HandleFrame(Connection* conn, Frame frame) {
  if (!IsKnownMessageType(static_cast<uint8_t>(frame.type))) {
    return Status::InvalidArgument(
        "unknown message type tag " +
        std::to_string(static_cast<unsigned>(frame.type)));
  }
  if (!conn->hello_done) {
    if (frame.type != MessageType::kHello) {
      return Status::InvalidArgument(
          std::string("expected HELLO, got ") +
          MessageTypeName(frame.type));
    }
    MOSAIC_ASSIGN_OR_RETURN(HelloRequest hello,
                            DecodeHelloRequest(frame.payload));
    if (hello.version != kProtocolVersion) {
      return Status::InvalidArgument(
          "protocol version mismatch: client speaks v" +
          std::to_string(hello.version) + ", server speaks v" +
          std::to_string(kProtocolVersion));
    }
    conn->hello_done = true;
    HelloReply reply;
    reply.session_id = conn->session->id();
    reply.server_name = options_.server_name;
    // Nothing can be in flight before HELLO, so the reply bypasses
    // the sequence queue.
    conn->outbuf += EncodeFrame(MessageType::kHelloOk,
                                EncodeHelloReply(reply));
    frames_sent_.fetch_add(1);
    return Status::OK();
  }
  switch (frame.type) {
    case MessageType::kQuery: {
      MOSAIC_ASSIGN_OR_RETURN(QueryRequest req,
                              DecodeQueryRequest(frame.payload));
      service::RequestContext ctx;
      ctx.trace_id = req.trace.trace_id;
      ctx.parent_span_id = req.trace.parent_span_id;
      ctx.sampled = req.trace.sampled;
      DispatchQuery(conn, conn->next_seq++, std::move(req.sql), ctx);
      return Status::OK();
    }
    case MessageType::kBatch: {
      MOSAIC_ASSIGN_OR_RETURN(BatchRequest req,
                              DecodeBatchRequest(frame.payload));
      service::RequestContext ctx;
      ctx.trace_id = req.trace.trace_id;
      ctx.parent_span_id = req.trace.parent_span_id;
      ctx.sampled = req.trace.sampled;
      DispatchBatch(conn, conn->next_seq++, std::move(req.sqls), ctx);
      return Status::OK();
    }
    case MessageType::kStats: {
      const uint64_t seq = conn->next_seq++;
      {
        MutexLock lock(conn->mu);
        conn->ready.emplace(seq, EncodeFrame(MessageType::kStatsResult,
                                             EncodeStatsReply(Snapshot())));
      }
      return Status::OK();
    }
    case MessageType::kClose: {
      const uint64_t seq = conn->next_seq++;
      conn->close_seq = seq;
      conn->reads_stopped = true;
      {
        MutexLock lock(conn->mu);
        conn->ready.emplace(seq, EncodeFrame(MessageType::kGoodbye, ""));
      }
      return Status::OK();
    }
    default:
      return Status::InvalidArgument(
          std::string("unexpected client message ") +
          MessageTypeName(frame.type));
  }
}

void Server::DispatchQuery(Connection* conn, uint64_t seq,
                           std::string sql, service::RequestContext ctx) {
  // Find the shared_ptr owner: the callback needs shared ownership so
  // an abrupt disconnect cannot free the connection under it.
  std::shared_ptr<Connection> owner;
  for (const auto& c : connections_) {
    if (c.get() == conn) {
      owner = c;
      break;
    }
  }
  size_t depth;
  {
    MutexLock lock(conn->mu);
    depth = ++conn->inflight;
  }
  RaiseInflightHighwater(depth);
  auto wake = wake_;
  conn->session->SubmitAsync(
      std::move(sql), ctx, [owner, wake, seq](Result<Table> result) {
        QueryOutcome outcome;
        if (result.ok()) {
          outcome.table = std::move(result).value();
        } else {
          outcome.status = result.status();
        }
        DeliverReply(owner, wake, seq,
                     EncodeFrame(MessageType::kResult,
                                 EncodeBoundedResult(outcome)));
      });
}

void Server::DispatchBatch(Connection* conn, uint64_t seq,
                           std::vector<std::string> sqls,
                           service::RequestContext ctx) {
  std::shared_ptr<Connection> owner;
  for (const auto& c : connections_) {
    if (c.get() == conn) {
      owner = c;
      break;
    }
  }
  size_t depth;
  {
    MutexLock lock(conn->mu);
    depth = ++conn->inflight;
  }
  RaiseInflightHighwater(depth);
  auto wake = wake_;
  if (sqls.empty()) {
    DeliverReply(owner, wake, seq,
                 EncodeFrame(MessageType::kBatchResult,
                             EncodeBatchResultReply({})));
    return;
  }
  struct BatchState {
    std::vector<QueryOutcome> outcomes;
    std::atomic<size_t> remaining;
  };
  auto batch = std::make_shared<BatchState>();
  batch->outcomes.resize(sqls.size());
  batch->remaining.store(sqls.size());
  // Statements fan out across the request pool individually, so a
  // BATCH from one connection exercises inter-query parallelism even
  // with a single client attached.
  for (size_t i = 0; i < sqls.size(); ++i) {
    conn->session->SubmitAsync(
        std::move(sqls[i]), ctx,
        [owner, wake, seq, batch, i](Result<Table> result) {
          if (result.ok()) {
            batch->outcomes[i].table = std::move(result).value();
          } else {
            batch->outcomes[i].status = result.status();
          }
          if (batch->remaining.fetch_sub(1) == 1) {
            DeliverReply(owner, wake, seq,
                         EncodeFrame(MessageType::kBatchResult,
                                     EncodeBoundedBatchResult(
                                         std::move(batch->outcomes))));
          }
        });
  }
}

void Server::FlushReady(Connection* conn) {
  MutexLock lock(conn->mu);
  auto it = conn->ready.find(conn->next_to_send);
  while (it != conn->ready.end()) {
    conn->outbuf += it->second;
    conn->ready.erase(it);
    frames_sent_.fetch_add(1);
    if (conn->next_to_send == conn->close_seq) {
      conn->close_after_flush = true;
    }
    ++conn->next_to_send;
    it = conn->ready.find(conn->next_to_send);
  }
}

Status Server::WriteToConnection(Connection* conn) {
  while (conn->outpos < conn->outbuf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->outbuf.data() + conn->outpos,
               conn->outbuf.size() - conn->outpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outpos += static_cast<size_t>(n);
      continue;
    }
    // n == 0 sets no errno; don't let a stale one close the
    // connection. Treat it as a full buffer and retry on POLLOUT.
    if (n == 0) break;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return Errno("send");
  }
  if (conn->outpos == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->outpos = 0;
  }
  return Status::OK();
}

void Server::SendProtocolError(Connection* conn, const Status& error) {
  protocol_errors_.fetch_add(1);
  MOSAIC_LOG(Warning) << "protocol error on fd " << conn->fd << ": "
                      << error.ToString();
  // The ERROR frame jumps any unflushed replies — the conversation is
  // over — and the connection closes once it is on the wire.
  conn->outbuf += EncodeFrame(MessageType::kError, EncodeErrorReply(error));
  frames_sent_.fetch_add(1);
  conn->reads_stopped = true;
  conn->close_after_flush = true;
}

void Server::CloseConnection(size_t index, bool abort_inflight) {
  std::shared_ptr<Connection> conn = connections_[index];
  {
    MutexLock lock(conn->mu);
    conn->closed = true;
    conn->ready.clear();
  }
  ::close(conn->fd);
  conn->fd = -1;
  if (conn_registry_ != nullptr) {
    MutexLock lock(conn_registry_->mu);
    conn_registry_->conns.erase(conn->id);
  }
  service_->CloseSession(*conn->session);
  connections_closed_.fetch_add(1);
  connections_.erase(connections_.begin() +
                     static_cast<ptrdiff_t>(index));
  connections_active_.store(connections_.size());
  if (abort_inflight && conn->Pending() > 0) {
    // Completion callbacks still reference this connection; keep it
    // on the zombie list until they have all fired.
    zombies_.push_back(std::move(conn));
  }
}

void Server::RaiseInflightHighwater(size_t depth) {
  uint64_t hw = inflight_highwater_.load(std::memory_order_relaxed);
  while (hw < depth &&
         !inflight_highwater_.compare_exchange_weak(
             hw, depth, std::memory_order_relaxed)) {
  }
}

void Server::WakePoll() {
  if (wake_ != nullptr) wake_->Wake();
}

}  // namespace net
}  // namespace mosaic
