// TCP front end for the query service: a poll(2)-based accept loop
// that speaks the Mosaic wire protocol (net/protocol.h) and maps each
// connection onto one service::Session.
//
// Threading model
//   - One poll thread owns every socket: it accepts connections,
//     reassembles frames, and writes replies. It never executes SQL.
//   - QUERY / BATCH payloads are handed to the query service's
//     request pool via Session::SubmitAsync, so inter-query
//     concurrency comes from however many connections have statements
//     in flight — the sockets feed the same pool that in-process
//     callers share. Completion callbacks encode the reply, park it
//     in the connection's outbox, and nudge the poll thread through a
//     self-pipe.
//   - Requests may be pipelined: each gets a sequence number and
//     replies flush strictly in request order, whatever order the
//     pool finishes them in. A connection exceeding
//     max_inflight_per_connection stops being read until replies
//     drain (backpressure instead of unbounded buffering).
//
// Lifecycle
//   - Abrupt client disconnects mid-query are safe: the connection
//     object is kept alive (a "zombie") until its last in-flight
//     callback has fired, and callbacks drop replies for closed
//     connections.
//   - Shutdown() drains gracefully: stop accepting, stop reading,
//     finish in-flight statements, flush outboxes, then close — with
//     a deadline (drain_timeout_ms) after which remaining
//     connections are cut. The destructor calls Shutdown().
#ifndef MOSAIC_NET_SERVER_H_
#define MOSAIC_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "service/query_service.h"

namespace mosaic {
namespace net {

struct WakePipe;

struct ServerOptions {
  /// Interface to bind; loopback by default (the reproduction serves
  /// local benches/tests, not the open internet).
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Hard cap on concurrent connections; newcomers beyond it get an
  /// ERROR frame and an immediate close.
  size_t max_connections = 64;
  /// Per-connection pipelining depth before backpressure pauses reads.
  size_t max_inflight_per_connection = 32;
  /// Grace period for Shutdown() to finish in-flight statements and
  /// flush replies before force-closing.
  int drain_timeout_ms = 10000;
  /// Name reported in the HELLO_OK handshake.
  std::string server_name = "mosaic";
};

/// Network-level counters (the service's own counters live in
/// ServiceStats); sampled individually, like ServiceStats.
struct NetServerStats {
  uint64_t connections_opened = 0;
  uint64_t connections_rejected = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t protocol_errors = 0;
  /// Frames whose payload failed to decode (a subset of
  /// protocol_errors, which also counts framing and state violations).
  uint64_t malformed_frames = 0;
  /// Highest per-connection in-flight statement depth ever observed.
  uint64_t inflight_highwater = 0;
  size_t connections_active = 0;
};

class Server {
 public:
  /// The service must outlive the server.
  Server(service::QueryService* service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start the poll thread. Fails (without leaking
  /// sockets) when the address is unavailable.
  [[nodiscard]] Status Start();

  /// Port actually bound (resolves port 0); valid after Start().
  uint16_t port() const { return port_; }

  /// True between a successful Start() and Shutdown().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful drain, then stop. Idempotent; called by the destructor.
  void Shutdown();

  NetServerStats stats() const;

  /// Snapshot for the STATS message: service counters + net counters.
  StatsSnapshot Snapshot() const;

 public:
  struct Connection;
  /// Thread-safe view of live connections backing `system.connections`
  /// (the provider runs on request-pool threads and must survive the
  /// Server object, so it holds this registry by shared_ptr).
  struct ConnRegistry;

 private:
  void PollLoop();
  void AcceptPending();
  [[nodiscard]] Status ReadFromConnection(Connection* conn);
  [[nodiscard]] Status HandleFrame(Connection* conn, Frame frame);
  void DispatchQuery(Connection* conn, uint64_t seq, std::string sql,
                     service::RequestContext ctx);
  void DispatchBatch(Connection* conn, uint64_t seq,
                     std::vector<std::string> sqls,
                     service::RequestContext ctx);
  void FlushReady(Connection* conn);
  [[nodiscard]] Status WriteToConnection(Connection* conn);
  void SendProtocolError(Connection* conn, const Status& error);
  void CloseConnection(size_t index, bool abort_inflight);
  /// CAS-max the in-flight highwater to `depth`.
  void RaiseInflightHighwater(size_t depth);
  void WakePoll();

  service::QueryService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  std::shared_ptr<WakePipe> wake_;
  uint16_t port_ = 0;
  std::thread poll_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> started_{false};

  /// Live connections, owned by the poll thread; callbacks hold weak
  /// shared_ptr copies. Zombies (closed but with callbacks in flight)
  /// are retired by the poll loop once their in-flight count is zero.
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::shared_ptr<Connection>> zombies_;
  std::shared_ptr<ConnRegistry> conn_registry_;

  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> malformed_frames_{0};
  std::atomic<uint64_t> inflight_highwater_{0};
  std::atomic<size_t> connections_active_{0};
};

}  // namespace net
}  // namespace mosaic

#endif  // MOSAIC_NET_SERVER_H_
