// Neural-network layers with explicit forward/backward passes.
//
// This is everything §5.3's generator configurations need: fully
// connected layers, ReLU, batch normalization "after each layer", and
// a softmax block over the one-hot columns of the categorical
// attribute ("we add a softmax layer for the categorical variable").
// Each layer caches what its backward pass needs; Backward must be
// called right after the matching Forward.
#ifndef MOSAIC_NN_LAYERS_H_
#define MOSAIC_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace mosaic {
namespace nn {

/// A trainable tensor and its gradient accumulator.
struct Parameter {
  Matrix value;
  Matrix grad;

  explicit Parameter(Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute the layer output. `training` switches batch-norm between
  /// batch statistics and running statistics.
  virtual Matrix Forward(const Matrix& x, bool training) = 0;

  /// Eval-mode forward pass without touching the backward caches:
  /// numerically identical to Forward(x, false) but const, so several
  /// threads may run inference on one trained network concurrently.
  virtual Matrix Infer(const Matrix& x) const = 0;

  /// Propagate the loss gradient; accumulates into parameter grads and
  /// returns d(loss)/d(input).
  virtual Matrix Backward(const Matrix& dy) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> Params() { return {}; }
};

/// Fully connected: y = x W + b, W is (in x out).
class Linear : public Layer {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng);

  Matrix Forward(const Matrix& x, bool training) override;
  Matrix Infer(const Matrix& x) const override;
  Matrix Backward(const Matrix& dy) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }

  size_t in_features() const { return weight_.value.rows(); }
  size_t out_features() const { return weight_.value.cols(); }

 private:
  Parameter weight_;
  Parameter bias_;  // 1 x out
  Matrix cached_input_;
};

class ReLU : public Layer {
 public:
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix Infer(const Matrix& x) const override;
  Matrix Backward(const Matrix& dy) override;

 private:
  Matrix cached_input_;
};

/// Per-feature batch normalization with learned scale/shift and
/// running statistics for eval mode.
class BatchNorm1d : public Layer {
 public:
  explicit BatchNorm1d(size_t features, double momentum = 0.1,
                       double epsilon = 1e-5);

  Matrix Forward(const Matrix& x, bool training) override;
  Matrix Infer(const Matrix& x) const override;
  Matrix Backward(const Matrix& dy) override;
  std::vector<Parameter*> Params() override { return {&gamma_, &beta_}; }

 private:
  Parameter gamma_;  // 1 x features
  Parameter beta_;   // 1 x features
  Matrix running_mean_;
  Matrix running_var_;
  double momentum_, epsilon_;
  // Backward caches.
  Matrix cached_xhat_;
  std::vector<double> cached_inv_std_;
  size_t cached_batch_ = 0;
};

/// Softmax over a contiguous block of columns (the one-hot columns of
/// one categorical attribute); identity on the rest.
class SoftmaxBlock : public Layer {
 public:
  SoftmaxBlock(size_t start_col, size_t width);

  Matrix Forward(const Matrix& x, bool training) override;
  Matrix Infer(const Matrix& x) const override;
  Matrix Backward(const Matrix& dy) override;

 private:
  size_t start_, width_;
  Matrix cached_output_;
};

/// Layer pipeline.
class Sequential {
 public:
  template <typename L, typename... Args>
  L* Add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* ptr = layer.get();
    layers_.push_back(std::move(layer));
    return ptr;
  }

  Matrix Forward(const Matrix& x, bool training);
  Matrix Infer(const Matrix& x) const;
  Matrix Backward(const Matrix& dy);
  std::vector<Parameter*> Params();

  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace nn
}  // namespace mosaic

#endif  // MOSAIC_NN_LAYERS_H_
