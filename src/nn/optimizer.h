// Adam optimizer with the learning-rate-on-plateau schedule §5.3
// describes: "Pytorch's Adam optimizer with the default settings and
// an initial learning rate of 0.001 that decreases by a factor of 10
// if a plateau is reached during training."
#ifndef MOSAIC_NN_OPTIMIZER_H_
#define MOSAIC_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layers.h"

namespace mosaic {
namespace nn {

struct AdamOptions {
  double lr = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, const AdamOptions& options = {});

  /// Apply one update from the accumulated gradients.
  void Step();

  /// Clear accumulated gradients.
  void ZeroGrad();

  double lr() const { return options_.lr; }
  void set_lr(double lr) { options_.lr = lr; }

 private:
  std::vector<Parameter*> params_;
  AdamOptions options_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  size_t t_ = 0;
};

/// Reduce-LR-on-plateau: call Observe(loss) once per epoch; when the
/// best loss has not improved for `patience` epochs, the LR is
/// multiplied by `factor` (down to `min_lr`).
class PlateauScheduler {
 public:
  PlateauScheduler(Adam* optimizer, size_t patience = 5,
                   double factor = 0.1, double min_lr = 1e-7);

  /// Returns true when this call reduced the learning rate.
  bool Observe(double loss);

  double best_loss() const { return best_loss_; }

 private:
  Adam* optimizer_;
  size_t patience_;
  double factor_;
  double min_lr_;
  double best_loss_;
  size_t since_best_ = 0;
};

}  // namespace nn
}  // namespace mosaic

#endif  // MOSAIC_NN_OPTIMIZER_H_
