// Dense row-major matrices — the only tensor shape the M-SWG needs
// (batches of encoded tuples). Deliberately minimal: no views, no
// broadcasting; everything the training loop uses is spelled out.
#ifndef MOSAIC_NN_MATRIX_H_
#define MOSAIC_NN_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace mosaic {
namespace nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void Fill(double v);
  void Zero() { Fill(0.0); }

  /// Xavier/Glorot uniform init: U(-a, a) with a = sqrt(6/(fan_in +
  /// fan_out)).
  static Matrix XavierUniform(size_t rows, size_t cols, Rng* rng);

  /// i.i.d. standard Gaussians (scaled), e.g. latent batches.
  static Matrix Gaussian(size_t rows, size_t cols, Rng* rng,
                         double stddev = 1.0);

  /// C = A * B.
  static Matrix MatMul(const Matrix& a, const Matrix& b);
  /// C = A^T * B.
  static Matrix MatMulTransA(const Matrix& a, const Matrix& b);
  /// C = A * B^T.
  static Matrix MatMulTransB(const Matrix& a, const Matrix& b);

  /// this += other * scale (same shape).
  void AddScaled(const Matrix& other, double scale);

  /// One row as a vector copy.
  std::vector<double> Row(size_t r) const;

  /// L2 norm of all entries.
  double FrobeniusNorm() const;

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

}  // namespace nn
}  // namespace mosaic

#endif  // MOSAIC_NN_MATRIX_H_
