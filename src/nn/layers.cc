#include "nn/layers.h"

#include <cmath>

namespace mosaic {
namespace nn {

// --------------------------------------------------------------------------
// Linear
// --------------------------------------------------------------------------

Linear::Linear(size_t in_features, size_t out_features, Rng* rng)
    : weight_(Matrix::XavierUniform(in_features, out_features, rng)),
      bias_(Matrix(1, out_features)) {}

Matrix Linear::Forward(const Matrix& x, bool /*training*/) {
  cached_input_ = x;
  return Infer(x);
}

Matrix Linear::Infer(const Matrix& x) const {
  Matrix y = Matrix::MatMul(x, weight_.value);
  for (size_t i = 0; i < y.rows(); ++i) {
    for (size_t j = 0; j < y.cols(); ++j) {
      y.at(i, j) += bias_.value.at(0, j);
    }
  }
  return y;
}

Matrix Linear::Backward(const Matrix& dy) {
  // dW += X^T dY ; db += colsum(dY) ; dX = dY W^T
  weight_.grad.AddScaled(Matrix::MatMulTransA(cached_input_, dy), 1.0);
  for (size_t i = 0; i < dy.rows(); ++i) {
    for (size_t j = 0; j < dy.cols(); ++j) {
      bias_.grad.at(0, j) += dy.at(i, j);
    }
  }
  return Matrix::MatMulTransB(dy, weight_.value);
}

// --------------------------------------------------------------------------
// ReLU
// --------------------------------------------------------------------------

Matrix ReLU::Forward(const Matrix& x, bool /*training*/) {
  cached_input_ = x;
  return Infer(x);
}

Matrix ReLU::Infer(const Matrix& x) const {
  Matrix y = x;
  for (double& v : y.data()) {
    if (v < 0.0) v = 0.0;
  }
  return y;
}

Matrix ReLU::Backward(const Matrix& dy) {
  Matrix dx = dy;
  for (size_t i = 0; i < dx.size(); ++i) {
    if (cached_input_.data()[i] <= 0.0) dx.data()[i] = 0.0;
  }
  return dx;
}

// --------------------------------------------------------------------------
// BatchNorm1d
// --------------------------------------------------------------------------

BatchNorm1d::BatchNorm1d(size_t features, double momentum, double epsilon)
    : gamma_(Matrix(1, features, 1.0)),
      beta_(Matrix(1, features, 0.0)),
      running_mean_(1, features, 0.0),
      running_var_(1, features, 1.0),
      momentum_(momentum),
      epsilon_(epsilon) {}

Matrix BatchNorm1d::Forward(const Matrix& x, bool training) {
  size_t n = x.rows(), f = x.cols();
  Matrix y(n, f);
  cached_xhat_ = Matrix(n, f);
  cached_inv_std_.assign(f, 0.0);
  cached_batch_ = n;
  for (size_t j = 0; j < f; ++j) {
    double mean, var;
    if (training && n > 1) {
      mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += x.at(i, j);
      mean /= static_cast<double>(n);
      var = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double d = x.at(i, j) - mean;
        var += d * d;
      }
      var /= static_cast<double>(n);
      running_mean_.at(0, j) = (1.0 - momentum_) * running_mean_.at(0, j) +
                               momentum_ * mean;
      running_var_.at(0, j) =
          (1.0 - momentum_) * running_var_.at(0, j) + momentum_ * var;
    } else {
      mean = running_mean_.at(0, j);
      var = running_var_.at(0, j);
    }
    double inv_std = 1.0 / std::sqrt(var + epsilon_);
    cached_inv_std_[j] = inv_std;
    for (size_t i = 0; i < n; ++i) {
      double xhat = (x.at(i, j) - mean) * inv_std;
      cached_xhat_.at(i, j) = xhat;
      y.at(i, j) = gamma_.value.at(0, j) * xhat + beta_.value.at(0, j);
    }
  }
  return y;
}

Matrix BatchNorm1d::Infer(const Matrix& x) const {
  size_t n = x.rows(), f = x.cols();
  Matrix y(n, f);
  for (size_t j = 0; j < f; ++j) {
    double mean = running_mean_.at(0, j);
    double inv_std = 1.0 / std::sqrt(running_var_.at(0, j) + epsilon_);
    for (size_t i = 0; i < n; ++i) {
      double xhat = (x.at(i, j) - mean) * inv_std;
      y.at(i, j) = gamma_.value.at(0, j) * xhat + beta_.value.at(0, j);
    }
  }
  return y;
}

Matrix BatchNorm1d::Backward(const Matrix& dy) {
  // Standard batch-norm backward (training-mode batch statistics).
  size_t n = dy.rows(), f = dy.cols();
  Matrix dx(n, f);
  double inv_n = 1.0 / static_cast<double>(cached_batch_);
  for (size_t j = 0; j < f; ++j) {
    double g = gamma_.value.at(0, j);
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum_dy += dy.at(i, j);
      sum_dy_xhat += dy.at(i, j) * cached_xhat_.at(i, j);
    }
    gamma_.grad.at(0, j) += sum_dy_xhat;
    beta_.grad.at(0, j) += sum_dy;
    for (size_t i = 0; i < n; ++i) {
      double xhat = cached_xhat_.at(i, j);
      dx.at(i, j) = g * cached_inv_std_[j] *
                    (dy.at(i, j) - inv_n * sum_dy - inv_n * xhat *
                                                        sum_dy_xhat);
    }
  }
  return dx;
}

// --------------------------------------------------------------------------
// SoftmaxBlock
// --------------------------------------------------------------------------

SoftmaxBlock::SoftmaxBlock(size_t start_col, size_t width)
    : start_(start_col), width_(width) {}

Matrix SoftmaxBlock::Forward(const Matrix& x, bool /*training*/) {
  cached_output_ = Infer(x);
  return cached_output_;
}

Matrix SoftmaxBlock::Infer(const Matrix& x) const {
  Matrix y = x;
  for (size_t i = 0; i < x.rows(); ++i) {
    double max_v = -1e300;
    for (size_t j = start_; j < start_ + width_; ++j) {
      max_v = std::max(max_v, x.at(i, j));
    }
    double denom = 0.0;
    for (size_t j = start_; j < start_ + width_; ++j) {
      denom += std::exp(x.at(i, j) - max_v);
    }
    for (size_t j = start_; j < start_ + width_; ++j) {
      y.at(i, j) = std::exp(x.at(i, j) - max_v) / denom;
    }
  }
  return y;
}

Matrix SoftmaxBlock::Backward(const Matrix& dy) {
  Matrix dx = dy;
  for (size_t i = 0; i < dy.rows(); ++i) {
    // Jacobian of softmax within the block: ds_j/dz_k = s_j(δ_jk - s_k).
    double dot = 0.0;
    for (size_t j = start_; j < start_ + width_; ++j) {
      dot += dy.at(i, j) * cached_output_.at(i, j);
    }
    for (size_t j = start_; j < start_ + width_; ++j) {
      double s = cached_output_.at(i, j);
      dx.at(i, j) = s * (dy.at(i, j) - dot);
    }
  }
  return dx;
}

// --------------------------------------------------------------------------
// Sequential
// --------------------------------------------------------------------------

Matrix Sequential::Forward(const Matrix& x, bool training) {
  Matrix cur = x;
  for (auto& layer : layers_) {
    cur = layer->Forward(cur, training);
  }
  return cur;
}

Matrix Sequential::Infer(const Matrix& x) const {
  Matrix cur = x;
  for (const auto& layer : layers_) {
    cur = layer->Infer(cur);
  }
  return cur;
}

Matrix Sequential::Backward(const Matrix& dy) {
  Matrix cur = dy;
  for (size_t i = layers_.size(); i-- > 0;) {
    cur = layers_[i]->Backward(cur);
  }
  return cur;
}

std::vector<Parameter*> Sequential::Params() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) out.push_back(p);
  }
  return out;
}

}  // namespace nn
}  // namespace mosaic
