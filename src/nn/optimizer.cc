#include "nn/optimizer.h"

#include <cmath>
#include <limits>

namespace mosaic {
namespace nn {

Adam::Adam(std::vector<Parameter*> params, const AdamOptions& options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (size_t p = 0; p < params_.size(); ++p) {
    auto& value = params_[p]->value.data();
    auto& grad = params_[p]->grad.data();
    auto& m = m_[p].data();
    auto& v = v_[p].data();
    for (size_t i = 0; i < value.size(); ++i) {
      m[i] = options_.beta1 * m[i] + (1.0 - options_.beta1) * grad[i];
      v[i] = options_.beta2 * v[i] +
             (1.0 - options_.beta2) * grad[i] * grad[i];
      double mhat = m[i] / bc1;
      double vhat = v[i] / bc2;
      value[i] -= options_.lr * mhat / (std::sqrt(vhat) + options_.epsilon);
    }
  }
}

void Adam::ZeroGrad() {
  for (Parameter* p : params_) p->grad.Zero();
}

PlateauScheduler::PlateauScheduler(Adam* optimizer, size_t patience,
                                   double factor, double min_lr)
    : optimizer_(optimizer),
      patience_(patience),
      factor_(factor),
      min_lr_(min_lr),
      best_loss_(std::numeric_limits<double>::infinity()) {}

bool PlateauScheduler::Observe(double loss) {
  if (loss < best_loss_ - 1e-12) {
    best_loss_ = loss;
    since_best_ = 0;
    return false;
  }
  ++since_best_;
  if (since_best_ >= patience_) {
    since_best_ = 0;
    double new_lr = std::max(min_lr_, optimizer_->lr() * factor_);
    if (new_lr < optimizer_->lr()) {
      optimizer_->set_lr(new_lr);
      return true;
    }
  }
  return false;
}

}  // namespace nn
}  // namespace mosaic
