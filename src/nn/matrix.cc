#include "nn/matrix.h"

#include <cmath>

namespace mosaic {
namespace nn {

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

Matrix Matrix::XavierUniform(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  double a = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& x : m.data_) x = rng->Uniform(-a, a);
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, Rng* rng, double stddev) {
  Matrix m(rows, cols);
  for (double& x : m.data_) x = rng->Gaussian(0.0, stddev);
  return m;
}

Matrix Matrix::MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols_ == b.rows_);
  Matrix c(a.rows_, b.cols_);
  for (size_t i = 0; i < a.rows_; ++i) {
    for (size_t k = 0; k < a.cols_; ++k) {
      double av = a.data_[i * a.cols_ + k];
      if (av == 0.0) continue;
      const double* brow = &b.data_[k * b.cols_];
      double* crow = &c.data_[i * c.cols_];
      for (size_t j = 0; j < b.cols_; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix Matrix::MatMulTransA(const Matrix& a, const Matrix& b) {
  assert(a.rows_ == b.rows_);
  Matrix c(a.cols_, b.cols_);
  for (size_t k = 0; k < a.rows_; ++k) {
    const double* arow = &a.data_[k * a.cols_];
    const double* brow = &b.data_[k * b.cols_];
    for (size_t i = 0; i < a.cols_; ++i) {
      double av = arow[i];
      if (av == 0.0) continue;
      double* crow = &c.data_[i * c.cols_];
      for (size_t j = 0; j < b.cols_; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix Matrix::MatMulTransB(const Matrix& a, const Matrix& b) {
  assert(a.cols_ == b.cols_);
  Matrix c(a.rows_, b.rows_);
  for (size_t i = 0; i < a.rows_; ++i) {
    const double* arow = &a.data_[i * a.cols_];
    for (size_t j = 0; j < b.rows_; ++j) {
      const double* brow = &b.data_[j * b.cols_];
      double acc = 0.0;
      for (size_t k = 0; k < a.cols_; ++k) acc += arow[k] * brow[k];
      c.data_[i * c.cols_ + j] = acc;
    }
  }
  return c;
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i] * scale;
  }
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(data_.begin() + r * cols_,
                             data_.begin() + (r + 1) * cols_);
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace nn
}  // namespace mosaic
