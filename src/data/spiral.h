// Synthetic 2-D spiral population and biased sample (§5.3 "Synthetic
// Data", following the mixture-learning experiments of Cai et al.
// [9]). Used by the Figure 5/6 benches and the open-world examples.
#ifndef MOSAIC_DATA_SPIRAL_H_
#define MOSAIC_DATA_SPIRAL_H_

#include <cstddef>

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"

namespace mosaic {
namespace data {

struct SpiralOptions {
  size_t population_size = 100000;
  /// Angular range of the spiral arm, in radians.
  double max_angle = 3.0 * 3.14159265358979323846;
  /// Gaussian jitter around the arm.
  double noise = 0.02;
};

/// Generate the spiral population: schema (x DOUBLE, y DOUBLE), points
/// roughly in the unit box like Fig. 5.
Table GenerateSpiralPopulation(const SpiralOptions& options, Rng* rng);

struct SpiralBiasOptions {
  size_t sample_size = 10000;
  /// Strength of the selection bias along the spiral arm: inclusion
  /// probability ∝ exp(-strength * t / t_max), so the inner arm is
  /// heavily over-represented (mimicking Fig. 5(a)'s clumped sample).
  double bias_strength = 3.0;
};

/// Draw a biased sample (without replacement) from a spiral
/// population generated with the same options. The bias depends on
/// the position along the arm, which correlates with both x and y —
/// exactly the kind of bias 1-D marginals only partially describe.
[[nodiscard]] Result<Table> DrawBiasedSpiralSample(const Table& population,
                                     const SpiralBiasOptions& options,
                                     Rng* rng);

/// A random 2-D range-count query (Fig. 6): an axis-aligned box whose
/// width covers `coverage` of the data range in each dimension,
/// placed uniformly at random inside the data bounds.
struct RangeQuery {
  double x_lo, x_hi, y_lo, y_hi;
};

RangeQuery MakeRandomRangeQuery(const Table& population, double coverage,
                                Rng* rng);

/// Exact count of population rows inside the box.
double CountInBox(const Table& table, const RangeQuery& q,
                  const std::vector<double>* weights = nullptr);

}  // namespace data
}  // namespace mosaic

#endif  // MOSAIC_DATA_SPIRAL_H_
