#include "data/spiral.h"

#include <algorithm>
#include <cmath>

namespace mosaic {
namespace data {

Table GenerateSpiralPopulation(const SpiralOptions& options, Rng* rng) {
  Schema schema;
  (void)schema.AddColumn(ColumnDef{"x", DataType::kDouble});
  (void)schema.AddColumn(ColumnDef{"y", DataType::kDouble});
  Table table(schema);
  table.Reserve(options.population_size);
  // Archimedean spiral r = t / t_max, mapped into the unit box; the
  // density along t is uniform, matching the visual of Fig. 5.
  for (size_t i = 0; i < options.population_size; ++i) {
    double t = rng->Uniform() * options.max_angle;
    double r = 0.5 * t / options.max_angle;
    double x = 0.5 + r * std::cos(t) + rng->Gaussian(0.0, options.noise);
    double y = 0.4 + r * std::sin(t) + rng->Gaussian(0.0, options.noise);
    (void)table.AppendRow({Value(x), Value(y)});
  }
  return table;
}

[[nodiscard]] Result<Table> DrawBiasedSpiralSample(const Table& population,
                                     const SpiralBiasOptions& options,
                                     Rng* rng) {
  if (options.sample_size > population.num_rows()) {
    return Status::InvalidArgument("sample larger than population");
  }
  MOSAIC_ASSIGN_OR_RETURN(const Column* xc, population.ColumnByName("x"));
  MOSAIC_ASSIGN_OR_RETURN(const Column* yc, population.ColumnByName("y"));
  size_t n = population.num_rows();
  // Recover the arm position t of each point from its angle+radius
  // and bias inclusion by exp(-strength * t / t_max). We approximate
  // t by the radius (they are proportional for this spiral).
  std::vector<double> probs(n);
  for (size_t r = 0; r < n; ++r) {
    double x = *xc->GetDouble(r) - 0.5;
    double y = *yc->GetDouble(r) - 0.4;
    double radius = std::sqrt(x * x + y * y) / 0.5;  // ~ t / t_max
    probs[r] = std::exp(-options.bias_strength * radius);
  }
  // Weighted sampling without replacement (exponential-keys trick:
  // keep the sample_size largest u_i^(1/w_i), equivalently smallest
  // -log(u)/w).
  std::vector<std::pair<double, size_t>> keys(n);
  for (size_t r = 0; r < n; ++r) {
    double u = rng->Uniform();
    // Guard against u == 0.
    u = std::max(u, 1e-300);
    keys[r] = {-std::log(u) / probs[r], r};
  }
  std::partial_sort(keys.begin(), keys.begin() + options.sample_size,
                    keys.end());
  std::vector<size_t> rows(options.sample_size);
  for (size_t i = 0; i < options.sample_size; ++i) rows[i] = keys[i].second;
  std::sort(rows.begin(), rows.end());
  return population.Filter(rows);
}

RangeQuery MakeRandomRangeQuery(const Table& population, double coverage,
                                Rng* rng) {
  const Column& xc = **population.ColumnByName("x");
  const Column& yc = **population.ColumnByName("y");
  double x_min = 1e300, x_max = -1e300, y_min = 1e300, y_max = -1e300;
  for (size_t r = 0; r < population.num_rows(); ++r) {
    double x = *xc.GetDouble(r), y = *yc.GetDouble(r);
    x_min = std::min(x_min, x);
    x_max = std::max(x_max, x);
    y_min = std::min(y_min, y);
    y_max = std::max(y_max, y);
  }
  double wx = (x_max - x_min) * coverage;
  double wy = (y_max - y_min) * coverage;
  RangeQuery q;
  q.x_lo = x_min + rng->Uniform() * (x_max - x_min - wx);
  q.x_hi = q.x_lo + wx;
  q.y_lo = y_min + rng->Uniform() * (y_max - y_min - wy);
  q.y_hi = q.y_lo + wy;
  return q;
}

double CountInBox(const Table& table, const RangeQuery& q,
                  const std::vector<double>* weights) {
  const Column& xc = **table.ColumnByName("x");
  const Column& yc = **table.ColumnByName("y");
  double count = 0.0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    double x = *xc.GetDouble(r), y = *yc.GetDouble(r);
    if (x >= q.x_lo && x <= q.x_hi && y >= q.y_lo && y <= q.y_hi) {
      count += weights != nullptr ? (*weights)[r] : 1.0;
    }
  }
  return count;
}

}  // namespace data
}  // namespace mosaic
