// Synthetic stand-in for the IDEBench flights dataset (§5.3 "Flights
// Data"). The real benchmark data is not redistributable here, so we
// generate a population with the properties the experiments actually
// exploit (see DESIGN.md §4):
//
//   * the Table-1 schema — carrier (14 distinct values), taxi_out,
//     taxi_in, elapsed_time, distance, all whole numbers;
//   * a skewed carrier distribution with popular carriers ('WN',
//     'AA') and light hitters ('US', 'F9');
//   * strong distance -> elapsed_time correlation (cruise speed plus
//     taxi and overhead), which is what defeats uniform reweighting
//     on query 3;
//   * carrier-dependent route-length profiles so carrier x elapsed
//     marginals carry signal.
#ifndef MOSAIC_DATA_FLIGHTS_H_
#define MOSAIC_DATA_FLIGHTS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"

namespace mosaic {
namespace data {

/// The 14 carrier codes, ordered by decreasing popularity.
const std::vector<std::string>& FlightCarriers();

struct FlightsOptions {
  /// Paper uses the 2015–16 slice: 426,411 rows.
  size_t num_rows = 426411;
};

/// Generate the flights population with schema
/// (carrier VARCHAR, taxi_out INT, taxi_in INT, elapsed_time INT,
///  distance INT).
Table GenerateFlights(const FlightsOptions& options, Rng* rng);

struct FlightsBiasOptions {
  /// Sample size as a fraction of the population (paper: 5 percent).
  double sample_fraction = 0.05;
  /// Fraction of sample tuples that must satisfy the bias predicate
  /// elapsed_time > threshold (paper: 95 percent).
  double bias = 0.95;
  int64_t elapsed_threshold = 200;
};

/// Draw the biased sample: `bias` of the tuples come from flights
/// with elapsed_time > threshold, the rest from the complement
/// (uniformly within each part).
[[nodiscard]] Result<Table> DrawBiasedFlightsSample(const Table& population,
                                      const FlightsBiasOptions& options,
                                      Rng* rng);

}  // namespace data
}  // namespace mosaic

#endif  // MOSAIC_DATA_FLIGHTS_H_
