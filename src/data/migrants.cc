#include "data/migrants.h"

#include "exec/executor.h"
#include "sql/parser.h"

namespace mosaic {
namespace data {

const std::vector<std::string>& MigrantCountries() {
  static const std::vector<std::string> kCountries = {
      "UK", "FR", "DE", "ES", "IT", "NL", "SE", "PL", "PT", "GR"};
  return kCountries;
}

const std::vector<std::string>& EmailProviders() {
  static const std::vector<std::string> kProviders = {
      "Yahoo", "Gmail", "Outlook", "AOL", "Other"};
  return kProviders;
}

namespace {

/// Country population shares (migrants).
const std::vector<double>& CountryWeights() {
  static const std::vector<double> kWeights = {20, 15, 18, 11, 10,
                                               7,  6,  5,  4,  4};
  return kWeights;
}

/// Email-provider usage per country: Yahoo share declines from UK to
/// GR, which is exactly the Internet-usage selection bias the
/// motivating example corrects for.
double ProviderWeight(size_t country, size_t provider) {
  static const double kBase[] = {0.30, 0.35, 0.20, 0.05, 0.10};
  double w = kBase[provider];
  if (provider == 0) {  // Yahoo: strong per-country variation
    w *= 1.5 - 0.12 * static_cast<double>(country);
  }
  if (provider == 1) {  // Gmail picks up the slack
    w *= 0.7 + 0.10 * static_cast<double>(country);
  }
  return w;
}

const std::vector<std::string>& AgeGroups() {
  static const std::vector<std::string> kAges = {"18-29", "30-44", "45-64",
                                                 "65+"};
  return kAges;
}

}  // namespace

Table GenerateMigrantsPopulation(const MigrantsOptions& options, Rng* rng) {
  Schema schema;
  (void)schema.AddColumn(ColumnDef{"country", DataType::kString});
  (void)schema.AddColumn(ColumnDef{"email", DataType::kString});
  (void)schema.AddColumn(ColumnDef{"age_group", DataType::kString});
  Table table(schema);
  table.Reserve(options.population_size);
  const auto& countries = MigrantCountries();
  const auto& providers = EmailProviders();
  const auto& ages = AgeGroups();
  static const std::vector<double> kAgeWeights = {0.35, 0.33, 0.22, 0.10};
  for (size_t i = 0; i < options.population_size; ++i) {
    size_t c = rng->Categorical(CountryWeights());
    std::vector<double> pw(providers.size());
    for (size_t p = 0; p < providers.size(); ++p) {
      pw[p] = ProviderWeight(c, p);
    }
    size_t p = rng->Categorical(pw);
    size_t a = rng->Categorical(kAgeWeights);
    (void)table.AppendRow(
        {Value(countries[c]), Value(providers[p]), Value(ages[a])});
  }
  return table;
}

namespace {
[[nodiscard]] Result<Table> Report(const Table& population, const std::string& attr) {
  MOSAIC_ASSIGN_OR_RETURN(
      auto stmt, sql::ParseStatement("SELECT " + attr +
                                     ", COUNT(*) AS reported_count FROM pop "
                                     "GROUP BY " +
                                     attr));
  return exec::ExecuteSelect(population, stmt.As<sql::SelectStmt>());
}
}  // namespace

[[nodiscard]] Result<Table> EurostatCountryReport(const Table& population) {
  return Report(population, "country");
}

[[nodiscard]] Result<Table> EurostatEmailReport(const Table& population) {
  return Report(population, "email");
}

[[nodiscard]] Result<Table> YahooSample(const Table& population) {
  MOSAIC_ASSIGN_OR_RETURN(
      auto stmt,
      sql::ParseStatement("SELECT * FROM pop WHERE email = 'Yahoo'"));
  return exec::ExecuteSelect(population, stmt.As<sql::SelectStmt>());
}

}  // namespace data
}  // namespace mosaic
