#include "data/flights.h"

#include <algorithm>
#include <cmath>

namespace mosaic {
namespace data {

const std::vector<std::string>& FlightCarriers() {
  static const std::vector<std::string> kCarriers = {
      "WN", "AA", "DL", "UA", "OO", "EV", "B6", "AS",
      "NK", "MQ", "HA", "VX", "US", "F9"};
  return kCarriers;
}

namespace {

/// Relative carrier frequencies: heavy skew with 'US' and 'F9' as the
/// light hitters queries 8 exercises.
const std::vector<double>& CarrierWeights() {
  static const std::vector<double> kWeights = {
      24.0, 16.0, 15.0, 10.0, 9.0, 7.0, 5.0, 4.0,
      3.0,  2.5,  1.5,  1.2,  0.8, 0.5};
  return kWeights;
}

/// Per-carrier route-length profile: mean log-distance. Regionals
/// (OO/EV/MQ) fly short hops; HA/VX skew long.
const std::vector<double>& CarrierLogDistanceMean() {
  static const std::vector<double> kMeans = {
      6.4, 6.9, 6.8, 7.0, 5.9, 5.8, 6.9, 6.7,
      6.6, 5.9, 7.4, 7.1, 6.5, 6.7};
  return kMeans;
}

}  // namespace

Table GenerateFlights(const FlightsOptions& options, Rng* rng) {
  Schema schema;
  (void)schema.AddColumn(ColumnDef{"carrier", DataType::kString});
  (void)schema.AddColumn(ColumnDef{"taxi_out", DataType::kInt64});
  (void)schema.AddColumn(ColumnDef{"taxi_in", DataType::kInt64});
  (void)schema.AddColumn(ColumnDef{"elapsed_time", DataType::kInt64});
  (void)schema.AddColumn(ColumnDef{"distance", DataType::kInt64});
  Table table(schema);
  table.Reserve(options.num_rows);
  const auto& carriers = FlightCarriers();
  const auto& weights = CarrierWeights();
  const auto& log_means = CarrierLogDistanceMean();
  for (size_t i = 0; i < options.num_rows; ++i) {
    size_t c = rng->Categorical(weights);
    // Log-normal distances clipped to the domestic range [31, 4983].
    double dist = std::exp(rng->Gaussian(log_means[c], 0.65));
    dist = std::min(std::max(dist, 31.0), 4983.0);
    // Taxi times: airport congestion varies mildly with carrier size
    // (big carriers fly into big hubs).
    double hub_factor = 1.0 + 0.3 * (weights[c] / weights[0]);
    double taxi_out = std::max(1.0, rng->Gaussian(14.0 * hub_factor, 5.0));
    double taxi_in = std::max(1.0, rng->Gaussian(6.5 * hub_factor, 2.5));
    // Air time: climb/descend overhead plus cruise at ~7.6 miles/min,
    // slower effective speed on short hops.
    double cruise = dist / (7.6 - 2.2 * std::exp(-dist / 400.0));
    double elapsed =
        taxi_out + taxi_in + 18.0 + cruise + rng->Gaussian(0.0, 9.0);
    elapsed = std::max(elapsed, taxi_out + taxi_in + 10.0);
    (void)table.AppendRow({Value(carriers[c]),
                           Value(static_cast<int64_t>(std::llround(taxi_out))),
                           Value(static_cast<int64_t>(std::llround(taxi_in))),
                           Value(static_cast<int64_t>(std::llround(elapsed))),
                           Value(static_cast<int64_t>(std::llround(dist)))});
  }
  return table;
}

[[nodiscard]] Result<Table> DrawBiasedFlightsSample(const Table& population,
                                      const FlightsBiasOptions& options,
                                      Rng* rng) {
  if (options.sample_fraction <= 0.0 || options.sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction must be in (0, 1]");
  }
  if (options.bias < 0.0 || options.bias > 1.0) {
    return Status::InvalidArgument("bias must be in [0, 1]");
  }
  MOSAIC_ASSIGN_OR_RETURN(const Column* ec,
                          population.ColumnByName("elapsed_time"));
  std::vector<size_t> long_rows, short_rows;
  for (size_t r = 0; r < population.num_rows(); ++r) {
    if (static_cast<int64_t>(*ec->GetDouble(r)) >
        options.elapsed_threshold) {
      long_rows.push_back(r);
    } else {
      short_rows.push_back(r);
    }
  }
  size_t n = static_cast<size_t>(
      std::llround(options.sample_fraction *
                   static_cast<double>(population.num_rows())));
  size_t n_long = static_cast<size_t>(std::llround(options.bias *
                                                   static_cast<double>(n)));
  n_long = std::min(n_long, long_rows.size());
  size_t n_short = std::min(n - n_long, short_rows.size());
  auto pick_long = rng->SampleWithoutReplacement(long_rows.size(), n_long);
  auto pick_short = rng->SampleWithoutReplacement(short_rows.size(), n_short);
  std::vector<size_t> rows;
  rows.reserve(n_long + n_short);
  for (size_t i : pick_long) rows.push_back(long_rows[i]);
  for (size_t i : pick_short) rows.push_back(short_rows[i]);
  std::sort(rows.begin(), rows.end());
  return population.Filter(rows);
}

}  // namespace data
}  // namespace mosaic
