// Synthetic Europe-migrants scenario: the paper's motivating example
// (§2), where a data scientist estimates migrant counts per country
// from a Yahoo!-email sample debiased against Eurostat marginals
// (inspired by Zagheni & Weber [50]).
//
// We generate a ground-truth migrant population over (country, email,
// age_group) with email-provider usage that *varies by country* —
// precisely the selection bias the example is about — plus the
// Eurostat-style report tables (migrants per country, migrants per
// email provider).
#ifndef MOSAIC_DATA_MIGRANTS_H_
#define MOSAIC_DATA_MIGRANTS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"

namespace mosaic {
namespace data {

const std::vector<std::string>& MigrantCountries();
const std::vector<std::string>& EmailProviders();

struct MigrantsOptions {
  size_t population_size = 200000;
};

/// Population with schema (country VARCHAR, email VARCHAR,
/// age_group VARCHAR).
Table GenerateMigrantsPopulation(const MigrantsOptions& options, Rng* rng);

/// The "Eurostat" report: (country, reported_count) aggregated from
/// the population.
[[nodiscard]] Result<Table> EurostatCountryReport(const Table& population);

/// The "Eurostat" report: (email, reported_count).
[[nodiscard]] Result<Table> EurostatEmailReport(const Table& population);

/// All tuples whose email provider is "Yahoo" — the biased sample the
/// motivating example queries.
[[nodiscard]] Result<Table> YahooSample(const Table& population);

}  // namespace data
}  // namespace mosaic

#endif  // MOSAIC_DATA_MIGRANTS_H_
