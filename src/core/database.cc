#include "core/database.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>

#include "common/env.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/query_log.h"
#include "common/string_util.h"
#include "core/durability.h"
#include "core/system_tables.h"
#include "exec/batch_eval.h"
#include "exec/executor.h"
#include "exec/expr_eval.h"
#include "exec/trace_table.h"
#include "sql/parser.h"
#include "stats/reweight.h"
#include "storage/csv.h"
#include "storage/table_view.h"

namespace mosaic {
namespace core {

namespace {

constexpr char kWeightColumn[] = "weight";

/// Rows [begin, num_rows) of `table` as an owning table — the suffix
/// a durability sink logs after an append.
Table TailRows(const Table& table, size_t begin) {
  std::vector<size_t> rows(table.num_rows() - begin);
  std::iota(rows.begin(), rows.end(), begin);
  return table.Filter(rows);
}

/// Attach a weight column to a copy of `data`.
[[nodiscard]] Result<Table> WithWeights(const Table& data,
                          const std::vector<double>& weights) {
  if (data.schema().FindColumn(kWeightColumn)) {
    return Status::InvalidArgument(
        "relation already has a 'weight' column; it clashes with Mosaic's "
        "managed weights");
  }
  Table out = data;
  MOSAIC_RETURN_IF_ERROR(out.AddDoubleColumn(kWeightColumn, weights));
  return out;
}

/// Zero-copy counterpart of WithWeights: a view over `data`'s columns
/// plus a span over the external weight vector. `weights` must
/// outlive the view.
[[nodiscard]] Result<TableView> MakeWeightedView(const Table& data,
                                   const std::vector<double>& weights) {
  if (data.schema().FindColumn(kWeightColumn)) {
    return Status::InvalidArgument(
        "relation already has a 'weight' column; it clashes with Mosaic's "
        "managed weights");
  }
  TableView view(data);
  MOSAIC_RETURN_IF_ERROR(
      view.AddDoubleSpan(kWeightColumn, weights.data(), weights.size()));
  return view;
}

/// Selection of `view`'s rows belonging to the population (all rows
/// for the GP or a predicate-less population).
[[nodiscard]] Result<SelectionVector> PopulationSelection(const TableView& view,
                                            const PopulationInfo& population) {
  if (population.global || population.predicate == nullptr) {
    return SelectionVector::All(view.num_rows());
  }
  return exec::SelectRows(view, *population.predicate);
}

/// Average numeric cells across several per-run result tables,
/// keeping only group keys "appearing in all answers" — the paper's
/// §5.3 variance-reduction rule for multi-sample OPEN answers.
[[nodiscard]] Result<Table> CombineOpenRuns(const std::vector<Table>& runs,
                              const sql::SelectStmt& stmt) {
  if (runs.size() == 1) return runs[0];
  const Schema& schema = runs[0].schema();
  // Group-key output columns = select items that are bare column refs.
  std::vector<size_t> key_cols;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (stmt.items[i].expr->kind == sql::Expr::Kind::kColumnRef) {
      key_cols.push_back(i);
    }
  }
  auto key_of = [&](const Table& t, size_t row) {
    std::vector<Value> key;
    key.reserve(key_cols.size());
    for (size_t c : key_cols) key.push_back(t.GetValue(row, c));
    return key;
  };
  // Count appearances and accumulate sums per key.
  std::map<std::vector<Value>, size_t> seen;
  std::map<std::vector<Value>, std::vector<double>> sums;
  for (const Table& run : runs) {
    for (size_t r = 0; r < run.num_rows(); ++r) {
      auto key = key_of(run, r);
      seen[key] += 1;
      auto& acc = sums[key];
      if (acc.empty()) acc.assign(schema.num_columns(), 0.0);
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        auto d = run.GetValue(r, c).ToDouble();
        if (d.ok()) acc[c] += *d;
      }
    }
  }
  Table out(schema);
  // Emit in first-run order, keys present in every run only.
  std::set<std::vector<Value>> emitted;
  for (size_t r = 0; r < runs[0].num_rows(); ++r) {
    auto key = key_of(runs[0], r);
    if (seen[key] < runs.size() || emitted.count(key) > 0) continue;
    emitted.insert(key);
    std::vector<Value> row(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      bool is_key = std::find(key_cols.begin(), key_cols.end(), c) !=
                    key_cols.end();
      if (is_key) {
        row[c] = runs[0].GetValue(r, c);
      } else {
        double avg = sums[key][c] / static_cast<double>(runs.size());
        if (schema.column(c).type == DataType::kInt64) {
          row[c] = Value(static_cast<int64_t>(std::llround(avg)));
        } else {
          row[c] = Value(avg);
        }
      }
    }
    MOSAIC_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace

Database::Database() : model_cache_(kDefaultModelCacheCapacity) {
  // Ad-hoc OPEN queries get a lighter training budget than the
  // benches (which configure their own MswgOptions).
  open_.mswg.epochs = 15;
  open_.mswg.steps_per_epoch = 30;
  open_.mswg.batch_size = 256;
  open_.mswg.projections_per_step = 16;
  if (EnvFlag("MOSAIC_ROW_PATH")) force_row_exec_ = true;
  // MOSAIC_MORSELS=<rows> turns on morsel-split batch execution
  // engine-wide (CI runs every suite this way; see scripts/check.sh).
  // Parallelism still requires a pool — set_morsel_pool, which the
  // query service wires to its request pool. Garbage or overflowing
  // values warn and leave morsels disabled (common/env.h).
  if (auto size = EnvSize("MOSAIC_MORSELS"); size.has_value() && *size > 0) {
    morsel_size_ = *size;
  }
  // The five system tables always resolve: queries and metrics read
  // the live process-wide stores; sessions/connections/snapshots are
  // empty schema stubs until the service/network layers override them
  // with real providers at startup.
  RegisterSystemTable(
      "queries", [] { return BuildQueriesTable(qlog::QueryLog::Global()); });
  RegisterSystemTable("metrics", [] { return BuildMetricsTable(); });
  RegisterSystemTable("sessions", [] { return EmptySessionsTable(); });
  RegisterSystemTable("connections", [] { return EmptyConnectionsTable(); });
  RegisterSystemTable("snapshots", [] { return EmptySnapshotsTable(); });
}

void Database::RegisterSystemTable(const std::string& name,
                                   SystemTableProvider provider) {
  MutexLock lock(system_mu_);
  system_tables_[ToLower(name)] = std::move(provider);
}

bool Database::IsSystemRelation(const std::string& name) {
  static constexpr char kPrefix[] = "system.";
  if (name.size() <= sizeof(kPrefix) - 1) return false;
  for (size_t i = 0; i < sizeof(kPrefix) - 1; ++i) {
    char c = name[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c != kPrefix[i]) return false;
  }
  return true;
}

Result<Table> Database::ExecuteSystemSelect(const sql::SelectStmt& stmt,
                                            trace::QueryTrace* trace,
                                            uint32_t trace_parent) {
  if (stmt.visibility != sql::Visibility::kDefault) {
    return Status::InvalidArgument(
        "visibility levels apply to population queries; '" + stmt.from +
        "' is a system table");
  }
  const std::string bare =
      ToLower(stmt.from).substr(sizeof("system.") - 1);
  SystemTableProvider provider;
  {
    MutexLock lock(system_mu_);
    auto it = system_tables_.find(bare);
    if (it != system_tables_.end()) provider = it->second;
  }
  if (!provider) {
    std::string names;
    {
      MutexLock lock(system_mu_);
      for (const auto& [name, p] : system_tables_) {
        if (!names.empty()) names += ", ";
        names += "system." + name;
      }
    }
    return Status::NotFound("no system table named '" + stmt.from +
                            "' (available: " + names + ")");
  }
  // Materialize the snapshot once, then run the ordinary executor
  // over a zero-copy view of it — same three paths, same parity
  // guarantees as any auxiliary table.
  Table snapshot;
  {
    trace::ScopedSpan span(trace, trace_parent, "system_snapshot");
    MOSAIC_ASSIGN_OR_RETURN(snapshot, provider());
    if (trace != nullptr) {
      span.Note("table=" + bare +
                " rows=" + std::to_string(snapshot.num_rows()));
    }
  }
  exec::ExecOptions opts = BatchExecOptions();
  opts.use_row_path = force_row_exec_;
  opts.trace = trace;
  opts.trace_parent = trace_parent;
  return exec::ExecuteSelect(snapshot, stmt, opts);
}

exec::ExecOptions Database::BatchExecOptions() const {
  exec::ExecOptions opts;
  opts.morsels.morsel_size = morsel_size_;
  opts.morsels.parallelism = morsel_parallelism_;
  opts.morsels.pool = morsel_pool_;
  return opts;
}

Result<Table> Database::Execute(const std::string& sql) {
  MOSAIC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  // Through ExecuteParsed so a standalone EXPLAIN ANALYZE (no service
  // in front, e.g. the shell) still answers with its span table.
  return ExecuteParsed(&stmt);
}

Result<Table> Database::ExecuteParsed(sql::Statement* stmt,
                                      trace::QueryTrace* trace,
                                      uint32_t trace_parent) {
  const bool explain = stmt->Is<sql::SelectStmt>() &&
                       stmt->As<sql::SelectStmt>().explain_analyze;
  if (explain && trace == nullptr) {
    // Standalone EXPLAIN ANALYZE (no service in front): trace this
    // execution and answer with the span table instead of the rows.
    trace::QueryTrace local;
    {
      trace::ScopedSpan root(&local, trace::kNoParent, "execute");
      MOSAIC_RETURN_IF_ERROR(
          ExecuteStatement(stmt, &local, root.id()).status());
    }
    return exec::TraceToTable(local);
  }
  return ExecuteStatement(stmt, trace, trace_parent);
}

Result<Table> Database::ExecuteScript(const std::string& sql) {
  MOSAIC_ASSIGN_OR_RETURN(auto stmts, sql::ParseScript(sql));
  if (stmts.empty()) {
    return Status::InvalidArgument("empty script");
  }
  Table last;
  for (auto& stmt : stmts) {
    MOSAIC_ASSIGN_OR_RETURN(last, ExecuteParsed(&stmt));
  }
  return last;
}

Result<Table> Database::ExecuteStatement(sql::Statement* stmt,
                                         trace::QueryTrace* trace,
                                         uint32_t trace_parent) {
  if (stmt->Is<sql::SelectStmt>()) {
    return ExecuteSelect(stmt->As<sql::SelectStmt>(), trace, trace_parent);
  }
  if (stmt->Is<sql::CreateTableStmt>()) {
    MOSAIC_RETURN_IF_ERROR(
        ExecuteCreateTable(stmt->As<sql::CreateTableStmt>()));
    return Table();
  }
  if (stmt->Is<sql::CreatePopulationStmt>()) {
    MOSAIC_RETURN_IF_ERROR(
        ExecuteCreatePopulation(&stmt->As<sql::CreatePopulationStmt>()));
    return Table();
  }
  if (stmt->Is<sql::CreateSampleStmt>()) {
    MOSAIC_RETURN_IF_ERROR(
        ExecuteCreateSample(&stmt->As<sql::CreateSampleStmt>()));
    return Table();
  }
  if (stmt->Is<sql::CreateMetadataStmt>()) {
    MOSAIC_RETURN_IF_ERROR(
        ExecuteCreateMetadata(&stmt->As<sql::CreateMetadataStmt>()));
    return Table();
  }
  if (stmt->Is<sql::InsertStmt>()) {
    MOSAIC_RETURN_IF_ERROR(ExecuteInsert(stmt->As<sql::InsertStmt>()));
    return Table();
  }
  if (stmt->Is<sql::CopyStmt>()) {
    MOSAIC_RETURN_IF_ERROR(ExecuteCopy(stmt->As<sql::CopyStmt>()));
    return Table();
  }
  if (stmt->Is<sql::DropStmt>()) {
    MOSAIC_RETURN_IF_ERROR(ExecuteDrop(stmt->As<sql::DropStmt>()));
    return Table();
  }
  if (stmt->Is<sql::UpdateStmt>()) {
    MOSAIC_RETURN_IF_ERROR(ExecuteUpdate(stmt->As<sql::UpdateStmt>()));
    return Table();
  }
  if (stmt->Is<sql::ShowStmt>()) {
    return ExecuteShow(stmt->As<sql::ShowStmt>());
  }
  return Status::NotImplemented("unsupported statement kind");
}

// ---------------------------------------------------------------------------
// SELECT routing
// ---------------------------------------------------------------------------

Result<Table> Database::ExecuteSelect(const sql::SelectStmt& stmt,
                                      trace::QueryTrace* trace,
                                      uint32_t trace_parent) {
  if (IsSystemRelation(stmt.from)) {
    // The "system." schema is reserved: it wins over (and hides) any
    // catalog relation that happens to carry a dotted name.
    return ExecuteSystemSelect(stmt, trace, trace_parent);
  }
  if (catalog_.HasTable(stmt.from)) {
    if (stmt.visibility != sql::Visibility::kDefault) {
      return Status::InvalidArgument(
          "visibility levels apply to population queries; '" + stmt.from +
          "' is an auxiliary table");
    }
    MOSAIC_ASSIGN_OR_RETURN(Table* table, catalog_.GetTable(stmt.from));
    exec::ExecOptions opts = BatchExecOptions();
    opts.use_row_path = force_row_exec_;
    opts.trace = trace;
    opts.trace_parent = trace_parent;
    return exec::ExecuteSelect(*table, stmt, opts);
  }
  if (catalog_.HasSample(stmt.from)) {
    // Direct sample access: plain SQL over the sample tuples. The
    // managed weights are visible as a 'weight' column so users can
    // inspect them (§3.2 lets users read and update weights).
    if (stmt.visibility != sql::Visibility::kDefault &&
        stmt.visibility != sql::Visibility::kClosed) {
      return Status::InvalidArgument(
          "SEMI-OPEN/OPEN apply to population queries; query the "
          "population instead of sample '" +
          stmt.from + "'");
    }
    MOSAIC_ASSIGN_OR_RETURN(SampleInfo* sample,
                            catalog_.GetSample(stmt.from));
    // Pin one weight epoch for the whole query: concurrent refits
    // publish new epochs without perturbing this reader.
    WeightEpochPtr epoch;
    {
      trace::ScopedSpan pin_span(trace, trace_parent, "weight_pin");
      epoch = sample->weights.Pin();
      trace::CountEpochPin(trace);
      if (trace != nullptr) {
        pin_span.Note("epoch=" + std::to_string(epoch->id));
      }
    }
    if (force_row_exec_) {
      MOSAIC_ASSIGN_OR_RETURN(Table with_w,
                              WithWeights(sample->data, epoch->weights));
      exec::ExecOptions opts;
      opts.use_row_path = true;
      opts.trace = trace;
      opts.trace_parent = trace_parent;
      return exec::ExecuteSelect(with_w, stmt, opts);
    }
    MOSAIC_ASSIGN_OR_RETURN(TableView view,
                            MakeWeightedView(sample->data, epoch->weights));
    exec::ExecOptions opts = BatchExecOptions();
    opts.trace = trace;
    opts.trace_parent = trace_parent;
    return exec::ExecuteSelect(view, SelectionVector::All(view.num_rows()),
                               stmt, opts);
  }
  if (catalog_.HasPopulation(stmt.from)) {
    MOSAIC_ASSIGN_OR_RETURN(PopulationInfo* pop,
                            catalog_.GetPopulation(stmt.from));
    return ExecutePopulationQuery(stmt, pop, trace, trace_parent);
  }
  return Status::NotFound("no relation named '" + stmt.from + "'");
}

Result<SampleInfo*> Database::ChooseSample(const PopulationInfo& population) {
  // Samples are registered against the GP; a derived population's
  // samples are its parent's.
  const std::string& gp_name =
      population.global ? population.name : population.parent;
  auto samples = catalog_.SamplesOf(gp_name);
  if (samples.empty()) {
    return Status::NotFound("no sample available for population '" +
                            population.name + "'");
  }
  if (union_samples_ && samples.size() > 1) {
    // §7 "Multiple Samples": union all same-schema samples and let
    // the debiasing reweight the combined tuples. Rebuild the scratch
    // union only when the constituent samples changed. The rebuild
    // mutates engine state, which is why the service runs *every*
    // statement — SELECTs included — under the exclusive lock in
    // union mode (QueryService::Run checks union_samples()).
    std::string key = ToLower(gp_name);
    for (SampleInfo* s : samples) {
      key += "|" + ToLower(s->name) + ":" +
             std::to_string(s->data.num_rows());
    }
    if (key != union_scratch_key_) {
      SampleInfo merged;
      merged.name = "__union_of_" + gp_name;
      merged.population = gp_name;
      merged.schema = samples[0]->schema;
      merged.data = Table(merged.schema);
      for (SampleInfo* s : samples) {
        if (!(s->schema == merged.schema)) {
          return Status::NotImplemented(
              "union of samples requires identical schemas ('" + s->name +
              "' differs); see §7 'Data Integration'");
        }
        MOSAIC_RETURN_IF_ERROR(merged.data.Concat(s->data));
      }
      merged.weights.Reset(merged.data.num_rows());
      union_scratch_ = std::move(merged);
      union_scratch_key_ = key;
    }
    if (union_scratch_.data.num_rows() == 0) {
      return Status::ExecutionError("no ingested tuples in any sample");
    }
    return &union_scratch_;
  }
  // Assumption 2 of §4: a single, optimal sample. We pick the one
  // with the most tuples.
  SampleInfo* best = samples[0];
  for (SampleInfo* s : samples) {
    if (s->data.num_rows() > best->data.num_rows()) best = s;
  }
  if (best->data.num_rows() == 0) {
    return Status::ExecutionError("sample '" + best->name +
                                  "' has no ingested tuples");
  }
  return best;
}

Result<Table> Database::RestrictToPopulation(
    const Table& sample_data, const PopulationInfo& population) {
  if (population.global || population.predicate == nullptr) {
    return sample_data;
  }
  if (force_row_exec_) {
    MOSAIC_ASSIGN_OR_RETURN(
        auto rows, exec::FilterRows(sample_data, *population.predicate));
    return sample_data.Filter(rows);
  }
  // Batch filter + typed gather: one selection pass over spans, one
  // materialization for consumers that need an owning Table (IPF /
  // M-SWG training input).
  TableView view(sample_data);
  MOSAIC_ASSIGN_OR_RETURN(SelectionVector sel,
                          exec::SelectRows(view, *population.predicate));
  return view.Materialize(sel);
}

Result<Database::DebiasPlan> Database::PlanDebias(
    PopulationInfo* population) {
  DebiasPlan plan;
  if (!population->marginals.empty()) {
    plan.marginals = &population->marginals;
    plan.reweight_to_global = false;
  } else if (!population->global) {
    MOSAIC_ASSIGN_OR_RETURN(PopulationInfo* gp, catalog_.GlobalPopulation());
    if (gp->marginals.empty()) {
      return Status::ExecutionError(
          "population '" + population->name +
          "' has no metadata and neither does the global population; "
          "SEMI-OPEN/OPEN queries need marginals (§4 assumption 3)");
    }
    plan.marginals = &gp->marginals;
    plan.reweight_to_global = true;
  } else {
    return Status::ExecutionError(
        "global population '" + population->name +
        "' has no metadata; SEMI-OPEN/OPEN queries need marginals "
        "(§4 assumption 3)");
  }
  double total = 0.0;
  for (const auto& m : *plan.marginals) total += m.total();
  plan.population_size = total / static_cast<double>(plan.marginals->size());
  return plan;
}

Result<Table> Database::ExecutePopulationQuery(const sql::SelectStmt& stmt,
                                               PopulationInfo* population,
                                               trace::QueryTrace* trace,
                                               uint32_t trace_parent) {
  sql::Visibility vis = stmt.visibility == sql::Visibility::kDefault
                            ? sql::Visibility::kClosed
                            : stmt.visibility;

  switch (vis) {
    case sql::Visibility::kClosed: {
      // LAV-view answering: the sample tuples that belong to the
      // population, no debiasing. The batch path answers over a
      // zero-copy view of the sample restricted by a selection
      // vector; no intermediate Table is materialized.
      MOSAIC_ASSIGN_OR_RETURN(SampleInfo* sample, ChooseSample(*population));
      if (force_row_exec_) {
        MOSAIC_ASSIGN_OR_RETURN(
            Table restricted,
            RestrictToPopulation(sample->data, *population));
        exec::ExecOptions opts;
        opts.use_row_path = true;
        opts.trace = trace;
        opts.trace_parent = trace_parent;
        return exec::ExecuteSelect(restricted, stmt, opts);
      }
      TableView view(sample->data);
      MOSAIC_ASSIGN_OR_RETURN(SelectionVector sel,
                              PopulationSelection(view, *population));
      exec::ExecOptions opts = BatchExecOptions();
      opts.trace = trace;
      opts.trace_parent = trace_parent;
      return exec::ExecuteSelect(view, std::move(sel), stmt, opts);
    }
    case sql::Visibility::kSemiOpen: {
      MOSAIC_ASSIGN_OR_RETURN(SampleInfo* sample, ChooseSample(*population));
      // The refit publishes (or no-op reuses) a weight epoch and pins
      // it; the query answers over exactly that epoch, so a racing
      // refit for another population over the same sample cannot
      // inject its weights mid-query. Restrict to the population and
      // answer over the weighted view (the pinned weights are
      // attached as an external span — the sample tuples are never
      // copied).
      stats::IpfReport report;
      WeightEpochPtr epoch;
      {
        trace::ScopedSpan span(trace, trace_parent, "reweight");
        MOSAIC_ASSIGN_OR_RETURN(epoch,
                                ReweightAndPin(population->name, &report));
        trace::CountEpochPin(trace);
        if (trace != nullptr) {
          span.Note("epoch=" + std::to_string(epoch->id));
        }
      }
      if (force_row_exec_) {
        MOSAIC_ASSIGN_OR_RETURN(Table with_w,
                                WithWeights(sample->data, epoch->weights));
        MOSAIC_ASSIGN_OR_RETURN(Table restricted,
                                RestrictToPopulation(with_w, *population));
        exec::ExecOptions opts;
        opts.weight_column = kWeightColumn;
        opts.use_row_path = true;
        opts.trace = trace;
        opts.trace_parent = trace_parent;
        return exec::ExecuteSelect(restricted, stmt, opts);
      }
      MOSAIC_ASSIGN_OR_RETURN(TableView view,
                              MakeWeightedView(sample->data, epoch->weights));
      MOSAIC_ASSIGN_OR_RETURN(SelectionVector sel,
                              PopulationSelection(view, *population));
      exec::ExecOptions opts = BatchExecOptions();
      opts.weight_column = kWeightColumn;
      opts.trace = trace;
      opts.trace_parent = trace_parent;
      return exec::ExecuteSelect(view, std::move(sel), stmt, opts);
    }
    case sql::Visibility::kOpen: {
      size_t runs = std::max<size_t>(1, open_.num_generated_samples);
      // Train (or fetch) the generator once, then produce the
      // independent generated samples — on the generation pool when
      // one is attached, sequentially otherwise. Each run k owns seed
      // generation_seed + k, so both paths are bit-identical.
      OpenWorldModel model;
      {
        trace::ScopedSpan span(trace, trace_parent, "train_or_fetch_model");
        MOSAIC_ASSIGN_OR_RETURN(model,
                                PrepareOpenWorldModel(population->name));
      }
      auto run_one = [&, this](size_t k) -> Result<Table> {
        // Exceptions must not escape: pool tasks reference this stack
        // frame, and an unwinding submitter would leave them dangling.
        try {
          // Generation-pool threads record under the query's parent
          // span by explicit id — there is no per-thread span stack
          // to inherit (common/trace.h).
          trace::ScopedSpan gen_span(
              trace, trace_parent, ("generate " + std::to_string(k)).c_str());
          const uint64_t seed = open_.generation_seed + k;
          if (force_row_exec_) {
            MOSAIC_ASSIGN_OR_RETURN(
                Table generated,
                GenerateFromModel(model, open_.generated_rows, seed));
            exec::ExecOptions opts;
            opts.weight_column = kWeightColumn;
            opts.use_row_path = true;
            opts.trace = trace;
            opts.trace_parent = gen_span.id();
            return exec::ExecuteSelect(generated, stmt, opts);
          }
          // Batch path: answer over a weighted view of the raw
          // generated table; the uniform §5.3 weights are an external
          // span and the view-restriction predicate (when the query
          // population is a view over the GP) becomes a selection
          // vector — no weighted or filtered copy is materialized.
          MOSAIC_ASSIGN_OR_RETURN(
              GeneratedSample gen,
              GenerateSample(model, open_.generated_rows, seed));
          MOSAIC_ASSIGN_OR_RETURN(TableView view,
                                  MakeWeightedView(gen.data, gen.weights));
          SelectionVector sel = SelectionVector::All(view.num_rows());
          if (model.restrict_predicate != nullptr) {
            MOSAIC_ASSIGN_OR_RETURN(
                sel, exec::SelectRows(view, *model.restrict_predicate));
          }
          exec::ExecOptions opts = BatchExecOptions();
          opts.weight_column = kWeightColumn;
          opts.trace = trace;
          opts.trace_parent = gen_span.id();
          return exec::ExecuteSelect(view, std::move(sel), stmt, opts);
        } catch (const std::exception& e) {
          return Status::Internal(std::string("open-sample generation "
                                              "threw: ") +
                                  e.what());
        } catch (...) {
          return Status::Internal("open-sample generation threw");
        }
      };
      std::vector<Table> results;
      results.reserve(runs);
      if (gen_pool_ != nullptr && runs > 1) {
        // The tasks capture this stack frame, so it must not unwind
        // while they are in flight: all vector capacity is allocated
        // up front (run_one itself never throws), and the one
        // remaining throw source — Submit's own allocations — is
        // guarded by a drain-then-rethrow.
        std::vector<std::future<Result<Table>>> futures;
        futures.reserve(runs - 1);
        std::vector<Result<Table>> rest;
        rest.reserve(runs - 1);
        Result<Table> first = Status::Internal("open sample 0 not run");
        try {
          for (size_t k = 1; k < runs; ++k) {
            futures.push_back(gen_pool_->Submit([&run_one, k] {
              return run_one(k);
            }));
          }
          // Run sample 0 on the submitting thread.
          first = run_one(0);
        } catch (...) {
          for (auto& f : futures) f.wait();
          throw;
        }
        for (auto& f : futures) rest.push_back(f.get());
        MOSAIC_ASSIGN_OR_RETURN(Table first_table, std::move(first));
        results.push_back(std::move(first_table));
        for (auto& r : rest) {
          MOSAIC_ASSIGN_OR_RETURN(Table t, std::move(r));
          results.push_back(std::move(t));
        }
      } else {
        for (size_t k = 0; k < runs; ++k) {
          MOSAIC_ASSIGN_OR_RETURN(Table t, run_one(k));
          results.push_back(std::move(t));
        }
      }
      trace::ScopedSpan combine_span(trace, trace_parent, "combine_runs");
      return CombineOpenRuns(results, stmt);
    }
    default:
      return Status::Internal("unexpected visibility");
  }
}

Result<stats::IpfReport> Database::ReweightForPopulation(
    const std::string& population_name) {
  stats::IpfReport report;
  MOSAIC_RETURN_IF_ERROR(ReweightAndPin(population_name, &report).status());
  return report;
}

std::string Database::GpIpfFitSignature(size_t rows) const {
  const stats::IpfOptions& ipf = semi_open_.ipf;
  return "ipf-gp|n=" + std::to_string(rows) +
         "|mv=" + std::to_string(metadata_version_.load()) +
         "|it=" + std::to_string(ipf.max_iterations) +
         "|tol=" + FormatDouble(ipf.tolerance, 17) +
         "|scale=" + (ipf.scale_to_population ? "1" : "0");
}

std::string Database::PopulationIpfFitSignature(
    const PopulationInfo& population, size_t rows) const {
  const stats::IpfOptions& ipf = semi_open_.ipf;
  return "ipf-pop|" + ToLower(population.name) + "|n=" +
         std::to_string(rows) +
         "|mv=" + std::to_string(metadata_version_.load()) +
         "|it=" + std::to_string(ipf.max_iterations) +
         "|tol=" + FormatDouble(ipf.tolerance, 17) +
         "|scale=" + (ipf.scale_to_population ? "1" : "0");
}

Result<WeightEpochPtr> Database::PublishWeights(SampleInfo* sample,
                                                std::vector<double> weights,
                                                WeightFitInfo fit, bool log) {
  bool published = false;
  WeightEpochPtr epoch =
      sample->weights.Publish(std::move(weights), std::move(fit), &published);
  if (published) {
    weight_epochs_published_.fetch_add(1, std::memory_order_relaxed);
    // The union-mode scratch relation is derived state, rebuilt from
    // the real samples on demand — its publications are not logged.
    if (log && durability_ != nullptr && sample != &union_scratch_) {
      MOSAIC_RETURN_IF_ERROR(
          durability_->LogPublishEpoch(sample->name, *epoch));
    }
  }
  return epoch;
}

Status Database::RestoreSampleEpoch(const std::string& sample_name,
                                    WeightEpoch epoch) {
  MOSAIC_ASSIGN_OR_RETURN(SampleInfo* sample,
                          catalog_.GetSample(sample_name));
  sample->weights.Restore(std::move(epoch));
  return Status::OK();
}

Result<WeightEpochPtr> Database::ReweightAndPin(
    const std::string& population_name, stats::IpfReport* report) {
  MOSAIC_ASSIGN_OR_RETURN(PopulationInfo* population,
                          catalog_.GetPopulation(population_name));
  MOSAIC_ASSIGN_OR_RETURN(SampleInfo* sample, ChooseSample(*population));
  const size_t rows = sample->data.num_rows();

  // No-op refit detection: when the current epoch already holds the
  // output of the exact computation this refit would run (same data
  // size, marginal set, and IPF options — the fit signature), reuse
  // it — no IPF cycles, no epoch swap, no cache invalidation.
  // Convergence is not required: a cold refit is deterministic, so a
  // matching signature implies it would reproduce these weights,
  // converged or plateaued alike.
  auto reuse_if_current = [&](const std::string& sig) -> WeightEpochPtr {
    WeightEpochPtr cur = sample->weights.Pin();
    if (cur->weights.size() == rows && cur->fit_signature == sig) {
      weight_refits_skipped_.fetch_add(1, std::memory_order_relaxed);
      report->converged = cur->fit_converged;
      report->max_l1_error = cur->fit_error;
      report->uncovered_target_mass = cur->fit_uncovered;
      return cur;
    }
    return nullptr;
  };

  // Known mechanism: Horvitz–Thompson, no marginals needed for the
  // uniform case (§4.1 "when the sampling mechanism is known ... we
  // use the known mechanism to reweight the sample by the inverse of
  // its inclusion probability").
  if (sample->mechanism.type == sql::MechanismSpec::Type::kUniform) {
    std::string sig = "mech-uniform|p=" +
                      FormatDouble(sample->mechanism.percent, 17) +
                      "|n=" + std::to_string(rows);
    if (WeightEpochPtr cur = reuse_if_current(sig)) return cur;
    MOSAIC_ASSIGN_OR_RETURN(
        std::vector<double> weights,
        stats::UniformMechanismWeights(rows, sample->mechanism.percent));
    weight_refits_.fetch_add(1, std::memory_order_relaxed);
    report->converged = true;
    return PublishWeights(sample, std::move(weights),
                          WeightFitInfo{sig, 0.0, 0.0, true});
  }
  if (sample->mechanism.type == sql::MechanismSpec::Type::kStratified) {
    // Inclusion probability per stratum needs the stratum sizes in
    // the GP, which come from a 1-D marginal over the stratification
    // attribute.
    MOSAIC_ASSIGN_OR_RETURN(PopulationInfo* gp, catalog_.GlobalPopulation());
    const stats::Marginal* strat_marginal = nullptr;
    for (const auto& m : gp->marginals) {
      if (m.arity() == 1 &&
          EqualsIgnoreCase(m.binning(0).attr(),
                           sample->mechanism.stratify_attr)) {
        strat_marginal = &m;
      }
    }
    if (strat_marginal == nullptr) {
      return Status::ExecutionError(
          "stratified mechanism on '" + sample->mechanism.stratify_attr +
          "' needs a 1-D GP marginal over that attribute");
    }
    std::string sig = "mech-strat|" + ToLower(sample->mechanism.stratify_attr) +
                      "|n=" + std::to_string(rows) +
                      "|mv=" + std::to_string(metadata_version_.load());
    if (WeightEpochPtr cur = reuse_if_current(sig)) return cur;
    MOSAIC_ASSIGN_OR_RETURN(
        std::vector<double> weights,
        stats::StratifiedMechanismWeights(
            sample->data, sample->mechanism.stratify_attr, *strat_marginal));
    weight_refits_.fetch_add(1, std::memory_order_relaxed);
    report->converged = true;
    return PublishWeights(sample, std::move(weights),
                          WeightFitInfo{sig, 0.0, 0.0, true});
  }

  // Unknown mechanism: IPF against the marginals (Fig. 3).
  MOSAIC_ASSIGN_OR_RETURN(DebiasPlan plan, PlanDebias(population));
  if (plan.reweight_to_global || population->global) {
    // Reweight the full sample to the GP; derived populations are
    // views over the reweighted sample.
    std::string sig = GpIpfFitSignature(rows);
    if (WeightEpochPtr cur = reuse_if_current(sig)) return cur;
    std::vector<double> weights(rows, 1.0);
    MOSAIC_ASSIGN_OR_RETURN(
        *report,
        stats::IterativeProportionalFit(sample->data, *plan.marginals,
                                        &weights, semi_open_.ipf));
    weight_refits_.fetch_add(1, std::memory_order_relaxed);
    return PublishWeights(
        sample, std::move(weights),
        WeightFitInfo{std::move(sig), report->max_l1_error,
                      report->uncovered_target_mass, report->converged});
  }
  // Metadata on the query population itself: reweight the restricted
  // sample directly (bottom dashed line of Fig. 3). Weights of tuples
  // outside the population are zeroed — they do not represent any
  // population tuple.
  std::string sig = PopulationIpfFitSignature(*population, rows);
  if (WeightEpochPtr cur = reuse_if_current(sig)) return cur;
  MOSAIC_ASSIGN_OR_RETURN(Table restricted,
                          RestrictToPopulation(sample->data, *population));
  if (restricted.num_rows() == 0) {
    return Status::ExecutionError(
        "no sample tuples fall inside population '" + population->name +
        "'");
  }
  std::vector<double> restricted_weights(restricted.num_rows(), 1.0);
  MOSAIC_ASSIGN_OR_RETURN(
      *report,
      stats::IterativeProportionalFit(restricted, *plan.marginals,
                                      &restricted_weights, semi_open_.ipf));
  // Map restricted weights back to the full sample.
  std::vector<double> full(rows, 0.0);
  if (population->predicate == nullptr) {
    full.assign(restricted_weights.begin(), restricted_weights.end());
  } else {
    TableView view(sample->data);
    MOSAIC_ASSIGN_OR_RETURN(
        SelectionVector keep,
        exec::SelectRows(view, *population->predicate));
    for (size_t i = 0; i < keep.size(); ++i) {
      full[keep[i]] = restricted_weights[i];
    }
  }
  weight_refits_.fetch_add(1, std::memory_order_relaxed);
  return PublishWeights(
      sample, std::move(full),
      WeightFitInfo{std::move(sig), report->max_l1_error,
                    report->uncovered_target_mass, report->converged});
}

Result<Database::OpenWorldModel> Database::PrepareOpenWorldModel(
    const std::string& population_name) {
  MOSAIC_ASSIGN_OR_RETURN(PopulationInfo* population,
                          catalog_.GetPopulation(population_name));
  MOSAIC_ASSIGN_OR_RETURN(SampleInfo* sample, ChooseSample(*population));
  MOSAIC_ASSIGN_OR_RETURN(DebiasPlan plan, PlanDebias(population));

  // Training data: the restricted sample when the population carries
  // its own metadata, the full sample when debiasing to the GP.
  Table training = sample->data;
  if (!plan.reweight_to_global && !population->global) {
    MOSAIC_ASSIGN_OR_RETURN(training,
                            RestrictToPopulation(sample->data, *population));
  }
  if (training.num_rows() == 0) {
    return Status::ExecutionError("no sample tuples to train the M-SWG on");
  }

  OpenWorldModel out;
  out.population_size = plan.population_size;
  out.default_rows = training.num_rows();
  if (plan.reweight_to_global && population->predicate != nullptr) {
    out.restrict_predicate = population->predicate.get();
  }

  std::string cache_key =
      ToLower(population_name) + "|" + ToLower(sample->name) + "|" +
      std::to_string(training.num_rows()) + "|" +
      std::to_string(plan.marginals->size()) + "|" +
      OpenEngineName(open_.engine);
  if (open_.cache_models) {
    if (auto cached = model_cache_.Get(cache_key)) {
      out.model = std::move(*cached);
      return out;
    }
  }
  // Serialize training per key: concurrent OPEN queries against the
  // same key wait here and find the model cached instead of training
  // twice; different keys train concurrently.
  std::shared_ptr<std::mutex> key_mu;
  {
    MutexLock map_lock(train_mu_);
    auto& slot = train_mutexes_[cache_key];
    if (slot == nullptr) slot = std::make_shared<std::mutex>();
    key_mu = slot;
  }
  // Plain std::mutex on purpose: these locks are per-key and dynamic,
  // guarding a *protocol* (one trainer per key) rather than any named
  // field, so capability annotations have nothing to attach to.
  std::lock_guard<std::mutex> train_lock(*key_mu);
  if (open_.cache_models) {
    // Peek, not Get: the pre-lock Get already counted this lookup.
    if (auto cached = model_cache_.Peek(cache_key)) {
      out.model = std::move(*cached);
      return out;
    }
  }
  GeneratorOptions gen_opts;
  gen_opts.mswg = open_.mswg;
  gen_opts.ipf = open_.ipf;
  gen_opts.bayes_net = open_.bayes_net;
  gen_opts.kde = open_.kde;
  MOSAIC_ASSIGN_OR_RETURN(
      auto trained, TrainPopulationGenerator(open_.engine, training,
                                             *plan.marginals, gen_opts));
  out.model = std::shared_ptr<PopulationGenerator>(std::move(trained));
  if (open_.cache_models) model_cache_.Put(cache_key, out.model);
  return out;
}

Result<Database::GeneratedSample> Database::GenerateSample(
    const OpenWorldModel& model, size_t rows, uint64_t seed) const {
  if (rows == 0) rows = model.default_rows;
  Rng gen_rng(seed);
  GeneratedSample out;
  MOSAIC_ASSIGN_OR_RETURN(out.data, model.model->Generate(rows, &gen_rng));
  // Uniform reweighting of the generated sample to the population
  // size (§5.3).
  out.weights.assign(
      out.data.num_rows(),
      model.population_size / static_cast<double>(out.data.num_rows()));
  return out;
}

Result<Table> Database::GenerateFromModel(const OpenWorldModel& model,
                                          size_t rows, uint64_t seed) const {
  MOSAIC_ASSIGN_OR_RETURN(GeneratedSample gen,
                          GenerateSample(model, rows, seed));
  MOSAIC_ASSIGN_OR_RETURN(Table weighted, WithWeights(gen.data, gen.weights));
  if (model.restrict_predicate != nullptr) {
    // Generated tuples represent the GP; the query population is a
    // view.
    MOSAIC_ASSIGN_OR_RETURN(
        auto keep, exec::FilterRows(weighted, *model.restrict_predicate));
    weighted = weighted.Filter(keep);
  }
  return weighted;
}

Result<Table> Database::GenerateOpenWorldTable(
    const std::string& population_name, size_t rows, uint64_t seed) {
  MOSAIC_ASSIGN_OR_RETURN(OpenWorldModel model,
                          PrepareOpenWorldModel(population_name));
  return GenerateFromModel(model, rows, seed);
}

// ---------------------------------------------------------------------------
// DDL / DML
// ---------------------------------------------------------------------------

Status Database::ExecuteCreateTable(const sql::CreateTableStmt& stmt) {
  if (stmt.columns.empty()) {
    return Status::InvalidArgument("CREATE TABLE needs a column list");
  }
  Schema schema;
  for (const auto& def : stmt.columns) {
    MOSAIC_RETURN_IF_ERROR(schema.AddColumn(def));
  }
  MOSAIC_RETURN_IF_ERROR(
      catalog_.AddTable(stmt.name, Table(std::move(schema))));
  BumpCatalogVersion();
  if (durability_ != nullptr) {
    MOSAIC_ASSIGN_OR_RETURN(Table* created, catalog_.GetTable(stmt.name));
    MOSAIC_RETURN_IF_ERROR(durability_->LogCreateTable(stmt.name, *created));
  }
  return Status::OK();
}

Status Database::CreateTable(const std::string& name, Table table) {
  MOSAIC_RETURN_IF_ERROR(catalog_.AddTable(name, std::move(table)));
  BumpCatalogVersion();
  if (durability_ != nullptr) {
    MOSAIC_ASSIGN_OR_RETURN(Table* created, catalog_.GetTable(name));
    MOSAIC_RETURN_IF_ERROR(durability_->LogCreateTable(name, *created));
  }
  return Status::OK();
}

Status Database::ExecuteCreatePopulation(sql::CreatePopulationStmt* stmt) {
  PopulationInfo info;
  info.name = stmt->name;
  info.global = stmt->global;
  if (stmt->global) {
    if (stmt->columns.empty() && stmt->as_select == nullptr) {
      return Status::InvalidArgument(
          "a global population needs a column list");
    }
    Schema schema;
    for (const auto& def : stmt->columns) {
      MOSAIC_RETURN_IF_ERROR(schema.AddColumn(def));
    }
    info.schema = std::move(schema);
    MOSAIC_RETURN_IF_ERROR(catalog_.AddPopulation(std::move(info)));
    BumpCatalogVersion();
    if (durability_ != nullptr) {
      MOSAIC_ASSIGN_OR_RETURN(PopulationInfo* created,
                              catalog_.GetPopulation(stmt->name));
      MOSAIC_RETURN_IF_ERROR(durability_->LogCreatePopulation(*created));
    }
    return Status::OK();
  }
  // Derived population: defined by a SELECT over the GP (§3.1 "the
  // population must be defined with a SELECT statement over a global
  // population").
  if (stmt->as_select == nullptr) {
    return Status::InvalidArgument(
        "non-global populations must be defined AS (SELECT ... FROM "
        "<global population> ...)");
  }
  sql::SelectStmt* sel = stmt->as_select.get();
  MOSAIC_ASSIGN_OR_RETURN(PopulationInfo* parent,
                          catalog_.GetPopulation(sel->from));
  if (!parent->global) {
    return Status::InvalidArgument(
        "populations must be defined over the global population, and '" +
        sel->from + "' is not global");
  }
  info.parent = parent->name;
  if (sel->select_star) {
    info.schema = parent->schema;
  } else {
    std::vector<size_t> indices;
    for (const auto& item : sel->items) {
      if (item.expr->kind != sql::Expr::Kind::kColumnRef) {
        return Status::InvalidArgument(
            "population definitions may only project columns");
      }
      MOSAIC_ASSIGN_OR_RETURN(size_t idx,
                              parent->schema.ColumnIndex(item.expr->column));
      indices.push_back(idx);
    }
    info.schema = parent->schema.Project(indices);
  }
  if (sel->where != nullptr) {
    info.predicate = sel->where->Clone();
  }
  MOSAIC_RETURN_IF_ERROR(catalog_.AddPopulation(std::move(info)));
  BumpCatalogVersion();
  if (durability_ != nullptr) {
    MOSAIC_ASSIGN_OR_RETURN(PopulationInfo* created,
                            catalog_.GetPopulation(stmt->name));
    MOSAIC_RETURN_IF_ERROR(durability_->LogCreatePopulation(*created));
  }
  return Status::OK();
}

Status Database::ExecuteCreateSample(sql::CreateSampleStmt* stmt) {
  if (stmt->as_select == nullptr) {
    return Status::InvalidArgument(
        "CREATE SAMPLE needs AS (SELECT ... FROM <global population>)");
  }
  sql::SelectStmt* sel = stmt->as_select.get();
  MOSAIC_ASSIGN_OR_RETURN(PopulationInfo* pop,
                          catalog_.GetPopulation(sel->from));
  if (!pop->global) {
    return Status::InvalidArgument(
        "samples are defined over the global population (§3.1); '" +
        sel->from + "' is not global");
  }
  SampleInfo info;
  info.name = stmt->name;
  info.population = pop->name;
  if (!stmt->columns.empty()) {
    Schema schema;
    for (const auto& def : stmt->columns) {
      MOSAIC_RETURN_IF_ERROR(schema.AddColumn(def));
    }
    info.schema = std::move(schema);
  } else if (sel->select_star) {
    info.schema = pop->schema;
  } else {
    std::vector<size_t> indices;
    for (const auto& item : sel->items) {
      if (item.expr->kind != sql::Expr::Kind::kColumnRef) {
        return Status::InvalidArgument(
            "sample definitions may only project columns");
      }
      MOSAIC_ASSIGN_OR_RETURN(size_t idx,
                              pop->schema.ColumnIndex(item.expr->column));
      indices.push_back(idx);
    }
    info.schema = pop->schema.Project(indices);
  }
  info.data = Table(info.schema);
  if (sel->where != nullptr) {
    info.predicate = sel->where->Clone();
  }
  info.mechanism = stmt->mechanism;
  MOSAIC_RETURN_IF_ERROR(catalog_.AddSample(std::move(info)));
  BumpCatalogVersion();
  if (durability_ != nullptr) {
    MOSAIC_ASSIGN_OR_RETURN(SampleInfo* created,
                            catalog_.GetSample(stmt->name));
    MOSAIC_RETURN_IF_ERROR(durability_->LogCreateSample(*created));
  }
  return Status::OK();
}

Status Database::ExecuteCreateMetadata(sql::CreateMetadataStmt* stmt) {
  if (stmt->population.empty()) {
    return Status::InvalidArgument(
        "cannot infer the population for metadata '" + stmt->name +
        "'; name it '<Population>_M<k>' or use CREATE METADATA ... FOR "
        "<population>");
  }
  if (!catalog_.HasPopulation(stmt->population)) {
    return Status::NotFound("metadata '" + stmt->name +
                            "' refers to unknown population '" +
                            stmt->population + "'");
  }
  if (stmt->as_select == nullptr) {
    return Status::InvalidArgument("CREATE METADATA needs AS (SELECT ...)");
  }
  // Evaluate the defining query against its auxiliary relation now;
  // metadata is materialized at creation time.
  sql::SelectStmt* sel = stmt->as_select.get();
  MOSAIC_ASSIGN_OR_RETURN(Table* aux, catalog_.GetTable(sel->from));
  MOSAIC_ASSIGN_OR_RETURN(Table result, exec::ExecuteSelect(*aux, *sel));
  MOSAIC_ASSIGN_OR_RETURN(auto marginal,
                          stats::Marginal::FromMetadataTable(result));
  return RegisterMarginal(stmt->population, stmt->name, std::move(marginal));
}

Status Database::RegisterMarginal(const std::string& population,
                                  const std::string& metadata_name,
                                  stats::Marginal marginal) {
  MOSAIC_ASSIGN_OR_RETURN(PopulationInfo* pop,
                          catalog_.GetPopulation(population));
  for (const auto& existing : pop->metadata_names) {
    if (EqualsIgnoreCase(existing, metadata_name)) {
      return Status::AlreadyExists("metadata '" + metadata_name +
                                   "' already exists");
    }
  }
  pop->metadata_names.push_back(metadata_name);
  pop->marginals.push_back(std::move(marginal));
  BumpCatalogVersion();
  // Fit signatures embed the metadata version: weights fitted to the
  // old marginal set can no longer satisfy a no-op refit check.
  BumpMetadataVersion();
  InvalidateModelCache();
  if (durability_ != nullptr) {
    MOSAIC_RETURN_IF_ERROR(durability_->LogRegisterMarginal(
        pop->name, metadata_name, pop->marginals.back()));
  }
  return Status::OK();
}

Status Database::ExtendWeightsAfterIngest(SampleInfo* sample,
                                          const WeightEpochPtr& prev) {
  const size_t rows = sample->data.num_rows();
  // Incremental IPF (ROADMAP: "incremental IPF on sample ingest"):
  // when the outgoing epoch was a converged GP-level fit, warm-start
  // the refit from it instead of leaving the sample unfitted for the
  // next SEMI-OPEN query to cold-refit. The published epoch carries
  // the fresh GP fit signature, so that query then skips its refit
  // entirely. Falls back to a cold full fit inside
  // IncrementalProportionalFit when the warm fit regresses.
  if (semi_open_.incremental_ingest &&
      prev->fit_signature.compare(0, 7, "ipf-gp|") == 0) {
    auto gp = catalog_.GlobalPopulation();
    if (gp.ok() && !(*gp)->marginals.empty()) {
      stats::IpfOptions ipf = semi_open_.ipf;
      if (ipf.incremental_regress_threshold <= 0.0) {
        // Default acceptance: the warm fit may plateau no worse than
        // twice the outgoing epoch's error (plus tolerance) —
        // uncovered marginal mass floors the achievable error for
        // warm and cold fits alike, so requiring convergence would
        // reject warm fits exactly where cold refits cannot converge
        // either.
        ipf.incremental_regress_threshold =
            2.0 * prev->fit_error + ipf.tolerance;
      }
      std::vector<double> fitted;
      auto fit = stats::IncrementalProportionalFit(
          sample->data, (*gp)->marginals, prev->weights, &fitted, ipf);
      if (fit.ok()) {
        weight_refits_.fetch_add(1, std::memory_order_relaxed);
        if (!fit->fell_back_to_cold) {
          weight_refits_incremental_.fetch_add(1, std::memory_order_relaxed);
        }
        // log=false: the ingest caller records one combined
        // rows+epoch WAL record covering this publication.
        return PublishWeights(sample, std::move(fitted),
                              WeightFitInfo{GpIpfFitSignature(rows),
                                            fit->max_l1_error,
                                            fit->uncovered_target_mass,
                                            fit->converged},
                              /*log=*/false)
            .status();
      }
      // A failed fit (e.g. the new rows broke marginal overlap) falls
      // through to the unfitted extension; the next SEMI-OPEN query
      // surfaces the error.
    }
  }
  std::vector<double> extended = prev->weights;
  extended.resize(rows, 1.0);
  return PublishWeights(sample, std::move(extended), WeightFitInfo(),
                        /*log=*/false)
      .status();
}

Status Database::IngestSample(const std::string& sample_name,
                              const Table& rows) {
  MOSAIC_ASSIGN_OR_RETURN(SampleInfo* sample,
                          catalog_.GetSample(sample_name));
  WeightEpochPtr prev = sample->weights.Pin();
  const size_t rows_before = sample->data.num_rows();
  // A mid-loop failure still leaves the earlier rows appended, so the
  // version bump and the weight-epoch extension must run regardless —
  // otherwise stale stamped cache entries keep matching and the
  // current epoch stays shorter than the data, breaking every
  // subsequent read of the sample.
  Status ingest = Status::OK();
  for (size_t r = 0; ingest.ok() && r < rows.num_rows(); ++r) {
    // Map by column name so ingests tolerate column order changes.
    std::vector<Value> row(sample->schema.num_columns());
    for (size_t c = 0; ingest.ok() && c < sample->schema.num_columns();
         ++c) {
      auto src = rows.schema().ColumnIndex(sample->schema.column(c).name);
      if (!src.ok()) {
        ingest = src.status();
        break;
      }
      row[c] = rows.GetValue(r, *src);
    }
    if (ingest.ok()) ingest = sample->data.AppendRow(row);
  }
  BumpCatalogVersion();
  InvalidateModelCache();
  Status extend = ExtendWeightsAfterIngest(sample, prev);
  // One combined rows+epoch record: replay can never materialize the
  // new rows without the weight epoch that covers them. Logged even
  // after a mid-loop failure — whatever landed is committed state.
  if (durability_ != nullptr && sample->data.num_rows() > rows_before) {
    Status log = durability_->LogSampleIngest(
        sample->name, TailRows(sample->data, rows_before),
        *sample->weights.Pin());
    if (ingest.ok() && extend.ok() && !log.ok()) return log;
  }
  return ingest.ok() ? extend : ingest;
}

Status Database::ExecuteInsert(const sql::InsertStmt& stmt) {
  if (catalog_.HasTable(stmt.table)) {
    MOSAIC_ASSIGN_OR_RETURN(Table* table, catalog_.GetTable(stmt.table));
    // Bump even when a later row fails: the earlier rows landed, and
    // stamped cache entries for this table are stale either way.
    const size_t rows_before = table->num_rows();
    Status insert = Status::OK();
    for (const auto& row : stmt.rows) {
      insert = table->AppendRow(row);
      if (!insert.ok()) break;
    }
    BumpCatalogVersion();
    if (durability_ != nullptr && table->num_rows() > rows_before) {
      Status log = durability_->LogTableAppend(
          stmt.table, TailRows(*table, rows_before));
      if (insert.ok() && !log.ok()) return log;
    }
    return insert;
  }
  if (catalog_.HasSample(stmt.table)) {
    MOSAIC_ASSIGN_OR_RETURN(SampleInfo* sample,
                            catalog_.GetSample(stmt.table));
    WeightEpochPtr prev = sample->weights.Pin();
    const size_t rows_before = sample->data.num_rows();
    Status insert = Status::OK();
    for (const auto& row : stmt.rows) {
      insert = sample->data.AppendRow(row);
      if (!insert.ok()) break;
    }
    // As in IngestSample: keep version, model cache, and weight-epoch
    // length consistent with whatever actually landed.
    BumpCatalogVersion();
    InvalidateModelCache();
    Status extend = ExtendWeightsAfterIngest(sample, prev);
    if (durability_ != nullptr && sample->data.num_rows() > rows_before) {
      Status log = durability_->LogSampleIngest(
          sample->name, TailRows(sample->data, rows_before),
          *sample->weights.Pin());
      if (insert.ok() && extend.ok() && !log.ok()) return log;
    }
    return insert.ok() ? extend : insert;
  }
  return Status::NotFound("no table or sample named '" + stmt.table + "'");
}

Status Database::ExecuteCopy(const sql::CopyStmt& stmt) {
  if (catalog_.HasTable(stmt.table)) {
    MOSAIC_ASSIGN_OR_RETURN(Table* table, catalog_.GetTable(stmt.table));
    std::ifstream in(stmt.path);
    if (!in) return Status::IOError("cannot open " + stmt.path);
    std::ostringstream buf;
    buf << in.rdbuf();
    MOSAIC_ASSIGN_OR_RETURN(Table loaded,
                            ReadCsv(buf.str(), table->schema()));
    // Bump even on a failed Concat — it may have partially applied.
    const size_t rows_before = table->num_rows();
    Status concat = table->Concat(loaded);
    BumpCatalogVersion();
    if (durability_ != nullptr && table->num_rows() > rows_before) {
      Status log = durability_->LogTableAppend(
          stmt.table, TailRows(*table, rows_before));
      if (concat.ok() && !log.ok()) return log;
    }
    return concat;
  }
  if (catalog_.HasSample(stmt.table)) {
    MOSAIC_ASSIGN_OR_RETURN(SampleInfo* sample,
                            catalog_.GetSample(stmt.table));
    std::ifstream in(stmt.path);
    if (!in) return Status::IOError("cannot open " + stmt.path);
    std::ostringstream buf;
    buf << in.rdbuf();
    MOSAIC_ASSIGN_OR_RETURN(Table loaded,
                            ReadCsv(buf.str(), sample->schema));
    return IngestSample(stmt.table, loaded);
  }
  return Status::NotFound("no table or sample named '" + stmt.table + "'");
}

Status Database::ExecuteDrop(const sql::DropStmt& stmt) {
  Status status;
  switch (stmt.target) {
    case sql::DropStmt::Target::kTable:
      status = catalog_.DropTable(stmt.name);
      break;
    case sql::DropStmt::Target::kPopulation:
      status = catalog_.DropPopulation(stmt.name);
      break;
    case sql::DropStmt::Target::kSample:
      status = catalog_.DropSample(stmt.name);
      InvalidateModelCache();
      break;
    case sql::DropStmt::Target::kMetadata:
      status = catalog_.DropMetadata(stmt.name);
      if (status.ok()) BumpMetadataVersion();
      InvalidateModelCache();
      break;
  }
  if (status.ok()) {
    BumpCatalogVersion();
    if (durability_ != nullptr) {
      MOSAIC_RETURN_IF_ERROR(durability_->LogDrop(stmt.target, stmt.name));
    }
  }
  if (!status.ok() && stmt.if_exists &&
      status.code() == StatusCode::kNotFound) {
    return Status::OK();
  }
  return status;
}

Result<Table> Database::ExecuteShow(const sql::ShowStmt& stmt) {
  Schema schema;
  Table out;
  switch (stmt.what) {
    case sql::ShowStmt::What::kTables: {
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"table_name", DataType::kString}));
      out = Table(schema);
      for (const auto& name : catalog_.TableNames()) {
        MOSAIC_RETURN_IF_ERROR(out.AppendRow({Value(name)}));
      }
      return out;
    }
    case sql::ShowStmt::What::kPopulations: {
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"population_name", DataType::kString}));
      MOSAIC_RETURN_IF_ERROR(schema.AddColumn({"global", DataType::kBool}));
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"num_metadata", DataType::kInt64}));
      out = Table(schema);
      for (const auto& name : catalog_.PopulationNames()) {
        MOSAIC_ASSIGN_OR_RETURN(PopulationInfo * pop,
                                catalog_.GetPopulation(name));
        MOSAIC_RETURN_IF_ERROR(out.AppendRow(
            {Value(pop->name), Value(pop->global),
             Value(static_cast<int64_t>(pop->marginals.size()))}));
      }
      return out;
    }
    case sql::ShowStmt::What::kSamples: {
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"sample_name", DataType::kString}));
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"population", DataType::kString}));
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"num_tuples", DataType::kInt64}));
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"mechanism", DataType::kString}));
      out = Table(schema);
      for (const auto& name : catalog_.SampleNames()) {
        MOSAIC_ASSIGN_OR_RETURN(SampleInfo * sample,
                                catalog_.GetSample(name));
        std::string mech = "unknown";
        if (sample->mechanism.type == sql::MechanismSpec::Type::kUniform) {
          mech = StrFormat("uniform %.3g%%", sample->mechanism.percent);
        } else if (sample->mechanism.type ==
                   sql::MechanismSpec::Type::kStratified) {
          mech = StrFormat("stratified on %s %.3g%%",
                           sample->mechanism.stratify_attr.c_str(),
                           sample->mechanism.percent);
        }
        MOSAIC_RETURN_IF_ERROR(out.AppendRow(
            {Value(sample->name), Value(sample->population),
             Value(static_cast<int64_t>(sample->data.num_rows())),
             Value(mech)}));
      }
      return out;
    }
    case sql::ShowStmt::What::kMetadata: {
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"metadata_name", DataType::kString}));
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"population", DataType::kString}));
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"attributes", DataType::kString}));
      MOSAIC_RETURN_IF_ERROR(
          schema.AddColumn({"total_count", DataType::kDouble}));
      out = Table(schema);
      for (const auto& pop_name : catalog_.PopulationNames()) {
        MOSAIC_ASSIGN_OR_RETURN(PopulationInfo * pop,
                                catalog_.GetPopulation(pop_name));
        for (size_t i = 0; i < pop->marginals.size(); ++i) {
          MOSAIC_RETURN_IF_ERROR(out.AppendRow(
              {Value(pop->metadata_names[i]), Value(pop->name),
               Value(Join(pop->marginals[i].attribute_names(), ", ")),
               Value(pop->marginals[i].total())}));
        }
      }
      return out;
    }
    case sql::ShowStmt::What::kMetrics: {
      // Sugar over `SELECT * FROM system.metrics` — one shared
      // builder so the two surfaces can never drift. Deliberately
      // never result-cached — see StampFor.
      return BuildMetricsTable();
    }
  }
  return Status::Internal("unknown SHOW target");
}

Status Database::ExecuteUpdate(const sql::UpdateStmt& stmt) {
  // UPDATE over a sample may target the managed weight column (§3.2:
  // "The user can update the initial sample weights via a similar
  // command"); everything else rewrites stored cells.
  if (catalog_.HasSample(stmt.table)) {
    MOSAIC_ASSIGN_OR_RETURN(SampleInfo* sample,
                            catalog_.GetSample(stmt.table));
    // Copy-on-write: evaluate all assignments against the pinned
    // epoch, apply them to a copy, and publish the copy as the next
    // epoch. A failing expression publishes nothing, and concurrent
    // readers keep the epoch they pinned.
    WeightEpochPtr prev = sample->weights.Pin();
    if (force_row_exec_) {
      MOSAIC_ASSIGN_OR_RETURN(Table with_w,
                              WithWeights(sample->data, prev->weights));
      std::vector<size_t> rows;
      if (stmt.where != nullptr) {
        MOSAIC_ASSIGN_OR_RETURN(rows, exec::FilterRows(with_w, *stmt.where));
      } else {
        rows.resize(with_w.num_rows());
        std::iota(rows.begin(), rows.end(), size_t{0});
      }
      exec::Binder binder(&with_w.schema());
      std::vector<std::vector<double>> new_weights;
      for (const auto& [col_name, expr] : stmt.assignments) {
        if (!EqualsIgnoreCase(col_name, kWeightColumn)) {
          return Status::NotImplemented(
              "UPDATE on samples currently only supports SET weight = ...");
        }
        MOSAIC_ASSIGN_OR_RETURN(auto bound, binder.Bind(*expr));
        std::vector<double> values;
        values.reserve(rows.size());
        for (size_t r : rows) {
          MOSAIC_ASSIGN_OR_RETURN(Value v,
                                  exec::EvaluateExpr(*bound, with_w, r));
          MOSAIC_ASSIGN_OR_RETURN(double w, v.ToDouble());
          values.push_back(w);
        }
        new_weights.push_back(std::move(values));
      }
      std::vector<double> next = prev->weights;
      for (const auto& values : new_weights) {
        for (size_t i = 0; i < rows.size(); ++i) {
          if (values[i] < 0.0) {
            return Status::InvalidArgument("weights must be non-negative");
          }
          next[rows[i]] = values[i];
        }
      }
      return PublishWeights(sample, std::move(next)).status();
    }
    // Batch path: weighted zero-copy view over the pinned epoch;
    // assignments are evaluated as whole batches against the
    // pre-update weights, then written into the copy in row order.
    MOSAIC_ASSIGN_OR_RETURN(TableView view,
                            MakeWeightedView(sample->data, prev->weights));
    SelectionVector rows = SelectionVector::All(view.num_rows());
    if (stmt.where != nullptr) {
      MOSAIC_ASSIGN_OR_RETURN(rows, exec::SelectRows(view, *stmt.where));
    }
    exec::Binder binder(&view.schema());
    std::vector<std::vector<double>> new_weights;
    for (const auto& [col_name, expr] : stmt.assignments) {
      if (!EqualsIgnoreCase(col_name, kWeightColumn)) {
        return Status::NotImplemented(
            "UPDATE on samples currently only supports SET weight = ...");
      }
      MOSAIC_ASSIGN_OR_RETURN(auto bound, binder.Bind(*expr));
      MOSAIC_ASSIGN_OR_RETURN(std::vector<double> values,
                              exec::EvalDoubleBatch(*bound, view, rows.rows()));
      new_weights.push_back(std::move(values));
    }
    std::vector<double> next = prev->weights;
    for (const auto& values : new_weights) {
      for (size_t i = 0; i < rows.size(); ++i) {
        if (values[i] < 0.0) {
          return Status::InvalidArgument("weights must be non-negative");
        }
        next[rows[i]] = values[i];
      }
    }
    return PublishWeights(sample, std::move(next)).status();
  }
  if (!catalog_.HasTable(stmt.table)) {
    return Status::NotFound("no table or sample named '" + stmt.table + "'");
  }
  MOSAIC_ASSIGN_OR_RETURN(Table* table, catalog_.GetTable(stmt.table));
  std::vector<size_t> rows;
  if (stmt.where != nullptr) {
    MOSAIC_ASSIGN_OR_RETURN(rows, exec::FilterRows(*table, *stmt.where));
  } else {
    rows.resize(table->num_rows());
    std::iota(rows.begin(), rows.end(), size_t{0});
  }
  std::vector<bool> selected(table->num_rows(), false);
  for (size_t r : rows) selected[r] = true;
  exec::Binder binder(&table->schema());
  std::vector<std::pair<size_t, exec::BoundExprPtr>> bound_assignments;
  for (const auto& [col_name, expr] : stmt.assignments) {
    MOSAIC_ASSIGN_OR_RETURN(size_t idx,
                            table->schema().ColumnIndex(col_name));
    MOSAIC_ASSIGN_OR_RETURN(auto bound, binder.Bind(*expr));
    bound_assignments.emplace_back(idx, std::move(bound));
  }
  // Columns are append-only; rebuild the table with updated cells.
  Table updated(table->schema());
  updated.Reserve(table->num_rows());
  for (size_t r = 0; r < table->num_rows(); ++r) {
    std::vector<Value> row = table->GetRow(r);
    if (selected[r]) {
      for (const auto& [idx, bound] : bound_assignments) {
        MOSAIC_ASSIGN_OR_RETURN(row[idx],
                                exec::EvaluateExpr(*bound, *table, r));
      }
    }
    MOSAIC_RETURN_IF_ERROR(updated.AppendRow(row));
  }
  *table = std::move(updated);
  BumpCatalogVersion();
  // Cell rewrites have no suffix representation; log the whole
  // rebuilt table as a replacement.
  if (durability_ != nullptr) {
    MOSAIC_RETURN_IF_ERROR(durability_->LogTableReplace(stmt.table, *table));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Cache stamps and weight counters
// ---------------------------------------------------------------------------

Database::CacheStamp Database::StampFor(const sql::Statement& stmt) {
  CacheStamp stamp;
  stamp.catalog_version = catalog_version();
  // §7 union mode rebuilds scratch state inside SELECT; results are
  // not attributable to a stable (version, epoch) pair.
  if (union_samples_) return stamp;
  if (stmt.Is<sql::ShowStmt>()) {
    // SHOW METRICS reads the live metrics registry, which moves on
    // every query — a cached answer would freeze the counters.
    stamp.cacheable =
        stmt.As<sql::ShowStmt>().what != sql::ShowStmt::What::kMetrics;
    return stamp;
  }
  if (!stmt.Is<sql::SelectStmt>()) return stamp;
  const auto& sel = stmt.As<sql::SelectStmt>();
  // EXPLAIN ANALYZE answers with this execution's span timings;
  // serving a previous execution's timings would defeat it.
  if (sel.explain_analyze) return stamp;
  // System tables snapshot live mutable state (query log, registry,
  // sessions) that moves independently of any version counter.
  if (IsSystemRelation(sel.from)) return stamp;
  if (catalog_.HasTable(sel.from)) {
    stamp.cacheable = true;
    return stamp;
  }
  if (catalog_.HasSample(sel.from)) {
    // Direct sample reads expose the managed weight column: the
    // answer belongs to the sample's current epoch.
    auto sample = catalog_.GetSample(sel.from);
    if (!sample.ok()) return stamp;
    stamp.weight_epoch = (*sample)->weights.epoch();
    stamp.cacheable = true;
    return stamp;
  }
  if (catalog_.HasPopulation(sel.from)) {
    auto population = catalog_.GetPopulation(sel.from);
    if (!population.ok()) return stamp;
    if (sel.visibility == sql::Visibility::kSemiOpen) {
      // SEMI-OPEN answers over the weights its refit publishes; the
      // epoch tags cached entries so they go stale the moment the
      // weights move on. CLOSED and OPEN population answers never
      // read the sample weights, so their entries deliberately carry
      // no epoch — a refit does not invalidate them (the
      // over-invalidation this stamp scheme exists to stop).
      auto sample = ChooseSample(**population);
      if (!sample.ok()) return stamp;
      stamp.weight_epoch = (*sample)->weights.epoch();
    }
    stamp.cacheable = true;
    return stamp;
  }
  // Unknown relation: the query will fail; nothing worth caching.
  return stamp;
}

Database::WeightCounters Database::WeightCountersSnapshot() const {
  WeightCounters c;
  c.epochs_published =
      weight_epochs_published_.load(std::memory_order_relaxed);
  c.refits_total = weight_refits_.load(std::memory_order_relaxed);
  c.refits_skipped =
      weight_refits_skipped_.load(std::memory_order_relaxed);
  c.refits_incremental =
      weight_refits_incremental_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace core
}  // namespace mosaic
