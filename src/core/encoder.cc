#include "core/encoder.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace mosaic {
namespace core {

namespace {

/// Encoded width of a categorical attribute: k slots for one-hot,
/// ceil(log2(k)) bits (min 1) for binary.
size_t CategoricalWidth(size_t num_categories, CategoricalEncoding enc) {
  if (enc == CategoricalEncoding::kOneHot) return num_categories;
  size_t bits = 1;
  while ((size_t{1} << bits) < num_categories) ++bits;
  return bits;
}

/// Write the encoded representation of category `k` into
/// out[row, start..start+width).
void WriteCategory(nn::Matrix* out, size_t row, size_t start, size_t width,
                   size_t k, CategoricalEncoding enc) {
  if (enc == CategoricalEncoding::kOneHot) {
    out->at(row, start + k) = 1.0;
    return;
  }
  for (size_t b = 0; b < width; ++b) {
    out->at(row, start + b) = static_cast<double>((k >> b) & 1u);
  }
}

/// Decode a categorical block back to a category index.
size_t ReadCategory(const nn::Matrix& m, size_t row, size_t start,
                    size_t width, size_t num_categories,
                    CategoricalEncoding enc) {
  if (enc == CategoricalEncoding::kOneHot) {
    size_t best = 0;
    double best_v = -1e300;
    for (size_t k = 0; k < width; ++k) {
      double v = m.at(row, start + k);
      if (v > best_v) {
        best_v = v;
        best = k;
      }
    }
    return best;
  }
  // Binary: round each bit, clamp the index into range.
  size_t k = 0;
  for (size_t b = 0; b < width; ++b) {
    if (m.at(row, start + b) >= 0.5) k |= (size_t{1} << b);
  }
  return std::min(k, num_categories - 1);
}

}  // namespace

Result<MixedEncoder> MixedEncoder::Fit(
    const Table& sample, const std::vector<stats::Marginal>& marginals,
    CategoricalEncoding cat_encoding) {
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit encoder to an empty sample");
  }
  MixedEncoder enc;
  size_t col_cursor = 0;
  for (size_t c = 0; c < sample.num_columns(); ++c) {
    const ColumnDef& def = sample.schema().column(c);
    AttributeEncoding attr;
    attr.name = def.name;
    attr.source_type = def.type;
    const Column& col = sample.column(c);
    if (def.type == DataType::kString) {
      attr.categorical = true;
      // Categories: sample dictionary, extended with any categories
      // present only in the marginals (the sample may miss light
      // hitters entirely; the generator still needs output slots for
      // them).
      std::set<Value> cats;
      for (const auto& s : col.dictionary().values()) {
        cats.insert(Value(s));
      }
      for (const auto& m : marginals) {
        for (size_t a = 0; a < m.arity(); ++a) {
          if (EqualsIgnoreCase(m.binning(a).attr(), def.name) &&
              m.binning(a).is_categorical()) {
            for (const auto& v : m.binning(a).categories()) {
              cats.insert(v);
            }
          }
        }
      }
      attr.categories.assign(cats.begin(), cats.end());
      attr.cat_encoding = cat_encoding;
      attr.width = CategoricalWidth(attr.categories.size(), cat_encoding);
    } else {
      attr.categorical = false;
      double lo = 1e300, hi = -1e300;
      for (size_t r = 0; r < col.size(); ++r) {
        double x = *col.GetDouble(r);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      // Widen to the marginal ranges: the population can extend
      // beyond the biased sample.
      for (const auto& m : marginals) {
        for (size_t a = 0; a < m.arity(); ++a) {
          const auto& b = m.binning(a);
          if (!EqualsIgnoreCase(b.attr(), def.name)) continue;
          if (b.is_categorical()) {
            for (const auto& v : b.categories()) {
              auto d = v.ToDouble();
              if (d.ok()) {
                lo = std::min(lo, *d);
                hi = std::max(hi, *d);
              }
            }
          } else {
            lo = std::min(lo, b.lo());
            hi = std::max(hi, b.hi());
          }
        }
      }
      if (hi <= lo) hi = lo + 1.0;
      attr.min_value = lo;
      attr.max_value = hi;
      attr.width = 1;
    }
    attr.start_col = col_cursor;
    col_cursor += attr.width;
    enc.attrs_.push_back(std::move(attr));
  }
  enc.encoded_dim_ = col_cursor;
  return enc;
}

Result<const AttributeEncoding*> MixedEncoder::AttributeByName(
    const std::string& name) const {
  for (const auto& a : attrs_) {
    if (EqualsIgnoreCase(a.name, name)) return &a;
  }
  return Status::NotFound("no encoded attribute named '" + name + "'");
}

double MixedEncoder::ScaleNumeric(const AttributeEncoding& attr,
                                  double raw) const {
  return (raw - attr.min_value) / (attr.max_value - attr.min_value);
}

double MixedEncoder::UnscaleNumeric(const AttributeEncoding& attr,
                                    double scaled) const {
  return attr.min_value + scaled * (attr.max_value - attr.min_value);
}

Result<nn::Matrix> MixedEncoder::Encode(const Table& table) const {
  nn::Matrix out(table.num_rows(), encoded_dim_);
  for (size_t a = 0; a < attrs_.size(); ++a) {
    const AttributeEncoding& attr = attrs_[a];
    MOSAIC_ASSIGN_OR_RETURN(size_t col,
                            table.schema().ColumnIndex(attr.name));
    const Column& src = table.column(col);
    if (attr.categorical) {
      for (size_t r = 0; r < table.num_rows(); ++r) {
        Value v = src.GetValue(r);
        auto it = std::lower_bound(attr.categories.begin(),
                                   attr.categories.end(), v);
        if (it == attr.categories.end() || !(*it == v)) {
          return Status::InvalidArgument("value " + v.ToString() +
                                         " of '" + attr.name +
                                         "' not in encoder categories");
        }
        size_t k = static_cast<size_t>(it - attr.categories.begin());
        WriteCategory(&out, r, attr.start_col, attr.width, k,
                      attr.cat_encoding);
      }
    } else {
      for (size_t r = 0; r < table.num_rows(); ++r) {
        MOSAIC_ASSIGN_OR_RETURN(double x, src.GetDouble(r));
        out.at(r, attr.start_col) = ScaleNumeric(attr, x);
      }
    }
  }
  return out;
}

Result<Table> MixedEncoder::Decode(const nn::Matrix& encoded) const {
  if (encoded.cols() != encoded_dim_) {
    return Status::InvalidArgument(
        StrFormat("decode expects %zu columns, got %zu", encoded_dim_,
                  encoded.cols()));
  }
  Schema schema;
  for (const auto& attr : attrs_) {
    MOSAIC_RETURN_IF_ERROR(
        schema.AddColumn(ColumnDef{attr.name, attr.source_type}));
  }
  Table out(schema);
  out.Reserve(encoded.rows());
  std::vector<Value> row(attrs_.size());
  for (size_t r = 0; r < encoded.rows(); ++r) {
    for (size_t a = 0; a < attrs_.size(); ++a) {
      const AttributeEncoding& attr = attrs_[a];
      if (attr.categorical) {
        // Binary forcing: argmax over the one-hot block / rounded
        // bits for binary encoding.
        size_t k = ReadCategory(encoded, r, attr.start_col, attr.width,
                                attr.categories.size(), attr.cat_encoding);
        row[a] = attr.categories[k];
      } else {
        double scaled = std::clamp(encoded.at(r, attr.start_col), 0.0, 1.0);
        double raw = UnscaleNumeric(attr, scaled);
        if (attr.source_type == DataType::kInt64) {
          row[a] = Value(static_cast<int64_t>(std::llround(raw)));
        } else {
          row[a] = Value(raw);
        }
      }
    }
    MOSAIC_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<std::vector<size_t>> MixedEncoder::MarginalColumns(
    const stats::Marginal& marginal) const {
  std::vector<size_t> cols;
  for (size_t a = 0; a < marginal.arity(); ++a) {
    MOSAIC_ASSIGN_OR_RETURN(const AttributeEncoding* attr,
                            AttributeByName(marginal.binning(a).attr()));
    for (size_t k = 0; k < attr->width; ++k) {
      cols.push_back(attr->start_col + k);
    }
  }
  return cols;
}

Result<nn::Matrix> MixedEncoder::SampleMarginalTargets(
    const stats::Marginal& marginal, size_t n, Rng* rng) const {
  // Resolve the attribute encodings and the per-attribute offsets
  // inside the target matrix.
  std::vector<const AttributeEncoding*> enc_attrs(marginal.arity());
  std::vector<size_t> offsets(marginal.arity());
  size_t width = 0;
  for (size_t a = 0; a < marginal.arity(); ++a) {
    MOSAIC_ASSIGN_OR_RETURN(enc_attrs[a],
                            AttributeByName(marginal.binning(a).attr()));
    offsets[a] = width;
    width += enc_attrs[a]->width;
  }
  nn::Matrix out(n, width);
  auto cells = marginal.SampleCells(n, rng);
  for (size_t i = 0; i < n; ++i) {
    auto coords = marginal.CellCoords(cells[i]);
    for (size_t a = 0; a < marginal.arity(); ++a) {
      const auto& binning = marginal.binning(a);
      const AttributeEncoding* attr = enc_attrs[a];
      if (attr->categorical) {
        // The marginal's category bin maps to an encoded pattern.
        Value v = binning.BinRepresentative(coords[a]);
        auto it = std::lower_bound(attr->categories.begin(),
                                   attr->categories.end(), v);
        if (it == attr->categories.end() || !(*it == v)) {
          return Status::Internal("marginal category " + v.ToString() +
                                  " missing from encoder (Fit should have "
                                  "added it)");
        }
        size_t k = static_cast<size_t>(it - attr->categories.begin());
        WriteCategory(&out, i, offsets[a], attr->width, k,
                      attr->cat_encoding);
      } else if (binning.is_categorical()) {
        // Discrete numeric bin (e.g. whole-number flights values):
        // the representative is the exact value.
        MOSAIC_ASSIGN_OR_RETURN(
            double raw, binning.BinRepresentative(coords[a]).ToDouble());
        out.at(i, offsets[a]) = ScaleNumeric(*attr, raw);
      } else {
        // Continuous bin: jitter uniformly within the bin.
        double raw = rng->Uniform(binning.BinLo(coords[a]),
                                  binning.BinHi(coords[a]));
        out.at(i, offsets[a]) = ScaleNumeric(*attr, raw);
      }
    }
  }
  return out;
}

}  // namespace core
}  // namespace mosaic
