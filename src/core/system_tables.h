// Builders for the `system.*` introspection tables. Each builder
// materializes a point-in-time snapshot of live engine state as a
// plain Table; the planner (core::Database::ExecuteSelect) then runs
// the ordinary row/batch/morsel executor over a zero-copy view of it,
// so system tables get WHERE/GROUP BY/ORDER BY — and three-path
// bit-identity — for free.
//
// The builders for state that lives above core (service sessions, net
// connections, durable snapshots) are registered at startup via
// Database::RegisterSystemTable; this header only fixes their schemas
// so the tables exist (empty) even in a bare in-process Database.
#ifndef MOSAIC_CORE_SYSTEM_TABLES_H_
#define MOSAIC_CORE_SYSTEM_TABLES_H_

#include "common/query_log.h"
#include "common/status.h"
#include "storage/table.h"

namespace mosaic {
namespace core {

/// `system.queries`: the query log, denormalized one row per recorded
/// span (an untraced query contributes a single synthetic "statement"
/// row carrying its totals), so span-level SQL like
/// `SELECT span, duration_us FROM system.queries` works directly.
/// Per-query resource totals repeat on each of the query's rows.
[[nodiscard]] Result<Table> BuildQueriesTable(const qlog::QueryLog& log);

/// `system.metrics`: one row per registry metric, name-sorted;
/// histograms expand to _count/_mean/_p50/_p95/_p99 rows. SHOW
/// METRICS is sugar over this.
[[nodiscard]] Result<Table> BuildMetricsTable();

/// Empty tables fixing the schemas of the externally-provided
/// system tables (overridden by the service and network layers).
[[nodiscard]] Result<Table> EmptySessionsTable();
[[nodiscard]] Result<Table> EmptyConnectionsTable();
[[nodiscard]] Result<Table> EmptySnapshotsTable();

}  // namespace core
}  // namespace mosaic

#endif  // MOSAIC_CORE_SYSTEM_TABLES_H_
