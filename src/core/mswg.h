// Marginal-constrained Sliced Wasserstein Generator (M-SWG, §5).
//
// A generator network G maps latent Gaussians to encoded tuples and
// is trained to minimize Eq. (1):
//
//   min_G  k * Σ_{i∈I1}    W(P_i, Q_i)
//        + (1/p) * Σ_{{i,j}∈I2} Σ_{ω∈Ω} W(P_{i,j}ω, Q_{i,j}ω)
//        + λ * E_{x~G}[ min_{y∈S} ||x − y||² ]
//
// where P are the population marginals, Q the generator's marginals,
// Ω a fixed set of random unit projections, and S the encoded sample.
// Per §5.2 the Wasserstein terms are computed *exactly* in 1-D (no
// discriminator network): each step draws an equal-size target batch
// from the marginal, sorts both sides, and uses the quantile
// coupling, whose squared-distance form W2² gives the differentiable
// per-pair gradient 2(x_(i) − y_(i))/B.
//
// Differences from the paper's PyTorch prototype, both documented in
// DESIGN.md: (a) we optimize the squared coupling (W2²) rather than
// W1 — same minimizer on matched batches, smoother gradients; (b) per
// step we evaluate a random subset of Ω (projections_per_step) as an
// unbiased estimator of the (1/p)Σ_ω average, which keeps CPU
// training tractable.
#ifndef MOSAIC_CORE_MSWG_H_
#define MOSAIC_CORE_MSWG_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/encoder.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "stats/marginal.h"
#include "storage/table.h"

namespace mosaic {
namespace core {

struct MswgOptions {
  /// Latent dimension ℓ (a tuning parameter per §5.2). 0 means "same
  /// as the encoded input dimensionality", the flights setting.
  size_t latent_dim = 2;
  size_t hidden_layers = 3;   ///< paper: 3 (spiral), 5 (flights)
  size_t hidden_nodes = 100;  ///< paper: 100 (spiral), 50 (flights)
  bool batch_norm = true;     ///< "batch normalization after each layer"
  /// Add a softmax block over each categorical one-hot group
  /// ("we add a softmax layer for the categorical variable"). Only
  /// applies with one-hot encoding.
  bool softmax_categorical = true;
  /// One-hot (paper default) vs binary categorical embedding (§7
  /// "Data Encoding"); ablated in bench_ablation.
  CategoricalEncoding categorical_encoding = CategoricalEncoding::kOneHot;
  double lambda = 0.04;  ///< λ: sample-coverage weight (spiral setting)
  /// |Ω|: fixed random projections per 2-D marginal (paper: p=1000).
  size_t num_projections = 1000;
  /// Random subset of Ω evaluated per step (unbiased estimate of the
  /// full average).
  size_t projections_per_step = 24;
  size_t batch_size = 500;  ///< paper: 500
  size_t epochs = 40;
  size_t steps_per_epoch = 40;
  double learning_rate = 0.001;  ///< paper: 1e-3, /10 on plateau
  size_t plateau_patience = 5;
  double one_d_coefficient = 1.0;  ///< k in Eq. (1)
  /// Random subset of encoded sample rows used per step for the
  /// nearest-neighbour coverage term.
  size_t coverage_subset = 256;
  uint64_t seed = 42;
  bool verbose = false;  ///< log per-epoch losses
};

/// A trained generator.
class Mswg {
 public:
  /// Train on a biased sample plus population marginals. Attributes
  /// of the sample not covered by any marginal get sample-derived
  /// marginals added automatically (§5.2: "we add marginals from the
  /// sample into the set of population marginals for those uncovered
  /// attributes").
  [[nodiscard]] static Result<std::unique_ptr<Mswg>> Train(
      const Table& sample, std::vector<stats::Marginal> marginals,
      const MswgOptions& options);

  /// Generate n decoded tuples with the sample's schema. Const and
  /// safe to call from several threads concurrently (each caller
  /// brings its own Rng): inference uses nn::Sequential::Infer, which
  /// never touches the training caches.
  [[nodiscard]] Result<Table> Generate(size_t n, Rng* rng) const;

  /// Generate n encoded-space rows (pre-decode; softmax left
  /// continuous).
  [[nodiscard]] Result<nn::Matrix> GenerateEncoded(size_t n, Rng* rng) const;

  /// Per-epoch training losses (total of the three Eq.-1 terms).
  const std::vector<double>& loss_history() const { return loss_history_; }
  double final_loss() const {
    return loss_history_.empty() ? 0.0 : loss_history_.back();
  }

  const MixedEncoder& encoder() const { return encoder_; }
  const std::vector<stats::Marginal>& marginals() const { return marginals_; }
  const MswgOptions& options() const { return options_; }

 private:
  Mswg() = default;

  MswgOptions options_;
  MixedEncoder encoder_;
  std::vector<stats::Marginal> marginals_;
  nn::Sequential net_;
  size_t latent_dim_ = 0;
  std::vector<double> loss_history_;
};

/// §5.2's uncovered-attribute rule, exposed for tests: returns
/// `marginals` extended with 1-D sample marginals for every sample
/// attribute no input marginal covers.
[[nodiscard]] Result<std::vector<stats::Marginal>> AddSampleMarginalsForUncovered(
    const Table& sample, std::vector<stats::Marginal> marginals,
    size_t continuous_bins = 32);

}  // namespace core
}  // namespace mosaic

#endif  // MOSAIC_CORE_MSWG_H_
