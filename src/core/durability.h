// Durability hook between core::Database and the storage engine.
//
// The engine (src/storage/durable/) implements this interface; the
// database calls it after each state mutation commits in memory, while
// the statement still holds whatever lock serialized the mutation. A
// failed log call makes the statement fail loudly with the sink's
// error — the in-memory mutation is NOT rolled back (the process keeps
// serving its current state), but the caller knows the write may not
// survive a crash.
//
// Records are *physical*: they carry the bytes that changed (appended
// row suffixes, whole published WeightEpochs with their fit
// provenance) rather than the SQL that produced them, so replay never
// re-runs IPF, sampling, or model training. A replayed epoch carries
// its original fit_signature, which is what lets the first post-restart
// SEMI-OPEN query skip its refit.
#ifndef MOSAIC_CORE_DURABILITY_H_
#define MOSAIC_CORE_DURABILITY_H_

#include <string>

#include "common/status.h"
#include "core/catalog.h"
#include "core/weights.h"
#include "sql/ast.h"
#include "stats/marginal.h"
#include "storage/table.h"

namespace mosaic {
namespace core {

class DurabilitySink {
 public:
  virtual ~DurabilitySink() = default;

  /// A table was created (possibly pre-populated, for the programmatic
  /// CreateTable path).
  [[nodiscard]] virtual Status LogCreateTable(const std::string& name,
                                const Table& table) = 0;

  /// A population (with any marginals it already carries) was created.
  [[nodiscard]] virtual Status LogCreatePopulation(const PopulationInfo& population) = 0;

  /// A sample was created. Only the header is logged — `sample.data`
  /// is empty at creation; rows arrive via LogSampleIngest.
  [[nodiscard]] virtual Status LogCreateSample(const SampleInfo& sample) = 0;

  /// A marginal was registered on `population` under `metadata_name`.
  [[nodiscard]] virtual Status LogRegisterMarginal(const std::string& population,
                                     const std::string& metadata_name,
                                     const stats::Marginal& marginal) = 0;

  /// A catalog object was dropped.
  [[nodiscard]] virtual Status LogDrop(sql::DropStmt::Target target,
                         const std::string& name) = 0;

  /// Rows were appended to auxiliary table `name`; `suffix` holds
  /// exactly the appended rows, post-coercion, in append order.
  [[nodiscard]] virtual Status LogTableAppend(const std::string& name,
                                const Table& suffix) = 0;

  /// Auxiliary table `name` was rewritten in place (UPDATE).
  [[nodiscard]] virtual Status LogTableReplace(const std::string& name,
                                 const Table& table) = 0;

  /// Rows were ingested into sample `name` and `epoch` is the weight
  /// epoch current after the ingest. One atomic record: recovery never
  /// observes sample rows without the matching weights.
  [[nodiscard]] virtual Status LogSampleIngest(const std::string& name, const Table& suffix,
                                 const WeightEpoch& epoch) = 0;

  /// A new weight epoch was published for sample `name` (SEMI-OPEN
  /// refit, UPDATE of the weight column, reweight-and-pin).
  [[nodiscard]] virtual Status LogPublishEpoch(const std::string& name,
                                 const WeightEpoch& epoch) = 0;
};

}  // namespace core
}  // namespace mosaic

#endif  // MOSAIC_CORE_DURABILITY_H_
