// Catalog objects for Mosaic's specialized relations (§3.1–3.2):
// populations (with their metadata marginals), samples (with their
// per-tuple weights and optional mechanism), and auxiliary tables.
#ifndef MOSAIC_CORE_CATALOG_H_
#define MOSAIC_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/weights.h"
#include "sql/ast.h"
#include "stats/marginal.h"
#include "storage/table.h"

namespace mosaic {
namespace core {

/// A population relation: a set of tuples that *could* exist but are
/// not fully known to Mosaic (§3.1). The global population (GP)
/// contains all other populations; derived populations are defined by
/// a predicate over the GP.
struct PopulationInfo {
  std::string name;
  bool global = false;
  Schema schema;
  /// For derived populations: the GP they select from and the
  /// defining predicate (may be null for a full-copy definition).
  std::string parent;
  sql::ExprPtr predicate;
  /// Metadata: named marginals (§3.2).
  std::vector<std::string> metadata_names;
  std::vector<stats::Marginal> marginals;
};

/// A sample relation: tuples that do exist in the GP and that Mosaic
/// has access to (§3.1), plus the §3.2 metadata (per-tuple weights,
/// initialized to one).
struct SampleInfo {
  std::string name;
  /// The global population this sample was drawn from.
  std::string population;
  Schema schema;
  Table data;
  /// Versioned copy-on-write per-tuple weights (§3.2). Readers pin
  /// one immutable epoch per query; refits publish the next epoch
  /// without disturbing pinned readers (core/weights.h).
  WeightStore weights;
  sql::MechanismSpec mechanism;
  /// Defining predicate over the GP (e.g. email = 'Yahoo'), may be
  /// null.
  sql::ExprPtr predicate;
};

/// Name-keyed registry of all Mosaic relations. Names are
/// case-insensitive and shared across relation kinds (you cannot have
/// a table and a population with the same name).
class Catalog {
 public:
  [[nodiscard]] Status AddPopulation(PopulationInfo population);
  [[nodiscard]] Status AddSample(SampleInfo sample);
  [[nodiscard]] Status AddTable(const std::string& name, Table table);

  [[nodiscard]] Result<PopulationInfo*> GetPopulation(const std::string& name);
  [[nodiscard]] Result<SampleInfo*> GetSample(const std::string& name);
  [[nodiscard]] Result<Table*> GetTable(const std::string& name);

  bool HasPopulation(const std::string& name) const;
  bool HasSample(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  /// Any relation kind registered under this name?
  bool HasName(const std::string& name) const;

  [[nodiscard]] Status DropPopulation(const std::string& name);
  [[nodiscard]] Status DropSample(const std::string& name);
  [[nodiscard]] Status DropTable(const std::string& name);
  /// Remove one metadata entry (marginal) by name from its population.
  [[nodiscard]] Status DropMetadata(const std::string& metadata_name);

  /// The unique global population; errors when none or several exist
  /// (the paper assumes a single GP; multiple GPs are future work,
  /// §7).
  [[nodiscard]] Result<PopulationInfo*> GlobalPopulation();

  /// All samples drawn from the given population.
  std::vector<SampleInfo*> SamplesOf(const std::string& population);

  std::vector<std::string> PopulationNames() const;
  std::vector<std::string> SampleNames() const;
  std::vector<std::string> TableNames() const;

 private:
  static std::string Key(const std::string& name);

  std::map<std::string, PopulationInfo> populations_;
  std::map<std::string, SampleInfo> samples_;
  std::map<std::string, Table> tables_;
};

}  // namespace core
}  // namespace mosaic

#endif  // MOSAIC_CORE_CATALOG_H_
