// Mixed-data encoding for the M-SWG (§5.3): "we one-hot encode the
// categorical variables and scale all attributes to be between 0 and
// 1". The encoder also maps *marginal cells* into the encoded space
// so the training loss can compare generated batches against target
// batches drawn from the marginals, and decodes generated rows back
// into relational tuples ("we leave the softmax output continuous and
// only force the output to be binary for data generation").
#ifndef MOSAIC_CORE_ENCODER_H_
#define MOSAIC_CORE_ENCODER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/matrix.h"
#include "stats/marginal.h"
#include "storage/table.h"

namespace mosaic {
namespace core {

/// How categorical attributes are embedded (§7 "Data Encoding").
/// One-hot is the paper's default; binary encoding ([48]'s approach)
/// uses ceil(log2(k)) dimensions but "introduces various
/// relationships between attribute values that may not exist" — both
/// are implemented so the ablation bench can compare them.
enum class CategoricalEncoding { kOneHot, kBinary };

/// Encoding plan for one source attribute.
struct AttributeEncoding {
  std::string name;
  DataType source_type = DataType::kDouble;
  bool categorical = false;
  CategoricalEncoding cat_encoding = CategoricalEncoding::kOneHot;
  /// First encoded column and how many encoded columns this
  /// attribute occupies (1 for numeric, #categories for one-hot).
  size_t start_col = 0;
  size_t width = 1;
  /// Category list (one-hot order) for categorical attributes.
  std::vector<Value> categories;
  /// Min-max scaling for numeric attributes.
  double min_value = 0.0;
  double max_value = 1.0;
};

class MixedEncoder {
 public:
  /// Derive the encoding from the sample data: string columns are
  /// one-hot encoded over their observed categories; numeric columns
  /// are min-max scaled over the range observed in the sample,
  /// widened to cover any range information present in `marginals`
  /// (population marginals can reach beyond the biased sample).
  [[nodiscard]] static Result<MixedEncoder> Fit(
      const Table& sample, const std::vector<stats::Marginal>& marginals,
      CategoricalEncoding cat_encoding = CategoricalEncoding::kOneHot);

  size_t encoded_dim() const { return encoded_dim_; }
  size_t num_attributes() const { return attrs_.size(); }
  const AttributeEncoding& attribute(size_t i) const { return attrs_[i]; }
  [[nodiscard]] Result<const AttributeEncoding*> AttributeByName(
      const std::string& name) const;

  /// Encode a table into an (n x encoded_dim) matrix.
  [[nodiscard]] Result<nn::Matrix> Encode(const Table& table) const;

  /// Decode generated rows back to a table with the original schema.
  /// One-hot blocks are decoded by argmax; numeric outputs are
  /// clamped to [0,1], unscaled and rounded for integer columns.
  [[nodiscard]] Result<Table> Decode(const nn::Matrix& encoded) const;

  /// Encoded columns touched by a marginal (the subspace its loss
  /// term lives in).
  [[nodiscard]] Result<std::vector<size_t>> MarginalColumns(
      const stats::Marginal& marginal) const;

  /// Draw `n` encoded-space target points from a marginal: sample
  /// cells proportional to their counts, then embed each cell —
  /// one-hot for categorical bins, scaled (and jittered within the
  /// bin for continuous binnings) for numeric bins. The output is
  /// (n x MarginalColumns(m).size()), columns in the same order.
  [[nodiscard]] Result<nn::Matrix> SampleMarginalTargets(const stats::Marginal& marginal,
                                           size_t n, Rng* rng) const;

  /// Scale a raw numeric value of an attribute into [0,1].
  double ScaleNumeric(const AttributeEncoding& attr, double raw) const;
  /// Inverse of ScaleNumeric.
  double UnscaleNumeric(const AttributeEncoding& attr, double scaled) const;

 private:
  std::vector<AttributeEncoding> attrs_;
  size_t encoded_dim_ = 0;
};

}  // namespace core
}  // namespace mosaic

#endif  // MOSAIC_CORE_ENCODER_H_
