// The Mosaic database facade: parses and executes Mosaic SQL end to
// end, routing population queries through the three visibility levels
// of §3.3/§4:
//
//   CLOSED    — answer directly over the sample (the LAV-view path);
//               no reweighting, no generated tuples.
//   SEMI-OPEN — reweight the sample: Horvitz–Thompson when the
//               mechanism is known (§4.1), IPF against the marginals
//               otherwise. Fitted weights are published as the
//               sample's next immutable weight epoch (§3.2 weight
//               metadata; core/weights.h), so concurrent readers
//               keep the epoch they pinned.
//   OPEN      — additionally generate missing tuples with the M-SWG
//               (§5) and answer over the weighted generated
//               population.
//
// Fig. 3's two reweighting paths are both implemented: metadata on
// the query population reweights the restricted sample directly; with
// only GP metadata the engine reweights to the GP and treats the
// query population as a view over the reweighted sample.
#ifndef MOSAIC_CORE_DATABASE_H_
#define MOSAIC_CORE_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/catalog.h"
#include "core/generator.h"
#include "core/mswg.h"
#include "sql/ast.h"
#include "stats/ipf.h"
#include "storage/table.h"

namespace mosaic {

namespace exec {
struct ExecOptions;  // exec/executor.h — only named by value here
}  // namespace exec

namespace core {

class DurabilitySink;  // core/durability.h

struct SemiOpenOptions {
  stats::IpfOptions ipf;
  /// On sample ingest, when the previous weight epoch came from a
  /// GP-level IPF fit (converged or plateaued — uncovered marginal
  /// mass can keep even cold fits from converging), warm-start IPF
  /// from it (extended with unit weights for the new rows) instead of
  /// leaving the sample unfitted until the next SEMI-OPEN query
  /// cold-refits it. Falls back to a cold refit when the warm fit
  /// regresses (stats/ipf.h knobs).
  bool incremental_ingest = true;
};

struct OpenOptions {
  /// Which generative model answers OPEN queries (§4.2: "any
  /// generative model can be plugged in").
  OpenEngine engine = OpenEngine::kMswg;
  MswgOptions mswg;
  /// Debias-first engines (kBayesNet, kKde) run IPF with these
  /// settings before modelling.
  stats::IpfOptions ipf;
  stats::BayesNetOptions bayes_net;
  stats::KdeOptions kde;
  /// Rows to generate; 0 = same as the sample size (the paper's
  /// setting: "we generate 10 samples with the same number of rows as
  /// the original sample").
  size_t generated_rows = 0;
  /// Independent generated samples to average over for aggregate
  /// queries (the paper uses 10; the default keeps ad-hoc SQL cheap).
  size_t num_generated_samples = 1;
  uint64_t generation_seed = 7;
  /// Reuse a trained generator across queries against the same
  /// (population, sample) pair. Bound the cache with
  /// Database::set_model_cache_capacity.
  bool cache_models = true;
};

class Database {
 public:
  /// Default bound on the trained-generator LRU cache (entries).
  static constexpr size_t kDefaultModelCacheCapacity = 16;

  Database();

  /// Parse and execute one statement. SELECTs return their result
  /// table; DDL/DML return an empty table.
  [[nodiscard]] Result<Table> Execute(const std::string& sql);

  /// Execute an already-parsed statement (the service layer parses
  /// once for classification and reuses the AST here). May consume
  /// parts of `*stmt`; single use only.
  ///
  /// `trace` (optional) collects execution spans under `trace_parent`
  /// — the engine records weight-pin / reweight / train / generate
  /// phases and the executor its filter/aggregate/sort phases.
  /// Tracing never changes results. EXPLAIN ANALYZE statements
  /// executed with a null trace allocate their own and return the
  /// span table; with a caller trace they return the query's rows and
  /// leave rendering to the caller (the service, which owns the
  /// enclosing parse/cache spans).
  [[nodiscard]] Result<Table> ExecuteParsed(sql::Statement* stmt,
                              trace::QueryTrace* trace = nullptr,
                              uint32_t trace_parent = 0);

  /// Execute a ';'-separated script, discarding intermediate results;
  /// returns the result of the last statement.
  [[nodiscard]] Result<Table> ExecuteScript(const std::string& sql);

  // ---- Programmatic API (what the SQL surface is sugar for) -----------

  /// Register an auxiliary table.
  [[nodiscard]] Status CreateTable(const std::string& name, Table table);

  /// Append rows (matching the sample schema) to a sample relation;
  /// new tuples get weight 1.
  [[nodiscard]] Status IngestSample(const std::string& sample, const Table& rows);

  /// Attach a marginal to a population as named metadata.
  [[nodiscard]] Status RegisterMarginal(const std::string& population,
                          const std::string& metadata_name,
                          stats::Marginal marginal);

  /// Compute SEMI-OPEN weights for `population`'s chosen sample and
  /// publish them as the sample's next weight epoch. Returns the IPF
  /// report (or a synthetic one for known mechanisms). Refits whose
  /// fit signature matches the current epoch (same debias path, data
  /// size, metadata version and options — converged or plateaued
  /// alike, since the rerun would reproduce the same fit) are no-ops:
  /// nothing is recomputed or republished, so concurrent identical
  /// refits collapse to one epoch. Thread-safe against concurrent
  /// readers — they keep the epoch they pinned.
  [[nodiscard]] Result<stats::IpfReport> ReweightForPopulation(
      const std::string& population);

  /// Cache-key stamp for an already-parsed statement: the catalog
  /// version plus (for statements that read a sample's weights or
  /// data) the sample's current weight epoch. Two executions with
  /// equal canonical SQL and equal stamps return identical results,
  /// so the service keys its result cache on (SQL, stamp) and never
  /// has to flush wholesale. `cacheable` is false when the answer
  /// cannot be attributed to a (catalog version, epoch) pair — e.g.
  /// §7 union-samples mode.
  struct CacheStamp {
    bool cacheable = false;
    uint64_t catalog_version = 0;
    uint64_t weight_epoch = 0;
  };
  CacheStamp StampFor(const sql::Statement& stmt);

  /// Monotonic version of catalog structure + relation data (DDL,
  /// ingest, metadata, aux-table DML). Weight publications do NOT
  /// bump it — they are tracked per sample by weight epochs.
  uint64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_relaxed);
  }

  /// Monotonic version of the registered marginal metadata (part of
  /// fit signatures). Exposed so a durability layer can record it
  /// with every mutation and restore it exactly on recovery.
  uint64_t metadata_version() const {
    return metadata_version_.load(std::memory_order_relaxed);
  }

  // ---- Durability hooks (storage/durable) -----------------------------

  /// Attach a sink that is handed every committed mutation (DDL,
  /// ingest, weight publication) for write-ahead logging. Null
  /// detaches. Must be set before concurrent use begins.
  void set_durability_sink(DurabilitySink* sink) { durability_ = sink; }
  DurabilitySink* durability_sink() const { return durability_; }

  /// Recovery-only: force the version counters to exactly the values
  /// a replayed WAL record carried. Exact (not monotonic) so fit
  /// signatures computed after restart match their pre-crash
  /// counterparts and refits no-op.
  void RestoreVersions(uint64_t catalog_version, uint64_t metadata_version) {
    catalog_version_.store(catalog_version, std::memory_order_relaxed);
    metadata_version_.store(metadata_version, std::memory_order_relaxed);
  }

  /// Recovery-only: install a recovered weight epoch (id + fit
  /// provenance intact) on the named sample. Never runs a fit.
  [[nodiscard]] Status RestoreSampleEpoch(const std::string& sample, WeightEpoch epoch);

  /// Aggregate counters over the versioned weight stores.
  struct WeightCounters {
    uint64_t epochs_published = 0;   ///< new epochs swapped in
    uint64_t refits_total = 0;       ///< reweight computations run
    uint64_t refits_skipped = 0;     ///< no-op refits (signature hit)
    uint64_t refits_incremental = 0; ///< warm-started ingest refits
  };
  WeightCounters WeightCountersSnapshot() const;

  /// Train (or fetch the cached) M-SWG for the population and
  /// generate one weighted open-world table: `rows` generated tuples,
  /// each carrying weight population_size / rows in column "weight".
  [[nodiscard]] Result<Table> GenerateOpenWorldTable(const std::string& population,
                                       size_t rows, uint64_t seed);

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  // ---- System tables (introspection) ----------------------------------

  /// Provider materializing one `system.<name>` introspection table
  /// as a point-in-time snapshot. Must be thread-safe: SELECTs over
  /// system tables run under the service's *shared* lock from many
  /// request threads at once.
  using SystemTableProvider = std::function<Result<Table>()>;

  /// Install (or replace) the provider behind `system.<name>`
  /// (lower-case name without the "system." prefix). The database
  /// pre-registers all five tables — queries/metrics backed by the
  /// live query log and metrics registry, sessions/connections/
  /// snapshots as empty schema stubs that the service and network
  /// layers override at startup. Not thread-safe against in-flight
  /// queries; call during setup.
  void RegisterSystemTable(const std::string& name,
                           SystemTableProvider provider);

  /// True for names in the reserved "system." schema (any case).
  /// These resolve before the catalog, are never cacheable, and are
  /// rejected as DDL/DML targets by nature of not being catalog
  /// relations.
  static bool IsSystemRelation(const std::string& name);

  SemiOpenOptions* mutable_semi_open_options() { return &semi_open_; }
  OpenOptions* mutable_open_options() { return &open_; }

  /// §7 "Multiple Samples": when enabled, population queries run over
  /// the UNION of all same-schema samples of the GP instead of the
  /// single largest one ("One solution is to union together all
  /// related samples and let IPF or the neural network reweight the
  /// tuples accordingly"). The unioned relation has no single
  /// mechanism, so reweighting always goes through IPF.
  void set_union_samples(bool enabled) {
    union_samples_ = enabled;
    // Changes how population queries are answered; stamp-keyed cached
    // results must not survive the flip.
    BumpCatalogVersion();
  }
  bool union_samples() const { return union_samples_; }

  /// Drop all cached trained generators (e.g. after new metadata).
  /// Thread-safe: may be called while OPEN queries are in flight;
  /// they keep their shared_ptr to the model they already fetched.
  void InvalidateModelCache() {
    model_cache_.Clear();
    MutexLock lock(train_mu_);
    train_mutexes_.clear();
  }

  /// Re-bound the trained-generator LRU cache, evicting as needed.
  void set_model_cache_capacity(size_t capacity) {
    model_cache_.set_capacity(capacity);
  }

  /// Hit/miss/eviction counters of the trained-generator cache.
  CacheStats ModelCacheStats() const { return model_cache_.Stats(); }

  /// Route SELECT execution through the legacy row-at-a-time
  /// interpreter and materializing relation plumbing instead of the
  /// zero-copy batch path. The two are bit-identical; this is the
  /// parity oracle for differential tests. Also enabled by setting
  /// MOSAIC_ROW_PATH=1 in the environment.
  void set_force_row_exec(bool enabled) { force_row_exec_ = enabled; }
  bool force_row_exec() const { return force_row_exec_; }

  /// When set, the `num_generated_samples` independent OPEN-query
  /// samples are generated on this pool instead of sequentially.
  /// Seeds are threaded per sample index (generation_seed + k), so
  /// parallel answers are bit-identical to the sequential path. The
  /// pool must not be one whose tasks block on this Database (the
  /// query service dedicates a generation pool).
  void set_generation_pool(ThreadPool* pool) { gen_pool_ = pool; }
  ThreadPool* generation_pool() const { return gen_pool_; }

  /// Morsel-parallel batch execution for every visibility level:
  /// when `morsel_size` > 0, batch-path SELECTs split their selection
  /// into morsels of that many rows and run them on the morsel pool
  /// (below), merging in deterministic morsel order — bit-identical
  /// to the single-threaded batch path at every size/thread count.
  /// `parallelism` caps concurrent morsels per query, counting the
  /// executing thread; 0 = executing thread + every pool worker. Also
  /// enabled by MOSAIC_MORSELS=<size> in the environment.
  void set_morsel_options(size_t morsel_size, size_t parallelism) {
    morsel_size_ = morsel_size;
    morsel_parallelism_ = parallelism;
  }
  size_t morsel_size() const { return morsel_size_; }
  size_t morsel_parallelism() const { return morsel_parallelism_; }

  /// Pool supplying the extra intra-query workers. Safe to share with
  /// a pool that also runs whole queries (the service's request
  /// pool): the morsel driver claims work without ever blocking on
  /// pool capacity, so saturation cannot deadlock (exec/morsel.h).
  /// Null runs morsels on the executing thread only.
  void set_morsel_pool(ThreadPool* pool) { morsel_pool_ = pool; }
  ThreadPool* morsel_pool() const { return morsel_pool_; }

 private:
  /// ExecOptions carrying this engine's morsel configuration — the
  /// base every batch-path SELECT builds on.
  exec::ExecOptions BatchExecOptions() const;

  [[nodiscard]] Result<Table> ExecuteStatement(sql::Statement* stmt,
                                 trace::QueryTrace* trace = nullptr,
                                 uint32_t trace_parent = 0);
  [[nodiscard]] Result<Table> ExecuteSelect(const sql::SelectStmt& stmt,
                              trace::QueryTrace* trace = nullptr,
                              uint32_t trace_parent = 0);
  [[nodiscard]] Result<Table> ExecutePopulationQuery(const sql::SelectStmt& stmt,
                                       PopulationInfo* population,
                                       trace::QueryTrace* trace = nullptr,
                                       uint32_t trace_parent = 0);
  [[nodiscard]] Status ExecuteCreateTable(const sql::CreateTableStmt& stmt);
  [[nodiscard]] Status ExecuteCreatePopulation(sql::CreatePopulationStmt* stmt);
  [[nodiscard]] Status ExecuteCreateSample(sql::CreateSampleStmt* stmt);
  [[nodiscard]] Status ExecuteCreateMetadata(sql::CreateMetadataStmt* stmt);
  [[nodiscard]] Status ExecuteInsert(const sql::InsertStmt& stmt);
  [[nodiscard]] Status ExecuteCopy(const sql::CopyStmt& stmt);
  [[nodiscard]] Status ExecuteDrop(const sql::DropStmt& stmt);
  [[nodiscard]] Status ExecuteUpdate(const sql::UpdateStmt& stmt);
  [[nodiscard]] Result<Table> ExecuteShow(const sql::ShowStmt& stmt);

  /// Snapshot the named system table (name already lower-cased,
  /// including the "system." prefix) and run `stmt` over it through
  /// the configured exec path.
  [[nodiscard]] Result<Table> ExecuteSystemSelect(const sql::SelectStmt& stmt,
                                    trace::QueryTrace* trace,
                                    uint32_t trace_parent);

  /// The "single, optimal sample" of §4's assumption 2: the sample of
  /// the population's GP with the most rows.
  [[nodiscard]] Result<SampleInfo*> ChooseSample(const PopulationInfo& population);

  /// ReweightForPopulation's engine: refits (or no-op skips) and
  /// returns the epoch holding the fitted weights, pinned — the
  /// SEMI-OPEN query path answers over exactly this epoch even if a
  /// concurrent refit for another population publishes over it.
  [[nodiscard]] Result<WeightEpochPtr> ReweightAndPin(const std::string& population_name,
                                        stats::IpfReport* report);

  /// Signatures of the reweighting computations ReweightAndPin can
  /// run. A matching signature licenses the no-op refit skip: the
  /// current epoch is already a fit of this exact (data size,
  /// marginal set, IPF options) — bit-equal to what a cold refit
  /// would produce when the epoch came from one (cold IPF is
  /// deterministic), or an accepted warm-started fit of the same
  /// constraints when it came from ingest-time incremental IPF
  /// (which shares the GP-level signature by design: reusing the
  /// incremental fit instead of re-running a cold one is the point).
  std::string GpIpfFitSignature(size_t rows) const;
  std::string PopulationIpfFitSignature(const PopulationInfo& population,
                                        size_t rows) const;

  /// Publish `weights` as `sample`'s next epoch, counting an actual
  /// swap in the weight counters (a value-identical publication is a
  /// no-op and counts nothing). When a durability sink is attached
  /// and `log` is true, an actual swap is WAL-logged (ingest-time
  /// publications pass log=false — their caller logs one combined
  /// rows+epoch record instead); a logging failure surfaces as the
  /// error of the Result, with the epoch already published in memory.
  [[nodiscard]] Result<WeightEpochPtr> PublishWeights(SampleInfo* sample,
                                        std::vector<double> weights,
                                        WeightFitInfo fit = WeightFitInfo(),
                                        bool log = true);

  /// After rows were appended to `sample`, publish the follow-up
  /// weight epoch: a warm-started incremental IPF when the previous
  /// epoch `prev` came from a GP-level fit (and the knob is on),
  /// otherwise `prev`'s weights extended with unit weights.
  [[nodiscard]] Status ExtendWeightsAfterIngest(SampleInfo* sample,
                                  const WeightEpochPtr& prev);

  void BumpCatalogVersion() {
    catalog_version_.fetch_add(1, std::memory_order_relaxed);
  }
  void BumpMetadataVersion() {
    metadata_version_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Sample rows restricted to the population (applies the derived
  /// population's predicate); identity for the GP itself.
  [[nodiscard]] Result<Table> RestrictToPopulation(const Table& sample_data,
                                     const PopulationInfo& population);

  /// Marginals + population size to debias against, following Fig. 3:
  /// the population's own metadata when present, else the GP's
  /// (restrict_after_reweight is set in the latter case).
  struct DebiasPlan {
    const std::vector<stats::Marginal>* marginals = nullptr;
    bool reweight_to_global = false;
    double population_size = 0.0;
  };
  [[nodiscard]] Result<DebiasPlan> PlanDebias(PopulationInfo* population);

  /// A trained (or cache-fetched) generator plus everything needed to
  /// turn it into weighted open-world tables without touching the
  /// catalog again — the unit of work handed to generation threads.
  struct OpenWorldModel {
    std::shared_ptr<PopulationGenerator> model;
    double population_size = 0.0;
    /// Row count used when the caller passes rows == 0 (the paper's
    /// "same number of rows as the original sample").
    size_t default_rows = 0;
    /// Non-null when generated tuples represent the GP and the query
    /// population is a view: filter after generation.
    const sql::Expr* restrict_predicate = nullptr;
  };

  /// Fetch the population's generator from the LRU cache or train it.
  /// Training of a given key happens at most once even under
  /// concurrent OPEN queries.
  [[nodiscard]] Result<OpenWorldModel> PrepareOpenWorldModel(
      const std::string& population_name);

  /// Raw generated tuples plus their uniform §5.3 weights
  /// (population_size / rows), before weight attachment and
  /// view-restriction — the single source both the materializing
  /// (GenerateFromModel) and zero-copy (OPEN batch) consumers build
  /// on.
  struct GeneratedSample {
    Table data;
    std::vector<double> weights;
  };
  [[nodiscard]] Result<GeneratedSample> GenerateSample(const OpenWorldModel& model,
                                         size_t rows, uint64_t seed) const;

  /// Generate one weighted open-world table from a prepared model.
  /// Const and thread-safe: generation threads share the model and
  /// differ only in their seed.
  [[nodiscard]] Result<Table> GenerateFromModel(const OpenWorldModel& model, size_t rows,
                                  uint64_t seed) const;

  Catalog catalog_;
  SemiOpenOptions semi_open_;
  OpenOptions open_;
  LruCache<std::string, std::shared_ptr<PopulationGenerator>> model_cache_;
  /// Per-cache-key training locks: concurrent OPEN queries on the
  /// same key train once instead of racing, while different keys
  /// train independently. train_mu_ only guards the lock map itself
  /// (cleared together with the model cache, so it cannot grow
  /// without bound as ingest changes keys).
  Mutex train_mu_;
  std::unordered_map<std::string, std::shared_ptr<std::mutex>>
      train_mutexes_ GUARDED_BY(train_mu_);
  /// Starts at 1 so a 0-valued stamp can never match a live catalog.
  std::atomic<uint64_t> catalog_version_{1};
  /// Bumped on metadata (marginal) registration/removal; part of fit
  /// signatures so a refit never reuses weights fitted to dropped or
  /// replaced marginals.
  std::atomic<uint64_t> metadata_version_{1};
  std::atomic<uint64_t> weight_epochs_published_{0};
  std::atomic<uint64_t> weight_refits_{0};
  std::atomic<uint64_t> weight_refits_skipped_{0};
  std::atomic<uint64_t> weight_refits_incremental_{0};
  ThreadPool* gen_pool_ = nullptr;
  ThreadPool* morsel_pool_ = nullptr;
  size_t morsel_size_ = 0;
  size_t morsel_parallelism_ = 0;
  bool union_samples_ = false;
  bool force_row_exec_ = false;
  /// Write-ahead-logging hook; null when running without durability.
  DurabilitySink* durability_ = nullptr;
  /// Providers behind the `system.*` schema, keyed by bare table name
  /// ("queries"). The mutex only guards the map — providers run
  /// outside it.
  mutable Mutex system_mu_;
  std::map<std::string, SystemTableProvider> system_tables_
      GUARDED_BY(system_mu_);
  /// Scratch relation materializing the union of samples; rebuilt
  /// lazily when the underlying samples change size.
  SampleInfo union_scratch_;
  std::string union_scratch_key_;
};

}  // namespace core
}  // namespace mosaic

#endif  // MOSAIC_CORE_DATABASE_H_
