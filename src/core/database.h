// The Mosaic database facade: parses and executes Mosaic SQL end to
// end, routing population queries through the three visibility levels
// of §3.3/§4:
//
//   CLOSED    — answer directly over the sample (the LAV-view path);
//               no reweighting, no generated tuples.
//   SEMI-OPEN — reweight the sample: Horvitz–Thompson when the
//               mechanism is known (§4.1), IPF against the marginals
//               otherwise. Fitted weights are written back to the
//               sample's weight metadata, as §3.2 prescribes.
//   OPEN      — additionally generate missing tuples with the M-SWG
//               (§5) and answer over the weighted generated
//               population.
//
// Fig. 3's two reweighting paths are both implemented: metadata on
// the query population reweights the restricted sample directly; with
// only GP metadata the engine reweights to the GP and treats the
// query population as a view over the reweighted sample.
#ifndef MOSAIC_CORE_DATABASE_H_
#define MOSAIC_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/catalog.h"
#include "core/generator.h"
#include "core/mswg.h"
#include "sql/ast.h"
#include "stats/ipf.h"
#include "storage/table.h"

namespace mosaic {
namespace core {

struct SemiOpenOptions {
  stats::IpfOptions ipf;
};

struct OpenOptions {
  /// Which generative model answers OPEN queries (§4.2: "any
  /// generative model can be plugged in").
  OpenEngine engine = OpenEngine::kMswg;
  MswgOptions mswg;
  /// Debias-first engines (kBayesNet, kKde) run IPF with these
  /// settings before modelling.
  stats::IpfOptions ipf;
  stats::BayesNetOptions bayes_net;
  stats::KdeOptions kde;
  /// Rows to generate; 0 = same as the sample size (the paper's
  /// setting: "we generate 10 samples with the same number of rows as
  /// the original sample").
  size_t generated_rows = 0;
  /// Independent generated samples to average over for aggregate
  /// queries (the paper uses 10; the default keeps ad-hoc SQL cheap).
  size_t num_generated_samples = 1;
  uint64_t generation_seed = 7;
  /// Reuse a trained generator across queries against the same
  /// (population, sample) pair.
  bool cache_models = true;
};

class Database {
 public:
  Database();

  /// Parse and execute one statement. SELECTs return their result
  /// table; DDL/DML return an empty table.
  Result<Table> Execute(const std::string& sql);

  /// Execute a ';'-separated script, discarding intermediate results;
  /// returns the result of the last statement.
  Result<Table> ExecuteScript(const std::string& sql);

  // ---- Programmatic API (what the SQL surface is sugar for) -----------

  /// Register an auxiliary table.
  Status CreateTable(const std::string& name, Table table);

  /// Append rows (matching the sample schema) to a sample relation;
  /// new tuples get weight 1.
  Status IngestSample(const std::string& sample, const Table& rows);

  /// Attach a marginal to a population as named metadata.
  Status RegisterMarginal(const std::string& population,
                          const std::string& metadata_name,
                          stats::Marginal marginal);

  /// Compute SEMI-OPEN weights for `population`'s chosen sample and
  /// store them in the sample's weight metadata. Returns the IPF
  /// report (or a synthetic one for known mechanisms).
  Result<stats::IpfReport> ReweightForPopulation(
      const std::string& population);

  /// Train (or fetch the cached) M-SWG for the population and
  /// generate one weighted open-world table: `rows` generated tuples,
  /// each carrying weight population_size / rows in column "weight".
  Result<Table> GenerateOpenWorldTable(const std::string& population,
                                       size_t rows, uint64_t seed);

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  SemiOpenOptions* mutable_semi_open_options() { return &semi_open_; }
  OpenOptions* mutable_open_options() { return &open_; }

  /// §7 "Multiple Samples": when enabled, population queries run over
  /// the UNION of all same-schema samples of the GP instead of the
  /// single largest one ("One solution is to union together all
  /// related samples and let IPF or the neural network reweight the
  /// tuples accordingly"). The unioned relation has no single
  /// mechanism, so reweighting always goes through IPF.
  void set_union_samples(bool enabled) { union_samples_ = enabled; }
  bool union_samples() const { return union_samples_; }

  /// Drop all cached trained generators (e.g. after new metadata).
  void InvalidateModelCache() { model_cache_.clear(); }

 private:
  Result<Table> ExecuteStatement(sql::Statement* stmt);
  Result<Table> ExecuteSelect(const sql::SelectStmt& stmt);
  Result<Table> ExecutePopulationQuery(const sql::SelectStmt& stmt,
                                       PopulationInfo* population);
  Status ExecuteCreateTable(const sql::CreateTableStmt& stmt);
  Status ExecuteCreatePopulation(sql::CreatePopulationStmt* stmt);
  Status ExecuteCreateSample(sql::CreateSampleStmt* stmt);
  Status ExecuteCreateMetadata(sql::CreateMetadataStmt* stmt);
  Status ExecuteInsert(const sql::InsertStmt& stmt);
  Status ExecuteCopy(const sql::CopyStmt& stmt);
  Status ExecuteDrop(const sql::DropStmt& stmt);
  Status ExecuteUpdate(const sql::UpdateStmt& stmt);
  Result<Table> ExecuteShow(const sql::ShowStmt& stmt);

  /// The "single, optimal sample" of §4's assumption 2: the sample of
  /// the population's GP with the most rows.
  Result<SampleInfo*> ChooseSample(const PopulationInfo& population);

  /// Sample rows restricted to the population (applies the derived
  /// population's predicate); identity for the GP itself.
  Result<Table> RestrictToPopulation(const Table& sample_data,
                                     const PopulationInfo& population);

  /// Marginals + population size to debias against, following Fig. 3:
  /// the population's own metadata when present, else the GP's
  /// (restrict_after_reweight is set in the latter case).
  struct DebiasPlan {
    const std::vector<stats::Marginal>* marginals = nullptr;
    bool reweight_to_global = false;
    double population_size = 0.0;
  };
  Result<DebiasPlan> PlanDebias(PopulationInfo* population);

  Catalog catalog_;
  SemiOpenOptions semi_open_;
  OpenOptions open_;
  std::map<std::string, std::shared_ptr<PopulationGenerator>> model_cache_;
  bool union_samples_ = false;
  /// Scratch relation materializing the union of samples; rebuilt
  /// lazily when the underlying samples change size.
  SampleInfo union_scratch_;
  std::string union_scratch_key_;
};

}  // namespace core
}  // namespace mosaic

#endif  // MOSAIC_CORE_DATABASE_H_
