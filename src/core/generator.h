// Pluggable open-world generators.
//
// §4.2: "any generative model can be plugged in and used to answer
// open queries as long as it can be trained on sample data and
// marginals." This interface is that plug point. Three engines ship:
//
//   kMswg     — the paper's proposed implicit model (§5), a
//               marginal-constrained sliced-Wasserstein generator.
//   kBayesNet — the explicit, Themis-style model ([42], §4.1): IPF
//               debiases the sample against the marginals, then a
//               Chow-Liu tree fitted to the weighted sample is
//               sampled ancestrally.
//   kKde      — the §7 nonparametric alternative: IPF debiasing, then
//               a weighted mixed-data kernel density estimator.
//
// The Database's OPEN queries select the engine via
// OpenOptions::engine; bench_ablation compares them head to head.
#ifndef MOSAIC_CORE_GENERATOR_H_
#define MOSAIC_CORE_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/mswg.h"
#include "stats/bayes_net.h"
#include "stats/ipf.h"
#include "stats/kde.h"
#include "storage/table.h"

namespace mosaic {
namespace core {

/// A trained generative model of the population: produces synthetic
/// tuples with the sample's schema.
class PopulationGenerator {
 public:
  virtual ~PopulationGenerator() = default;

  /// Generate n synthetic population tuples. Const — a trained model
  /// is immutable, so concurrent Generate calls (each with their own
  /// Rng) are safe; parallel OPEN answering relies on this.
  [[nodiscard]] virtual Result<Table> Generate(size_t n, Rng* rng) const = 0;

  /// Engine name for logs and reports ("m-swg", "bayes-net", "kde").
  virtual std::string name() const = 0;
};

enum class OpenEngine { kMswg, kBayesNet, kKde };

const char* OpenEngineName(OpenEngine engine);

struct GeneratorOptions {
  /// M-SWG training configuration (kMswg only).
  MswgOptions mswg;
  /// IPF configuration for the debias-first engines (kBayesNet, kKde).
  stats::IpfOptions ipf;
  /// Bayesian-network configuration (kBayesNet only).
  stats::BayesNetOptions bayes_net;
  /// KDE configuration (kKde only).
  stats::KdeOptions kde;
};

/// Train a generator of the selected kind on a biased sample plus
/// population marginals.
[[nodiscard]] Result<std::unique_ptr<PopulationGenerator>> TrainPopulationGenerator(
    OpenEngine engine, const Table& sample,
    const std::vector<stats::Marginal>& marginals,
    const GeneratorOptions& options);

}  // namespace core
}  // namespace mosaic

#endif  // MOSAIC_CORE_GENERATOR_H_
