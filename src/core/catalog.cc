#include "core/catalog.h"

#include "common/string_util.h"

namespace mosaic {
namespace core {

std::string Catalog::Key(const std::string& name) { return ToLower(name); }

Status Catalog::AddPopulation(PopulationInfo population) {
  if (HasName(population.name)) {
    return Status::AlreadyExists("relation '" + population.name +
                                 "' already exists");
  }
  if (population.global) {
    for (const auto& [key, pop] : populations_) {
      (void)key;
      if (pop.global) {
        return Status::InvalidArgument(
            "a global population already exists ('" + pop.name +
            "'); multiple GPs are not supported");
      }
    }
  }
  std::string key = Key(population.name);
  populations_.emplace(std::move(key), std::move(population));
  return Status::OK();
}

Status Catalog::AddSample(SampleInfo sample) {
  if (HasName(sample.name)) {
    return Status::AlreadyExists("relation '" + sample.name +
                                 "' already exists");
  }
  std::string key = Key(sample.name);
  samples_.emplace(std::move(key), std::move(sample));
  return Status::OK();
}

Status Catalog::AddTable(const std::string& name, Table table) {
  if (HasName(name)) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  tables_.emplace(Key(name), std::move(table));
  return Status::OK();
}

Result<PopulationInfo*> Catalog::GetPopulation(const std::string& name) {
  auto it = populations_.find(Key(name));
  if (it == populations_.end()) {
    return Status::NotFound("no population named '" + name + "'");
  }
  return &it->second;
}

Result<SampleInfo*> Catalog::GetSample(const std::string& name) {
  auto it = samples_.find(Key(name));
  if (it == samples_.end()) {
    return Status::NotFound("no sample named '" + name + "'");
  }
  return &it->second;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

bool Catalog::HasPopulation(const std::string& name) const {
  return populations_.count(Key(name)) > 0;
}
bool Catalog::HasSample(const std::string& name) const {
  return samples_.count(Key(name)) > 0;
}
bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(Key(name)) > 0;
}
bool Catalog::HasName(const std::string& name) const {
  return HasPopulation(name) || HasSample(name) || HasTable(name);
}

Status Catalog::DropPopulation(const std::string& name) {
  if (populations_.erase(Key(name)) == 0) {
    return Status::NotFound("no population named '" + name + "'");
  }
  return Status::OK();
}

Status Catalog::DropSample(const std::string& name) {
  if (samples_.erase(Key(name)) == 0) {
    return Status::NotFound("no sample named '" + name + "'");
  }
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(Key(name)) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

Status Catalog::DropMetadata(const std::string& metadata_name) {
  for (auto& [key, pop] : populations_) {
    (void)key;
    for (size_t i = 0; i < pop.metadata_names.size(); ++i) {
      if (EqualsIgnoreCase(pop.metadata_names[i], metadata_name)) {
        pop.metadata_names.erase(pop.metadata_names.begin() +
                                 static_cast<long>(i));
        pop.marginals.erase(pop.marginals.begin() + static_cast<long>(i));
        return Status::OK();
      }
    }
  }
  return Status::NotFound("no metadata named '" + metadata_name + "'");
}

Result<PopulationInfo*> Catalog::GlobalPopulation() {
  PopulationInfo* found = nullptr;
  for (auto& [key, pop] : populations_) {
    (void)key;
    if (pop.global) {
      if (found != nullptr) {
        return Status::Internal("multiple global populations registered");
      }
      found = &pop;
    }
  }
  if (found == nullptr) {
    return Status::NotFound("no global population defined");
  }
  return found;
}

std::vector<SampleInfo*> Catalog::SamplesOf(const std::string& population) {
  std::vector<SampleInfo*> out;
  for (auto& [key, sample] : samples_) {
    (void)key;
    if (EqualsIgnoreCase(sample.population, population)) {
      out.push_back(&sample);
    }
  }
  return out;
}

std::vector<std::string> Catalog::PopulationNames() const {
  std::vector<std::string> out;
  for (const auto& [key, pop] : populations_) {
    (void)key;
    out.push_back(pop.name);
  }
  return out;
}

std::vector<std::string> Catalog::SampleNames() const {
  std::vector<std::string> out;
  for (const auto& [key, s] : samples_) {
    (void)key;
    out.push_back(s.name);
  }
  return out;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [key, t] : tables_) {
    (void)key;
    (void)t;
    out.push_back(key);
  }
  return out;
}

}  // namespace core
}  // namespace mosaic
