#include "core/generator.h"

#include "stats/bayes_net.h"

namespace mosaic {
namespace core {

const char* OpenEngineName(OpenEngine engine) {
  switch (engine) {
    case OpenEngine::kMswg:
      return "m-swg";
    case OpenEngine::kBayesNet:
      return "bayes-net";
    case OpenEngine::kKde:
      return "kde";
  }
  return "?";
}

namespace {

class MswgGenerator : public PopulationGenerator {
 public:
  explicit MswgGenerator(std::unique_ptr<Mswg> model)
      : model_(std::move(model)) {}

  [[nodiscard]] Result<Table> Generate(size_t n, Rng* rng) const override {
    return model_->Generate(n, rng);
  }
  std::string name() const override { return "m-swg"; }

 private:
  std::unique_ptr<Mswg> model_;
};

class BayesNetGenerator : public PopulationGenerator {
 public:
  explicit BayesNetGenerator(stats::ChowLiuTree tree)
      : tree_(std::move(tree)) {}

  [[nodiscard]] Result<Table> Generate(size_t n, Rng* rng) const override {
    return tree_.SampleRows(n, rng);
  }
  std::string name() const override { return "bayes-net"; }

 private:
  stats::ChowLiuTree tree_;
};

class KdeGenerator : public PopulationGenerator {
 public:
  explicit KdeGenerator(stats::MixedKde kde) : kde_(std::move(kde)) {}

  [[nodiscard]] Result<Table> Generate(size_t n, Rng* rng) const override {
    return kde_.Sample(n, rng);
  }
  std::string name() const override { return "kde"; }

 private:
  stats::MixedKde kde_;
};

/// The explicit engines debias first: IPF-reweight the sample against
/// the marginals, then model the weighted sample.
[[nodiscard]] Result<std::vector<double>> DebiasWeights(
    const Table& sample, const std::vector<stats::Marginal>& marginals,
    const stats::IpfOptions& ipf) {
  std::vector<double> weights(sample.num_rows(), 1.0);
  if (!marginals.empty()) {
    MOSAIC_RETURN_IF_ERROR(
        stats::IterativeProportionalFit(sample, marginals, &weights, ipf)
            .status());
  }
  return weights;
}

}  // namespace

[[nodiscard]] Result<std::unique_ptr<PopulationGenerator>> TrainPopulationGenerator(
    OpenEngine engine, const Table& sample,
    const std::vector<stats::Marginal>& marginals,
    const GeneratorOptions& options) {
  switch (engine) {
    case OpenEngine::kMswg: {
      MOSAIC_ASSIGN_OR_RETURN(auto model,
                              Mswg::Train(sample, marginals, options.mswg));
      return std::unique_ptr<PopulationGenerator>(
          new MswgGenerator(std::move(model)));
    }
    case OpenEngine::kBayesNet: {
      MOSAIC_ASSIGN_OR_RETURN(
          auto weights, DebiasWeights(sample, marginals, options.ipf));
      Table weighted = sample;
      MOSAIC_RETURN_IF_ERROR(
          weighted.AddDoubleColumn("__gen_weight", weights));
      MOSAIC_ASSIGN_OR_RETURN(
          auto tree, stats::ChowLiuTree::Fit(weighted, "__gen_weight",
                                             options.bayes_net));
      return std::unique_ptr<PopulationGenerator>(
          new BayesNetGenerator(std::move(tree)));
    }
    case OpenEngine::kKde: {
      MOSAIC_ASSIGN_OR_RETURN(
          auto weights, DebiasWeights(sample, marginals, options.ipf));
      MOSAIC_ASSIGN_OR_RETURN(
          auto kde, stats::MixedKde::Fit(sample, weights, options.kde));
      return std::unique_ptr<PopulationGenerator>(
          new KdeGenerator(std::move(kde)));
    }
  }
  return Status::Internal("unknown open engine");
}

}  // namespace core
}  // namespace mosaic
