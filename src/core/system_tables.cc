#include "core/system_tables.h"

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/string_util.h"

namespace mosaic {
namespace core {

namespace {

[[nodiscard]] Result<Schema> QueriesSchema() {
  Schema schema;
  for (const auto& [name, type] : std::initializer_list<
           std::pair<const char*, DataType>>{
           {"query_id", DataType::kInt64},
           {"session_id", DataType::kInt64},
           {"trace_id", DataType::kString},
           {"sql", DataType::kString},
           {"status", DataType::kString},
           {"cache_hit", DataType::kInt64},
           {"wall_us", DataType::kInt64},
           {"cpu_us", DataType::kInt64},
           {"rows_scanned", DataType::kInt64},
           {"rows_produced", DataType::kInt64},
           {"morsels", DataType::kInt64},
           {"epoch_pins", DataType::kInt64},
           {"simd_isa", DataType::kString},
           {"span", DataType::kString},
           {"span_id", DataType::kInt64},
           {"parent_id", DataType::kInt64},
           {"start_us", DataType::kInt64},
           {"duration_us", DataType::kInt64},
           {"span_cpu_us", DataType::kInt64},
           {"detail", DataType::kString},
       }) {
    MOSAIC_RETURN_IF_ERROR(schema.AddColumn(ColumnDef{name, type}));
  }
  return schema;
}

std::string TraceIdHex(uint64_t trace_id) {
  if (trace_id == 0) return "";
  return StrFormat("%016llx", static_cast<unsigned long long>(trace_id));
}

}  // namespace

[[nodiscard]] Result<Table> BuildQueriesTable(const qlog::QueryLog& log) {
  MOSAIC_ASSIGN_OR_RETURN(Schema schema, QueriesSchema());
  Table out(schema);
  for (const qlog::QueryRecord& rec : log.Snapshot()) {
    auto append_span = [&](const std::string& span, int64_t span_id,
                           int64_t parent_id, int64_t start_us,
                           int64_t duration_us, int64_t span_cpu_us,
                           const std::string& detail) {
      return out.AppendRow(
          {Value(static_cast<int64_t>(rec.query_id)),
           Value(static_cast<int64_t>(rec.session_id)),
           Value(TraceIdHex(rec.trace_id)), Value(rec.sql),
           Value(rec.status), Value(static_cast<int64_t>(rec.cache_hit)),
           Value(static_cast<int64_t>(rec.wall_us)),
           Value(static_cast<int64_t>(rec.cpu_ns / 1000)),
           Value(static_cast<int64_t>(rec.rows_scanned)),
           Value(static_cast<int64_t>(rec.rows_produced)),
           Value(static_cast<int64_t>(rec.morsels)),
           Value(static_cast<int64_t>(rec.epoch_pins)), Value(rec.simd_isa),
           Value(span), Value(span_id), Value(parent_id), Value(start_us),
           Value(duration_us), Value(span_cpu_us), Value(detail)});
    };
    if (rec.spans.empty()) {
      // Untraced: one synthetic row carrying the statement totals.
      MOSAIC_RETURN_IF_ERROR(append_span(
          "statement", 0, 0, 0, static_cast<int64_t>(rec.wall_us),
          static_cast<int64_t>(rec.cpu_ns / 1000), ""));
      continue;
    }
    for (const qlog::RecordSpan& span : rec.spans) {
      MOSAIC_RETURN_IF_ERROR(append_span(
          span.name, static_cast<int64_t>(span.id),
          static_cast<int64_t>(span.parent),
          static_cast<int64_t>(span.start_us),
          static_cast<int64_t>(span.duration_us),
          static_cast<int64_t>(span.cpu_ns / 1000), span.note));
    }
  }
  return out;
}

[[nodiscard]] Result<Table> BuildMetricsTable() {
  Schema schema;
  MOSAIC_RETURN_IF_ERROR(schema.AddColumn({"metric", DataType::kString}));
  MOSAIC_RETURN_IF_ERROR(schema.AddColumn({"value", DataType::kDouble}));
  Table out(schema);
  auto& registry = metrics::Registry::Global();
  for (const auto& [name, value] : registry.CounterValues()) {
    MOSAIC_RETURN_IF_ERROR(
        out.AppendRow({Value(name), Value(static_cast<double>(value))}));
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    MOSAIC_RETURN_IF_ERROR(
        out.AppendRow({Value(name), Value(static_cast<double>(value))}));
  }
  for (const auto& [name, snap] : registry.HistogramSnapshots()) {
    MOSAIC_RETURN_IF_ERROR(out.AppendRow(
        {Value(name + "_count"), Value(static_cast<double>(snap.count))}));
    MOSAIC_RETURN_IF_ERROR(
        out.AppendRow({Value(name + "_mean"), Value(snap.Mean())}));
    MOSAIC_RETURN_IF_ERROR(out.AppendRow(
        {Value(name + "_p50"), Value(snap.Quantile(0.50))}));
    MOSAIC_RETURN_IF_ERROR(out.AppendRow(
        {Value(name + "_p95"), Value(snap.Quantile(0.95))}));
    MOSAIC_RETURN_IF_ERROR(out.AppendRow(
        {Value(name + "_p99"), Value(snap.Quantile(0.99))}));
  }
  return out;
}

[[nodiscard]] Result<Table> EmptySessionsTable() {
  Schema schema;
  MOSAIC_RETURN_IF_ERROR(
      schema.AddColumn({"session_id", DataType::kInt64}));
  MOSAIC_RETURN_IF_ERROR(
      schema.AddColumn({"queries_submitted", DataType::kInt64}));
  return Table(schema);
}

[[nodiscard]] Result<Table> EmptyConnectionsTable() {
  Schema schema;
  MOSAIC_RETURN_IF_ERROR(schema.AddColumn({"conn_id", DataType::kInt64}));
  MOSAIC_RETURN_IF_ERROR(
      schema.AddColumn({"session_id", DataType::kInt64}));
  MOSAIC_RETURN_IF_ERROR(schema.AddColumn({"inflight", DataType::kInt64}));
  return Table(schema);
}

[[nodiscard]] Result<Table> EmptySnapshotsTable() {
  Schema schema;
  MOSAIC_RETURN_IF_ERROR(schema.AddColumn({"file", DataType::kString}));
  MOSAIC_RETURN_IF_ERROR(
      schema.AddColumn({"next_wal_seq", DataType::kInt64}));
  MOSAIC_RETURN_IF_ERROR(schema.AddColumn({"bytes", DataType::kInt64}));
  return Table(schema);
}

}  // namespace core
}  // namespace mosaic
