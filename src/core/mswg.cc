#include "core/mswg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace mosaic {
namespace core {

[[nodiscard]] Result<std::vector<stats::Marginal>> AddSampleMarginalsForUncovered(
    const Table& sample, std::vector<stats::Marginal> marginals,
    size_t continuous_bins) {
  for (size_t c = 0; c < sample.num_columns(); ++c) {
    const std::string& name = sample.schema().column(c).name;
    bool covered = false;
    for (const auto& m : marginals) {
      for (size_t a = 0; a < m.arity(); ++a) {
        if (EqualsIgnoreCase(m.binning(a).attr(), name)) covered = true;
      }
    }
    if (!covered) {
      MOSAIC_ASSIGN_OR_RETURN(
          auto sm, stats::Marginal::FromData(sample, {name},
                                             continuous_bins));
      marginals.push_back(std::move(sm));
    }
  }
  return marginals;
}

namespace {

/// Loss terms for one marginal, precomputed at training start.
struct MarginalTerm {
  const stats::Marginal* marginal = nullptr;
  std::vector<size_t> cols;  ///< encoded columns of the subspace
  double coefficient = 1.0;  ///< k for 1-D, 1 for projected marginals
  bool needs_projection = false;
  /// Fixed Ω: row-major (num_projections x cols.size()) unit vectors.
  nn::Matrix omega;
};

/// Sorted-coupling W2² between two equal-size scalar batches;
/// accumulates d(loss)/d(x_i) into grad_x (scaled by `coef`).
double MatchedW2Squared(const std::vector<double>& xs,
                        const std::vector<double>& ys, double coef,
                        std::vector<double>* grad_x) {
  size_t n = xs.size();
  std::vector<size_t> xi(n), yi(n);
  std::iota(xi.begin(), xi.end(), size_t{0});
  std::iota(yi.begin(), yi.end(), size_t{0});
  std::sort(xi.begin(), xi.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::sort(yi.begin(), yi.end(),
            [&](size_t a, size_t b) { return ys[a] < ys[b]; });
  double loss = 0.0;
  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    double d = xs[xi[i]] - ys[yi[i]];
    loss += d * d;
    (*grad_x)[xi[i]] += coef * 2.0 * d * inv_n;
  }
  return coef * loss * inv_n;
}

}  // namespace

Result<std::unique_ptr<Mswg>> Mswg::Train(
    const Table& sample, std::vector<stats::Marginal> marginals,
    const MswgOptions& options) {
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("cannot train M-SWG on an empty sample");
  }
  if (options.batch_size < 2) {
    return Status::InvalidArgument("batch_size must be >= 2");
  }
  // §5.2: cover every attribute with at least one marginal.
  MOSAIC_ASSIGN_OR_RETURN(marginals, AddSampleMarginalsForUncovered(
                                         sample, std::move(marginals)));

  auto model = std::unique_ptr<Mswg>(new Mswg());
  model->options_ = options;
  MOSAIC_ASSIGN_OR_RETURN(
      model->encoder_,
      MixedEncoder::Fit(sample, marginals, options.categorical_encoding));
  model->marginals_ = std::move(marginals);
  const MixedEncoder& enc = model->encoder_;
  const size_t d = enc.encoded_dim();
  model->latent_dim_ = options.latent_dim == 0 ? d : options.latent_dim;

  Rng rng(options.seed);

  // ---- Build the generator network ---------------------------------------
  nn::Sequential& net = model->net_;
  size_t in_dim = model->latent_dim_;
  for (size_t layer = 0; layer < options.hidden_layers; ++layer) {
    net.Add<nn::Linear>(in_dim, options.hidden_nodes, &rng);
    if (options.batch_norm) {
      net.Add<nn::BatchNorm1d>(options.hidden_nodes);
    }
    net.Add<nn::ReLU>();
    in_dim = options.hidden_nodes;
  }
  net.Add<nn::Linear>(in_dim, d, &rng);
  if (options.softmax_categorical &&
      options.categorical_encoding == CategoricalEncoding::kOneHot) {
    for (size_t a = 0; a < enc.num_attributes(); ++a) {
      const auto& attr = enc.attribute(a);
      if (attr.categorical && attr.width > 1) {
        net.Add<nn::SoftmaxBlock>(attr.start_col, attr.width);
      }
    }
  }

  // ---- Precompute loss terms ----------------------------------------------
  std::vector<MarginalTerm> terms;
  for (const auto& m : model->marginals_) {
    MarginalTerm term;
    term.marginal = &m;
    MOSAIC_ASSIGN_OR_RETURN(term.cols, enc.MarginalColumns(m));
    term.needs_projection = term.cols.size() > 1;
    term.coefficient =
        term.needs_projection ? 1.0 : options.one_d_coefficient;
    if (term.needs_projection) {
      term.omega = nn::Matrix(options.num_projections, term.cols.size());
      for (size_t p = 0; p < options.num_projections; ++p) {
        auto dir = rng.UnitVector(term.cols.size());
        for (size_t j = 0; j < dir.size(); ++j) term.omega.at(p, j) = dir[j];
      }
    }
    terms.push_back(std::move(term));
  }

  MOSAIC_ASSIGN_OR_RETURN(nn::Matrix encoded_sample, enc.Encode(sample));

  nn::AdamOptions adam_opts;
  adam_opts.lr = options.learning_rate;
  nn::Adam adam(net.Params(), adam_opts);
  nn::PlateauScheduler scheduler(&adam, options.plateau_patience);

  const size_t B = options.batch_size;
  std::vector<double> proj_x(B), proj_t(B), grad_1d(B);

  // ---- Training loop -------------------------------------------------------
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (size_t step = 0; step < options.steps_per_epoch; ++step) {
      nn::Matrix z = nn::Matrix::Gaussian(B, model->latent_dim_, &rng);
      nn::Matrix x = net.Forward(z, /*training=*/true);
      nn::Matrix dx(B, d);
      double loss = 0.0;

      // Marginal terms of Eq. (1).
      for (const auto& term : terms) {
        MOSAIC_ASSIGN_OR_RETURN(
            nn::Matrix targets,
            enc.SampleMarginalTargets(*term.marginal, B, &rng));
        if (!term.needs_projection) {
          size_t col = term.cols[0];
          for (size_t i = 0; i < B; ++i) {
            proj_x[i] = x.at(i, col);
            proj_t[i] = targets.at(i, 0);
          }
          std::fill(grad_1d.begin(), grad_1d.end(), 0.0);
          loss += MatchedW2Squared(proj_x, proj_t, term.coefficient,
                                   &grad_1d);
          for (size_t i = 0; i < B; ++i) dx.at(i, col) += grad_1d[i];
        } else {
          size_t k = std::min(options.projections_per_step,
                              options.num_projections);
          double proj_coef = 1.0 / static_cast<double>(k);
          for (size_t pi = 0; pi < k; ++pi) {
            size_t p = rng.UniformInt(
                static_cast<uint64_t>(options.num_projections));
            // Project both batches onto ω_p.
            for (size_t i = 0; i < B; ++i) {
              double ax = 0.0, at = 0.0;
              for (size_t j = 0; j < term.cols.size(); ++j) {
                double w = term.omega.at(p, j);
                ax += x.at(i, term.cols[j]) * w;
                at += targets.at(i, j) * w;
              }
              proj_x[i] = ax;
              proj_t[i] = at;
            }
            std::fill(grad_1d.begin(), grad_1d.end(), 0.0);
            loss += MatchedW2Squared(proj_x, proj_t, proj_coef, &grad_1d);
            // Chain rule back through the projection.
            for (size_t i = 0; i < B; ++i) {
              if (grad_1d[i] == 0.0) continue;
              for (size_t j = 0; j < term.cols.size(); ++j) {
                dx.at(i, term.cols[j]) += grad_1d[i] * term.omega.at(p, j);
              }
            }
          }
        }
      }

      // Sample-coverage term: λ E[min_y ||x - y||²] over a random
      // subset of the encoded sample.
      if (options.lambda > 0.0) {
        size_t subset =
            std::min(options.coverage_subset, encoded_sample.rows());
        auto pick =
            rng.SampleWithoutReplacement(encoded_sample.rows(), subset);
        double inv_b = 1.0 / static_cast<double>(B);
        for (size_t i = 0; i < B; ++i) {
          double best = 1e300;
          size_t best_r = 0;
          for (size_t s = 0; s < subset; ++s) {
            size_t r = pick[s];
            double dist = 0.0;
            for (size_t j = 0; j < d; ++j) {
              double diff = x.at(i, j) - encoded_sample.at(r, j);
              dist += diff * diff;
              if (dist >= best) break;
            }
            if (dist < best) {
              best = dist;
              best_r = r;
            }
          }
          loss += options.lambda * best * inv_b;
          for (size_t j = 0; j < d; ++j) {
            dx.at(i, j) += options.lambda * 2.0 *
                           (x.at(i, j) - encoded_sample.at(best_r, j)) *
                           inv_b;
          }
        }
      }

      adam.ZeroGrad();
      net.Backward(dx);
      adam.Step();
      epoch_loss += loss;
    }
    epoch_loss /= static_cast<double>(options.steps_per_epoch);
    model->loss_history_.push_back(epoch_loss);
    bool reduced = scheduler.Observe(epoch_loss);
    if (options.verbose) {
      MOSAIC_LOG(Info) << "M-SWG epoch " << epoch << " loss "
                       << FormatDouble(epoch_loss, 6)
                       << (reduced ? " (lr reduced)" : "");
    }
  }
  return model;
}

Result<nn::Matrix> Mswg::GenerateEncoded(size_t n, Rng* rng) const {
  // Generate in batches so batch-norm sees eval-mode statistics and
  // memory stays bounded. Inference goes through the const Infer path
  // (no backward caches touched), so a trained model may serve
  // several generation threads at once, each with its own Rng.
  nn::Matrix out(n, encoder_.encoded_dim());
  size_t done = 0;
  while (done < n) {
    size_t batch = std::min(options_.batch_size, n - done);
    nn::Matrix z = nn::Matrix::Gaussian(batch, latent_dim_, rng);
    nn::Matrix x = net_.Infer(z);
    for (size_t i = 0; i < batch; ++i) {
      for (size_t j = 0; j < x.cols(); ++j) {
        out.at(done + i, j) = x.at(i, j);
      }
    }
    done += batch;
  }
  return out;
}

Result<Table> Mswg::Generate(size_t n, Rng* rng) const {
  MOSAIC_ASSIGN_OR_RETURN(nn::Matrix encoded, GenerateEncoded(n, rng));
  return encoder_.Decode(encoded);
}

}  // namespace core
}  // namespace mosaic
