// Versioned, copy-on-write sample weights.
//
// §3.2 stores per-tuple weights beside every sample, and SEMI-OPEN
// queries refit them (IPF / known-mechanism reweighting) before
// answering. Mutating the weight vector in place would force every
// refit to serialize against all readers; instead each fitted weight
// vector is published as an immutable WeightEpoch behind a
// shared_ptr. Readers pin the current epoch once at query start and
// keep using it — unperturbed — while a writer builds the next epoch
// off to the side and swaps it in with a short critical section
// (snapshot/epoch publication in the MVCC style of HyPer/Umbra-line
// engines). Epoch ids are monotonic per store, which also gives the
// query service a cheap cache-key component: a cached result tagged
// with the epoch it was computed under can never be served once the
// weights move on.
//
// An epoch optionally records *fit provenance*: which reweighting
// computation produced it (a signature over the debias path, sample
// size, metadata version and IPF options) and how well it fit. A
// SEMI-OPEN refit whose signature matches the current epoch's is a
// no-op — the weights it would compute are already published — so it
// skips both the IPF cycles and the epoch swap, and every result
// cached under this epoch stays valid.
#ifndef MOSAIC_CORE_WEIGHTS_H_
#define MOSAIC_CORE_WEIGHTS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/synchronization.h"

namespace mosaic {
namespace core {

/// One immutable generation of a sample's per-tuple weights. Never
/// modified after publication; readers hold it via shared_ptr for as
/// long as a query runs, so eviction by a newer epoch cannot free the
/// span under them.
struct WeightEpoch {
  /// Monotonically increasing per store; 0 is the initial (empty or
  /// all-ones) epoch.
  uint64_t id = 0;
  std::vector<double> weights;
  /// Non-empty when `weights` are the output of a reweighting
  /// computation (see Database fit signatures); empty for manual
  /// UPDATEs and plain unit-weight ingests.
  std::string fit_signature;
  /// Exit state of the fit that produced this epoch (max normalized
  /// L1 marginal error, the irreducible uncovered target mass, and
  /// the converged flag); meaningful only when fit_signature is
  /// non-empty. A skipped no-op refit reports these back instead of
  /// refitting.
  double fit_error = 0.0;
  double fit_uncovered = 0.0;
  bool fit_converged = false;
};

using WeightEpochPtr = std::shared_ptr<const WeightEpoch>;

/// Fit provenance attached to a publication.
struct WeightFitInfo {
  std::string signature;
  double error = 0.0;
  double uncovered = 0.0;
  bool converged = false;
};

/// The versioned weight slot of one sample. Pin() and Publish() are
/// safe to call concurrently from any number of threads; the critical
/// section is a pointer swap, never a weight-vector copy. Move
/// construction/assignment are NOT thread-safe and exist only for the
/// serialized contexts that relocate whole SampleInfo objects
/// (catalog registration, the union-scratch rebuild).
class WeightStore {
 public:
  WeightStore() : current_(std::make_shared<const WeightEpoch>()) {}

  WeightStore(WeightStore&& other) noexcept {
    MutexLock lock(other.mu_);
    current_ = std::move(other.current_);
    other.current_ = std::make_shared<const WeightEpoch>();
  }
  WeightStore& operator=(WeightStore&& other) noexcept {
    if (this != &other) {
      WeightEpochPtr taken;
      {
        MutexLock lock(other.mu_);
        taken = std::move(other.current_);
        other.current_ = std::make_shared<const WeightEpoch>();
      }
      MutexLock lock(mu_);
      current_ = std::move(taken);
    }
    return *this;
  }
  WeightStore(const WeightStore&) = delete;
  WeightStore& operator=(const WeightStore&) = delete;

  /// The current epoch. A query pins exactly one epoch and reads all
  /// weights from it, giving snapshot isolation against concurrent
  /// publications.
  WeightEpochPtr Pin() const {
    MutexLock lock(mu_);
    return current_;
  }

  /// Current epoch id without pinning.
  uint64_t epoch() const {
    MutexLock lock(mu_);
    return current_->id;
  }

  size_t size() const {
    MutexLock lock(mu_);
    return current_->weights.size();
  }

  /// Publish `weights` as the next epoch. When the values are
  /// bit-identical to the current epoch's the publication is a no-op:
  /// the existing epoch (id, provenance and all) stays current, so
  /// results cached under it remain valid. Returns the epoch that is
  /// current after the call; `published` (optional) reports whether a
  /// new epoch was actually installed.
  WeightEpochPtr Publish(std::vector<double> weights,
                         WeightFitInfo fit = WeightFitInfo(),
                         bool* published = nullptr) {
    MutexLock lock(mu_);
    if (weights == current_->weights) {
      if (published != nullptr) *published = false;
      return current_;
    }
    auto next = std::make_shared<WeightEpoch>();
    next->id = current_->id + 1;
    next->weights = std::move(weights);
    next->fit_signature = std::move(fit.signature);
    next->fit_error = fit.error;
    next->fit_uncovered = fit.uncovered;
    next->fit_converged = fit.converged;
    current_ = std::move(next);
    if (published != nullptr) *published = true;
    return current_;
  }

  /// Reinitialize to `n` unit weights (sample creation / scratch
  /// rebuild). Bumps the epoch unless already n ones.
  void Reset(size_t n) { Publish(std::vector<double>(n, 1.0)); }

  /// Install a recovered epoch verbatim — id, weights and fit
  /// provenance exactly as recorded — so replay reproduces the
  /// pre-crash store without re-running any fit. Ignores epochs older
  /// than the current one: concurrent publications may be WAL-ordered
  /// either way, and the max id always carries the final state.
  void Restore(WeightEpoch epoch) {
    MutexLock lock(mu_);
    if (epoch.id >= current_->id) {
      current_ = std::make_shared<const WeightEpoch>(std::move(epoch));
    }
  }

 private:
  mutable Mutex mu_;
  WeightEpochPtr current_ GUARDED_BY(mu_);
};

}  // namespace core
}  // namespace mosaic

#endif  // MOSAIC_CORE_WEIGHTS_H_
