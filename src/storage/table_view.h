// Zero-copy columnar views for the vectorized executor.
//
// A ColumnSpan exposes a column's raw typed storage (int64/double/bool
// arrays, or dictionary codes for strings); a TableView bundles spans
// with a schema; a SelectionVector names the rows of a view that a
// predicate kept. Together they let the execution layer filter,
// aggregate, and project population tables without materializing
// intermediate Table copies — e.g. a reweighted sample is just a view
// of the sample's columns plus an external span over its weight
// vector.
//
// Views are non-owning: the Table (and any external span) must outlive
// the view. Dictionaries are held by shared_ptr so result columns can
// share them.
#ifndef MOSAIC_STORAGE_TABLE_VIEW_H_
#define MOSAIC_STORAGE_TABLE_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace mosaic {

/// Typed, read-only view of one column's storage. Exactly one payload
/// pointer is set, matching `type` (strings expose dictionary codes —
/// predicates compare codes, never decoded strings).
struct ColumnSpan {
  DataType type = DataType::kNull;
  size_t size = 0;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const uint8_t* b8 = nullptr;
  const int32_t* codes = nullptr;
  std::shared_ptr<const Dictionary> dict;  ///< string columns only

  /// Boxed value at `row` (decodes strings). Boundary use only — the
  /// batch kernels read the typed pointers directly.
  Value GetValue(size_t row) const;

  /// Numeric view of a row; errors for string spans.
  [[nodiscard]] Result<double> GetDouble(size_t row) const;

  static ColumnSpan FromColumn(const Column& column);
  static ColumnSpan FromDoubles(const double* data, size_t n);

  /// Zero-copy sub-span over rows [begin, begin+count); `begin` past
  /// the end or a `count` overshooting it clamp to the span bounds
  /// (so an empty or tail morsel is well-formed without caller
  /// arithmetic). Slice-of-slice composes.
  ColumnSpan Slice(size_t begin, size_t count) const;
};

/// Non-owning view of a contiguous run of selected row ids — the unit
/// of work a morsel executes. Converts implicitly from a selection's
/// row vector so the batch kernels accept whole selections and morsel
/// slices through one signature. The owner must outlive the slice.
class SelectionSlice {
 public:
  SelectionSlice() = default;
  SelectionSlice(const uint32_t* data, size_t size)
      : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  // so selections and morsel slices share one kernel signature.
  SelectionSlice(const std::vector<uint32_t>& rows)
      : data_(rows.data()), size_(rows.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor): same implicit-accept
  // contract as the std::vector overload above.
  SelectionSlice(const AlignedVector<uint32_t>& rows)
      : data_(rows.data()), size_(rows.size()) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t operator[](size_t i) const { return data_[i]; }
  const uint32_t* data() const { return data_; }
  const uint32_t* begin() const { return data_; }
  const uint32_t* end() const { return data_ + size_; }

  /// Slice-of-slice with the same clamping rules as
  /// SelectionVector::Slice.
  SelectionSlice Subslice(size_t begin, size_t count) const {
    if (begin > size_) begin = size_;
    if (count > size_ - begin) count = size_ - begin;
    return SelectionSlice(data_ + begin, count);
  }

 private:
  const uint32_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Row indices into a view, ascending — the set of rows a predicate
/// kept. uint32 bounds tables at ~4B rows, which keeps selection
/// traffic half the size of size_t.
class SelectionVector {
 public:
  SelectionVector() = default;
  explicit SelectionVector(AlignedVector<uint32_t> rows)
      : rows_(std::move(rows)) {}
  /// Convenience (copies into aligned storage) — test/boundary use;
  /// hot paths build AlignedVector row lists directly.
  explicit SelectionVector(const std::vector<uint32_t>& rows)
      : rows_(rows.begin(), rows.end()) {}

  /// Dense selection 0..n-1.
  static SelectionVector All(size_t n);

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  uint32_t operator[](size_t i) const { return rows_[i]; }

  const AlignedVector<uint32_t>& rows() const { return rows_; }
  AlignedVector<uint32_t>* mutable_rows() { return &rows_; }

  /// Zero-copy view of positions [begin, begin+count) — the morsel
  /// executors slice the selection this way instead of copying row
  /// ids. Out-of-range begin/count clamp (empty and tail morsels).
  /// The SelectionVector must outlive the slice and not be resized
  /// while slices are live.
  SelectionSlice Slice(size_t begin, size_t count) const {
    if (begin > rows_.size()) begin = rows_.size();
    if (count > rows_.size() - begin) count = rows_.size() - begin;
    return SelectionSlice(rows_.data() + begin, count);
  }

 private:
  AlignedVector<uint32_t> rows_;
};

/// Schema + one span per column. Constructed over a Table, optionally
/// extended with external spans (the engine-managed weight column is
/// attached this way, without copying the sample).
class TableView {
 public:
  TableView() = default;
  explicit TableView(const Table& table);

  /// Assemble a view from pre-built spans (the mmap'd-snapshot path:
  /// spans point into a durable::MappedSnapshot instead of a Table).
  /// Span count must match the schema; the span storage must outlive
  /// the view.
  static TableView FromSpans(Schema schema, std::vector<ColumnSpan> spans,
                             size_t num_rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return spans_.size(); }
  const ColumnSpan& column(size_t i) const { return spans_[i]; }

  /// Append an external double span as a named column (e.g. per-tuple
  /// weights living in a std::vector<double> beside the table).
  /// Errors on duplicate name or size mismatch against a non-empty
  /// view.
  [[nodiscard]] Status AddDoubleSpan(const std::string& name, const double* data,
                       size_t n);

  /// Boxed value at (row, col) — boundary/debug use.
  Value GetValue(size_t row, size_t col) const;

  /// Zero-copy view of rows [begin, begin+count): every span is
  /// sliced in place (same clamping as ColumnSpan::Slice), external
  /// spans included. Row r of the slice is row begin+r of this view.
  TableView Slice(size_t begin, size_t count) const;

  /// Materialize the selected rows into a Table (used when a consumer
  /// genuinely needs an owning Table, e.g. IPF training input).
  Table Materialize(const SelectionVector& sel) const;

 private:
  Schema schema_;
  std::vector<ColumnSpan> spans_;
  size_t num_rows_ = 0;
};

}  // namespace mosaic

#endif  // MOSAIC_STORAGE_TABLE_VIEW_H_
