#include "storage/schema.h"

#include "common/string_util.h"

namespace mosaic {

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto idx = FindColumn(name);
  if (!idx) return Status::NotFound("no column named '" + name + "'");
  return *idx;
}

Status Schema::AddColumn(ColumnDef def) {
  if (FindColumn(def.name)) {
    return Status::AlreadyExists("duplicate column '" + def.name + "'");
  }
  columns_.push_back(std::move(def));
  return Status::OK();
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<ColumnDef> defs;
  defs.reserve(indices.size());
  for (size_t i : indices) defs.push_back(columns_[i]);
  return Schema(std::move(defs));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(c.name + " " + DataTypeName(c.type));
  }
  return Join(parts, ", ");
}

}  // namespace mosaic
