#include "storage/value.h"

#include <cmath>

#include "common/string_util.h"

namespace mosaic {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kBool:
      return "BOOL";
  }
  return "?";
}

[[nodiscard]] Result<DataType> ParseDataType(const std::string& name) {
  std::string up = ToUpper(name);
  if (up == "INT" || up == "INTEGER" || up == "BIGINT" || up == "SMALLINT") {
    return DataType::kInt64;
  }
  if (up == "DOUBLE" || up == "FLOAT" || up == "REAL" || up == "DECIMAL" ||
      up == "NUMERIC") {
    return DataType::kDouble;
  }
  if (up == "VARCHAR" || up == "TEXT" || up == "STRING" || up == "CHAR") {
    return DataType::kString;
  }
  if (up == "BOOL" || up == "BOOLEAN") {
    return DataType::kBool;
  }
  return Status::TypeError("unknown type name: " + name);
}

Result<double> Value::ToDouble() const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(AsInt64());
    case DataType::kDouble:
      return AsDouble();
    case DataType::kBool:
      return AsBool() ? 1.0 : 0.0;
    default:
      return Status::TypeError("cannot convert " + ToString() + " to double");
  }
}

Result<Value> Value::CastTo(DataType target) const {
  if (type_ == target) return *this;
  if (is_null()) return Value::Null();
  switch (target) {
    case DataType::kInt64: {
      if (type_ == DataType::kDouble) {
        double d = AsDouble();
        return Value(static_cast<int64_t>(std::llround(d)));
      }
      if (type_ == DataType::kBool) return Value(int64_t{AsBool() ? 1 : 0});
      if (type_ == DataType::kString) {
        try {
          size_t pos = 0;
          int64_t v = std::stoll(AsString(), &pos);
          if (pos == AsString().size()) return Value(v);
        } catch (...) {
        }
        return Status::TypeError("cannot cast '" + AsString() + "' to INT");
      }
      break;
    }
    case DataType::kDouble: {
      if (type_ == DataType::kInt64) {
        return Value(static_cast<double>(AsInt64()));
      }
      if (type_ == DataType::kBool) return Value(AsBool() ? 1.0 : 0.0);
      if (type_ == DataType::kString) {
        try {
          size_t pos = 0;
          double v = std::stod(AsString(), &pos);
          if (pos == AsString().size()) return Value(v);
        } catch (...) {
        }
        return Status::TypeError("cannot cast '" + AsString() + "' to DOUBLE");
      }
      break;
    }
    case DataType::kString: {
      if (type_ == DataType::kInt64) {
        return Value(std::to_string(AsInt64()));
      }
      if (type_ == DataType::kDouble) return Value(FormatDouble(AsDouble()));
      if (type_ == DataType::kBool) {
        return Value(std::string(AsBool() ? "true" : "false"));
      }
      break;
    }
    case DataType::kBool: {
      if (type_ == DataType::kInt64) return Value(AsInt64() != 0);
      if (type_ == DataType::kDouble) return Value(AsDouble() != 0.0);
      break;
    }
    case DataType::kNull:
      return Value::Null();
  }
  return Status::TypeError(std::string("cannot cast ") +
                           DataTypeName(type_) + " to " +
                           DataTypeName(target));
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kDouble:
      return FormatDouble(AsDouble());
    case DataType::kString:
      return "'" + AsString() + "'";
    case DataType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
  }
  return "?";
}

namespace {
bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kBool;
}
}  // namespace

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    return *ToDouble() == *other.ToDouble();
  }
  if (type_ != other.type_) return false;
  return data_ == other.data_;
}

bool Value::operator<(const Value& other) const {
  if (is_null()) return !other.is_null();
  if (other.is_null()) return false;
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    return *ToDouble() < *other.ToDouble();
  }
  if (type_ == DataType::kString && other.type_ == DataType::kString) {
    return AsString() < other.AsString();
  }
  // Heterogeneous non-numeric comparison: order by type tag for a
  // stable total order (needed by GROUP BY key maps).
  return static_cast<int>(type_) < static_cast<int>(other.type_);
}

}  // namespace mosaic
