#include "storage/column.h"

#include <cassert>

namespace mosaic {

Column::Column(DataType type) : type_(type) {
  assert(type != DataType::kNull);
  if (type_ == DataType::kString) dict_ = std::make_shared<Dictionary>();
}

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kDouble:
      return doubles_.size();
    case DataType::kBool:
      return bools_.size();
    case DataType::kString:
      return codes_.size();
    default:
      return 0;
  }
}

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    return Status::InvalidArgument("columns are non-nullable");
  }
  MOSAIC_ASSIGN_OR_RETURN(Value cast, v.CastTo(type_));
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(cast.AsInt64());
      break;
    case DataType::kDouble:
      doubles_.push_back(cast.AsDouble());
      break;
    case DataType::kBool:
      bools_.push_back(cast.AsBool() ? 1 : 0);
      break;
    case DataType::kString:
      codes_.push_back(dict_->GetOrInsert(cast.AsString()));
      break;
    default:
      return Status::Internal("bad column type");
  }
  return Status::OK();
}

void Column::AppendInt64(int64_t v) {
  assert(type_ == DataType::kInt64);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  assert(type_ == DataType::kDouble);
  doubles_.push_back(v);
}

void Column::AppendBool(bool v) {
  assert(type_ == DataType::kBool);
  bools_.push_back(v ? 1 : 0);
}

void Column::AppendString(const std::string& s) {
  assert(type_ == DataType::kString);
  codes_.push_back(dict_->GetOrInsert(s));
}

void Column::AppendCode(int32_t code) {
  assert(type_ == DataType::kString);
  assert(code >= 0 && static_cast<size_t>(code) < dict_->size());
  codes_.push_back(code);
}

Column Column::FromInt64(AlignedVector<int64_t> values) {
  Column out(DataType::kInt64);
  out.ints_ = std::move(values);
  return out;
}

Column Column::FromDouble(AlignedVector<double> values) {
  Column out(DataType::kDouble);
  out.doubles_ = std::move(values);
  return out;
}

Column Column::FromBool(AlignedVector<uint8_t> values) {
  Column out(DataType::kBool);
  out.bools_ = std::move(values);
  return out;
}

Column Column::FromCodes(std::shared_ptr<Dictionary> dict,
                         AlignedVector<int32_t> codes) {
  Column out(DataType::kString);
  out.dict_ = std::move(dict);
  out.codes_ = std::move(codes);
  return out;
}

Value Column::GetValue(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[row]);
    case DataType::kDouble:
      return Value(doubles_[row]);
    case DataType::kBool:
      return Value(bools_[row] != 0);
    case DataType::kString:
      return Value(dict_->Decode(codes_[row]));
    default:
      return Value::Null();
  }
}

Result<double> Column::GetDouble(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kDouble:
      return doubles_[row];
    case DataType::kBool:
      return bools_[row] != 0 ? 1.0 : 0.0;
    default:
      return Status::TypeError("string column has no numeric view");
  }
}

int32_t Column::GetCode(size_t row) const {
  assert(type_ == DataType::kString);
  return codes_[row];
}

std::vector<double> Column::ToDoubleVector() const {
  std::vector<double> out;
  out.reserve(size());
  switch (type_) {
    case DataType::kInt64:
      for (int64_t v : ints_) out.push_back(static_cast<double>(v));
      break;
    case DataType::kDouble:
      out.assign(doubles_.begin(), doubles_.end());
      break;
    case DataType::kBool:
      for (uint8_t v : bools_) out.push_back(v ? 1.0 : 0.0);
      break;
    case DataType::kString:
      for (int32_t c : codes_) out.push_back(static_cast<double>(c));
      break;
    default:
      break;
  }
  return out;
}

Column Column::Gather(const std::vector<size_t>& rows) const {
  Column out(type_);
  out.Reserve(rows.size());
  switch (type_) {
    case DataType::kInt64:
      for (size_t r : rows) out.ints_.push_back(ints_[r]);
      break;
    case DataType::kDouble:
      for (size_t r : rows) out.doubles_.push_back(doubles_[r]);
      break;
    case DataType::kBool:
      for (size_t r : rows) out.bools_.push_back(bools_[r]);
      break;
    case DataType::kString:
      out.dict_ = dict_;  // share the dictionary; codes stay valid
      for (size_t r : rows) out.codes_.push_back(codes_[r]);
      break;
    default:
      break;
  }
  return out;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kBool:
      bools_.reserve(n);
      break;
    case DataType::kString:
      codes_.reserve(n);
      break;
    default:
      break;
  }
}

}  // namespace mosaic
