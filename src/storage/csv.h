// CSV import/export. Used to ingest auxiliary data (the paper's
// "Ingest Eurostat reports" step) and to emit the point clouds that
// back Figure 5.
#ifndef MOSAIC_STORAGE_CSV_H_
#define MOSAIC_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace mosaic {

/// Parse CSV text into a table with the given schema. The first line
/// must be a header whose names match the schema (case-insensitive,
/// any order). Values are coerced to the column types.
[[nodiscard]] Result<Table> ReadCsv(const std::string& text, const Schema& schema);

/// Parse CSV text inferring the schema: a column is INT if every value
/// parses as an integer, else DOUBLE if every value parses as a
/// number, else VARCHAR.
[[nodiscard]] Result<Table> ReadCsvInferSchema(const std::string& text);

/// Load a CSV file from disk with schema inference.
[[nodiscard]] Result<Table> ReadCsvFile(const std::string& path);

/// Serialize a table to CSV (header + rows). Strings are quoted only
/// when they contain separators/quotes.
std::string WriteCsv(const Table& table);

/// Write a table to a CSV file.
[[nodiscard]] Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace mosaic

#endif  // MOSAIC_STORAGE_CSV_H_
