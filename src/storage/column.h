// Columnar storage. A Column is a typed vector; string columns are
// dictionary-encoded (int32 codes + shared Dictionary). Columns are
// non-nullable: Mosaic's sample/population relations are fully
// materialized numeric/categorical data, and rejecting NULLs at append
// time keeps the stats and NN encoders branch-free.
#ifndef MOSAIC_STORAGE_COLUMN_H_
#define MOSAIC_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/value.h"

namespace mosaic {

class Column {
 public:
  /// Empty column of the given type (kInt64, kDouble, kString, kBool).
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const;

  /// Append with coercion (int64 -> double column etc.). Errors on
  /// NULL or non-coercible values.
  [[nodiscard]] Status Append(const Value& v);

  /// Fast typed appends (require matching column type).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(const std::string& s);
  /// Append a pre-encoded dictionary code (string columns).
  void AppendCode(int32_t code);

  /// Zero-copy construction from pre-built storage (the batch
  /// executor materializes result columns this way instead of
  /// appending row by row). Takes AlignedVector so every column's
  /// allocation base is 64-byte aligned for the SIMD kernels.
  static Column FromInt64(AlignedVector<int64_t> values);
  static Column FromDouble(AlignedVector<double> values);
  static Column FromBool(AlignedVector<uint8_t> values);
  static Column FromCodes(std::shared_ptr<Dictionary> dict,
                          AlignedVector<int32_t> codes);

  /// Value at a row (decodes strings).
  Value GetValue(size_t row) const;

  /// Numeric view of a row; errors for string columns.
  [[nodiscard]] Result<double> GetDouble(size_t row) const;

  /// Dictionary code at a row (string columns only).
  int32_t GetCode(size_t row) const;

  /// Raw typed storage, valid while the column is alive and
  /// unmodified. Each is non-null only for the matching column type
  /// (string columns expose their dictionary codes). The batch
  /// executor reads these through ColumnSpan (storage/table_view.h).
  const int64_t* raw_int64() const {
    return type_ == DataType::kInt64 ? ints_.data() : nullptr;
  }
  const double* raw_double() const {
    return type_ == DataType::kDouble ? doubles_.data() : nullptr;
  }
  const uint8_t* raw_bool() const {
    return type_ == DataType::kBool ? bools_.data() : nullptr;
  }
  const int32_t* raw_codes() const {
    return type_ == DataType::kString ? codes_.data() : nullptr;
  }

  /// Dictionary (string columns only).
  const Dictionary& dictionary() const { return *dict_; }
  const std::shared_ptr<Dictionary>& shared_dictionary() const {
    return dict_;
  }

  /// Whole column as doubles; string columns yield their codes. Used
  /// by the stats and NN layers, which treat categorical codes as
  /// class indices.
  std::vector<double> ToDoubleVector() const;

  /// New column containing the given rows, in order. String columns
  /// share this column's dictionary.
  Column Gather(const std::vector<size_t>& rows) const;

  /// Reserve capacity for n rows.
  void Reserve(size_t n);

 private:
  DataType type_;
  AlignedVector<int64_t> ints_;
  AlignedVector<double> doubles_;
  AlignedVector<uint8_t> bools_;
  AlignedVector<int32_t> codes_;
  std::shared_ptr<Dictionary> dict_;
};

}  // namespace mosaic

#endif  // MOSAIC_STORAGE_COLUMN_H_
