// Append-only write-ahead log of DML.
//
// File layout: a 16-byte header (magic "MOSWAL01" + u64 sequence
// number), then a stream of records, each framed as
//
//   u32 payload_len | u32 crc32(payload) | payload
//
// where the payload is `u8 type | u64 catalog_version |
// u64 metadata_version | body`. The versions are the database's
// counters *after* the operation committed, so replay restores the
// exact stamps (the fit-signature machinery embeds metadata_version;
// exact restoration is what makes post-restart refits no-op).
//
// Torn-tail policy (ISSUE 8): a record whose frame extends past EOF,
// or whose CRC fails with nothing valid parseable after it, is a torn
// tail from a crash mid-append — recovery truncates it and continues.
// A CRC failure *followed by* a valid record is silent corruption in
// the middle of the log and recovery must fail loudly rather than
// serve a state with a hole in it.
#ifndef MOSAIC_STORAGE_DURABLE_WAL_H_
#define MOSAIC_STORAGE_DURABLE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace mosaic {
namespace durable {

enum class WalRecordType : uint8_t {
  kCreateTable = 1,
  kCreatePopulation = 2,
  kCreateSample = 3,
  kRegisterMarginal = 4,
  kDrop = 5,
  kTableAppend = 6,
  kTableReplace = 7,
  kSampleIngest = 8,
  kPublishEpoch = 9,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kCreateTable;
  uint64_t catalog_version = 0;
  uint64_t metadata_version = 0;
  std::string body;  ///< type-specific serde payload
};

/// "wal-000042.log" for seq 42 (zero-padded so lexicographic directory
/// order is numeric order).
std::string WalFileName(uint64_t seq);
/// Parse a WAL file name back to its sequence number; nullopt-style
/// NotFound for non-WAL names.
[[nodiscard]] Result<uint64_t> ParseWalFileName(const std::string& name);

/// Appender. Not thread-safe; the storage engine serializes appends
/// behind its own mutex.
class WalWriter {
 public:
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Create a fresh WAL file (fails if it exists) and make its
  /// existence durable.
  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   uint64_t seq);

  /// Reopen an existing WAL for append after recovery validated it
  /// (and truncated any torn tail).
  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path, uint64_t seq);

  /// Append one record; when `sync`, fsync before returning so the
  /// record survives a crash the moment the statement is acknowledged.
  [[nodiscard]] Status Append(const WalRecord& record, bool sync);

  [[nodiscard]] Status Sync();

  uint64_t seq() const { return seq_; }
  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  WalWriter(int fd, uint64_t seq, std::string path)
      : fd_(fd), seq_(seq), path_(std::move(path)) {}

  int fd_;
  uint64_t seq_;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

struct WalReadResult {
  uint64_t seq = 0;
  std::vector<WalRecord> records;
  /// File offset just past the last valid record — the length the
  /// file should be truncated to when `tail_truncated`.
  uint64_t valid_bytes = 0;
  bool tail_truncated = false;
};

/// Read and validate a whole WAL file. Applies the torn-tail policy
/// above; does not modify the file (the caller truncates to
/// `valid_bytes` before reopening for append).
[[nodiscard]] Result<WalReadResult> ReadWal(const std::string& path);

}  // namespace durable
}  // namespace mosaic

#endif  // MOSAIC_STORAGE_DURABLE_WAL_H_
