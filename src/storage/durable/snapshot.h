// Versioned on-disk snapshots of the full engine state.
//
// A snapshot file is one immutable image of catalog + samples +
// weight epochs, named "snapshot-<seq>.snap" where <seq> is the WAL
// sequence number that starts *after* it (recovery loads the snapshot,
// then replays WALs with seq >= that number). Layout:
//
//   header   : magic "MOSSNP01" | u32 format | u64 next_wal_seq
//              | u64 catalog_version | u64 metadata_version | u32 crc
//   section A: framed segments  u8 type | u32 len | u32 crc | payload
//              kTable      — auxiliary table, fully inline
//              kPopulation — population + marginals
//              kSample     — sample header, current WeightEpoch,
//                            dictionaries, per-column byte sizes+CRCs
//              kEnd        — terminator
//   section B: for each sample (in segment order), each column's raw
//              array (int64/double/bool data or int32 dictionary
//              codes) at the next 64-byte-aligned file offset.
//
// Section B offsets are never stored: writer and reader both walk the
// same deterministic layout. Because the offsets are 64-byte aligned
// and an mmap base is page-aligned, a mapped column array is 64-byte
// aligned in memory — exactly what the SIMD kernels require of a
// ColumnSpan — so MappedSnapshot serves zero-copy TableViews of
// samples larger than RAM.
//
// Snapshots are published atomically (write .tmp, fsync, rename,
// fsync dir). Readers treat any validation failure as a hard error:
// by the time a snapshot is loaded, the WALs predating it have been
// GC'd, so there is nothing older to fall back to and serving a
// partial state silently is the one forbidden outcome.
#ifndef MOSAIC_STORAGE_DURABLE_SNAPSHOT_H_
#define MOSAIC_STORAGE_DURABLE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/catalog.h"
#include "core/weights.h"
#include "storage/durable/io.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace mosaic {
namespace core {
class Database;
}  // namespace core

namespace durable {

std::string SnapshotFileName(uint64_t seq);
[[nodiscard]] Result<uint64_t> ParseSnapshotFileName(const std::string& name);

/// Serialize the database's entire durable state into a snapshot
/// image (the exact file bytes). Pure in-memory capture — the caller
/// holds whatever lock excludes writers, then publishes the image
/// outside the lock with AtomicWriteFile.
[[nodiscard]] Result<std::string> BuildSnapshotImage(core::Database* db,
                                       uint64_t next_wal_seq);

/// Fully decoded snapshot (owning copies of all data).
struct SnapshotState {
  uint64_t next_wal_seq = 1;
  uint64_t catalog_version = 1;
  uint64_t metadata_version = 1;
  std::vector<std::pair<std::string, Table>> tables;
  std::vector<core::PopulationInfo> populations;
  struct Sample {
    core::SampleInfo info;  ///< with data materialized
    core::WeightEpoch epoch;
  };
  std::vector<Sample> samples;
};

/// Read + validate + materialize a snapshot file into RAM.
[[nodiscard]] Result<SnapshotState> LoadSnapshot(const std::string& path);

/// Zero-copy access to a snapshot's sample columns through mmap.
/// Catalog objects (schemas, marginals, dictionaries, weight epochs)
/// are decoded into RAM; sample column arrays stay in the mapping and
/// are served as ColumnSpans. The MappedSnapshot must outlive every
/// TableView it hands out.
class MappedSnapshot {
 public:
  [[nodiscard]] static Result<std::unique_ptr<MappedSnapshot>> Open(
      const std::string& path);

  uint64_t next_wal_seq() const { return next_wal_seq_; }
  uint64_t catalog_version() const { return catalog_version_; }
  uint64_t metadata_version() const { return metadata_version_; }

  std::vector<std::string> sample_names() const;

  /// Zero-copy view of a sample's columns (no weight column attached;
  /// callers add one from epoch() via TableView::AddDoubleSpan).
  [[nodiscard]] Result<TableView> SampleView(const std::string& name) const;

  /// The sample's weight epoch as captured (decoded into RAM).
  [[nodiscard]] Result<const core::WeightEpoch*> SampleEpoch(const std::string& name) const;

 private:
  struct MappedSample {
    core::SampleInfo header;  ///< data empty; schema/mechanism/etc.
    core::WeightEpoch epoch;
    size_t num_rows = 0;
    std::vector<ColumnSpan> spans;
  };

  MappedFile file_;
  uint64_t next_wal_seq_ = 1;
  uint64_t catalog_version_ = 1;
  uint64_t metadata_version_ = 1;
  std::vector<MappedSample> samples_;
};

}  // namespace durable
}  // namespace mosaic

#endif  // MOSAIC_STORAGE_DURABLE_SNAPSHOT_H_
