// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip checksum) for the
// durable storage formats. Every length-prefixed WAL record and
// snapshot segment carries a CRC over its payload so recovery can
// tell a torn tail from silent corruption.
#ifndef MOSAIC_STORAGE_DURABLE_CRC32_H_
#define MOSAIC_STORAGE_DURABLE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace mosaic {
namespace durable {

/// CRC of `data[0..n)`. Pass a previous CRC as `seed` to checksum a
/// buffer in pieces: Crc32(b, nb, Crc32(a, na)) == Crc32(a+b).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace durable
}  // namespace mosaic

#endif  // MOSAIC_STORAGE_DURABLE_CRC32_H_
