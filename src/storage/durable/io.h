// Crash-safe POSIX file primitives shared by the WAL and snapshot
// code: EINTR-safe full reads/writes, fsync of files and directories,
// atomic publish via write-to-temp + rename, and a read-only mmap
// wrapper. Every durability guarantee the engine makes reduces to the
// discipline in this file: data is fsync'd before it is referenced,
// and files become visible only through rename(2).
#ifndef MOSAIC_STORAGE_DURABLE_IO_H_
#define MOSAIC_STORAGE_DURABLE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mosaic {
namespace durable {

/// Create `dir` (and missing parents) with 0755; OK if it exists.
[[nodiscard]] Status EnsureDir(const std::string& dir);

/// True if `path` names an existing regular file.
bool FileExists(const std::string& path);

/// Regular-file names (not paths) inside `dir`, sorted ascending.
[[nodiscard]] Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Whole file contents.
[[nodiscard]] Result<std::string> ReadFile(const std::string& path);

/// Write all of `data[0..n)` to `fd`, retrying on EINTR and partial
/// writes.
[[nodiscard]] Status WriteFull(int fd, const void* data, size_t n);

/// fsync(fd); on failure the file's durability is unknown, so the
/// caller must treat the write as failed.
[[nodiscard]] Status SyncFd(int fd);

/// fsync the directory containing `path`, making a completed rename
/// of `path` durable.
[[nodiscard]] Status SyncDirOf(const std::string& path);

/// Atomically publish `data` at `path`: write `<path>.tmp`, fsync it,
/// rename over `path`, fsync the directory. Readers never observe a
/// partial file — only the old state or the new one.
[[nodiscard]] Status AtomicWriteFile(const std::string& path, const std::string& data);

/// Truncate `path` to `size` bytes and fsync (drops a torn WAL tail).
[[nodiscard]] Status TruncateFile(const std::string& path, uint64_t size);

/// Delete a file; OK if it does not exist.
[[nodiscard]] Status RemoveFile(const std::string& path);

/// Read-only memory mapping of a whole file. Movable, not copyable;
/// unmaps on destruction. The mapping base is page-aligned, so any
/// 64-byte-aligned file offset is also 64-byte aligned in memory.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] static Result<MappedFile> Open(const std::string& path);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace durable
}  // namespace mosaic

#endif  // MOSAIC_STORAGE_DURABLE_IO_H_
