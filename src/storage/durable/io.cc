#include "storage/durable/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace mosaic {
namespace durable {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  // lint:allow errno-no-syscall: called on the failure path right
  // after the syscall; errno still holds that call's error.
  return what + " " + path + ": " + std::strerror(errno);
}

/// Parent directory of `path` ("." when it has no slash).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

[[nodiscard]] Status CloseFd(int fd, const std::string& path) {
  // close(2) can surface deferred write errors; retrying close on
  // EINTR is unsafe (the fd state is unspecified), so report and move
  // on.
  if (::close(fd) != 0 && errno != EINTR) {
    return Status::IOError(Errno("close", path));
  }
  return Status::OK();
}

}  // namespace

[[nodiscard]] Status EnsureDir(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty directory path");
  // Create parents first (mkdir -p).
  for (size_t i = 1; i < dir.size(); ++i) {
    if (dir[i] != '/') continue;
    const std::string prefix = dir.substr(0, i);
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError(Errno("mkdir", prefix));
    }
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(Errno("mkdir", dir));
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("not a directory: " + dir);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

[[nodiscard]] Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IOError(Errno("opendir", dir));
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

[[nodiscard]] Result<std::string> ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("open", path));
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    const Status st = Status::IOError(Errno("read", path));
    ::close(fd);
    return st;
  }
  MOSAIC_RETURN_IF_ERROR(CloseFd(fd, path));
  return out;
}

[[nodiscard]] Status WriteFull(int fd, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, p + off, n - off);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("write: ") + std::strerror(errno));
  }
  return Status::OK();
}

[[nodiscard]] Status SyncFd(int fd) {
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    return Status::IOError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

[[nodiscard]] Status SyncDirOf(const std::string& path) {
  const std::string dir = DirName(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("open dir", dir));
  const Status sync = SyncFd(fd);
  const Status close = CloseFd(fd, dir);
  MOSAIC_RETURN_IF_ERROR(sync);
  return close;
}

[[nodiscard]] Status AtomicWriteFile(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError(Errno("open", tmp));
  Status st = WriteFull(fd, data.data(), data.size());
  if (st.ok()) st = SyncFd(fd);
  const Status close = CloseFd(fd, tmp);
  if (st.ok()) st = close;
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rn = Status::IOError(Errno("rename", tmp));
    ::unlink(tmp.c_str());
    return rn;
  }
  return SyncDirOf(path);
}

[[nodiscard]] Status TruncateFile(const std::string& path, uint64_t size) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("open", path));
  Status st = Status::OK();
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    st = Status::IOError(Errno("ftruncate", path));
  }
  if (st.ok()) st = SyncFd(fd);
  const Status close = CloseFd(fd, path);
  MOSAIC_RETURN_IF_ERROR(st);
  return close;
}

[[nodiscard]] Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(Errno("unlink", path));
  }
  return Status::OK();
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status err = Status::IOError(Errno("fstat", path));
    ::close(fd);
    return err;
  }
  MappedFile mapped;
  mapped.size_ = static_cast<size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* base = ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      const Status err = Status::IOError(Errno("mmap", path));
      ::close(fd);
      return err;
    }
    mapped.data_ = static_cast<const uint8_t*>(base);
  }
  ::close(fd);  // the mapping keeps the file alive
  return mapped;
}

}  // namespace durable
}  // namespace mosaic
