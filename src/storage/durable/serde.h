// Binary serialization of the engine's state objects for the WAL and
// snapshot formats. Little-endian fixed-width integers, IEEE-754
// doubles, u32-length-prefixed strings. Encoders append to a
// std::string buffer (which the framing layer length-prefixes and
// CRCs); decoders read through a bounds-checked ByteReader and fail
// with InvalidArgument on any truncation or malformed tag — they never
// read past the buffer.
#ifndef MOSAIC_STORAGE_DURABLE_SERDE_H_
#define MOSAIC_STORAGE_DURABLE_SERDE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/catalog.h"
#include "core/weights.h"
#include "sql/ast.h"
#include "stats/marginal.h"
#include "storage/table.h"

namespace mosaic {
namespace durable {

// --- primitive encoders (append to *out) ---

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutF64(std::string* out, double v);
void PutString(std::string* out, const std::string& s);
void PutBytes(std::string* out, const void* data, size_t n);

/// Bounds-checked sequential reader over a byte buffer.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  /// Pointer to the current position (for zero-copy reads); advances
  /// by `n`. Errors if fewer than `n` bytes remain.
  [[nodiscard]] Result<const uint8_t*> Raw(size_t n);

  [[nodiscard]] Result<uint8_t> U8();
  [[nodiscard]] Result<uint32_t> U32();
  [[nodiscard]] Result<uint64_t> U64();
  [[nodiscard]] Result<int64_t> I64();
  [[nodiscard]] Result<double> F64();
  [[nodiscard]] Result<std::string> String();

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// --- state-object serde ---

void EncodeValue(std::string* out, const Value& v);
[[nodiscard]] Result<Value> DecodeValue(ByteReader* in);

void EncodeSchema(std::string* out, const Schema& s);
[[nodiscard]] Result<Schema> DecodeSchema(ByteReader* in);

void EncodeTable(std::string* out, const Table& t);
[[nodiscard]] Result<Table> DecodeTable(ByteReader* in);

/// `e` may be null (encoded as an absence marker).
void EncodeExpr(std::string* out, const sql::Expr* e);
/// May return a null ExprPtr.
[[nodiscard]] Result<sql::ExprPtr> DecodeExpr(ByteReader* in);

void EncodeMechanism(std::string* out, const sql::MechanismSpec& m);
[[nodiscard]] Result<sql::MechanismSpec> DecodeMechanism(ByteReader* in);

void EncodeMarginal(std::string* out, const stats::Marginal& m);
[[nodiscard]] Result<stats::Marginal> DecodeMarginal(ByteReader* in);

void EncodeWeightEpoch(std::string* out, const core::WeightEpoch& e);
[[nodiscard]] Result<core::WeightEpoch> DecodeWeightEpoch(ByteReader* in);

void EncodePopulation(std::string* out, const core::PopulationInfo& p);
[[nodiscard]] Result<core::PopulationInfo> DecodePopulation(ByteReader* in);

/// Sample header only: name, population, schema, mechanism, predicate.
/// The decoded SampleInfo has empty data and a default WeightStore.
void EncodeSampleHeader(std::string* out, const core::SampleInfo& s);
[[nodiscard]] Result<core::SampleInfo> DecodeSampleHeader(ByteReader* in);

}  // namespace durable
}  // namespace mosaic

#endif  // MOSAIC_STORAGE_DURABLE_SERDE_H_
