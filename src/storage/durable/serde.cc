#include "storage/durable/serde.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "storage/column.h"
#include "storage/dictionary.h"

namespace mosaic {
namespace durable {

namespace {

// Nested Expr decode guards against pathological depth; CRC-validated
// inputs should never hit this, so tripping it means a format bug.
constexpr int kMaxExprDepth = 256;

[[nodiscard]] Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("serde: truncated ") + what);
}

/// memcpy with the zero-length case allowed (an empty AlignedVector's
/// data() is null, which plain memcpy declares UB even for n == 0).
void CopyBytes(void* dst, const void* src, size_t n) {
  if (n != 0) std::memcpy(dst, src, n);
}

}  // namespace

// --- primitives ---

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

Result<const uint8_t*> ByteReader::Raw(size_t n) {
  if (remaining() < n) return Truncated("bytes");
  // lint:allow wire-pointer-arith: the cursor primitive itself; the
  // remaining() check above bounds every byte handed out.
  const uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

Result<uint8_t> ByteReader::U8() {
  if (remaining() < 1) return Truncated("u8");
  return data_[pos_++];
}

Result<uint32_t> ByteReader::U32() {
  if (remaining() < 4) return Truncated("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::U64() {
  if (remaining() < 8) return Truncated("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::I64() {
  MOSAIC_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::F64() {
  MOSAIC_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<std::string> ByteReader::String() {
  MOSAIC_ASSIGN_OR_RETURN(uint32_t n, U32());
  if (remaining() < n) return Truncated("string");
  // lint:allow wire-pointer-arith: cursor primitive, bounds-checked by
  // the remaining() test on the line above.
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

// --- Value ---

void EncodeValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kInt64:
      PutI64(out, v.AsInt64());
      break;
    case DataType::kDouble:
      PutF64(out, v.AsDouble());
      break;
    case DataType::kString:
      PutString(out, v.AsString());
      break;
    case DataType::kBool:
      PutU8(out, v.AsBool() ? 1 : 0);
      break;
  }
}

[[nodiscard]] Result<Value> DecodeValue(ByteReader* in) {
  MOSAIC_ASSIGN_OR_RETURN(uint8_t tag, in->U8());
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kInt64: {
      MOSAIC_ASSIGN_OR_RETURN(int64_t v, in->I64());
      return Value(v);
    }
    case DataType::kDouble: {
      MOSAIC_ASSIGN_OR_RETURN(double v, in->F64());
      return Value(v);
    }
    case DataType::kString: {
      MOSAIC_ASSIGN_OR_RETURN(std::string v, in->String());
      return Value(std::move(v));
    }
    case DataType::kBool: {
      MOSAIC_ASSIGN_OR_RETURN(uint8_t v, in->U8());
      return Value(v != 0);
    }
  }
  return Status::InvalidArgument("serde: bad value tag " +
                                 std::to_string(tag));
}

// --- Schema ---

void EncodeSchema(std::string* out, const Schema& s) {
  PutU32(out, static_cast<uint32_t>(s.num_columns()));
  for (const ColumnDef& col : s.columns()) {
    PutString(out, col.name);
    PutU8(out, static_cast<uint8_t>(col.type));
  }
}

[[nodiscard]] Result<Schema> DecodeSchema(ByteReader* in) {
  MOSAIC_ASSIGN_OR_RETURN(uint32_t n, in->U32());
  std::vector<ColumnDef> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ColumnDef def;
    MOSAIC_ASSIGN_OR_RETURN(def.name, in->String());
    MOSAIC_ASSIGN_OR_RETURN(uint8_t type, in->U8());
    if (type > static_cast<uint8_t>(DataType::kBool)) {
      return Status::InvalidArgument("serde: bad column type tag");
    }
    def.type = static_cast<DataType>(type);
    cols.push_back(std::move(def));
  }
  return Schema(std::move(cols));
}

// --- Table ---

void EncodeTable(std::string* out, const Table& t) {
  EncodeSchema(out, t.schema());
  PutU64(out, t.num_rows());
  const size_t rows = t.num_rows();
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const Column& col = t.column(c);
    switch (col.type()) {
      case DataType::kInt64:
        PutBytes(out, col.raw_int64(), rows * sizeof(int64_t));
        break;
      case DataType::kDouble:
        PutBytes(out, col.raw_double(), rows * sizeof(double));
        break;
      case DataType::kBool:
        PutBytes(out, col.raw_bool(), rows * sizeof(uint8_t));
        break;
      case DataType::kString: {
        const Dictionary& dict = col.dictionary();
        PutU32(out, static_cast<uint32_t>(dict.size()));
        for (const std::string& v : dict.values()) PutString(out, v);
        PutBytes(out, col.raw_codes(), rows * sizeof(int32_t));
        break;
      }
      case DataType::kNull:
        break;  // unreachable: columns are always concretely typed
    }
  }
}

[[nodiscard]] Result<Table> DecodeTable(ByteReader* in) {
  MOSAIC_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(in));
  MOSAIC_ASSIGN_OR_RETURN(uint64_t rows64, in->U64());
  const size_t rows = static_cast<size_t>(rows64);
  std::vector<Column> columns;
  columns.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    switch (schema.column(c).type) {
      case DataType::kInt64: {
        MOSAIC_ASSIGN_OR_RETURN(const uint8_t* raw,
                                in->Raw(rows * sizeof(int64_t)));
        AlignedVector<int64_t> values(rows);
        CopyBytes(values.data(), raw, rows * sizeof(int64_t));
        columns.push_back(Column::FromInt64(std::move(values)));
        break;
      }
      case DataType::kDouble: {
        MOSAIC_ASSIGN_OR_RETURN(const uint8_t* raw,
                                in->Raw(rows * sizeof(double)));
        AlignedVector<double> values(rows);
        CopyBytes(values.data(), raw, rows * sizeof(double));
        columns.push_back(Column::FromDouble(std::move(values)));
        break;
      }
      case DataType::kBool: {
        MOSAIC_ASSIGN_OR_RETURN(const uint8_t* raw,
                                in->Raw(rows * sizeof(uint8_t)));
        AlignedVector<uint8_t> values(rows);
        CopyBytes(values.data(), raw, rows * sizeof(uint8_t));
        columns.push_back(Column::FromBool(std::move(values)));
        break;
      }
      case DataType::kString: {
        MOSAIC_ASSIGN_OR_RETURN(uint32_t dict_size, in->U32());
        auto dict = std::make_shared<Dictionary>();
        for (uint32_t i = 0; i < dict_size; ++i) {
          MOSAIC_ASSIGN_OR_RETURN(std::string v, in->String());
          dict->GetOrInsert(v);
        }
        MOSAIC_ASSIGN_OR_RETURN(const uint8_t* raw,
                                in->Raw(rows * sizeof(int32_t)));
        AlignedVector<int32_t> codes(rows);
        CopyBytes(codes.data(), raw, rows * sizeof(int32_t));
        for (const int32_t code : codes) {
          if (code < 0 || static_cast<size_t>(code) >= dict->size()) {
            return Status::InvalidArgument(
                "serde: dictionary code out of range");
          }
        }
        columns.push_back(Column::FromCodes(std::move(dict), std::move(codes)));
        break;
      }
      case DataType::kNull:
        return Status::InvalidArgument("serde: NULL-typed column");
    }
  }
  return Table(std::move(schema), std::move(columns), rows);
}

// --- Expr ---

void EncodeExpr(std::string* out, const sql::Expr* e) {
  if (e == nullptr) {
    PutU8(out, 0);
    return;
  }
  PutU8(out, 1);
  PutU8(out, static_cast<uint8_t>(e->kind));
  EncodeValue(out, e->literal);
  PutString(out, e->column);
  PutU8(out, static_cast<uint8_t>(e->unary_op));
  PutU8(out, static_cast<uint8_t>(e->binary_op));
  EncodeExpr(out, e->child.get());
  EncodeExpr(out, e->left.get());
  EncodeExpr(out, e->right.get());
  EncodeExpr(out, e->between_lo.get());
  EncodeExpr(out, e->between_hi.get());
  PutU32(out, static_cast<uint32_t>(e->in_list.size()));
  for (const Value& v : e->in_list) EncodeValue(out, v);
  PutU8(out, static_cast<uint8_t>(e->agg_func));
  PutU8(out, e->agg_is_star ? 1 : 0);
}

namespace {

[[nodiscard]] Result<sql::ExprPtr> DecodeExprDepth(ByteReader* in, int depth) {
  if (depth > kMaxExprDepth) {
    return Status::InvalidArgument("serde: expression nesting too deep");
  }
  MOSAIC_ASSIGN_OR_RETURN(uint8_t present, in->U8());
  if (present == 0) return sql::ExprPtr();
  auto e = std::make_unique<sql::Expr>();
  MOSAIC_ASSIGN_OR_RETURN(uint8_t kind, in->U8());
  if (kind > static_cast<uint8_t>(sql::Expr::Kind::kAggregate)) {
    return Status::InvalidArgument("serde: bad expr kind");
  }
  e->kind = static_cast<sql::Expr::Kind>(kind);
  MOSAIC_ASSIGN_OR_RETURN(e->literal, DecodeValue(in));
  MOSAIC_ASSIGN_OR_RETURN(e->column, in->String());
  MOSAIC_ASSIGN_OR_RETURN(uint8_t uop, in->U8());
  e->unary_op = static_cast<sql::UnaryOp>(uop);
  MOSAIC_ASSIGN_OR_RETURN(uint8_t bop, in->U8());
  e->binary_op = static_cast<sql::BinaryOp>(bop);
  MOSAIC_ASSIGN_OR_RETURN(e->child, DecodeExprDepth(in, depth + 1));
  MOSAIC_ASSIGN_OR_RETURN(e->left, DecodeExprDepth(in, depth + 1));
  MOSAIC_ASSIGN_OR_RETURN(e->right, DecodeExprDepth(in, depth + 1));
  MOSAIC_ASSIGN_OR_RETURN(e->between_lo, DecodeExprDepth(in, depth + 1));
  MOSAIC_ASSIGN_OR_RETURN(e->between_hi, DecodeExprDepth(in, depth + 1));
  MOSAIC_ASSIGN_OR_RETURN(uint32_t n_in, in->U32());
  e->in_list.reserve(n_in);
  for (uint32_t i = 0; i < n_in; ++i) {
    MOSAIC_ASSIGN_OR_RETURN(Value v, DecodeValue(in));
    e->in_list.push_back(std::move(v));
  }
  MOSAIC_ASSIGN_OR_RETURN(uint8_t agg, in->U8());
  e->agg_func = static_cast<sql::AggFunc>(agg);
  MOSAIC_ASSIGN_OR_RETURN(uint8_t star, in->U8());
  e->agg_is_star = star != 0;
  return sql::ExprPtr(std::move(e));
}

}  // namespace

[[nodiscard]] Result<sql::ExprPtr> DecodeExpr(ByteReader* in) {
  return DecodeExprDepth(in, 0);
}

// --- MechanismSpec ---

void EncodeMechanism(std::string* out, const sql::MechanismSpec& m) {
  PutU8(out, static_cast<uint8_t>(m.type));
  PutString(out, m.stratify_attr);
  PutF64(out, m.percent);
}

[[nodiscard]] Result<sql::MechanismSpec> DecodeMechanism(ByteReader* in) {
  sql::MechanismSpec m;
  MOSAIC_ASSIGN_OR_RETURN(uint8_t type, in->U8());
  if (type > static_cast<uint8_t>(sql::MechanismSpec::Type::kStratified)) {
    return Status::InvalidArgument("serde: bad mechanism type");
  }
  m.type = static_cast<sql::MechanismSpec::Type>(type);
  MOSAIC_ASSIGN_OR_RETURN(m.stratify_attr, in->String());
  MOSAIC_ASSIGN_OR_RETURN(m.percent, in->F64());
  return m;
}

// --- Marginal ---

void EncodeMarginal(std::string* out, const stats::Marginal& m) {
  PutU32(out, static_cast<uint32_t>(m.arity()));
  for (size_t i = 0; i < m.arity(); ++i) {
    const stats::AttributeBinning& b = m.binning(i);
    PutString(out, b.attr());
    PutU8(out, b.is_categorical() ? 1 : 0);
    if (b.is_categorical()) {
      PutU32(out, static_cast<uint32_t>(b.categories().size()));
      for (const Value& v : b.categories()) EncodeValue(out, v);
    } else {
      PutF64(out, b.lo());
      PutF64(out, b.hi());
      PutU64(out, b.num_bins());
    }
  }
  PutU64(out, m.counts().size());
  for (const double c : m.counts()) PutF64(out, c);
}

[[nodiscard]] Result<stats::Marginal> DecodeMarginal(ByteReader* in) {
  MOSAIC_ASSIGN_OR_RETURN(uint32_t arity, in->U32());
  std::vector<stats::AttributeBinning> attrs;
  attrs.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    MOSAIC_ASSIGN_OR_RETURN(std::string attr, in->String());
    MOSAIC_ASSIGN_OR_RETURN(uint8_t categorical, in->U8());
    if (categorical != 0) {
      MOSAIC_ASSIGN_OR_RETURN(uint32_t n, in->U32());
      std::vector<Value> categories;
      categories.reserve(n);
      for (uint32_t k = 0; k < n; ++k) {
        MOSAIC_ASSIGN_OR_RETURN(Value v, DecodeValue(in));
        categories.push_back(std::move(v));
      }
      attrs.push_back(stats::AttributeBinning::Categorical(
          std::move(attr), std::move(categories)));
    } else {
      MOSAIC_ASSIGN_OR_RETURN(double lo, in->F64());
      MOSAIC_ASSIGN_OR_RETURN(double hi, in->F64());
      MOSAIC_ASSIGN_OR_RETURN(uint64_t bins, in->U64());
      attrs.push_back(stats::AttributeBinning::Continuous(
          std::move(attr), lo, hi, static_cast<size_t>(bins)));
    }
  }
  MOSAIC_ASSIGN_OR_RETURN(uint64_t n_counts, in->U64());
  std::vector<double> counts;
  counts.reserve(static_cast<size_t>(n_counts));
  for (uint64_t i = 0; i < n_counts; ++i) {
    MOSAIC_ASSIGN_OR_RETURN(double c, in->F64());
    counts.push_back(c);
  }
  return stats::Marginal::FromCounts(std::move(attrs), std::move(counts));
}

// --- WeightEpoch ---

void EncodeWeightEpoch(std::string* out, const core::WeightEpoch& e) {
  PutU64(out, e.id);
  PutU64(out, e.weights.size());
  PutBytes(out, e.weights.data(), e.weights.size() * sizeof(double));
  PutString(out, e.fit_signature);
  PutF64(out, e.fit_error);
  PutF64(out, e.fit_uncovered);
  PutU8(out, e.fit_converged ? 1 : 0);
}

[[nodiscard]] Result<core::WeightEpoch> DecodeWeightEpoch(ByteReader* in) {
  core::WeightEpoch e;
  MOSAIC_ASSIGN_OR_RETURN(e.id, in->U64());
  MOSAIC_ASSIGN_OR_RETURN(uint64_t n, in->U64());
  MOSAIC_ASSIGN_OR_RETURN(const uint8_t* raw,
                          in->Raw(static_cast<size_t>(n) * sizeof(double)));
  e.weights.resize(static_cast<size_t>(n));
  CopyBytes(e.weights.data(), raw, static_cast<size_t>(n) * sizeof(double));
  MOSAIC_ASSIGN_OR_RETURN(e.fit_signature, in->String());
  MOSAIC_ASSIGN_OR_RETURN(e.fit_error, in->F64());
  MOSAIC_ASSIGN_OR_RETURN(e.fit_uncovered, in->F64());
  MOSAIC_ASSIGN_OR_RETURN(uint8_t converged, in->U8());
  e.fit_converged = converged != 0;
  return e;
}

// --- PopulationInfo ---

void EncodePopulation(std::string* out, const core::PopulationInfo& p) {
  PutString(out, p.name);
  PutU8(out, p.global ? 1 : 0);
  EncodeSchema(out, p.schema);
  PutString(out, p.parent);
  EncodeExpr(out, p.predicate.get());
  PutU32(out, static_cast<uint32_t>(p.marginals.size()));
  for (size_t i = 0; i < p.marginals.size(); ++i) {
    PutString(out, p.metadata_names[i]);
    EncodeMarginal(out, p.marginals[i]);
  }
}

[[nodiscard]] Result<core::PopulationInfo> DecodePopulation(ByteReader* in) {
  core::PopulationInfo p;
  MOSAIC_ASSIGN_OR_RETURN(p.name, in->String());
  MOSAIC_ASSIGN_OR_RETURN(uint8_t global, in->U8());
  p.global = global != 0;
  MOSAIC_ASSIGN_OR_RETURN(p.schema, DecodeSchema(in));
  MOSAIC_ASSIGN_OR_RETURN(p.parent, in->String());
  MOSAIC_ASSIGN_OR_RETURN(p.predicate, DecodeExpr(in));
  MOSAIC_ASSIGN_OR_RETURN(uint32_t n_meta, in->U32());
  for (uint32_t i = 0; i < n_meta; ++i) {
    MOSAIC_ASSIGN_OR_RETURN(std::string name, in->String());
    MOSAIC_ASSIGN_OR_RETURN(stats::Marginal m, DecodeMarginal(in));
    p.metadata_names.push_back(std::move(name));
    p.marginals.push_back(std::move(m));
  }
  return p;
}

// --- SampleInfo header ---

void EncodeSampleHeader(std::string* out, const core::SampleInfo& s) {
  PutString(out, s.name);
  PutString(out, s.population);
  EncodeSchema(out, s.schema);
  EncodeMechanism(out, s.mechanism);
  EncodeExpr(out, s.predicate.get());
}

[[nodiscard]] Result<core::SampleInfo> DecodeSampleHeader(ByteReader* in) {
  core::SampleInfo s;
  MOSAIC_ASSIGN_OR_RETURN(s.name, in->String());
  MOSAIC_ASSIGN_OR_RETURN(s.population, in->String());
  MOSAIC_ASSIGN_OR_RETURN(s.schema, DecodeSchema(in));
  s.data = Table(s.schema);
  MOSAIC_ASSIGN_OR_RETURN(s.mechanism, DecodeMechanism(in));
  MOSAIC_ASSIGN_OR_RETURN(s.predicate, DecodeExpr(in));
  return s;
}

}  // namespace durable
}  // namespace mosaic
