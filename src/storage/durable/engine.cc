#include "storage/durable/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/event_log.h"
#include "core/database.h"
#include "storage/durable/serde.h"
#include "storage/durable/snapshot.h"

namespace mosaic {
namespace durable {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool IsTmpFile(const std::string& name) {
  return name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
}

}  // namespace

StorageEngine::StorageEngine(std::string data_dir,
                             StorageEngineOptions options)
    : data_dir_(std::move(data_dir)), options_(options) {
  metrics::Registry& reg = metrics::Registry::Global();
  wal_appends_total_ = reg.GetCounter("mosaic_wal_appends_total");
  wal_append_bytes_total_ = reg.GetCounter("mosaic_wal_append_bytes_total");
  wal_fsyncs_total_ = reg.GetCounter("mosaic_wal_fsyncs_total");
  snapshots_total_ = reg.GetCounter("mosaic_snapshots_total");
  snapshot_bytes_total_ = reg.GetCounter("mosaic_snapshot_bytes_total");
  recoveries_total_ = reg.GetCounter("mosaic_recoveries_total");
  recovery_wal_records_total_ =
      reg.GetCounter("mosaic_recovery_wal_records_total");
  recovery_tail_truncations_total_ =
      reg.GetCounter("mosaic_recovery_wal_tail_truncations_total");
  wal_append_us_ = reg.GetHistogram("mosaic_wal_append_us");
  snapshot_write_us_ = reg.GetHistogram("mosaic_snapshot_write_us");
  recovery_us_ = reg.GetHistogram("mosaic_recovery_us");
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& data_dir, StorageEngineOptions options) {
  MOSAIC_RETURN_IF_ERROR(EnsureDir(data_dir));
  return std::unique_ptr<StorageEngine>(
      new StorageEngine(data_dir, options));
}

Result<RecoveryInfo> StorageEngine::Recover(core::Database* db) {
  const uint64_t start_us = NowUs();
  RecoveryInfo info;
  MOSAIC_ASSIGN_OR_RETURN(std::vector<std::string> files, ListDir(data_dir_));

  // Inventory the directory. `.tmp` leftovers are crashes mid-publish
  // — never valid state, always safe to delete.
  uint64_t best_snapshot = 0;
  bool have_snapshot = false;
  std::vector<uint64_t> wal_seqs;
  for (const std::string& name : files) {
    if (IsTmpFile(name)) {
      MOSAIC_RETURN_IF_ERROR(RemoveFile(PathOf(name)));
      continue;
    }
    if (Result<uint64_t> seq = ParseSnapshotFileName(name); seq.ok()) {
      if (!have_snapshot || *seq > best_snapshot) best_snapshot = *seq;
      have_snapshot = true;
      continue;
    }
    if (Result<uint64_t> seq = ParseWalFileName(name); seq.ok()) {
      wal_seqs.push_back(*seq);
    }
  }

  // 1. Snapshot. Failure to load the newest snapshot is a hard error:
  // the WALs that predate it were GC'd at publish time, so a corrupt
  // snapshot means the state genuinely cannot be reconstructed — say
  // so instead of serving something partial.
  uint64_t replay_from = 1;
  if (have_snapshot) {
    MOSAIC_ASSIGN_OR_RETURN(
        SnapshotState state,
        LoadSnapshot(PathOf(SnapshotFileName(best_snapshot))));
    for (auto& [name, table] : state.tables) {
      MOSAIC_RETURN_IF_ERROR(
          db->catalog()->AddTable(name, std::move(table)));
      ++info.tables;
    }
    for (core::PopulationInfo& population : state.populations) {
      MOSAIC_RETURN_IF_ERROR(
          db->catalog()->AddPopulation(std::move(population)));
      ++info.populations;
    }
    for (SnapshotState::Sample& sample : state.samples) {
      const std::string name = sample.info.name;
      MOSAIC_RETURN_IF_ERROR(db->catalog()->AddSample(std::move(sample.info)));
      MOSAIC_RETURN_IF_ERROR(
          db->RestoreSampleEpoch(name, std::move(sample.epoch)));
      ++info.samples;
    }
    db->RestoreVersions(state.catalog_version, state.metadata_version);
    replay_from = state.next_wal_seq;
    info.snapshot_loaded = true;
    info.snapshot_seq = best_snapshot;
  }

  // 2./3. WAL replay, ascending, gap-free.
  std::sort(wal_seqs.begin(), wal_seqs.end());
  uint64_t next_wal_seq = replay_from;
  uint64_t last_wal_seq = 0;
  bool have_wal = false;
  for (const uint64_t seq : wal_seqs) {
    if (seq < replay_from) {
      // Obsolete generation that a crash interrupted GC of.
      MOSAIC_RETURN_IF_ERROR(RemoveFile(PathOf(WalFileName(seq))));
      continue;
    }
    if (seq != next_wal_seq) {
      return Status::IOError(
          "recovery: missing WAL " + WalFileName(next_wal_seq) + " (found " +
          WalFileName(seq) + ") — refusing to serve a state with a hole");
    }
    const std::string path = PathOf(WalFileName(seq));
    MOSAIC_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(path));
    if (wal.seq != seq) {
      return Status::IOError("recovery: " + path +
                             " header seq does not match its file name");
    }
    if (wal.tail_truncated) {
      // Only the LAST wal may legally have a torn tail (a crash
      // mid-append); a torn tail in an earlier generation means the
      // later rotation observed a log we now cannot read fully.
      if (seq != wal_seqs.back()) {
        return Status::IOError("recovery: " + path +
                               " has a torn tail but is not the last WAL");
      }
      std::fprintf(stderr,
                   "[mosaic] recovery: truncating torn WAL tail %s at byte "
                   "%llu\n",
                   path.c_str(),
                   static_cast<unsigned long long>(wal.valid_bytes));
      MOSAIC_RETURN_IF_ERROR(TruncateFile(path, wal.valid_bytes));
      info.wal_tail_truncated = true;
      recovery_tail_truncations_total_->Inc();
    }
    for (const WalRecord& record : wal.records) {
      MOSAIC_RETURN_IF_ERROR(ApplyWalRecord(db, record));
      db->RestoreVersions(record.catalog_version, record.metadata_version);
      ++info.wal_records_applied;
    }
    ++info.wal_files_replayed;
    last_wal_seq = seq;
    have_wal = true;
    ++next_wal_seq;
  }

  // 4. Reopen (or start) the live WAL and attach. Recovery is
  // single-threaded by contract, but wal_ is lock-guarded for the
  // serving phase — take the (uncontended) lock so the discipline
  // holds everywhere.
  {
    MutexLock lock(wal_mu_);
    if (have_wal) {
      MOSAIC_ASSIGN_OR_RETURN(
          wal_, WalWriter::OpenForAppend(PathOf(WalFileName(last_wal_seq)),
                                         last_wal_seq));
    } else {
      MOSAIC_ASSIGN_OR_RETURN(
          wal_, WalWriter::Create(PathOf(WalFileName(replay_from)),
                                  replay_from));
    }
  }
  db_ = db;
  db->set_durability_sink(this);

  // Final object counts (WAL replay can add or drop past the
  // snapshot's totals).
  info.tables = db->catalog()->TableNames().size();
  info.populations = db->catalog()->PopulationNames().size();
  info.samples = db->catalog()->SampleNames().size();

  info.recovery_us = NowUs() - start_us;
  recoveries_total_->Inc();
  recovery_wal_records_total_->Inc(info.wal_records_applied);
  recovery_us_->Record(info.recovery_us);
  recovery_info_ = info;
  elog::EventLog::Global().Emit(
      LogLevel::kInfo, "recovery_complete",
      {{"data_dir", data_dir_},
       {"tables", std::to_string(info.tables)},
       {"populations", std::to_string(info.populations)},
       {"samples", std::to_string(info.samples)},
       {"snapshot_loaded", info.snapshot_loaded ? "true" : "false"},
       {"wal_records_applied", std::to_string(info.wal_records_applied)},
       {"wal_tail_truncated", info.wal_tail_truncated ? "true" : "false"},
       {"recovery_us", std::to_string(info.recovery_us)}});
  return info;
}

Status StorageEngine::ApplyWalRecord(core::Database* db,
                                     const WalRecord& record) {
  ByteReader in(record.body.data(), record.body.size());
  switch (record.type) {
    case WalRecordType::kCreateTable: {
      MOSAIC_ASSIGN_OR_RETURN(std::string name, in.String());
      MOSAIC_ASSIGN_OR_RETURN(Table table, DecodeTable(&in));
      return db->catalog()->AddTable(name, std::move(table));
    }
    case WalRecordType::kCreatePopulation: {
      MOSAIC_ASSIGN_OR_RETURN(core::PopulationInfo p, DecodePopulation(&in));
      return db->catalog()->AddPopulation(std::move(p));
    }
    case WalRecordType::kCreateSample: {
      MOSAIC_ASSIGN_OR_RETURN(core::SampleInfo s, DecodeSampleHeader(&in));
      return db->catalog()->AddSample(std::move(s));
    }
    case WalRecordType::kRegisterMarginal: {
      MOSAIC_ASSIGN_OR_RETURN(std::string population, in.String());
      MOSAIC_ASSIGN_OR_RETURN(std::string metadata_name, in.String());
      MOSAIC_ASSIGN_OR_RETURN(stats::Marginal marginal, DecodeMarginal(&in));
      return db->RegisterMarginal(population, metadata_name,
                                  std::move(marginal));
    }
    case WalRecordType::kDrop: {
      MOSAIC_ASSIGN_OR_RETURN(uint8_t target, in.U8());
      MOSAIC_ASSIGN_OR_RETURN(std::string name, in.String());
      switch (static_cast<sql::DropStmt::Target>(target)) {
        case sql::DropStmt::Target::kTable:
          return db->catalog()->DropTable(name);
        case sql::DropStmt::Target::kPopulation:
          return db->catalog()->DropPopulation(name);
        case sql::DropStmt::Target::kSample:
          return db->catalog()->DropSample(name);
        case sql::DropStmt::Target::kMetadata:
          return db->catalog()->DropMetadata(name);
      }
      return Status::InvalidArgument("wal: bad drop target");
    }
    case WalRecordType::kTableAppend: {
      MOSAIC_ASSIGN_OR_RETURN(std::string name, in.String());
      MOSAIC_ASSIGN_OR_RETURN(Table suffix, DecodeTable(&in));
      MOSAIC_ASSIGN_OR_RETURN(Table * table, db->catalog()->GetTable(name));
      return table->Concat(suffix);
    }
    case WalRecordType::kTableReplace: {
      MOSAIC_ASSIGN_OR_RETURN(std::string name, in.String());
      MOSAIC_ASSIGN_OR_RETURN(Table replacement, DecodeTable(&in));
      MOSAIC_ASSIGN_OR_RETURN(Table * table, db->catalog()->GetTable(name));
      *table = std::move(replacement);
      return Status::OK();
    }
    case WalRecordType::kSampleIngest: {
      MOSAIC_ASSIGN_OR_RETURN(std::string name, in.String());
      MOSAIC_ASSIGN_OR_RETURN(Table suffix, DecodeTable(&in));
      MOSAIC_ASSIGN_OR_RETURN(core::WeightEpoch epoch, DecodeWeightEpoch(&in));
      MOSAIC_ASSIGN_OR_RETURN(core::SampleInfo * sample,
                              db->catalog()->GetSample(name));
      MOSAIC_RETURN_IF_ERROR(sample->data.Concat(suffix));
      return db->RestoreSampleEpoch(name, std::move(epoch));
    }
    case WalRecordType::kPublishEpoch: {
      MOSAIC_ASSIGN_OR_RETURN(std::string name, in.String());
      MOSAIC_ASSIGN_OR_RETURN(core::WeightEpoch epoch, DecodeWeightEpoch(&in));
      return db->RestoreSampleEpoch(name, std::move(epoch));
    }
  }
  return Status::InvalidArgument("wal: unknown record type");
}

Status StorageEngine::AppendRecord(WalRecordType type, std::string body) {
  const uint64_t start_us = NowUs();
  WalRecord record;
  record.type = type;
  record.body = std::move(body);
  // Versions AFTER the mutation: the statement bumped them before
  // logging, and it still holds the lock that serialized the bump.
  record.catalog_version = db_->catalog_version();
  record.metadata_version = db_->metadata_version();
  {
    MutexLock lock(wal_mu_);
    if (wal_ == nullptr) {
      return Status::Internal("durable: log call before Recover");
    }
    MOSAIC_RETURN_IF_ERROR(wal_->Append(record, options_.fsync_dml));
  }
  wal_appends_total_->Inc();
  wal_append_bytes_total_->Inc(record.body.size());
  if (options_.fsync_dml) wal_fsyncs_total_->Inc();
  wal_append_us_->Record(NowUs() - start_us);
  return Status::OK();
}

Result<StorageEngine::PendingSnapshot> StorageEngine::BeginSnapshot(
    core::Database* db) {
  PendingSnapshot pending;
  {
    MutexLock lock(wal_mu_);
    if (wal_ == nullptr) {
      return Status::Internal("durable: BeginSnapshot before Recover");
    }
    // The snapshot will contain everything logged so far; the next
    // generation starts a fresh WAL. Rotate first so any mutation
    // that slips in after the capture (there can be none while the
    // caller holds its exclusive lock, but programmatic callers may
    // be laxer) lands in the WAL the snapshot points at.
    const uint64_t next_seq = wal_->seq() + 1;
    MOSAIC_RETURN_IF_ERROR(wal_->Sync());
    MOSAIC_ASSIGN_OR_RETURN(
        std::unique_ptr<WalWriter> next,
        WalWriter::Create(PathOf(WalFileName(next_seq)), next_seq));
    wal_ = std::move(next);
    pending.next_wal_seq = next_seq;
  }
  MOSAIC_ASSIGN_OR_RETURN(pending.image,
                          BuildSnapshotImage(db, pending.next_wal_seq));
  return pending;
}

Status StorageEngine::CommitSnapshot(PendingSnapshot pending) {
  const uint64_t start_us = NowUs();
  const std::string path = PathOf(SnapshotFileName(pending.next_wal_seq));
  MOSAIC_RETURN_IF_ERROR(AtomicWriteFile(path, pending.image));
  snapshots_total_->Inc();
  snapshot_bytes_total_->Inc(pending.image.size());
  snapshot_write_us_->Record(NowUs() - start_us);
  elog::EventLog::Global().Emit(
      LogLevel::kInfo, "snapshot_written",
      {{"file", SnapshotFileName(pending.next_wal_seq)},
       {"bytes", std::to_string(pending.image.size())},
       {"write_us", std::to_string(NowUs() - start_us)}});
  // Only after the new snapshot is durable do its predecessors (and
  // the WAL generations it swallowed) become garbage.
  return GarbageCollect(pending.next_wal_seq);
}

Status StorageEngine::GarbageCollect(uint64_t keep_seq) {
  MOSAIC_ASSIGN_OR_RETURN(std::vector<std::string> files, ListDir(data_dir_));
  for (const std::string& name : files) {
    if (Result<uint64_t> seq = ParseSnapshotFileName(name);
        seq.ok() && *seq < keep_seq) {
      MOSAIC_RETURN_IF_ERROR(RemoveFile(PathOf(name)));
      continue;
    }
    if (Result<uint64_t> seq = ParseWalFileName(name);
        seq.ok() && *seq < keep_seq) {
      MOSAIC_RETURN_IF_ERROR(RemoveFile(PathOf(name)));
    }
  }
  return Status::OK();
}

// --- sink methods: encode the physical payload, append, done ---

Status StorageEngine::LogCreateTable(const std::string& name,
                                     const Table& table) {
  std::string body;
  PutString(&body, name);
  EncodeTable(&body, table);
  return AppendRecord(WalRecordType::kCreateTable, std::move(body));
}

Status StorageEngine::LogCreatePopulation(
    const core::PopulationInfo& population) {
  std::string body;
  EncodePopulation(&body, population);
  return AppendRecord(WalRecordType::kCreatePopulation, std::move(body));
}

Status StorageEngine::LogCreateSample(const core::SampleInfo& sample) {
  std::string body;
  EncodeSampleHeader(&body, sample);
  return AppendRecord(WalRecordType::kCreateSample, std::move(body));
}

Status StorageEngine::LogRegisterMarginal(const std::string& population,
                                          const std::string& metadata_name,
                                          const stats::Marginal& marginal) {
  std::string body;
  PutString(&body, population);
  PutString(&body, metadata_name);
  EncodeMarginal(&body, marginal);
  return AppendRecord(WalRecordType::kRegisterMarginal, std::move(body));
}

Status StorageEngine::LogDrop(sql::DropStmt::Target target,
                              const std::string& name) {
  std::string body;
  PutU8(&body, static_cast<uint8_t>(target));
  PutString(&body, name);
  return AppendRecord(WalRecordType::kDrop, std::move(body));
}

Status StorageEngine::LogTableAppend(const std::string& name,
                                     const Table& suffix) {
  std::string body;
  PutString(&body, name);
  EncodeTable(&body, suffix);
  return AppendRecord(WalRecordType::kTableAppend, std::move(body));
}

Status StorageEngine::LogTableReplace(const std::string& name,
                                      const Table& table) {
  std::string body;
  PutString(&body, name);
  EncodeTable(&body, table);
  return AppendRecord(WalRecordType::kTableReplace, std::move(body));
}

Status StorageEngine::LogSampleIngest(const std::string& name,
                                      const Table& suffix,
                                      const core::WeightEpoch& epoch) {
  std::string body;
  PutString(&body, name);
  EncodeTable(&body, suffix);
  EncodeWeightEpoch(&body, epoch);
  return AppendRecord(WalRecordType::kSampleIngest, std::move(body));
}

Status StorageEngine::LogPublishEpoch(const std::string& name,
                                      const core::WeightEpoch& epoch) {
  std::string body;
  PutString(&body, name);
  EncodeWeightEpoch(&body, epoch);
  return AppendRecord(WalRecordType::kPublishEpoch, std::move(body));
}

}  // namespace durable
}  // namespace mosaic
