#include "storage/durable/snapshot.h"

#include <cstdio>
#include <cstring>

#include "common/aligned.h"
#include "core/database.h"
#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/durable/crc32.h"
#include "storage/durable/serde.h"

namespace mosaic {
namespace durable {

namespace {

constexpr char kSnapMagic[8] = {'M', 'O', 'S', 'S', 'N', 'P', '0', '1'};
constexpr uint32_t kFormatVersion = 1;
// magic + (u32 format + u64 seq + u64 cv + u64 mv) + u32 crc
constexpr size_t kHeaderFieldsSize = 4 + 8 + 8 + 8;
constexpr size_t kHeaderSize = 8 + kHeaderFieldsSize + 4;
constexpr size_t kSegFrameSize = 9;  // u8 type + u32 len + u32 crc

constexpr uint8_t kTableSeg = 1;
constexpr uint8_t kPopulationSeg = 2;
constexpr uint8_t kSampleSeg = 3;
constexpr uint8_t kEndSeg = 0xFF;

size_t Align64(size_t off) { return (off + 63) & ~static_cast<size_t>(63); }

/// memcpy with the zero-length case allowed (an empty AlignedVector's
/// data() is null, which plain memcpy declares UB even for n == 0).
void CopyBytes(void* dst, const void* src, size_t n) {
  if (n != 0) std::memcpy(dst, src, n);
}

size_t TypeWidth(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return sizeof(int64_t);
    case DataType::kDouble:
      return sizeof(double);
    case DataType::kBool:
      return sizeof(uint8_t);
    case DataType::kString:
      return sizeof(int32_t);  // dictionary codes
    case DataType::kNull:
      break;
  }
  return 0;
}

const uint8_t* ColumnRaw(const Column& col) {
  switch (col.type()) {
    case DataType::kInt64:
      return reinterpret_cast<const uint8_t*>(col.raw_int64());
    case DataType::kDouble:
      return reinterpret_cast<const uint8_t*>(col.raw_double());
    case DataType::kBool:
      return col.raw_bool();
    case DataType::kString:
      return reinterpret_cast<const uint8_t*>(col.raw_codes());
    case DataType::kNull:
      break;
  }
  return nullptr;
}

void AppendSegment(std::string* image, uint8_t type,
                   const std::string& payload) {
  PutU8(image, type);
  PutU32(image, static_cast<uint32_t>(payload.size()));
  PutU32(image, Crc32(payload.data(), payload.size()));
  image->append(payload);
}

/// Everything Parse() extracts without touching section B bytes; the
/// column descriptors point into the input buffer after validation.
struct ParsedSample {
  core::SampleInfo header;  ///< data empty
  core::WeightEpoch epoch;
  size_t num_rows = 0;
  struct Col {
    DataType type = DataType::kNull;
    std::shared_ptr<Dictionary> dict;
    const uint8_t* data = nullptr;
    size_t bytes = 0;
    uint32_t crc = 0;
  };
  std::vector<Col> cols;
};

struct Parsed {
  uint64_t next_wal_seq = 1;
  uint64_t catalog_version = 1;
  uint64_t metadata_version = 1;
  std::vector<std::pair<std::string, Table>> tables;
  std::vector<core::PopulationInfo> populations;
  std::vector<ParsedSample> samples;
};

[[nodiscard]] Status Corrupt(const std::string& what) {
  return Status::IOError("snapshot: " + what);
}

[[nodiscard]] Result<Parsed> Parse(const uint8_t* data, size_t size) {
  if (size < kHeaderSize) return Corrupt("file shorter than header");
  if (std::memcmp(data, kSnapMagic, sizeof(kSnapMagic)) != 0) {
    return Corrupt("bad magic");
  }
  {
    uint32_t stored = 0;
    std::memcpy(&stored, data + 8 + kHeaderFieldsSize, 4);
    if (Crc32(data + 8, kHeaderFieldsSize) != stored) {
      return Corrupt("header CRC mismatch");
    }
  }
  Parsed parsed;
  {
    ByteReader header(data + 8, kHeaderFieldsSize);
    MOSAIC_ASSIGN_OR_RETURN(uint32_t format, header.U32());
    if (format != kFormatVersion) {
      return Corrupt("unsupported format version " + std::to_string(format));
    }
    MOSAIC_ASSIGN_OR_RETURN(parsed.next_wal_seq, header.U64());
    MOSAIC_ASSIGN_OR_RETURN(parsed.catalog_version, header.U64());
    MOSAIC_ASSIGN_OR_RETURN(parsed.metadata_version, header.U64());
  }

  // Section A: framed segments until kEnd.
  size_t off = kHeaderSize;
  bool done = false;
  while (!done) {
    if (off + kSegFrameSize > size) return Corrupt("truncated segment frame");
    const uint8_t type = data[off];
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, data + off + 1, 4);
    std::memcpy(&crc, data + off + 5, 4);
    if (off + kSegFrameSize + len > size) {
      return Corrupt("segment extends past end of file");
    }
    const uint8_t* payload = data + off + kSegFrameSize;
    if (Crc32(payload, len) != crc) {
      return Corrupt("segment CRC mismatch at offset " + std::to_string(off));
    }
    ByteReader in(payload, len);
    switch (type) {
      case kEndSeg:
        done = true;
        break;
      case kTableSeg: {
        MOSAIC_ASSIGN_OR_RETURN(std::string name, in.String());
        MOSAIC_ASSIGN_OR_RETURN(Table table, DecodeTable(&in));
        parsed.tables.emplace_back(std::move(name), std::move(table));
        break;
      }
      case kPopulationSeg: {
        MOSAIC_ASSIGN_OR_RETURN(core::PopulationInfo p, DecodePopulation(&in));
        parsed.populations.push_back(std::move(p));
        break;
      }
      case kSampleSeg: {
        ParsedSample sample;
        MOSAIC_ASSIGN_OR_RETURN(sample.header, DecodeSampleHeader(&in));
        MOSAIC_ASSIGN_OR_RETURN(sample.epoch, DecodeWeightEpoch(&in));
        MOSAIC_ASSIGN_OR_RETURN(uint64_t rows, in.U64());
        sample.num_rows = static_cast<size_t>(rows);
        MOSAIC_ASSIGN_OR_RETURN(uint32_t ncols, in.U32());
        if (ncols != sample.header.schema.num_columns()) {
          return Corrupt("sample column count does not match schema");
        }
        for (uint32_t c = 0; c < ncols; ++c) {
          ParsedSample::Col col;
          MOSAIC_ASSIGN_OR_RETURN(uint8_t dtype, in.U8());
          col.type = static_cast<DataType>(dtype);
          if (col.type != sample.header.schema.column(c).type) {
            return Corrupt("sample column type does not match schema");
          }
          if (col.type == DataType::kString) {
            MOSAIC_ASSIGN_OR_RETURN(uint32_t dict_size, in.U32());
            col.dict = std::make_shared<Dictionary>();
            for (uint32_t k = 0; k < dict_size; ++k) {
              MOSAIC_ASSIGN_OR_RETURN(std::string v, in.String());
              col.dict->GetOrInsert(v);
            }
          }
          MOSAIC_ASSIGN_OR_RETURN(uint64_t bytes, in.U64());
          MOSAIC_ASSIGN_OR_RETURN(col.crc, in.U32());
          col.bytes = static_cast<size_t>(bytes);
          if (col.bytes != sample.num_rows * TypeWidth(col.type)) {
            return Corrupt("sample column byte size does not match row count");
          }
          sample.cols.push_back(std::move(col));
        }
        parsed.samples.push_back(std::move(sample));
        break;
      }
      default:
        return Corrupt("unknown segment type " + std::to_string(type));
    }
    off += kSegFrameSize + len;
  }

  // Section B: deterministic 64-byte-aligned column arrays.
  for (ParsedSample& sample : parsed.samples) {
    for (ParsedSample::Col& col : sample.cols) {
      off = Align64(off);
      if (off + col.bytes > size) return Corrupt("truncated column data");
      col.data = data + off;
      if (Crc32(col.data, col.bytes) != col.crc) {
        return Corrupt("column data CRC mismatch for sample " +
                       sample.header.name);
      }
      off += col.bytes;
    }
  }

  // Dictionary codes must land inside their dictionary before any
  // consumer decodes them.
  for (const ParsedSample& sample : parsed.samples) {
    for (const ParsedSample::Col& col : sample.cols) {
      if (col.type != DataType::kString) continue;
      const auto* codes = reinterpret_cast<const int32_t*>(col.data);
      const auto dict_size = static_cast<int32_t>(col.dict->size());
      for (size_t r = 0; r < sample.num_rows; ++r) {
        if (codes[r] < 0 || codes[r] >= dict_size) {
          return Corrupt("dictionary code out of range in sample " +
                         sample.header.name);
        }
      }
    }
  }
  return parsed;
}

Column MaterializeColumn(const ParsedSample::Col& col, size_t rows) {
  switch (col.type) {
    case DataType::kInt64: {
      AlignedVector<int64_t> values(rows);
      CopyBytes(values.data(), col.data, col.bytes);
      return Column::FromInt64(std::move(values));
    }
    case DataType::kDouble: {
      AlignedVector<double> values(rows);
      CopyBytes(values.data(), col.data, col.bytes);
      return Column::FromDouble(std::move(values));
    }
    case DataType::kBool: {
      AlignedVector<uint8_t> values(rows);
      CopyBytes(values.data(), col.data, col.bytes);
      return Column::FromBool(std::move(values));
    }
    default: {
      AlignedVector<int32_t> codes(rows);
      CopyBytes(codes.data(), col.data, col.bytes);
      return Column::FromCodes(col.dict, std::move(codes));
    }
  }
}

ColumnSpan SpanOf(const ParsedSample::Col& col, size_t rows) {
  ColumnSpan span;
  span.type = col.type;
  span.size = rows;
  switch (col.type) {
    case DataType::kInt64:
      span.i64 = reinterpret_cast<const int64_t*>(col.data);
      break;
    case DataType::kDouble:
      span.f64 = reinterpret_cast<const double*>(col.data);
      break;
    case DataType::kBool:
      span.b8 = col.data;
      break;
    case DataType::kString:
      span.codes = reinterpret_cast<const int32_t*>(col.data);
      span.dict = col.dict;
      break;
    case DataType::kNull:
      break;
  }
  return span;
}

}  // namespace

std::string SnapshotFileName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snapshot-%06llu.snap",
                static_cast<unsigned long long>(seq));
  return buf;
}

[[nodiscard]] Result<uint64_t> ParseSnapshotFileName(const std::string& name) {
  if (name.size() < 15 || name.compare(0, 9, "snapshot-") != 0 ||
      name.compare(name.size() - 5, 5, ".snap") != 0) {
    return Status::NotFound("not a snapshot file: " + name);
  }
  const std::string digits = name.substr(9, name.size() - 14);
  if (digits.empty()) {
    return Status::NotFound("not a snapshot file: " + name);
  }
  uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return Status::NotFound("not a snapshot file: " + name);
    }
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

[[nodiscard]] Result<std::string> BuildSnapshotImage(core::Database* db,
                                       uint64_t next_wal_seq) {
  core::Catalog* catalog = db->catalog();
  std::string image;
  image.append(kSnapMagic, sizeof(kSnapMagic));
  {
    std::string header;
    PutU32(&header, kFormatVersion);
    PutU64(&header, next_wal_seq);
    PutU64(&header, db->catalog_version());
    PutU64(&header, db->metadata_version());
    image.append(header);
    PutU32(&image, Crc32(header.data(), header.size()));
  }

  for (const std::string& name : catalog->TableNames()) {
    MOSAIC_ASSIGN_OR_RETURN(Table * table, catalog->GetTable(name));
    std::string payload;
    PutString(&payload, name);
    EncodeTable(&payload, *table);
    AppendSegment(&image, kTableSeg, payload);
  }
  for (const std::string& name : catalog->PopulationNames()) {
    MOSAIC_ASSIGN_OR_RETURN(core::PopulationInfo * population,
                            catalog->GetPopulation(name));
    std::string payload;
    EncodePopulation(&payload, *population);
    AppendSegment(&image, kPopulationSeg, payload);
  }

  struct PendingColumn {
    const uint8_t* data;
    size_t bytes;
  };
  std::vector<PendingColumn> section_b;
  for (const std::string& name : catalog->SampleNames()) {
    MOSAIC_ASSIGN_OR_RETURN(core::SampleInfo * sample,
                            catalog->GetSample(name));
    const core::WeightEpochPtr epoch = sample->weights.Pin();
    const size_t rows = sample->data.num_rows();
    std::string payload;
    EncodeSampleHeader(&payload, *sample);
    EncodeWeightEpoch(&payload, *epoch);
    PutU64(&payload, rows);
    PutU32(&payload, static_cast<uint32_t>(sample->data.num_columns()));
    for (size_t c = 0; c < sample->data.num_columns(); ++c) {
      const Column& col = sample->data.column(c);
      PutU8(&payload, static_cast<uint8_t>(col.type()));
      if (col.type() == DataType::kString) {
        const Dictionary& dict = col.dictionary();
        PutU32(&payload, static_cast<uint32_t>(dict.size()));
        for (const std::string& v : dict.values()) PutString(&payload, v);
      }
      const size_t bytes = rows * TypeWidth(col.type());
      const uint8_t* raw = ColumnRaw(col);
      PutU64(&payload, bytes);
      PutU32(&payload, Crc32(raw, bytes));
      section_b.push_back({raw, bytes});
    }
    AppendSegment(&image, kSampleSeg, payload);
  }
  AppendSegment(&image, kEndSeg, std::string());

  for (const PendingColumn& col : section_b) {
    image.resize(Align64(image.size()), '\0');
    image.append(reinterpret_cast<const char*>(col.data), col.bytes);
  }
  return image;
}

[[nodiscard]] Result<SnapshotState> LoadSnapshot(const std::string& path) {
  MOSAIC_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  MOSAIC_ASSIGN_OR_RETURN(
      Parsed parsed,
      Parse(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
  SnapshotState state;
  state.next_wal_seq = parsed.next_wal_seq;
  state.catalog_version = parsed.catalog_version;
  state.metadata_version = parsed.metadata_version;
  state.tables = std::move(parsed.tables);
  state.populations = std::move(parsed.populations);
  for (ParsedSample& sample : parsed.samples) {
    std::vector<Column> columns;
    columns.reserve(sample.cols.size());
    for (const ParsedSample::Col& col : sample.cols) {
      columns.push_back(MaterializeColumn(col, sample.num_rows));
    }
    SnapshotState::Sample out;
    out.info = std::move(sample.header);
    out.info.data =
        Table(out.info.schema, std::move(columns), sample.num_rows);
    out.epoch = std::move(sample.epoch);
    state.samples.push_back(std::move(out));
  }
  return state;
}

Result<std::unique_ptr<MappedSnapshot>> MappedSnapshot::Open(
    const std::string& path) {
  MOSAIC_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  MOSAIC_ASSIGN_OR_RETURN(Parsed parsed, Parse(file.data(), file.size()));
  auto snapshot = std::unique_ptr<MappedSnapshot>(new MappedSnapshot());
  snapshot->file_ = std::move(file);  // parsed pointers stay valid: the
                                      // mapping address does not move
  snapshot->next_wal_seq_ = parsed.next_wal_seq;
  snapshot->catalog_version_ = parsed.catalog_version;
  snapshot->metadata_version_ = parsed.metadata_version;
  for (ParsedSample& sample : parsed.samples) {
    MappedSample mapped;
    mapped.epoch = std::move(sample.epoch);
    mapped.num_rows = sample.num_rows;
    for (const ParsedSample::Col& col : sample.cols) {
      mapped.spans.push_back(SpanOf(col, sample.num_rows));
    }
    mapped.header = std::move(sample.header);
    snapshot->samples_.push_back(std::move(mapped));
  }
  return snapshot;
}

std::vector<std::string> MappedSnapshot::sample_names() const {
  std::vector<std::string> names;
  names.reserve(samples_.size());
  for (const MappedSample& sample : samples_) {
    names.push_back(sample.header.name);
  }
  return names;
}

Result<TableView> MappedSnapshot::SampleView(const std::string& name) const {
  for (const MappedSample& sample : samples_) {
    if (sample.header.name == name) {
      return TableView::FromSpans(sample.header.schema, sample.spans,
                                  sample.num_rows);
    }
  }
  return Status::NotFound("snapshot has no sample " + name);
}

Result<const core::WeightEpoch*> MappedSnapshot::SampleEpoch(
    const std::string& name) const {
  for (const MappedSample& sample : samples_) {
    if (sample.header.name == name) return &sample.epoch;
  }
  return Status::NotFound("snapshot has no sample " + name);
}

}  // namespace durable
}  // namespace mosaic
