// The durable storage engine: one data directory holding snapshots +
// WALs, implementing core::DurabilitySink so every committed mutation
// of a core::Database is logged before the statement is acknowledged.
//
// Data-dir layout:
//   snapshot-<seq>.snap   immutable full-state images; <seq> is the
//                         first WAL sequence number NOT contained in
//                         the snapshot
//   wal-<seq>.log         append-only DML logs, one per snapshot
//                         generation (rotated at BeginSnapshot)
//
// Recovery protocol (Recover):
//   1. Load the highest-numbered snapshot. A snapshot that fails
//      validation is a hard error — older WALs were GC'd when it was
//      published, so there is no silent fallback. `.tmp` files (a
//      crash mid-publish) are ignored and cleaned up.
//   2. Replay every WAL with seq >= the snapshot's next_wal_seq in
//      ascending order; a gap in the sequence is a hard error.
//      Records apply *physically* (appended rows, whole weight
//      epochs) — replay never re-runs IPF or model training, and a
//      replayed epoch keeps its fit provenance so the first
//      post-restart SEMI-OPEN refit is a signature-match no-op.
//   3. A torn record at the tail of the LAST WAL (a crash mid-append)
//      is truncated with a warning; corruption anywhere else fails
//      loudly.
//   4. Reopen the last WAL for append and attach to the database as
//      its durability sink.
//
// Snapshot protocol: BeginSnapshot (called with writers excluded)
// rotates the WAL and serializes the state to memory; CommitSnapshot
// (called without any lock) publishes the image atomically and GC's
// snapshots + WALs older than the new generation. A crash between the
// two leaves the previous snapshot + both WALs — fully recoverable.
#ifndef MOSAIC_STORAGE_DURABLE_ENGINE_H_
#define MOSAIC_STORAGE_DURABLE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "core/durability.h"
#include "storage/durable/wal.h"

namespace mosaic {
namespace core {
class Database;
}  // namespace core

namespace durable {

struct StorageEngineOptions {
  /// fsync the WAL on every logged mutation, so an acknowledged write
  /// survives a crash. Turning it off trades that guarantee for
  /// ingest throughput (the OS still flushes eventually; snapshots
  /// are always fsync'd).
  bool fsync_dml = true;
};

struct RecoveryInfo {
  bool snapshot_loaded = false;
  uint64_t snapshot_seq = 0;  ///< next_wal_seq of the loaded snapshot
  uint64_t wal_files_replayed = 0;
  uint64_t wal_records_applied = 0;
  bool wal_tail_truncated = false;
  uint64_t tables = 0;
  uint64_t populations = 0;
  uint64_t samples = 0;
  uint64_t recovery_us = 0;
};

class StorageEngine : public core::DurabilitySink {
 public:
  /// Open (creating if needed) a data directory. No recovery happens
  /// yet; call Recover exactly once before logging anything.
  [[nodiscard]] static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& data_dir, StorageEngineOptions options = {});

  ~StorageEngine() override = default;

  /// Rebuild `db` from the newest snapshot + WAL replay (see the
  /// protocol above), then attach this engine as the database's
  /// durability sink. `db` must be freshly constructed (empty
  /// catalog).
  [[nodiscard]] Result<RecoveryInfo> Recover(core::Database* db);

  /// Opaque product of BeginSnapshot, consumed by CommitSnapshot.
  struct PendingSnapshot {
    std::string image;
    uint64_t next_wal_seq = 0;
  };

  /// Capture a consistent snapshot image in memory and rotate the WAL
  /// to the next sequence number. The caller must exclude writers
  /// (the service holds its exclusive catalog lock); the call does no
  /// data-file I/O beyond creating the next WAL, so the lock hold is
  /// short.
  [[nodiscard]] Result<PendingSnapshot> BeginSnapshot(core::Database* db);

  /// Publish the captured image atomically, then GC snapshots and
  /// WALs made obsolete by it. Runs without any engine lock — DML
  /// continues appending to the rotated WAL meanwhile.
  [[nodiscard]] Status CommitSnapshot(PendingSnapshot pending);

  const std::string& data_dir() const { return data_dir_; }
  const RecoveryInfo& recovery_info() const { return recovery_info_; }

  // --- core::DurabilitySink ---
  [[nodiscard]] Status LogCreateTable(const std::string& name, const Table& table) override;
  [[nodiscard]] Status LogCreatePopulation(const core::PopulationInfo& population) override;
  [[nodiscard]] Status LogCreateSample(const core::SampleInfo& sample) override;
  [[nodiscard]] Status LogRegisterMarginal(const std::string& population,
                             const std::string& metadata_name,
                             const stats::Marginal& marginal) override;
  [[nodiscard]] Status LogDrop(sql::DropStmt::Target target,
                 const std::string& name) override;
  [[nodiscard]] Status LogTableAppend(const std::string& name, const Table& suffix) override;
  [[nodiscard]] Status LogTableReplace(const std::string& name, const Table& table) override;
  [[nodiscard]] Status LogSampleIngest(const std::string& name, const Table& suffix,
                         const core::WeightEpoch& epoch) override;
  [[nodiscard]] Status LogPublishEpoch(const std::string& name,
                         const core::WeightEpoch& epoch) override;

 private:
  explicit StorageEngine(std::string data_dir, StorageEngineOptions options);

  std::string PathOf(const std::string& file) const {
    return data_dir_ + "/" + file;
  }

  /// Serialize versions from the attached database and append under
  /// the WAL mutex. Every sink method funnels here.
  [[nodiscard]] Status AppendRecord(WalRecordType type, std::string body);

  [[nodiscard]] Status ApplyWalRecord(core::Database* db, const WalRecord& record);

  /// Delete snapshots and WALs with seq < `keep_seq` (post-commit GC).
  [[nodiscard]] Status GarbageCollect(uint64_t keep_seq);

  std::string data_dir_;
  StorageEngineOptions options_;
  core::Database* db_ = nullptr;  ///< set by Recover
  RecoveryInfo recovery_info_;

  /// Serializes WAL appends and rotation. SEMI-OPEN refits publish
  /// epochs under the service's SHARED lock, so concurrent log calls
  /// are real; rotation in BeginSnapshot runs under the service's
  /// exclusive lock but still takes this mutex for the programmatic
  /// (service-less) users.
  Mutex wal_mu_;
  std::unique_ptr<WalWriter> wal_ GUARDED_BY(wal_mu_);

  metrics::Counter* wal_appends_total_;
  metrics::Counter* wal_append_bytes_total_;
  metrics::Counter* wal_fsyncs_total_;
  metrics::Counter* snapshots_total_;
  metrics::Counter* snapshot_bytes_total_;
  metrics::Counter* recoveries_total_;
  metrics::Counter* recovery_wal_records_total_;
  metrics::Counter* recovery_tail_truncations_total_;
  metrics::Histogram* wal_append_us_;
  metrics::Histogram* snapshot_write_us_;
  metrics::Histogram* recovery_us_;
};

}  // namespace durable
}  // namespace mosaic

#endif  // MOSAIC_STORAGE_DURABLE_ENGINE_H_
