#include "storage/durable/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/durable/crc32.h"
#include "storage/durable/io.h"
#include "storage/durable/serde.h"

namespace mosaic {
namespace durable {

namespace {

constexpr char kWalMagic[8] = {'M', 'O', 'S', 'W', 'A', 'L', '0', '1'};
constexpr size_t kHeaderSize = 16;  // magic + u64 seq
constexpr size_t kFrameSize = 8;    // u32 len + u32 crc
// A record larger than this is treated as a corrupt length field, not
// an allocation request. Generous: a 16M-row double column is 128MB.
constexpr uint32_t kMaxRecordLen = 1u << 30;

std::string EncodePayload(const WalRecord& record) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(record.type));
  PutU64(&payload, record.catalog_version);
  PutU64(&payload, record.metadata_version);
  payload.append(record.body);
  return payload;
}

[[nodiscard]] Result<WalRecord> DecodePayload(const uint8_t* data, size_t size) {
  ByteReader in(data, size);
  WalRecord record;
  MOSAIC_ASSIGN_OR_RETURN(uint8_t type, in.U8());
  if (type < static_cast<uint8_t>(WalRecordType::kCreateTable) ||
      type > static_cast<uint8_t>(WalRecordType::kPublishEpoch)) {
    return Status::InvalidArgument("wal: unknown record type " +
                                   std::to_string(type));
  }
  record.type = static_cast<WalRecordType>(type);
  MOSAIC_ASSIGN_OR_RETURN(record.catalog_version, in.U64());
  MOSAIC_ASSIGN_OR_RETURN(record.metadata_version, in.U64());
  record.body.assign(reinterpret_cast<const char*>(data) + in.pos(),
                     size - in.pos());
  return record;
}

/// Does any complete, CRC-valid record frame parse starting at or
/// after `from`? Distinguishes a torn tail (no) from mid-log
/// corruption (yes). Scans frame-by-frame from every byte position:
/// after corruption we no longer trust frame lengths, so an honest
/// answer needs the byte-granular scan; WAL tails are small.
bool AnyValidRecordAfter(const uint8_t* data, size_t size, size_t from) {
  for (size_t off = from; off + kFrameSize <= size; ++off) {
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, data + off, 4);
    std::memcpy(&crc, data + off + 4, 4);
    if (len == 0 || len > kMaxRecordLen) continue;
    if (off + kFrameSize + len > size) continue;
    if (Crc32(data + off + kFrameSize, len) != crc) continue;
    if (DecodePayload(data + off + kFrameSize, len).ok()) return true;
  }
  return false;
}

}  // namespace

std::string WalFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

[[nodiscard]] Result<uint64_t> ParseWalFileName(const std::string& name) {
  if (name.size() < 9 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return Status::NotFound("not a wal file: " + name);
  }
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) return Status::NotFound("not a wal file: " + name);
  uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return Status::NotFound("not a wal file: " + name);
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint64_t seq) {
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Status::IOError("wal: create " + path + ": " +
                           std::strerror(errno));
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(fd, seq, path));
  std::string header(kWalMagic, sizeof(kWalMagic));
  PutU64(&header, seq);
  Status st = WriteFull(fd, header.data(), header.size());
  if (st.ok()) st = SyncFd(fd);
  if (st.ok()) st = SyncDirOf(path);  // make the new file name durable
  if (!st.ok()) return st;
  writer->bytes_written_ = header.size();
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, uint64_t seq) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("wal: open " + path + ": " + std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    const Status st =
        Status::IOError("wal: lseek " + path + ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(fd, seq, path));
  writer->bytes_written_ = static_cast<uint64_t>(size);
  return writer;
}

Status WalWriter::Append(const WalRecord& record, bool sync) {
  const std::string payload = EncodePayload(record);
  std::string frame;
  frame.reserve(kFrameSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);
  MOSAIC_RETURN_IF_ERROR(WriteFull(fd_, frame.data(), frame.size()));
  bytes_written_ += frame.size();
  if (sync) MOSAIC_RETURN_IF_ERROR(SyncFd(fd_));
  return Status::OK();
}

Status WalWriter::Sync() { return SyncFd(fd_); }

[[nodiscard]] Result<WalReadResult> ReadWal(const std::string& path) {
  MOSAIC_ASSIGN_OR_RETURN(std::string contents, ReadFile(path));
  const auto* data = reinterpret_cast<const uint8_t*>(contents.data());
  const size_t size = contents.size();

  if (size < kHeaderSize) {
    return Status::IOError("wal: " + path + ": file shorter than header");
  }
  if (std::memcmp(data, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IOError("wal: " + path + ": bad magic");
  }
  WalReadResult result;
  {
    ByteReader header(data + sizeof(kWalMagic), 8);
    MOSAIC_ASSIGN_OR_RETURN(result.seq, header.U64());
  }

  size_t off = kHeaderSize;
  while (off < size) {
    // A partial frame header at EOF is a torn append.
    if (off + kFrameSize > size) {
      result.tail_truncated = true;
      break;
    }
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, data + off, 4);
    std::memcpy(&crc, data + off + 4, 4);
    const bool length_sane = len > 0 && len <= kMaxRecordLen;
    const bool in_bounds = length_sane && off + kFrameSize + len <= size;
    bool crc_ok = false;
    if (in_bounds) {
      crc_ok = Crc32(data + off + kFrameSize, len) == crc;
    }
    if (!crc_ok) {
      // Torn tail or mid-log corruption? If anything valid parses
      // after this point the log has a hole — refuse to serve it.
      const size_t next = length_sane && in_bounds
                              ? off + kFrameSize + len
                              : off + 1;
      if (AnyValidRecordAfter(data, size, next)) {
        return Status::IOError(
            "wal: " + path + ": CRC mismatch at offset " +
            std::to_string(off) +
            " with valid records after it (mid-log corruption)");
      }
      result.tail_truncated = true;
      break;
    }
    MOSAIC_ASSIGN_OR_RETURN(WalRecord record,
                            DecodePayload(data + off + kFrameSize, len));
    result.records.push_back(std::move(record));
    off += kFrameSize + len;
  }
  // When the tail tore, `off` is the start of the torn record; when
  // the scan ran clean it equals the file size.
  result.valid_bytes = off;
  return result;
}

}  // namespace durable
}  // namespace mosaic
