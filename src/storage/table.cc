#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/string_util.h"

namespace mosaic {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (const auto& def : schema_.columns()) {
    columns_.emplace_back(def.type);
  }
}

Table::Table(Schema schema, std::vector<Column> columns, size_t num_rows)
    : schema_(std::move(schema)),
      columns_(std::move(columns)),
      num_rows_(num_rows) {
  assert(schema_.num_columns() == columns_.size());
  for (const auto& col : columns_) {
    assert(col.size() == num_rows_);
    (void)col;
  }
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  MOSAIC_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(name));
  return &columns_[idx];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table has %zu columns", row.size(),
                  columns_.size()));
  }
  // Validate all appends before mutating any column so a failed row
  // leaves the table consistent.
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      return Status::InvalidArgument("NULL not allowed in column '" +
                                     schema_.column(i).name + "'");
    }
    auto cast = row[i].CastTo(schema_.column(i).type);
    if (!cast.ok()) return cast.status();
  }
  for (size_t i = 0; i < row.size(); ++i) {
    MOSAIC_RETURN_IF_ERROR(columns_[i].Append(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Value Table::GetValue(size_t row, size_t col) const {
  return columns_[col].GetValue(row);
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.GetValue(row));
  return out;
}

Table Table::Filter(const std::vector<size_t>& rows) const {
  Table out(schema_);
  out.columns_.clear();
  for (const auto& col : columns_) out.columns_.push_back(col.Gather(rows));
  out.num_rows_ = rows.size();
  return out;
}

Table Table::Project(const std::vector<size_t>& column_indices) const {
  Table out(schema_.Project(column_indices));
  out.columns_.clear();
  for (size_t i : column_indices) out.columns_.push_back(columns_[i]);
  out.num_rows_ = num_rows_;
  return out;
}

Status Table::Concat(const Table& other) {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("Concat: schema mismatch (" +
                                   schema_.ToString() + " vs " +
                                   other.schema_.ToString() + ")");
  }
  for (size_t r = 0; r < other.num_rows_; ++r) {
    MOSAIC_RETURN_IF_ERROR(AppendRow(other.GetRow(r)));
  }
  return Status::OK();
}

Status Table::AddColumn(ColumnDef def, const std::vector<Value>& values) {
  if (num_rows_ != 0 && values.size() != num_rows_) {
    return Status::InvalidArgument(
        StrFormat("AddColumn: %zu values for %zu rows", values.size(),
                  num_rows_));
  }
  MOSAIC_RETURN_IF_ERROR(schema_.AddColumn(def));
  Column col(def.type);
  col.Reserve(values.size());
  for (const auto& v : values) {
    Status st = col.Append(v);
    if (!st.ok()) {
      // Roll back the schema change.
      std::vector<ColumnDef> defs = schema_.columns();
      defs.pop_back();
      schema_ = Schema(std::move(defs));
      return st;
    }
  }
  if (num_rows_ == 0) num_rows_ = values.size();
  columns_.push_back(std::move(col));
  return Status::OK();
}

Status Table::AddDoubleColumn(const std::string& name,
                              const std::vector<double>& values) {
  std::vector<Value> vals;
  vals.reserve(values.size());
  for (double v : values) vals.emplace_back(v);
  return AddColumn(ColumnDef{name, DataType::kDouble}, vals);
}

std::vector<size_t> Table::SortIndices(size_t col) const {
  std::vector<size_t> idx(num_rows_);
  std::iota(idx.begin(), idx.end(), size_t{0});
  const Column& c = columns_[col];
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return c.GetValue(a) < c.GetValue(b);
  });
  return idx;
}

std::string Table::ToString(size_t limit) const {
  std::vector<std::string> header;
  header.reserve(schema_.num_columns());
  for (const auto& def : schema_.columns()) header.push_back(def.name);
  std::vector<std::vector<std::string>> rows;
  size_t n = std::min(limit, num_rows_);
  for (size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    row.reserve(columns_.size());
    for (const auto& col : columns_) {
      Value v = col.GetValue(r);
      // Strip quotes for display.
      row.push_back(v.type() == DataType::kString ? v.AsString()
                                                  : v.ToString());
    }
    rows.push_back(std::move(row));
  }
  std::string out = RenderTable(header, rows);
  if (num_rows_ > limit) {
    out += StrFormat("... (%zu rows total)\n", num_rows_);
  }
  return out;
}

void Table::Reserve(size_t n) {
  for (auto& col : columns_) col.Reserve(n);
}

}  // namespace mosaic
