// Relation schemas: ordered, named, typed columns.
#ifndef MOSAIC_STORAGE_SCHEMA_H_
#define MOSAIC_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace mosaic {

/// One column declaration.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const ColumnDef& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of column definitions. Column names are matched
/// case-insensitively, as in SQL.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column with the given name (case-insensitive), or
  /// nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Index of the column; NotFound status if absent.
  [[nodiscard]] Result<size_t> ColumnIndex(const std::string& name) const;

  /// Append a column; errors on duplicate name.
  [[nodiscard]] Status AddColumn(ColumnDef def);

  /// Sub-schema with the given column indices, in order.
  Schema Project(const std::vector<size_t>& indices) const;

  /// "name TYPE, name TYPE, ..." rendering.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace mosaic

#endif  // MOSAIC_STORAGE_SCHEMA_H_
