// String dictionary for categorical columns. Categorical attributes
// (carrier, country, email provider, ...) are stored as int32 codes;
// the dictionary maps codes <-> strings. The encoder (one-hot) and the
// marginal builder read the dictionary directly, which is why
// dictionary encoding is a storage-level concern in Mosaic rather than
// a compression detail.
#ifndef MOSAIC_STORAGE_DICTIONARY_H_
#define MOSAIC_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace mosaic {

class Dictionary {
 public:
  /// Code for the string, inserting it if new. Codes are dense,
  /// starting at 0, in first-seen order.
  int32_t GetOrInsert(const std::string& s);

  /// Code for the string, or -1 if absent.
  int32_t Find(const std::string& s) const;

  /// String for a valid code.
  const std::string& Decode(int32_t code) const;

  /// Number of distinct values.
  size_t size() const { return values_.size(); }

  /// All values in code order.
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace mosaic

#endif  // MOSAIC_STORAGE_DICTIONARY_H_
