// Runtime-typed scalar values. Tables are columnar and strongly typed;
// Value is the boundary type used by the SQL layer, expression
// evaluator, and row-at-a-time APIs.
#ifndef MOSAIC_STORAGE_VALUE_H_
#define MOSAIC_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace mosaic {

/// Column data types supported by Mosaic. Strings are
/// dictionary-encoded inside columns; the paper's categorical
/// attributes (e.g. flight carriers) map to kString.
enum class DataType { kNull, kInt64, kDouble, kString, kBool };

/// Name of a DataType ("INT", "DOUBLE", "VARCHAR", "BOOL", "NULL").
const char* DataTypeName(DataType type);

/// Parse a SQL type name (INT/INTEGER/BIGINT, DOUBLE/FLOAT/REAL,
/// VARCHAR/TEXT/STRING, BOOL/BOOLEAN). Case-insensitive.
[[nodiscard]] Result<DataType> ParseDataType(const std::string& name);

/// A dynamically typed scalar. Small enough to pass by value in
/// row-oriented code paths (parser literals, query results).
class Value {
 public:
  /// NULL value.
  Value() : type_(DataType::kNull) {}
  explicit Value(int64_t v) : type_(DataType::kInt64), data_(v) {}
  explicit Value(double v) : type_(DataType::kDouble), data_(v) {}
  explicit Value(std::string v)
      : type_(DataType::kString), data_(std::move(v)) {}
  explicit Value(const char* v)
      : type_(DataType::kString), data_(std::string(v)) {}
  explicit Value(bool v) : type_(DataType::kBool), data_(v) {}

  static Value Null() { return Value(); }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  /// Typed accessors. Require the matching type.
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }

  /// Numeric view: int64/double/bool coerced to double. Errors on
  /// strings and NULL.
  [[nodiscard]] Result<double> ToDouble() const;

  /// Lossless-ish coercion to the target type (int<->double,
  /// anything->string via formatting). Errors when not representable.
  [[nodiscard]] Result<Value> CastTo(DataType target) const;

  /// SQL-ish rendering: NULL, 42, 1.5, 'abc', TRUE.
  std::string ToString() const;

  /// Total ordering within the same type; NULL sorts first; numeric
  /// types compare by value across int64/double.
  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;

 private:
  DataType type_;
  std::variant<std::monostate, int64_t, double, std::string, bool> data_;
};

}  // namespace mosaic

#endif  // MOSAIC_STORAGE_VALUE_H_
