#include "storage/table_view.h"

#include <cassert>

namespace mosaic {

Value ColumnSpan::GetValue(size_t row) const {
  switch (type) {
    case DataType::kInt64:
      return Value(i64[row]);
    case DataType::kDouble:
      return Value(f64[row]);
    case DataType::kBool:
      return Value(b8[row] != 0);
    case DataType::kString:
      return Value(dict->Decode(codes[row]));
    default:
      return Value::Null();
  }
}

Result<double> ColumnSpan::GetDouble(size_t row) const {
  switch (type) {
    case DataType::kInt64:
      return static_cast<double>(i64[row]);
    case DataType::kDouble:
      return f64[row];
    case DataType::kBool:
      return b8[row] != 0 ? 1.0 : 0.0;
    default:
      return Status::TypeError("string column has no numeric view");
  }
}

ColumnSpan ColumnSpan::FromColumn(const Column& column) {
  ColumnSpan span;
  span.type = column.type();
  span.size = column.size();
  span.i64 = column.raw_int64();
  span.f64 = column.raw_double();
  span.b8 = column.raw_bool();
  span.codes = column.raw_codes();
  if (span.type == DataType::kString) {
    span.dict = column.shared_dictionary();
  }
  return span;
}

ColumnSpan ColumnSpan::FromDoubles(const double* data, size_t n) {
  ColumnSpan span;
  span.type = DataType::kDouble;
  span.size = n;
  span.f64 = data;
  return span;
}

ColumnSpan ColumnSpan::Slice(size_t begin, size_t count) const {
  if (begin > size) begin = size;
  if (count > size - begin) count = size - begin;
  ColumnSpan span = *this;
  span.size = count;
  if (span.i64 != nullptr) span.i64 += begin;
  if (span.f64 != nullptr) span.f64 += begin;
  if (span.b8 != nullptr) span.b8 += begin;
  if (span.codes != nullptr) span.codes += begin;
  return span;
}

SelectionVector SelectionVector::All(size_t n) {
  AlignedVector<uint32_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  return SelectionVector(std::move(rows));
}

TableView::TableView(const Table& table)
    : schema_(table.schema()), num_rows_(table.num_rows()) {
  spans_.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    spans_.push_back(ColumnSpan::FromColumn(table.column(c)));
  }
}

TableView TableView::FromSpans(Schema schema, std::vector<ColumnSpan> spans,
                               size_t num_rows) {
  TableView view;
  view.schema_ = std::move(schema);
  view.spans_ = std::move(spans);
  view.num_rows_ = num_rows;
  return view;
}

Status TableView::AddDoubleSpan(const std::string& name, const double* data,
                                size_t n) {
  if (!spans_.empty() && n != num_rows_) {
    return Status::InvalidArgument("span size does not match view rows");
  }
  MOSAIC_RETURN_IF_ERROR(schema_.AddColumn(ColumnDef{name, DataType::kDouble}));
  spans_.push_back(ColumnSpan::FromDoubles(data, n));
  if (spans_.size() == 1) num_rows_ = n;
  return Status::OK();
}

Value TableView::GetValue(size_t row, size_t col) const {
  return spans_[col].GetValue(row);
}

TableView TableView::Slice(size_t begin, size_t count) const {
  if (begin > num_rows_) begin = num_rows_;
  if (count > num_rows_ - begin) count = num_rows_ - begin;
  TableView out;
  out.schema_ = schema_;
  out.num_rows_ = count;
  out.spans_.reserve(spans_.size());
  for (const ColumnSpan& span : spans_) {
    out.spans_.push_back(span.Slice(begin, count));
  }
  return out;
}

Table TableView::Materialize(const SelectionVector& sel) const {
  std::vector<Column> columns;
  columns.reserve(spans_.size());
  for (const ColumnSpan& span : spans_) {
    switch (span.type) {
      case DataType::kInt64: {
        AlignedVector<int64_t> data(sel.size());
        for (size_t i = 0; i < sel.size(); ++i) data[i] = span.i64[sel[i]];
        columns.push_back(Column::FromInt64(std::move(data)));
        break;
      }
      case DataType::kDouble: {
        AlignedVector<double> data(sel.size());
        for (size_t i = 0; i < sel.size(); ++i) data[i] = span.f64[sel[i]];
        columns.push_back(Column::FromDouble(std::move(data)));
        break;
      }
      case DataType::kBool: {
        AlignedVector<uint8_t> data(sel.size());
        for (size_t i = 0; i < sel.size(); ++i) data[i] = span.b8[sel[i]];
        columns.push_back(Column::FromBool(std::move(data)));
        break;
      }
      case DataType::kString: {
        AlignedVector<int32_t> data(sel.size());
        for (size_t i = 0; i < sel.size(); ++i) data[i] = span.codes[sel[i]];
        // Sharing a dictionary across columns is the storage layer's
        // existing contract (Column::Gather does the same); shedding
        // const here restores the owner's original mutability.
        columns.push_back(Column::FromCodes(
            std::const_pointer_cast<Dictionary>(span.dict), std::move(data)));
        break;
      }
      default:
        assert(false && "null column type in view");
        break;
    }
  }
  return Table(schema_, std::move(columns), sel.size());
}

}  // namespace mosaic
