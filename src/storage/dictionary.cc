#include "storage/dictionary.h"

#include <cassert>

namespace mosaic {

int32_t Dictionary::GetOrInsert(const std::string& s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(values_.size());
  values_.push_back(s);
  index_.emplace(s, code);
  return code;
}

int32_t Dictionary::Find(const std::string& s) const {
  auto it = index_.find(s);
  return it == index_.end() ? -1 : it->second;
}

const std::string& Dictionary::Decode(int32_t code) const {
  assert(code >= 0 && static_cast<size_t>(code) < values_.size());
  return values_[static_cast<size_t>(code)];
}

}  // namespace mosaic
