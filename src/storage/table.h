// In-memory columnar table: the storage unit behind every Mosaic
// relation kind (auxiliary tables, sample relations, materialized
// query results, generated open-world data).
#ifndef MOSAIC_STORAGE_TABLE_H_
#define MOSAIC_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace mosaic {

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  /// Assemble a table from pre-built columns (zero-copy
  /// materialization path used by the batch executor). Column types
  /// and sizes must match the schema and `num_rows`.
  Table(Schema schema, std::vector<Column> columns, size_t num_rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column* mutable_column(size_t i) { return &columns_[i]; }

  /// Column by name; NotFound if absent.
  [[nodiscard]] Result<const Column*> ColumnByName(const std::string& name) const;

  /// Append one row; values are coerced to column types.
  [[nodiscard]] Status AppendRow(const std::vector<Value>& row);

  /// Value at (row, col).
  Value GetValue(size_t row, size_t col) const;

  /// Whole row as Values.
  std::vector<Value> GetRow(size_t row) const;

  /// New table with only the given rows, in order.
  Table Filter(const std::vector<size_t>& rows) const;

  /// New table with only the given columns, in order.
  Table Project(const std::vector<size_t>& column_indices) const;

  /// Append every row of `other` (schemas must be equal).
  [[nodiscard]] Status Concat(const Table& other);

  /// Add a column filled from `values` (size must equal num_rows, or
  /// table must be empty).
  [[nodiscard]] Status AddColumn(ColumnDef def, const std::vector<Value>& values);

  /// Add a double column from raw doubles (fast path used for weights).
  [[nodiscard]] Status AddDoubleColumn(const std::string& name,
                         const std::vector<double>& values);

  /// Row indices sorted by the given column ascending (stable).
  std::vector<size_t> SortIndices(size_t col) const;

  /// Pretty-print at most `limit` rows.
  std::string ToString(size_t limit = 20) const;

  /// Reserve row capacity in every column.
  void Reserve(size_t n);

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace mosaic

#endif  // MOSAIC_STORAGE_TABLE_H_
