#include "storage/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mosaic {

namespace {

// Split one CSV line honoring double-quoted fields with "" escapes.
[[nodiscard]] Result<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote in CSV line");
  fields.push_back(std::move(cur));
  return fields;
}

bool ParsesAsInt(const std::string& s) {
  if (s.empty()) return false;
  try {
    size_t pos = 0;
    (void)std::stoll(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool ParsesAsDouble(const std::string& s) {
  if (s.empty()) return false;
  try {
    size_t pos = 0;
    (void)std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

[[nodiscard]] Result<std::vector<std::vector<std::string>>> ParseLines(
    const std::string& text) {
  std::vector<std::vector<std::string>> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    MOSAIC_ASSIGN_OR_RETURN(auto fields, SplitCsvLine(line));
    lines.push_back(std::move(fields));
  }
  if (lines.empty()) return Status::ParseError("empty CSV input");
  return lines;
}

}  // namespace

[[nodiscard]] Result<Table> ReadCsv(const std::string& text, const Schema& schema) {
  MOSAIC_ASSIGN_OR_RETURN(auto lines, ParseLines(text));
  const auto& header = lines[0];
  // Map CSV columns to schema columns.
  std::vector<int> csv_to_schema(header.size(), -1);
  std::vector<bool> seen(schema.num_columns(), false);
  for (size_t c = 0; c < header.size(); ++c) {
    auto idx = schema.FindColumn(std::string(Trim(header[c])));
    if (!idx) {
      return Status::ParseError("CSV column '" + header[c] +
                                "' not in schema");
    }
    csv_to_schema[c] = static_cast<int>(*idx);
    seen[*idx] = true;
  }
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (!seen[i]) {
      return Status::ParseError("schema column '" + schema.column(i).name +
                                "' missing from CSV header");
    }
  }
  Table table(schema);
  table.Reserve(lines.size() - 1);
  std::vector<Value> row(schema.num_columns());
  for (size_t r = 1; r < lines.size(); ++r) {
    if (lines[r].size() != header.size()) {
      return Status::ParseError(
          StrFormat("CSV row %zu has %zu fields, header has %zu", r,
                    lines[r].size(), header.size()));
    }
    for (size_t c = 0; c < lines[r].size(); ++c) {
      size_t sc = static_cast<size_t>(csv_to_schema[c]);
      DataType type = schema.column(sc).type;
      const std::string& field = lines[r][c];
      switch (type) {
        case DataType::kInt64: {
          if (!ParsesAsInt(field)) {
            return Status::ParseError("'" + field + "' is not an INT (row " +
                                      std::to_string(r) + ")");
          }
          row[sc] = Value(static_cast<int64_t>(std::stoll(field)));
          break;
        }
        case DataType::kDouble: {
          if (!ParsesAsDouble(field)) {
            return Status::ParseError("'" + field +
                                      "' is not a DOUBLE (row " +
                                      std::to_string(r) + ")");
          }
          row[sc] = Value(std::stod(field));
          break;
        }
        case DataType::kBool:
          row[sc] = Value(EqualsIgnoreCase(field, "true") || field == "1");
          break;
        default:
          row[sc] = Value(field);
          break;
      }
    }
    MOSAIC_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

[[nodiscard]] Result<Table> ReadCsvInferSchema(const std::string& text) {
  MOSAIC_ASSIGN_OR_RETURN(auto lines, ParseLines(text));
  const auto& header = lines[0];
  size_t ncols = header.size();
  std::vector<bool> all_int(ncols, true), all_double(ncols, true);
  for (size_t r = 1; r < lines.size(); ++r) {
    if (lines[r].size() != ncols) {
      return Status::ParseError(
          StrFormat("CSV row %zu has %zu fields, header has %zu", r,
                    lines[r].size(), ncols));
    }
    for (size_t c = 0; c < ncols; ++c) {
      if (all_int[c] && !ParsesAsInt(lines[r][c])) all_int[c] = false;
      if (all_double[c] && !ParsesAsDouble(lines[r][c])) {
        all_double[c] = false;
      }
    }
  }
  Schema schema;
  for (size_t c = 0; c < ncols; ++c) {
    DataType type = all_int[c]      ? DataType::kInt64
                    : all_double[c] ? DataType::kDouble
                                    : DataType::kString;
    MOSAIC_RETURN_IF_ERROR(
        schema.AddColumn(ColumnDef{std::string(Trim(header[c])), type}));
  }
  return ReadCsv(text, schema);
}

[[nodiscard]] Result<Table> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvInferSchema(buf.str());
}

namespace {
std::string EscapeCsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string WriteCsv(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    if (c > 0) out += ',';
    out += EscapeCsvField(table.schema().column(c).name);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ',';
      Value v = table.GetValue(r, c);
      out += v.type() == DataType::kString ? EscapeCsvField(v.AsString())
                                           : v.ToString();
    }
    out += '\n';
  }
  return out;
}

[[nodiscard]] Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteCsv(table);
  // A buffered write can look fine until the bytes hit the file
  // system; flush and close explicitly — the destructor would swallow
  // both failures (e.g. a full disk) and report success.
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  out.close();
  if (out.fail()) return Status::IOError("close failed: " + path);
  return Status::OK();
}

}  // namespace mosaic
