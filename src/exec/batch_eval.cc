#include "exec/batch_eval.h"

#include <cmath>
#include <numeric>

namespace mosaic {
namespace exec {

namespace {

/// Double comparison matching Value::operator< / == (numeric Values
/// always compare through their double view).
inline bool CmpD(sql::BinaryOp op, double l, double r) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return l == r;
    case sql::BinaryOp::kNe:
      return l != r;
    case sql::BinaryOp::kLt:
      return l < r;
    case sql::BinaryOp::kLe:
      return l <= r;
    case sql::BinaryOp::kGt:
      return l > r;
    case sql::BinaryOp::kGe:
      return l >= r;
    default:
      return false;
  }
}

inline bool CmpS(sql::BinaryOp op, const std::string& l,
                 const std::string& r) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return l == r;
    case sql::BinaryOp::kNe:
      return l != r;
    case sql::BinaryOp::kLt:
      return l < r;
    case sql::BinaryOp::kLe:
      return !(r < l);
    case sql::BinaryOp::kGt:
      return r < l;
    case sql::BinaryOp::kGe:
      return !(l < r);
    default:
      return false;
  }
}

/// `lit op col` rewritten as `col op' lit`.
sql::BinaryOp ReverseOp(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kLt:
      return sql::BinaryOp::kGt;
    case sql::BinaryOp::kLe:
      return sql::BinaryOp::kGe;
    case sql::BinaryOp::kGt:
      return sql::BinaryOp::kLt;
    case sql::BinaryOp::kGe:
      return sql::BinaryOp::kLe;
    default:
      return op;  // Eq / Ne are symmetric
  }
}

inline double SpanDouble(const ColumnSpan& span, uint32_t row) {
  switch (span.type) {
    case DataType::kInt64:
      return static_cast<double>(span.i64[row]);
    case DataType::kDouble:
      return span.f64[row];
    default:
      return span.b8[row] != 0 ? 1.0 : 0.0;
  }
}

bool IsNumericSpan(const ColumnSpan& span) {
  return span.type == DataType::kInt64 || span.type == DataType::kDouble ||
         span.type == DataType::kBool;
}

/// String column vs string literal: resolve the literal through the
/// dictionary once, then compare codes (Eq/Ne) or a per-code truth
/// table (ordering ops) — no per-row decoding.
std::vector<uint8_t> CodeCompareMask(const ColumnSpan& span,
                                     const std::string& literal,
                                     sql::BinaryOp op,
                                     SelectionSlice rows) {
  std::vector<uint8_t> mask(rows.size());
  if (op == sql::BinaryOp::kEq || op == sql::BinaryOp::kNe) {
    const int32_t code = span.dict->Find(literal);
    if (op == sql::BinaryOp::kEq) {
      for (size_t i = 0; i < rows.size(); ++i) {
        mask[i] = span.codes[rows[i]] == code;
      }
    } else {
      for (size_t i = 0; i < rows.size(); ++i) {
        mask[i] = span.codes[rows[i]] != code;
      }
    }
    return mask;
  }
  std::vector<uint8_t> table(span.dict->size());
  for (size_t c = 0; c < table.size(); ++c) {
    table[c] = CmpS(op, span.dict->Decode(static_cast<int32_t>(c)), literal);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    mask[i] = table[span.codes[rows[i]]];
  }
  return mask;
}

Result<std::vector<uint8_t>> CompareMask(const BoundExpr& expr,
                                         const TableView& view,
                                         SelectionSlice rows) {
  const BoundExpr& l = *expr.left;
  const BoundExpr& r = *expr.right;
  const sql::BinaryOp op = expr.binary_op;
  const size_t n = rows.size();
  std::vector<uint8_t> mask(n);

  if (l.type == DataType::kString) {
    // --- string comparisons: dictionary codes where possible -------------
    if (l.kind == BoundExpr::Kind::kColumnRef &&
        r.kind == BoundExpr::Kind::kLiteral) {
      return CodeCompareMask(view.column(l.column_index),
                             r.literal.AsString(), op, rows);
    }
    if (l.kind == BoundExpr::Kind::kLiteral &&
        r.kind == BoundExpr::Kind::kColumnRef) {
      return CodeCompareMask(view.column(r.column_index),
                             l.literal.AsString(), ReverseOp(op), rows);
    }
    if (l.kind == BoundExpr::Kind::kColumnRef &&
        r.kind == BoundExpr::Kind::kColumnRef) {
      const ColumnSpan& ls = view.column(l.column_index);
      const ColumnSpan& rs = view.column(r.column_index);
      if (ls.dict == rs.dict &&
          (op == sql::BinaryOp::kEq || op == sql::BinaryOp::kNe)) {
        const bool eq = op == sql::BinaryOp::kEq;
        for (size_t i = 0; i < n; ++i) {
          mask[i] = (ls.codes[rows[i]] == rs.codes[rows[i]]) == eq;
        }
        return mask;
      }
      for (size_t i = 0; i < n; ++i) {
        mask[i] = CmpS(op, ls.dict->Decode(ls.codes[rows[i]]),
                       rs.dict->Decode(rs.codes[rows[i]]));
      }
      return mask;
    }
    // Generic string fallback (e.g. literal vs literal).
    MOSAIC_ASSIGN_OR_RETURN(BatchVec lb, EvalBatch(l, view, rows));
    MOSAIC_ASSIGN_OR_RETURN(BatchVec rb, EvalBatch(r, view, rows));
    for (size_t i = 0; i < n; ++i) {
      mask[i] = CmpS(op, lb.StringAt(i), rb.StringAt(i));
    }
    return mask;
  }

  // --- numeric comparisons ---------------------------------------------
  if (l.kind == BoundExpr::Kind::kColumnRef &&
      r.kind == BoundExpr::Kind::kLiteral &&
      IsNumericSpan(view.column(l.column_index))) {
    const ColumnSpan& span = view.column(l.column_index);
    MOSAIC_ASSIGN_OR_RETURN(double lit, r.literal.ToDouble());
    for (size_t i = 0; i < n; ++i) {
      mask[i] = CmpD(op, SpanDouble(span, rows[i]), lit);
    }
    return mask;
  }
  if (l.kind == BoundExpr::Kind::kLiteral &&
      r.kind == BoundExpr::Kind::kColumnRef &&
      IsNumericSpan(view.column(r.column_index))) {
    const ColumnSpan& span = view.column(r.column_index);
    MOSAIC_ASSIGN_OR_RETURN(double lit, l.literal.ToDouble());
    const sql::BinaryOp rev = ReverseOp(op);
    for (size_t i = 0; i < n; ++i) {
      mask[i] = CmpD(rev, SpanDouble(span, rows[i]), lit);
    }
    return mask;
  }
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> lv,
                          EvalDoubleBatch(l, view, rows));
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> rv,
                          EvalDoubleBatch(r, view, rows));
  for (size_t i = 0; i < n; ++i) mask[i] = CmpD(op, lv[i], rv[i]);
  return mask;
}

Result<std::vector<uint8_t>> InMask(const BoundExpr& expr,
                                    const TableView& view,
                                    SelectionSlice rows) {
  const BoundExpr& subject = *expr.child;
  const size_t n = rows.size();
  std::vector<uint8_t> mask(n, 0);
  if (subject.type == DataType::kString) {
    if (subject.kind == BoundExpr::Kind::kColumnRef) {
      // Dictionary-code membership: resolve each list string to a
      // code once; absent strings can never match.
      const ColumnSpan& span = view.column(subject.column_index);
      std::vector<uint8_t> member(span.dict->size(), 0);
      for (const Value& item : expr.in_list) {
        const int32_t code = span.dict->Find(item.AsString());
        if (code >= 0) member[code] = 1;
      }
      for (size_t i = 0; i < n; ++i) mask[i] = member[span.codes[rows[i]]];
      return mask;
    }
    MOSAIC_ASSIGN_OR_RETURN(BatchVec sb, EvalBatch(subject, view, rows));
    for (size_t i = 0; i < n; ++i) {
      for (const Value& item : expr.in_list) {
        if (sb.StringAt(i) == item.AsString()) {
          mask[i] = 1;
          break;
        }
      }
    }
    return mask;
  }
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> vals,
                          EvalDoubleBatch(subject, view, rows));
  std::vector<double> items;
  items.reserve(expr.in_list.size());
  for (const Value& item : expr.in_list) {
    MOSAIC_ASSIGN_OR_RETURN(double d, item.ToDouble());
    items.push_back(d);
  }
  for (size_t i = 0; i < n; ++i) {
    for (double item : items) {
      if (vals[i] == item) {
        mask[i] = 1;
        break;
      }
    }
  }
  return mask;
}

Result<std::vector<uint8_t>> BetweenMask(const BoundExpr& expr,
                                         const TableView& view,
                                         SelectionSlice rows) {
  // Fused fast path: numeric column between literal bounds.
  if (expr.child->kind == BoundExpr::Kind::kColumnRef &&
      expr.between_lo->kind == BoundExpr::Kind::kLiteral &&
      expr.between_hi->kind == BoundExpr::Kind::kLiteral &&
      IsNumericSpan(view.column(expr.child->column_index))) {
    const ColumnSpan& span = view.column(expr.child->column_index);
    MOSAIC_ASSIGN_OR_RETURN(double lo, expr.between_lo->literal.ToDouble());
    MOSAIC_ASSIGN_OR_RETURN(double hi, expr.between_hi->literal.ToDouble());
    std::vector<uint8_t> mask(rows.size());
    if (span.type == DataType::kInt64) {
      for (size_t i = 0; i < rows.size(); ++i) {
        const double v = static_cast<double>(span.i64[rows[i]]);
        mask[i] = v >= lo && v <= hi;
      }
    } else if (span.type == DataType::kDouble) {
      for (size_t i = 0; i < rows.size(); ++i) {
        const double v = span.f64[rows[i]];
        mask[i] = v >= lo && v <= hi;
      }
    } else {
      for (size_t i = 0; i < rows.size(); ++i) {
        const double v = span.b8[rows[i]] != 0 ? 1.0 : 0.0;
        mask[i] = v >= lo && v <= hi;
      }
    }
    return mask;
  }
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> v,
                          EvalDoubleBatch(*expr.child, view, rows));
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> lo,
                          EvalDoubleBatch(*expr.between_lo, view, rows));
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> hi,
                          EvalDoubleBatch(*expr.between_hi, view, rows));
  std::vector<uint8_t> mask(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    mask[i] = v[i] >= lo[i] && v[i] <= hi[i];
  }
  return mask;
}

/// Arithmetic over double batches; int64-typed results round through
/// double exactly like the row evaluator (llround, then back to
/// double when consumed in an enclosing numeric context).
Result<std::vector<double>> ArithDoubleBatch(
    const BoundExpr& expr, const TableView& view,
    SelectionSlice rows) {
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> l,
                          EvalDoubleBatch(*expr.left, view, rows));
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> r,
                          EvalDoubleBatch(*expr.right, view, rows));
  switch (expr.binary_op) {
    case sql::BinaryOp::kAdd:
      for (size_t i = 0; i < l.size(); ++i) l[i] += r[i];
      break;
    case sql::BinaryOp::kSub:
      for (size_t i = 0; i < l.size(); ++i) l[i] -= r[i];
      break;
    case sql::BinaryOp::kMul:
      for (size_t i = 0; i < l.size(); ++i) l[i] *= r[i];
      break;
    case sql::BinaryOp::kDiv:
      for (size_t i = 0; i < l.size(); ++i) {
        if (r[i] == 0.0) {
          return Status::ExecutionError("division by zero");
        }
        l[i] /= r[i];
      }
      break;
    default:
      return Status::Internal("unreachable arithmetic op");
  }
  if (expr.type == DataType::kInt64) {
    for (double& v : l) {
      v = static_cast<double>(static_cast<int64_t>(std::llround(v)));
    }
  }
  return l;
}

}  // namespace

Result<std::vector<uint8_t>> EvalMask(const BoundExpr& expr,
                                      const TableView& view,
                                      SelectionSlice rows) {
  const size_t n = rows.size();
  switch (expr.kind) {
    case BoundExpr::Kind::kLiteral:
      return std::vector<uint8_t>(n, expr.literal.AsBool() ? 1 : 0);
    case BoundExpr::Kind::kColumnRef: {
      const ColumnSpan& span = view.column(expr.column_index);
      std::vector<uint8_t> mask(n);
      for (size_t i = 0; i < n; ++i) mask[i] = span.b8[rows[i]];
      return mask;
    }
    case BoundExpr::Kind::kUnary: {
      MOSAIC_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                              EvalMask(*expr.child, view, rows));
      for (auto& m : mask) m = !m;
      return mask;
    }
    case BoundExpr::Kind::kBinary: {
      if (expr.binary_op == sql::BinaryOp::kAnd ||
          expr.binary_op == sql::BinaryOp::kOr) {
        // Row-path short-circuit parity: the right side only runs on
        // rows the left side did not decide.
        const bool is_and = expr.binary_op == sql::BinaryOp::kAnd;
        MOSAIC_ASSIGN_OR_RETURN(std::vector<uint8_t> lmask,
                                EvalMask(*expr.left, view, rows));
        std::vector<uint32_t> pending;
        for (size_t i = 0; i < n; ++i) {
          if (static_cast<bool>(lmask[i]) == is_and) {
            pending.push_back(rows[i]);
          }
        }
        MOSAIC_ASSIGN_OR_RETURN(std::vector<uint8_t> rmask,
                                EvalMask(*expr.right, view, pending));
        std::vector<uint8_t> mask(n);
        size_t j = 0;
        for (size_t i = 0; i < n; ++i) {
          mask[i] = static_cast<bool>(lmask[i]) == is_and
                        ? rmask[j++]
                        : lmask[i];
        }
        return mask;
      }
      return CompareMask(expr, view, rows);
    }
    case BoundExpr::Kind::kIn:
      return InMask(expr, view, rows);
    case BoundExpr::Kind::kBetween:
      return BetweenMask(expr, view, rows);
    case BoundExpr::Kind::kAggResult:
      return Status::Internal("aggregate slot not available in batch path");
  }
  return Status::Internal("unreachable bound expression kind");
}

Result<std::vector<double>> EvalDoubleBatch(
    const BoundExpr& expr, const TableView& view,
    SelectionSlice rows) {
  const size_t n = rows.size();
  switch (expr.kind) {
    case BoundExpr::Kind::kLiteral: {
      if (n == 0) return std::vector<double>{};
      MOSAIC_ASSIGN_OR_RETURN(double v, expr.literal.ToDouble());
      return std::vector<double>(n, v);
    }
    case BoundExpr::Kind::kColumnRef: {
      const ColumnSpan& span = view.column(expr.column_index);
      std::vector<double> out(n);
      switch (span.type) {
        case DataType::kInt64:
          for (size_t i = 0; i < n; ++i) {
            out[i] = static_cast<double>(span.i64[rows[i]]);
          }
          return out;
        case DataType::kDouble:
          for (size_t i = 0; i < n; ++i) out[i] = span.f64[rows[i]];
          return out;
        case DataType::kBool:
          for (size_t i = 0; i < n; ++i) {
            out[i] = span.b8[rows[i]] != 0 ? 1.0 : 0.0;
          }
          return out;
        default: {
          if (n == 0) return out;
          // Same error the row path raises on the first row.
          auto err = Value(span.dict->Decode(span.codes[rows[0]])).ToDouble();
          return err.status();
        }
      }
    }
    case BoundExpr::Kind::kUnary: {
      if (expr.unary_op == sql::UnaryOp::kNot) break;  // bool: mask below
      MOSAIC_ASSIGN_OR_RETURN(std::vector<double> out,
                              EvalDoubleBatch(*expr.child, view, rows));
      for (double& v : out) v = -v;
      return out;
    }
    case BoundExpr::Kind::kBinary: {
      switch (expr.binary_op) {
        case sql::BinaryOp::kAdd:
        case sql::BinaryOp::kSub:
        case sql::BinaryOp::kMul:
        case sql::BinaryOp::kDiv:
          return ArithDoubleBatch(expr, view, rows);
        default:
          break;  // comparisons / AND / OR: boolean, mask below
      }
      break;
    }
    case BoundExpr::Kind::kIn:
    case BoundExpr::Kind::kBetween:
      break;  // boolean, mask below
    case BoundExpr::Kind::kAggResult:
      return Status::Internal("aggregate slot not available in batch path");
  }
  if (expr.type == DataType::kBool) {
    MOSAIC_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                            EvalMask(expr, view, rows));
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = mask[i] ? 1.0 : 0.0;
    return out;
  }
  return Status::Internal("expression has no numeric batch form");
}

Result<BatchVec> EvalBatch(const BoundExpr& expr, const TableView& view,
                           SelectionSlice rows) {
  const size_t n = rows.size();
  BatchVec out;
  out.type = expr.type;
  switch (expr.type) {
    case DataType::kBool: {
      MOSAIC_ASSIGN_OR_RETURN(out.b8, EvalMask(expr, view, rows));
      return out;
    }
    case DataType::kDouble: {
      MOSAIC_ASSIGN_OR_RETURN(out.f64, EvalDoubleBatch(expr, view, rows));
      return out;
    }
    case DataType::kInt64: {
      switch (expr.kind) {
        case BoundExpr::Kind::kLiteral:
          out.i64.assign(n, expr.literal.AsInt64());
          return out;
        case BoundExpr::Kind::kColumnRef: {
          const ColumnSpan& span = view.column(expr.column_index);
          out.i64.resize(n);
          for (size_t i = 0; i < n; ++i) out.i64[i] = span.i64[rows[i]];
          return out;
        }
        case BoundExpr::Kind::kUnary: {
          MOSAIC_ASSIGN_OR_RETURN(BatchVec child,
                                  EvalBatch(*expr.child, view, rows));
          out.i64 = std::move(child.i64);
          for (int64_t& v : out.i64) v = -v;
          return out;
        }
        case BoundExpr::Kind::kBinary: {
          MOSAIC_ASSIGN_OR_RETURN(std::vector<double> v,
                                  ArithDoubleBatch(expr, view, rows));
          out.i64.resize(n);
          // ArithDoubleBatch already rounded int-typed results; this
          // narrowing is exact.
          for (size_t i = 0; i < n; ++i) {
            out.i64[i] = static_cast<int64_t>(v[i]);
          }
          return out;
        }
        default:
          return Status::Internal("unexpected int64 batch expression");
      }
    }
    case DataType::kString: {
      switch (expr.kind) {
        case BoundExpr::Kind::kColumnRef: {
          const ColumnSpan& span = view.column(expr.column_index);
          out.dict = span.dict;
          out.codes.resize(n);
          for (size_t i = 0; i < n; ++i) out.codes[i] = span.codes[rows[i]];
          return out;
        }
        case BoundExpr::Kind::kLiteral:
          out.strs.assign(n, expr.literal.AsString());
          return out;
        default:
          return Status::Internal("unexpected string batch expression");
      }
    }
    default:
      return Status::Internal("cannot batch-evaluate NULL-typed expression");
  }
}

Result<SelectionVector> FilterView(const TableView& view,
                                   const BoundExpr& predicate) {
  return FilterView(view, predicate, SelectionVector::All(view.num_rows()));
}

namespace {

/// Flatten the AND spine so each conjunct refines the selection:
/// later conjuncts only run on surviving rows, like the row
/// evaluator's short-circuit.
std::vector<const BoundExpr*> FlattenConjuncts(const BoundExpr& predicate) {
  std::vector<const BoundExpr*> conjuncts;
  std::vector<const BoundExpr*> stack{&predicate};
  while (!stack.empty()) {
    const BoundExpr* e = stack.back();
    stack.pop_back();
    if (e->kind == BoundExpr::Kind::kBinary &&
        e->binary_op == sql::BinaryOp::kAnd) {
      // Push right first so conjuncts pop in left-to-right order.
      stack.push_back(e->right.get());
      stack.push_back(e->left.get());
    } else {
      conjuncts.push_back(e);
    }
  }
  return conjuncts;
}

/// Refine an owning row list in place through the conjuncts.
Status RefineRows(const TableView& view,
                  const std::vector<const BoundExpr*>& conjuncts,
                  size_t first_conjunct, std::vector<uint32_t>* rows) {
  for (size_t c = first_conjunct; c < conjuncts.size(); ++c) {
    if (rows->empty()) break;
    MOSAIC_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                            EvalMask(*conjuncts[c], view, *rows));
    size_t kept = 0;
    for (size_t i = 0; i < rows->size(); ++i) {
      if (mask[i]) (*rows)[kept++] = (*rows)[i];
    }
    rows->resize(kept);
  }
  return Status::OK();
}

}  // namespace

Result<SelectionVector> FilterView(const TableView& view,
                                   const BoundExpr& predicate,
                                   SelectionVector base) {
  std::vector<const BoundExpr*> conjuncts = FlattenConjuncts(predicate);
  std::vector<uint32_t> rows = std::move(*base.mutable_rows());
  MOSAIC_RETURN_IF_ERROR(RefineRows(view, conjuncts, 0, &rows));
  return SelectionVector(std::move(rows));
}

Result<SelectionVector> FilterSlice(const TableView& view,
                                    const BoundExpr& predicate,
                                    SelectionSlice base) {
  std::vector<const BoundExpr*> conjuncts = FlattenConjuncts(predicate);
  // First conjunct runs over the zero-copy slice; survivors become
  // the owning list the remaining conjuncts refine in place.
  std::vector<uint32_t> rows;
  if (conjuncts.empty() || base.empty()) {
    rows.assign(base.begin(), base.end());
    return SelectionVector(std::move(rows));
  }
  MOSAIC_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                          EvalMask(*conjuncts[0], view, base));
  // Worst case every row survives; reserving the slice size keeps the
  // compaction allocation-free (morsel slices are small and short-
  // lived, so over-reserving is cheap).
  rows.reserve(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    if (mask[i]) rows.push_back(base[i]);
  }
  MOSAIC_RETURN_IF_ERROR(RefineRows(view, conjuncts, 1, &rows));
  return SelectionVector(std::move(rows));
}

Result<SelectionVector> SelectRows(const TableView& view,
                                   const sql::Expr& predicate) {
  Binder binder(&view.schema());
  MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(predicate));
  if (bound->type != DataType::kBool) {
    return Status::TypeError("WHERE predicate must be boolean, got " +
                             std::string(DataTypeName(bound->type)));
  }
  return FilterView(view, *bound);
}

}  // namespace exec
}  // namespace mosaic
