#include "exec/batch_eval.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "exec/simd.h"

namespace mosaic {
namespace exec {

namespace {

/// Comparison ops map 1:1 onto kernel predicates (callers only pass
/// the six comparison BinaryOps here).
inline simd::CmpOp ToSimdCmp(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return simd::CmpOp::kEq;
    case sql::BinaryOp::kNe:
      return simd::CmpOp::kNe;
    case sql::BinaryOp::kLt:
      return simd::CmpOp::kLt;
    case sql::BinaryOp::kLe:
      return simd::CmpOp::kLe;
    case sql::BinaryOp::kGt:
      return simd::CmpOp::kGt;
    default:
      return simd::CmpOp::kGe;
  }
}

/// Double comparison matching Value::operator< / == (numeric Values
/// always compare through their double view).
inline bool CmpD(sql::BinaryOp op, double l, double r) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return l == r;
    case sql::BinaryOp::kNe:
      return l != r;
    case sql::BinaryOp::kLt:
      return l < r;
    case sql::BinaryOp::kLe:
      return l <= r;
    case sql::BinaryOp::kGt:
      return l > r;
    case sql::BinaryOp::kGe:
      return l >= r;
    default:
      return false;
  }
}

inline bool CmpS(sql::BinaryOp op, const std::string& l,
                 const std::string& r) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return l == r;
    case sql::BinaryOp::kNe:
      return l != r;
    case sql::BinaryOp::kLt:
      return l < r;
    case sql::BinaryOp::kLe:
      return !(r < l);
    case sql::BinaryOp::kGt:
      return r < l;
    case sql::BinaryOp::kGe:
      return !(l < r);
    default:
      return false;
  }
}

/// `lit op col` rewritten as `col op' lit`.
sql::BinaryOp ReverseOp(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kLt:
      return sql::BinaryOp::kGt;
    case sql::BinaryOp::kLe:
      return sql::BinaryOp::kGe;
    case sql::BinaryOp::kGt:
      return sql::BinaryOp::kLt;
    case sql::BinaryOp::kGe:
      return sql::BinaryOp::kLe;
    default:
      return op;  // Eq / Ne are symmetric
  }
}

inline double SpanDouble(const ColumnSpan& span, uint32_t row) {
  switch (span.type) {
    case DataType::kInt64:
      return static_cast<double>(span.i64[row]);
    case DataType::kDouble:
      return span.f64[row];
    default:
      return span.b8[row] != 0 ? 1.0 : 0.0;
  }
}

bool IsNumericSpan(const ColumnSpan& span) {
  return span.type == DataType::kInt64 || span.type == DataType::kDouble ||
         span.type == DataType::kBool;
}

/// String column vs string literal: resolve the literal through the
/// dictionary once, then compare codes (Eq/Ne) or a per-code truth
/// table (ordering ops) — no per-row decoding. All comparison kernels
/// write into a caller-provided mask so the morsel path can aim them
/// straight at its range of the shared output (no splice copy).
void CodeCompareInto(const ColumnSpan& span, const std::string& literal,
                     sql::BinaryOp op, SelectionSlice rows,
                     uint8_t* mask) {
  const simd::KernelTable& k = simd::ActiveKernels();
  if (op == sql::BinaryOp::kEq || op == sql::BinaryOp::kNe) {
    const int32_t code = span.dict->Find(literal);
    k.mask_cmp_codes(span.codes, rows.data(), rows.size(), code,
                     op == sql::BinaryOp::kEq, mask);
    return;
  }
  std::vector<uint8_t> table(span.dict->size());
  for (size_t c = 0; c < table.size(); ++c) {
    table[c] = CmpS(op, span.dict->Decode(static_cast<int32_t>(c)), literal);
  }
  k.mask_table_codes(span.codes, rows.data(), rows.size(), table.data(),
                     mask);
}

[[nodiscard]] Status CompareInto(const BoundExpr& expr, const TableView& view,
                   SelectionSlice rows, uint8_t* mask) {
  const BoundExpr& l = *expr.left;
  const BoundExpr& r = *expr.right;
  const sql::BinaryOp op = expr.binary_op;
  const size_t n = rows.size();

  if (l.type == DataType::kString) {
    // --- string comparisons: dictionary codes where possible -------------
    if (l.kind == BoundExpr::Kind::kColumnRef &&
        r.kind == BoundExpr::Kind::kLiteral) {
      CodeCompareInto(view.column(l.column_index), r.literal.AsString(), op,
                      rows, mask);
      return Status::OK();
    }
    if (l.kind == BoundExpr::Kind::kLiteral &&
        r.kind == BoundExpr::Kind::kColumnRef) {
      CodeCompareInto(view.column(r.column_index), l.literal.AsString(),
                      ReverseOp(op), rows, mask);
      return Status::OK();
    }
    if (l.kind == BoundExpr::Kind::kColumnRef &&
        r.kind == BoundExpr::Kind::kColumnRef) {
      const ColumnSpan& ls = view.column(l.column_index);
      const ColumnSpan& rs = view.column(r.column_index);
      if (ls.dict == rs.dict &&
          (op == sql::BinaryOp::kEq || op == sql::BinaryOp::kNe)) {
        const bool eq = op == sql::BinaryOp::kEq;
        for (size_t i = 0; i < n; ++i) {
          mask[i] = (ls.codes[rows[i]] == rs.codes[rows[i]]) == eq;
        }
        return Status::OK();
      }
      for (size_t i = 0; i < n; ++i) {
        mask[i] = CmpS(op, ls.dict->Decode(ls.codes[rows[i]]),
                       rs.dict->Decode(rs.codes[rows[i]]));
      }
      return Status::OK();
    }
    // Generic string fallback (e.g. literal vs literal).
    MOSAIC_ASSIGN_OR_RETURN(BatchVec lb, EvalBatch(l, view, rows));
    MOSAIC_ASSIGN_OR_RETURN(BatchVec rb, EvalBatch(r, view, rows));
    for (size_t i = 0; i < n; ++i) {
      mask[i] = CmpS(op, lb.StringAt(i), rb.StringAt(i));
    }
    return Status::OK();
  }

  // --- numeric comparisons ---------------------------------------------
  const simd::KernelTable& k = simd::ActiveKernels();
  if (l.kind == BoundExpr::Kind::kColumnRef &&
      r.kind == BoundExpr::Kind::kLiteral &&
      IsNumericSpan(view.column(l.column_index))) {
    const ColumnSpan& span = view.column(l.column_index);
    MOSAIC_ASSIGN_OR_RETURN(double lit, r.literal.ToDouble());
    if (span.type == DataType::kDouble) {
      k.mask_cmp_f64(span.f64, rows.data(), n, ToSimdCmp(op), lit, mask);
    } else if (span.type == DataType::kInt64) {
      k.mask_cmp_i64(span.i64, rows.data(), n, ToSimdCmp(op), lit, mask);
    } else {
      for (size_t i = 0; i < n; ++i) {
        mask[i] = CmpD(op, SpanDouble(span, rows[i]), lit);
      }
    }
    return Status::OK();
  }
  if (l.kind == BoundExpr::Kind::kLiteral &&
      r.kind == BoundExpr::Kind::kColumnRef &&
      IsNumericSpan(view.column(r.column_index))) {
    const ColumnSpan& span = view.column(r.column_index);
    MOSAIC_ASSIGN_OR_RETURN(double lit, l.literal.ToDouble());
    const sql::BinaryOp rev = ReverseOp(op);
    if (span.type == DataType::kDouble) {
      k.mask_cmp_f64(span.f64, rows.data(), n, ToSimdCmp(rev), lit, mask);
    } else if (span.type == DataType::kInt64) {
      k.mask_cmp_i64(span.i64, rows.data(), n, ToSimdCmp(rev), lit, mask);
    } else {
      for (size_t i = 0; i < n; ++i) {
        mask[i] = CmpD(rev, SpanDouble(span, rows[i]), lit);
      }
    }
    return Status::OK();
  }
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> lv,
                          EvalDoubleBatch(l, view, rows));
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> rv,
                          EvalDoubleBatch(r, view, rows));
  k.mask_cmp_f64_pair(lv.data(), rv.data(), n, ToSimdCmp(op), mask);
  return Status::OK();
}

[[nodiscard]] Status InInto(const BoundExpr& expr, const TableView& view,
              SelectionSlice rows, uint8_t* mask) {
  const BoundExpr& subject = *expr.child;
  const size_t n = rows.size();
  std::fill(mask, mask + n, static_cast<uint8_t>(0));
  if (subject.type == DataType::kString) {
    if (subject.kind == BoundExpr::Kind::kColumnRef) {
      // Dictionary-code membership: resolve each list string to a
      // code once; absent strings can never match.
      const ColumnSpan& span = view.column(subject.column_index);
      std::vector<uint8_t> member(span.dict->size(), 0);
      for (const Value& item : expr.in_list) {
        const int32_t code = span.dict->Find(item.AsString());
        if (code >= 0) member[code] = 1;
      }
      simd::ActiveKernels().mask_table_codes(span.codes, rows.data(), n,
                                             member.data(), mask);
      return Status::OK();
    }
    MOSAIC_ASSIGN_OR_RETURN(BatchVec sb, EvalBatch(subject, view, rows));
    for (size_t i = 0; i < n; ++i) {
      for (const Value& item : expr.in_list) {
        if (sb.StringAt(i) == item.AsString()) {
          mask[i] = 1;
          break;
        }
      }
    }
    return Status::OK();
  }
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> vals,
                          EvalDoubleBatch(subject, view, rows));
  std::vector<double> items;
  items.reserve(expr.in_list.size());
  for (const Value& item : expr.in_list) {
    MOSAIC_ASSIGN_OR_RETURN(double d, item.ToDouble());
    items.push_back(d);
  }
  simd::ActiveKernels().mask_in_f64(vals.data(), n, items.data(),
                                    items.size(), mask);
  return Status::OK();
}

[[nodiscard]] Status BetweenInto(const BoundExpr& expr, const TableView& view,
                   SelectionSlice rows, uint8_t* mask) {
  // Fused fast path: numeric column between literal bounds.
  if (expr.child->kind == BoundExpr::Kind::kColumnRef &&
      expr.between_lo->kind == BoundExpr::Kind::kLiteral &&
      expr.between_hi->kind == BoundExpr::Kind::kLiteral &&
      IsNumericSpan(view.column(expr.child->column_index))) {
    const ColumnSpan& span = view.column(expr.child->column_index);
    MOSAIC_ASSIGN_OR_RETURN(double lo, expr.between_lo->literal.ToDouble());
    MOSAIC_ASSIGN_OR_RETURN(double hi, expr.between_hi->literal.ToDouble());
    const simd::KernelTable& k = simd::ActiveKernels();
    if (span.type == DataType::kInt64) {
      k.mask_between_i64(span.i64, rows.data(), rows.size(), lo, hi, mask);
    } else if (span.type == DataType::kDouble) {
      k.mask_between_f64(span.f64, rows.data(), rows.size(), lo, hi, mask);
    } else {
      for (size_t i = 0; i < rows.size(); ++i) {
        const double v = span.b8[rows[i]] != 0 ? 1.0 : 0.0;
        mask[i] = v >= lo && v <= hi;
      }
    }
    return Status::OK();
  }
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> v,
                          EvalDoubleBatch(*expr.child, view, rows));
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> lo,
                          EvalDoubleBatch(*expr.between_lo, view, rows));
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> hi,
                          EvalDoubleBatch(*expr.between_hi, view, rows));
  for (size_t i = 0; i < rows.size(); ++i) {
    mask[i] = v[i] >= lo[i] && v[i] <= hi[i];
  }
  return Status::OK();
}

/// Arithmetic over double batches, left operand evaluated directly
/// into `out`; int64-typed results round through double exactly like
/// the row evaluator (llround, then back to double when consumed in
/// an enclosing numeric context).
[[nodiscard]] Status ArithDoubleInto(const BoundExpr& expr, const TableView& view,
                       SelectionSlice rows, double* out) {
  const size_t n = rows.size();
  MOSAIC_RETURN_IF_ERROR(EvalDoubleInto(*expr.left, view, rows, out));
  MOSAIC_ASSIGN_OR_RETURN(std::vector<double> r,
                          EvalDoubleBatch(*expr.right, view, rows));
  switch (expr.binary_op) {
    case sql::BinaryOp::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] += r[i];
      break;
    case sql::BinaryOp::kSub:
      for (size_t i = 0; i < n; ++i) out[i] -= r[i];
      break;
    case sql::BinaryOp::kMul:
      for (size_t i = 0; i < n; ++i) out[i] *= r[i];
      break;
    case sql::BinaryOp::kDiv:
      for (size_t i = 0; i < n; ++i) {
        if (r[i] == 0.0) {
          return Status::ExecutionError("division by zero");
        }
        out[i] /= r[i];
      }
      break;
    default:
      return Status::Internal("unreachable arithmetic op");
  }
  if (expr.type == DataType::kInt64) {
    for (size_t i = 0; i < n; ++i) {
      out[i] =
          static_cast<double>(static_cast<int64_t>(std::llround(out[i])));
    }
  }
  return Status::OK();
}

}  // namespace

[[nodiscard]] Status EvalMaskInto(const BoundExpr& expr, const TableView& view,
                    SelectionSlice rows, uint8_t* dst) {
  const size_t n = rows.size();
  switch (expr.kind) {
    case BoundExpr::Kind::kLiteral: {
      const uint8_t v = expr.literal.AsBool() ? 1 : 0;
      std::fill(dst, dst + n, v);
      return Status::OK();
    }
    case BoundExpr::Kind::kColumnRef: {
      const ColumnSpan& span = view.column(expr.column_index);
      for (size_t i = 0; i < n; ++i) dst[i] = span.b8[rows[i]];
      return Status::OK();
    }
    case BoundExpr::Kind::kUnary: {
      MOSAIC_RETURN_IF_ERROR(EvalMaskInto(*expr.child, view, rows, dst));
      simd::ActiveKernels().mask_not(dst, n);
      return Status::OK();
    }
    case BoundExpr::Kind::kBinary: {
      if (expr.binary_op == sql::BinaryOp::kAnd ||
          expr.binary_op == sql::BinaryOp::kOr) {
        // Row-path short-circuit parity: the right side only runs on
        // rows the left side did not decide. The left mask lands in
        // `dst` and the right-side results are merged over it.
        const bool is_and = expr.binary_op == sql::BinaryOp::kAnd;
        MOSAIC_RETURN_IF_ERROR(EvalMaskInto(*expr.left, view, rows, dst));
        // Undecided rows are where the left mask equals the identity
        // of the connective (1 for AND, 0 for OR).
        AlignedVector<uint32_t> pending(n);
        const size_t num_pending = simd::ActiveKernels().compact_rows(
            rows.data(), dst, is_and ? 1 : 0, n, pending.data());
        pending.resize(num_pending);
        std::vector<uint8_t> rmask(pending.size());
        MOSAIC_RETURN_IF_ERROR(
            EvalMaskInto(*expr.right, view, pending, rmask.data()));
        size_t j = 0;
        for (size_t i = 0; i < n; ++i) {
          if (static_cast<bool>(dst[i]) == is_and) dst[i] = rmask[j++];
        }
        return Status::OK();
      }
      return CompareInto(expr, view, rows, dst);
    }
    case BoundExpr::Kind::kIn:
      return InInto(expr, view, rows, dst);
    case BoundExpr::Kind::kBetween:
      return BetweenInto(expr, view, rows, dst);
    case BoundExpr::Kind::kAggResult:
      return Status::Internal("aggregate slot not available in batch path");
  }
  return Status::Internal("unreachable bound expression kind");
}

[[nodiscard]] Result<std::vector<uint8_t>> EvalMask(const BoundExpr& expr,
                                      const TableView& view,
                                      SelectionSlice rows) {
  std::vector<uint8_t> mask(rows.size());
  MOSAIC_RETURN_IF_ERROR(EvalMaskInto(expr, view, rows, mask.data()));
  return mask;
}

[[nodiscard]] Status EvalDoubleInto(const BoundExpr& expr, const TableView& view,
                      SelectionSlice rows, double* dst) {
  const size_t n = rows.size();
  switch (expr.kind) {
    case BoundExpr::Kind::kLiteral: {
      if (n == 0) return Status::OK();
      MOSAIC_ASSIGN_OR_RETURN(double v, expr.literal.ToDouble());
      std::fill(dst, dst + n, v);
      return Status::OK();
    }
    case BoundExpr::Kind::kColumnRef: {
      const ColumnSpan& span = view.column(expr.column_index);
      const simd::KernelTable& k = simd::ActiveKernels();
      switch (span.type) {
        case DataType::kInt64:
          k.gather_i64_f64(span.i64, rows.data(), n, dst);
          return Status::OK();
        case DataType::kDouble:
          k.gather_f64(span.f64, rows.data(), n, dst);
          return Status::OK();
        case DataType::kBool:
          k.gather_b8_f64(span.b8, rows.data(), n, dst);
          return Status::OK();
        default: {
          if (n == 0) return Status::OK();
          // Same error the row path raises on the first row.
          auto err = Value(span.dict->Decode(span.codes[rows[0]])).ToDouble();
          return err.status();
        }
      }
    }
    case BoundExpr::Kind::kUnary: {
      if (expr.unary_op == sql::UnaryOp::kNot) break;  // bool: mask below
      MOSAIC_RETURN_IF_ERROR(EvalDoubleInto(*expr.child, view, rows, dst));
      for (size_t i = 0; i < n; ++i) dst[i] = -dst[i];
      return Status::OK();
    }
    case BoundExpr::Kind::kBinary: {
      switch (expr.binary_op) {
        case sql::BinaryOp::kAdd:
        case sql::BinaryOp::kSub:
        case sql::BinaryOp::kMul:
        case sql::BinaryOp::kDiv:
          return ArithDoubleInto(expr, view, rows, dst);
        default:
          break;  // comparisons / AND / OR: boolean, mask below
      }
      break;
    }
    case BoundExpr::Kind::kIn:
    case BoundExpr::Kind::kBetween:
      break;  // boolean, mask below
    case BoundExpr::Kind::kAggResult:
      return Status::Internal("aggregate slot not available in batch path");
  }
  if (expr.type == DataType::kBool) {
    MOSAIC_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                            EvalMask(expr, view, rows));
    for (size_t i = 0; i < n; ++i) dst[i] = mask[i] ? 1.0 : 0.0;
    return Status::OK();
  }
  return Status::Internal("expression has no numeric batch form");
}

[[nodiscard]] Result<std::vector<double>> EvalDoubleBatch(
    const BoundExpr& expr, const TableView& view,
    SelectionSlice rows) {
  std::vector<double> out(rows.size());
  MOSAIC_RETURN_IF_ERROR(EvalDoubleInto(expr, view, rows, out.data()));
  return out;
}

[[nodiscard]] Status PrepareBatchVec(const BoundExpr& expr, const TableView& view,
                       size_t n, BatchVec* out) {
  out->type = expr.type;
  switch (expr.type) {
    case DataType::kBool:
      out->b8.resize(n);
      return Status::OK();
    case DataType::kDouble:
      out->f64.resize(n);
      return Status::OK();
    case DataType::kInt64:
      out->i64.resize(n);
      return Status::OK();
    case DataType::kString:
      // Column refs produce codes against the column's shared
      // dictionary; every other string batch shape is a broadcast
      // literal (EvalBatchInto rejects anything else).
      if (expr.kind == BoundExpr::Kind::kColumnRef) {
        out->dict = view.column(expr.column_index).dict;
        out->codes.resize(n);
      } else {
        out->strs.resize(n);
      }
      return Status::OK();
    default:
      return Status::Internal("cannot batch-evaluate NULL-typed expression");
  }
}

[[nodiscard]] Status EvalBatchInto(const BoundExpr& expr, const TableView& view,
                     SelectionSlice rows, BatchVec* out, size_t offset) {
  const size_t n = rows.size();
  if (out->type != expr.type) {
    return Status::Internal("batch output type mismatch");
  }
  switch (expr.type) {
    case DataType::kBool:
      return EvalMaskInto(expr, view, rows, out->b8.data() + offset);
    case DataType::kDouble:
      return EvalDoubleInto(expr, view, rows, out->f64.data() + offset);
    case DataType::kInt64: {
      int64_t* dst = out->i64.data() + offset;
      switch (expr.kind) {
        case BoundExpr::Kind::kLiteral: {
          const int64_t v = expr.literal.AsInt64();
          std::fill(dst, dst + n, v);
          return Status::OK();
        }
        case BoundExpr::Kind::kColumnRef: {
          const ColumnSpan& span = view.column(expr.column_index);
          simd::ActiveKernels().gather_i64(span.i64, rows.data(), n, dst);
          return Status::OK();
        }
        case BoundExpr::Kind::kUnary: {
          MOSAIC_RETURN_IF_ERROR(
              EvalBatchInto(*expr.child, view, rows, out, offset));
          for (size_t i = 0; i < n; ++i) dst[i] = -dst[i];
          return Status::OK();
        }
        case BoundExpr::Kind::kBinary: {
          std::vector<double> v(n);
          MOSAIC_RETURN_IF_ERROR(ArithDoubleInto(expr, view, rows, v.data()));
          // ArithDoubleInto already rounded int-typed results; this
          // narrowing is exact.
          for (size_t i = 0; i < n; ++i) {
            dst[i] = static_cast<int64_t>(v[i]);
          }
          return Status::OK();
        }
        default:
          return Status::Internal("unexpected int64 batch expression");
      }
    }
    case DataType::kString: {
      switch (expr.kind) {
        case BoundExpr::Kind::kColumnRef: {
          const ColumnSpan& span = view.column(expr.column_index);
          if (out->dict != span.dict) {
            return Status::Internal("batch output dictionary mismatch");
          }
          int32_t* dst = out->codes.data() + offset;
          simd::ActiveKernels().gather_i32(span.codes, rows.data(), n, dst);
          return Status::OK();
        }
        case BoundExpr::Kind::kLiteral: {
          const std::string& v = expr.literal.AsString();
          for (size_t i = 0; i < n; ++i) out->strs[offset + i] = v;
          return Status::OK();
        }
        default:
          return Status::Internal("unexpected string batch expression");
      }
    }
    default:
      return Status::Internal("cannot batch-evaluate NULL-typed expression");
  }
}

[[nodiscard]] Result<BatchVec> EvalBatch(const BoundExpr& expr, const TableView& view,
                           SelectionSlice rows) {
  BatchVec out;
  MOSAIC_RETURN_IF_ERROR(PrepareBatchVec(expr, view, rows.size(), &out));
  MOSAIC_RETURN_IF_ERROR(EvalBatchInto(expr, view, rows, &out, 0));
  return out;
}

[[nodiscard]] Result<SelectionVector> FilterView(const TableView& view,
                                   const BoundExpr& predicate) {
  return FilterView(view, predicate, SelectionVector::All(view.num_rows()));
}

namespace {

/// Flatten the AND spine so each conjunct refines the selection:
/// later conjuncts only run on surviving rows, like the row
/// evaluator's short-circuit.
std::vector<const BoundExpr*> FlattenConjuncts(const BoundExpr& predicate) {
  std::vector<const BoundExpr*> conjuncts;
  std::vector<const BoundExpr*> stack{&predicate};
  while (!stack.empty()) {
    const BoundExpr* e = stack.back();
    stack.pop_back();
    if (e->kind == BoundExpr::Kind::kBinary &&
        e->binary_op == sql::BinaryOp::kAnd) {
      // Push right first so conjuncts pop in left-to-right order.
      stack.push_back(e->right.get());
      stack.push_back(e->left.get());
    } else {
      conjuncts.push_back(e);
    }
  }
  return conjuncts;
}

/// Refine an owning row list in place through the conjuncts.
[[nodiscard]] Status RefineRows(const TableView& view,
                  const std::vector<const BoundExpr*>& conjuncts,
                  size_t first_conjunct, AlignedVector<uint32_t>* rows) {
  for (size_t c = first_conjunct; c < conjuncts.size(); ++c) {
    if (rows->empty()) break;
    MOSAIC_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                            EvalMask(*conjuncts[c], view, *rows));
    // In-place branchless compaction (out == rows is part of the
    // kernel contract).
    const size_t kept = simd::ActiveKernels().compact_rows(
        rows->data(), mask.data(), 1, rows->size(), rows->data());
    rows->resize(kept);
  }
  return Status::OK();
}

}  // namespace

[[nodiscard]] Result<SelectionVector> FilterView(const TableView& view,
                                   const BoundExpr& predicate,
                                   SelectionVector base) {
  std::vector<const BoundExpr*> conjuncts = FlattenConjuncts(predicate);
  AlignedVector<uint32_t> rows = std::move(*base.mutable_rows());
  MOSAIC_RETURN_IF_ERROR(RefineRows(view, conjuncts, 0, &rows));
  return SelectionVector(std::move(rows));
}

[[nodiscard]] Result<SelectionVector> FilterSlice(const TableView& view,
                                    const BoundExpr& predicate,
                                    SelectionSlice base) {
  std::vector<const BoundExpr*> conjuncts = FlattenConjuncts(predicate);
  // First conjunct runs over the zero-copy slice; survivors become
  // the owning list the remaining conjuncts refine in place.
  AlignedVector<uint32_t> rows;
  if (conjuncts.empty() || base.empty()) {
    rows.assign(base.begin(), base.end());
    return SelectionVector(std::move(rows));
  }
  MOSAIC_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                          EvalMask(*conjuncts[0], view, base));
  // Sized for the worst case (every row survives): compact_rows
  // stores unconditionally, so the output needs full capacity.
  rows.resize(base.size());
  const size_t kept = simd::ActiveKernels().compact_rows(
      base.data(), mask.data(), 1, base.size(), rows.data());
  rows.resize(kept);
  MOSAIC_RETURN_IF_ERROR(RefineRows(view, conjuncts, 1, &rows));
  return SelectionVector(std::move(rows));
}

[[nodiscard]] Result<SelectionVector> SelectRows(const TableView& view,
                                   const sql::Expr& predicate) {
  Binder binder(&view.schema());
  MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(predicate));
  if (bound->type != DataType::kBool) {
    return Status::TypeError("WHERE predicate must be boolean, got " +
                             std::string(DataTypeName(bound->type)));
  }
  return FilterView(view, *bound);
}

}  // namespace exec
}  // namespace mosaic
