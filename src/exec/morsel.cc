#include "exec/morsel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "common/synchronization.h"

namespace mosaic {
namespace exec {

namespace {

/// Shared between the submitting thread and helper tasks. Owned by
/// shared_ptr so a helper task that the pool only dequeues after the
/// driver already returned (all morsels claimed by then) still has a
/// valid counter to read before exiting.
struct ClaimState {
  explicit ClaimState(size_t total) : total(total), status(total) {}

  const size_t total;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  /// Set on the first morsel failure; later claims are counted but
  /// not executed. Determinism is unaffected: claims are handed out
  /// in index order, so the lowest-index failing morsel is always
  /// claimed (and run) before any other failing morsel, and every
  /// skipped morsel has a higher index than an already-recorded
  /// failure.
  std::atomic<bool> failed{false};
  /// Per-morsel results; slots are only written by the claimer of
  /// that morsel and only read after `done` reached `total`
  /// (release/acquire on `done` orders the accesses).
  std::vector<Status> status;
  /// mu orders the final notify against the driver's wait; the data
  /// it fences (done/status) is already atomic-ordered, so nothing is
  /// GUARDED_BY it.
  Mutex mu;
  CondVar all_done;
  /// Null once the driver returned; guarded by the claim protocol:
  /// only dereferenced for a successfully claimed morsel, and the
  /// driver cannot return while any morsel is claimed but unfinished.
  const std::function<Status(size_t)>* fn;
};

void ClaimLoop(ClaimState* state) {
  for (;;) {
    const size_t m = state->next.fetch_add(1, std::memory_order_relaxed);
    if (m >= state->total) return;
    if (!state->failed.load(std::memory_order_relaxed)) {
      // fn must not throw (the executor surfaces all failures as
      // Status); the belt-and-braces catch keeps a violation from
      // tearing down a pool worker.
      try {
        state->status[m] = (*state->fn)(m);
      } catch (...) {
        state->status[m] = Status::Internal("morsel task threw");
      }
      if (!state->status[m].ok()) {
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
    // A claim made after a failure is counted but skipped (its slot
    // stays OK) — the serial path's first-error short-circuit,
    // without breaking the done-counter protocol.
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->total) {
      MutexLock lock(state->mu);
      state->all_done.NotifyAll();
    }
  }
}

}  // namespace

Status MorselDriver::Run(size_t num_morsels,
                         const std::function<Status(size_t)>& fn) const {
  if (num_morsels == 0) return Status::OK();
  if (num_morsels == 1) return fn(0);

  size_t helpers = 0;
  if (options_.pool != nullptr) {
    helpers = options_.parallelism == 0 ? options_.pool->num_threads()
                                        : options_.parallelism - 1;
    helpers = std::min(helpers,
                       std::min(options_.pool->num_threads(),
                                num_morsels - 1));
    // Don't enqueue helpers a busy pool cannot serve: a helper that
    // only runs after all morsels are claimed is pure queue churn
    // ahead of real work. pending() counts queued + running (incl.
    // the query task calling this from a pool worker), so this is the
    // pool's idle capacity right now — a heuristic, not a guarantee;
    // correctness never depends on helpers running.
    const size_t busy = options_.pool->pending();
    const size_t idle = options_.pool->num_threads() > busy
                            ? options_.pool->num_threads() - busy
                            : 0;
    helpers = std::min(helpers, idle);
  }
  if (helpers == 0) {
    // Single-threaded: still morsel-at-a-time (callers rely on the
    // partition/merge structure for parity testing), with the
    // deterministic first-error short-circuit for free.
    for (size_t m = 0; m < num_morsels; ++m) {
      MOSAIC_RETURN_IF_ERROR(fn(m));
    }
    return Status::OK();
  }

  auto state = std::make_shared<ClaimState>(num_morsels);
  state->fn = &fn;
  for (size_t h = 0; h < helpers; ++h) {
    // Futures are intentionally dropped: completion is tracked by the
    // done counter, and a helper dequeued late (even after this call
    // returned) finds no unclaimed morsel and exits without touching
    // `fn`.
    options_.pool->Submit([state] { ClaimLoop(state.get()); });
  }
  ClaimLoop(state.get());
  {
    MutexLock lock(state->mu);
    while (state->done.load(std::memory_order_acquire) != state->total) {
      state->all_done.Wait(lock);
    }
  }
  state->fn = nullptr;
  for (size_t m = 0; m < num_morsels; ++m) {
    MOSAIC_RETURN_IF_ERROR(std::move(state->status[m]));
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace mosaic
