#include "exec/expr_eval.h"

#include <cmath>

#include "common/string_util.h"

namespace mosaic {
namespace exec {

namespace {

bool IsNumericType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kBool;
}

/// Static result type of an arithmetic binary op.
[[nodiscard]] Result<DataType> ArithmeticType(sql::BinaryOp op, DataType lhs,
                                DataType rhs) {
  if (!IsNumericType(lhs) || !IsNumericType(rhs)) {
    return Status::TypeError("arithmetic requires numeric operands");
  }
  if (op == sql::BinaryOp::kDiv) return DataType::kDouble;
  if (lhs == DataType::kInt64 && rhs == DataType::kInt64) {
    return DataType::kInt64;
  }
  return DataType::kDouble;
}

}  // namespace

Result<BoundExprPtr> Binder::Bind(const sql::Expr& expr) {
  auto out = std::make_unique<BoundExpr>();
  switch (expr.kind) {
    case sql::Expr::Kind::kLiteral: {
      out->kind = BoundExpr::Kind::kLiteral;
      out->literal = expr.literal;
      out->type = expr.literal.type();
      return out;
    }
    case sql::Expr::Kind::kColumnRef: {
      auto idx = schema_->FindColumn(expr.column);
      if (!idx) {
        return Status::BindError("unknown column '" + expr.column + "'");
      }
      out->kind = BoundExpr::Kind::kColumnRef;
      out->column_index = *idx;
      out->type = schema_->column(*idx).type;
      return out;
    }
    case sql::Expr::Kind::kUnary: {
      MOSAIC_ASSIGN_OR_RETURN(out->child, Bind(*expr.child));
      out->kind = BoundExpr::Kind::kUnary;
      out->unary_op = expr.unary_op;
      if (expr.unary_op == sql::UnaryOp::kNot) {
        if (out->child->type != DataType::kBool) {
          return Status::TypeError("NOT requires a boolean operand");
        }
        out->type = DataType::kBool;
      } else {
        if (!IsNumericType(out->child->type)) {
          return Status::TypeError("unary '-' requires a numeric operand");
        }
        out->type = out->child->type == DataType::kInt64 ? DataType::kInt64
                                                         : DataType::kDouble;
      }
      return out;
    }
    case sql::Expr::Kind::kBinary: {
      MOSAIC_ASSIGN_OR_RETURN(out->left, Bind(*expr.left));
      MOSAIC_ASSIGN_OR_RETURN(out->right, Bind(*expr.right));
      out->kind = BoundExpr::Kind::kBinary;
      out->binary_op = expr.binary_op;
      switch (expr.binary_op) {
        case sql::BinaryOp::kAnd:
        case sql::BinaryOp::kOr:
          if (out->left->type != DataType::kBool ||
              out->right->type != DataType::kBool) {
            return Status::TypeError("AND/OR require boolean operands");
          }
          out->type = DataType::kBool;
          break;
        case sql::BinaryOp::kEq:
        case sql::BinaryOp::kNe:
        case sql::BinaryOp::kLt:
        case sql::BinaryOp::kLe:
        case sql::BinaryOp::kGt:
        case sql::BinaryOp::kGe: {
          DataType lt = out->left->type, rt = out->right->type;
          bool ok = (IsNumericType(lt) && IsNumericType(rt)) ||
                    (lt == DataType::kString && rt == DataType::kString);
          if (!ok) {
            return Status::TypeError(
                std::string("cannot compare ") + DataTypeName(lt) + " with " +
                DataTypeName(rt));
          }
          out->type = DataType::kBool;
          break;
        }
        case sql::BinaryOp::kAdd:
        case sql::BinaryOp::kSub:
        case sql::BinaryOp::kMul:
        case sql::BinaryOp::kDiv: {
          MOSAIC_ASSIGN_OR_RETURN(
              out->type,
              ArithmeticType(expr.binary_op, out->left->type,
                             out->right->type));
          break;
        }
      }
      return out;
    }
    case sql::Expr::Kind::kIn: {
      MOSAIC_ASSIGN_OR_RETURN(out->child, Bind(*expr.child));
      out->kind = BoundExpr::Kind::kIn;
      out->in_list = expr.in_list;
      for (const auto& v : expr.in_list) {
        bool ok = (IsNumericType(out->child->type) &&
                   IsNumericType(v.type())) ||
                  (out->child->type == DataType::kString &&
                   v.type() == DataType::kString);
        if (!ok) {
          return Status::TypeError("IN list value " + v.ToString() +
                                   " does not match subject type");
        }
      }
      out->type = DataType::kBool;
      return out;
    }
    case sql::Expr::Kind::kBetween: {
      MOSAIC_ASSIGN_OR_RETURN(out->child, Bind(*expr.child));
      MOSAIC_ASSIGN_OR_RETURN(out->between_lo, Bind(*expr.between_lo));
      MOSAIC_ASSIGN_OR_RETURN(out->between_hi, Bind(*expr.between_hi));
      if (!IsNumericType(out->child->type) ||
          !IsNumericType(out->between_lo->type) ||
          !IsNumericType(out->between_hi->type)) {
        return Status::TypeError("BETWEEN requires numeric operands");
      }
      out->kind = BoundExpr::Kind::kBetween;
      out->type = DataType::kBool;
      return out;
    }
    case sql::Expr::Kind::kAggregate: {
      if (agg_mapper_ == nullptr) {
        return Status::BindError(
            "aggregate " + expr.ToString() +
            " not allowed here (only in SELECT list)");
      }
      MOSAIC_ASSIGN_OR_RETURN(out->agg_slot, agg_mapper_(expr, agg_ctx_));
      out->kind = BoundExpr::Kind::kAggResult;
      // Aggregates over weighted samples are doubles; the executor
      // casts COUNT back to int for unweighted plain-SQL runs.
      out->type = DataType::kDouble;
      return out;
    }
  }
  return Status::Internal("unreachable expression kind");
}

void SpecializeStringPredicates(BoundExpr* expr, const Table& table) {
  if (expr == nullptr) return;
  if (expr->kind == BoundExpr::Kind::kBinary &&
      (expr->binary_op == sql::BinaryOp::kEq ||
       expr->binary_op == sql::BinaryOp::kNe) &&
      expr->left->type == DataType::kString &&
      expr->right->type == DataType::kString) {
    const BoundExpr& l = *expr->left;
    const BoundExpr& r = *expr->right;
    const bool l_col = l.kind == BoundExpr::Kind::kColumnRef;
    const bool r_col = r.kind == BoundExpr::Kind::kColumnRef;
    if (l_col && r.kind == BoundExpr::Kind::kLiteral) {
      expr->use_codes = true;
      expr->literal_code = table.column(l.column_index)
                               .dictionary()
                               .Find(r.literal.AsString());
      return;
    }
    if (r_col && l.kind == BoundExpr::Kind::kLiteral) {
      expr->use_codes = true;
      expr->literal_code = table.column(r.column_index)
                               .dictionary()
                               .Find(l.literal.AsString());
      return;
    }
    if (l_col && r_col &&
        table.column(l.column_index).shared_dictionary() ==
            table.column(r.column_index).shared_dictionary()) {
      expr->use_codes = true;
      expr->code_pair = true;
      return;
    }
  }
  if (expr->kind == BoundExpr::Kind::kIn &&
      expr->child->kind == BoundExpr::Kind::kColumnRef &&
      expr->child->type == DataType::kString) {
    const Dictionary& dict =
        table.column(expr->child->column_index).dictionary();
    expr->use_codes = true;
    expr->in_codes.clear();
    for (const Value& item : expr->in_list) {
      const int32_t code = dict.Find(item.AsString());
      if (code >= 0) expr->in_codes.push_back(code);
    }
    return;
  }
  for (BoundExpr* child :
       {expr->child.get(), expr->left.get(), expr->right.get(),
        expr->between_lo.get(), expr->between_hi.get()}) {
    SpecializeStringPredicates(child, table);
  }
}

[[nodiscard]] Result<Value> EvaluateExpr(const BoundExpr& expr, const Table& table,
                           size_t row, const std::vector<Value>* agg_values) {
  switch (expr.kind) {
    case BoundExpr::Kind::kLiteral:
      return expr.literal;
    case BoundExpr::Kind::kColumnRef:
      return table.GetValue(row, expr.column_index);
    case BoundExpr::Kind::kAggResult: {
      if (agg_values == nullptr || expr.agg_slot >= agg_values->size()) {
        return Status::Internal("aggregate slot not available");
      }
      return (*agg_values)[expr.agg_slot];
    }
    case BoundExpr::Kind::kUnary: {
      MOSAIC_ASSIGN_OR_RETURN(Value v,
                              EvaluateExpr(*expr.child, table, row,
                                           agg_values));
      if (expr.unary_op == sql::UnaryOp::kNot) return Value(!v.AsBool());
      MOSAIC_ASSIGN_OR_RETURN(double d, v.ToDouble());
      if (expr.type == DataType::kInt64) {
        return Value(static_cast<int64_t>(-v.AsInt64()));
      }
      return Value(-d);
    }
    case BoundExpr::Kind::kBinary: {
      // Short-circuit logic ops.
      if (expr.binary_op == sql::BinaryOp::kAnd) {
        MOSAIC_ASSIGN_OR_RETURN(
            Value l, EvaluateExpr(*expr.left, table, row, agg_values));
        if (!l.AsBool()) return Value(false);
        return EvaluateExpr(*expr.right, table, row, agg_values);
      }
      if (expr.binary_op == sql::BinaryOp::kOr) {
        MOSAIC_ASSIGN_OR_RETURN(
            Value l, EvaluateExpr(*expr.left, table, row, agg_values));
        if (l.AsBool()) return Value(true);
        return EvaluateExpr(*expr.right, table, row, agg_values);
      }
      if (expr.use_codes) {
        bool eq;
        if (expr.code_pair) {
          eq = table.column(expr.left->column_index).GetCode(row) ==
               table.column(expr.right->column_index).GetCode(row);
        } else {
          const BoundExpr& col =
              expr.left->kind == BoundExpr::Kind::kColumnRef ? *expr.left
                                                             : *expr.right;
          eq = table.column(col.column_index).GetCode(row) ==
               expr.literal_code;
        }
        return Value(expr.binary_op == sql::BinaryOp::kEq ? eq : !eq);
      }
      MOSAIC_ASSIGN_OR_RETURN(Value l,
                              EvaluateExpr(*expr.left, table, row,
                                           agg_values));
      MOSAIC_ASSIGN_OR_RETURN(Value r,
                              EvaluateExpr(*expr.right, table, row,
                                           agg_values));
      switch (expr.binary_op) {
        case sql::BinaryOp::kEq:
          return Value(l == r);
        case sql::BinaryOp::kNe:
          return Value(!(l == r));
        case sql::BinaryOp::kLt:
          return Value(l < r);
        case sql::BinaryOp::kLe:
          return Value(!(r < l));
        case sql::BinaryOp::kGt:
          return Value(r < l);
        case sql::BinaryOp::kGe:
          return Value(!(l < r));
        case sql::BinaryOp::kAdd:
        case sql::BinaryOp::kSub:
        case sql::BinaryOp::kMul:
        case sql::BinaryOp::kDiv: {
          MOSAIC_ASSIGN_OR_RETURN(double lv, l.ToDouble());
          MOSAIC_ASSIGN_OR_RETURN(double rv, r.ToDouble());
          double result;
          switch (expr.binary_op) {
            case sql::BinaryOp::kAdd:
              result = lv + rv;
              break;
            case sql::BinaryOp::kSub:
              result = lv - rv;
              break;
            case sql::BinaryOp::kMul:
              result = lv * rv;
              break;
            default:
              if (rv == 0.0) {
                return Status::ExecutionError("division by zero");
              }
              result = lv / rv;
              break;
          }
          if (expr.type == DataType::kInt64) {
            return Value(static_cast<int64_t>(std::llround(result)));
          }
          return Value(result);
        }
        default:
          return Status::Internal("unreachable binary op");
      }
    }
    case BoundExpr::Kind::kIn: {
      if (expr.use_codes) {
        const int32_t code =
            table.column(expr.child->column_index).GetCode(row);
        for (int32_t c : expr.in_codes) {
          if (c == code) return Value(true);
        }
        return Value(false);
      }
      MOSAIC_ASSIGN_OR_RETURN(Value v,
                              EvaluateExpr(*expr.child, table, row,
                                           agg_values));
      for (const auto& item : expr.in_list) {
        if (v == item) return Value(true);
      }
      return Value(false);
    }
    case BoundExpr::Kind::kBetween: {
      MOSAIC_ASSIGN_OR_RETURN(Value v,
                              EvaluateExpr(*expr.child, table, row,
                                           agg_values));
      MOSAIC_ASSIGN_OR_RETURN(Value lo,
                              EvaluateExpr(*expr.between_lo, table, row,
                                           agg_values));
      MOSAIC_ASSIGN_OR_RETURN(Value hi,
                              EvaluateExpr(*expr.between_hi, table, row,
                                           agg_values));
      return Value(!(v < lo) && !(hi < v));
    }
  }
  return Status::Internal("unreachable bound expression kind");
}

[[nodiscard]] Result<std::vector<size_t>> FilterRows(const Table& table,
                                       const sql::Expr& predicate) {
  Binder binder(&table.schema());
  MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(predicate));
  if (bound->type != DataType::kBool) {
    return Status::TypeError("WHERE predicate must be boolean, got " +
                             std::string(DataTypeName(bound->type)));
  }
  SpecializeStringPredicates(bound.get(), table);
  std::vector<size_t> rows;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    MOSAIC_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*bound, table, r));
    if (v.AsBool()) rows.push_back(r);
  }
  return rows;
}

[[nodiscard]] Result<Value> EvaluateScalarOnRow(const Table& table, size_t row,
                                  const sql::Expr& expr) {
  Binder binder(&table.schema());
  MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(expr));
  return EvaluateExpr(*bound, table, row);
}

}  // namespace exec
}  // namespace mosaic
