// Morsel-driven intra-query parallelism for the batch executor
// (Leis et al., "Morsel-Driven Parallelism", the scheduling model
// behind modern vectorized engines).
//
// A query's selection vector is split into fixed-size morsels; WHERE
// kernels, expression evaluation, group-key gathering, and the exact
// (order-insensitive) aggregate partials run per morsel, possibly on
// several threads, and the partial states are merged in morsel order.
// Because the concatenation of per-morsel results in morsel order is
// exactly the sequence the single-threaded batch path produces, every
// merge is deterministic and the morsel path is bit-identical to the
// batch path (and hence to the row-path oracle) at every morsel size
// and thread count. Floating-point sums are the one aggregate whose
// merge order would change the rounding, so they are reduced serially
// in selection order over per-row products computed in parallel —
// see executor.cc.
//
// Scheduling: MorselDriver::Run never blocks on queued pool work.
// The calling thread claims morsels from a shared atomic counter and
// executes them itself; helper tasks submitted to the (shared) pool
// do the same when a worker picks them up. A helper that only runs
// after all morsels are claimed exits immediately, so the driver is
// deadlock-free even when the pool is saturated with other queries'
// work or has a single thread — the property that lets the query
// service share one request pool between inter-query and intra-query
// parallelism.
#ifndef MOSAIC_EXEC_MORSEL_H_
#define MOSAIC_EXEC_MORSEL_H_

#include <cstddef>
#include <functional>
#include <utility>

#include "common/status.h"
#include "common/thread_pool.h"

namespace mosaic {
namespace exec {

struct MorselOptions {
  /// Rows per morsel; 0 disables morsel execution (the batch path
  /// runs single-threaded over the whole selection).
  size_t morsel_size = 0;
  /// Maximum concurrent morsels, counting the calling thread;
  /// 0 = calling thread plus every pool worker.
  size_t parallelism = 0;
  /// Extra workers (typically the service's request pool). Null means
  /// morsels still partition and merge — exercising the slicing and
  /// merge logic — but run only on the calling thread.
  ThreadPool* pool = nullptr;

  bool enabled() const { return morsel_size > 0; }
};

/// Partitions [0, n) row positions into morsels and runs a callback
/// per morsel, claim-loop style (see file comment).
class MorselDriver {
 public:
  explicit MorselDriver(const MorselOptions& options) : options_(options) {}

  const MorselOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled(); }

  /// Number of morsels covering `rows` positions (0 for empty input).
  size_t NumMorsels(size_t rows) const {
    if (!enabled() || rows == 0) return rows == 0 ? 0 : 1;
    return (rows + options_.morsel_size - 1) / options_.morsel_size;
  }

  /// [begin, end) positions of morsel `m` out of NumMorsels(rows).
  std::pair<size_t, size_t> Range(size_t rows, size_t m) const {
    if (!enabled()) return {0, rows};
    size_t begin = m * options_.morsel_size;
    size_t end = begin + options_.morsel_size;
    if (begin > rows) begin = rows;
    if (end > rows) end = rows;
    return {begin, end};
  }

  /// Run fn(m) for every morsel index m in [0, num_morsels). fn must
  /// be safe to call concurrently for distinct m, must not throw, and
  /// should write its result into caller-preallocated per-morsel
  /// slots. Returns the error of the lowest failing morsel index
  /// (deterministic regardless of execution interleaving). Blocks
  /// until every started morsel finished; never blocks on pool
  /// capacity.
  [[nodiscard]] Status Run(size_t num_morsels,
             const std::function<Status(size_t)>& fn) const;

 private:
  MorselOptions options_;
};

}  // namespace exec
}  // namespace mosaic

#endif  // MOSAIC_EXEC_MORSEL_H_
