// Pure-scalar kernel table: the parity reference every wider ISA is
// tested against, and the fallback when MOSAIC_SIMD=0 or the CPU
// supports nothing wider.
#include "exec/simd_internal.h"

namespace mosaic {
namespace exec {
namespace simd {

const KernelTable& ScalarKernels() {
  static const KernelTable table = internal::MakeScalarTable();
  return table;
}

}  // namespace simd
}  // namespace exec
}  // namespace mosaic
