#include "exec/trace_table.h"

#include <string>

namespace mosaic {
namespace exec {

Table TraceToTable(const trace::QueryTrace& trace) {
  Schema schema;
  // Schema construction cannot fail here: names are distinct.
  (void)schema.AddColumn({"span", DataType::kString});
  (void)schema.AddColumn({"start_us", DataType::kInt64});
  (void)schema.AddColumn({"duration_us", DataType::kInt64});
  (void)schema.AddColumn({"detail", DataType::kString});
  Table out(schema);
  trace.Visit([&](const trace::Span& span, size_t depth) {
    (void)out.AppendRow({Value(std::string(depth * 2, ' ') + span.name),
                         Value(static_cast<int64_t>(span.start_us)),
                         Value(static_cast<int64_t>(span.duration_us())),
                         Value(span.note)});
  });
  return out;
}

}  // namespace exec
}  // namespace mosaic
