#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "common/string_util.h"
#include "exec/expr_eval.h"

namespace mosaic {
namespace exec {

namespace {

/// One aggregate call site lifted out of the SELECT list.
struct AggSpec {
  sql::AggFunc func;
  bool is_star = false;
  BoundExprPtr arg;       // null for COUNT(*)
  std::string rendering;  // dedup key, e.g. "AVG(distance)"
};

/// Accumulator for one aggregate within one group.
struct AggAccum {
  double sum_w = 0.0;
  double sum_wx = 0.0;
  int64_t count_n = 0;
  Value vmin;
  Value vmax;
  bool any = false;
};

struct AggCollection {
  std::vector<AggSpec> specs;
  Binder* binder = nullptr;
  Status error;

  Result<size_t> MapAggregate(const sql::Expr& expr) {
    std::string key = expr.ToString();
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].rendering == key) return i;
    }
    AggSpec spec;
    spec.func = expr.agg_func;
    spec.is_star = expr.agg_is_star;
    spec.rendering = key;
    if (!spec.is_star) {
      if (expr.child == nullptr) {
        return Status::BindError("aggregate missing argument: " + key);
      }
      if (expr.child->ContainsAggregate()) {
        return Status::BindError("nested aggregates are not allowed: " + key);
      }
      MOSAIC_ASSIGN_OR_RETURN(spec.arg, binder->Bind(*expr.child));
    }
    specs.push_back(std::move(spec));
    return specs.size() - 1;
  }

  static Result<size_t> MapAggregateThunk(const sql::Expr& expr, void* ctx) {
    return static_cast<AggCollection*>(ctx)->MapAggregate(expr);
  }
};

/// Column name for an output select item.
std::string OutputName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == sql::Expr::Kind::kColumnRef) {
    return item.expr->column;
  }
  return item.expr->ToString();
}

/// In an aggregate query, any column reference outside an aggregate
/// must be a GROUP BY key (non-key columns have no single value per
/// group).
Status ValidateGroupColumnRefs(const sql::Expr& expr,
                               const std::vector<std::string>& group_by) {
  if (expr.kind == sql::Expr::Kind::kAggregate) return Status::OK();
  if (expr.kind == sql::Expr::Kind::kColumnRef) {
    for (const auto& g : group_by) {
      if (EqualsIgnoreCase(g, expr.column)) return Status::OK();
    }
    return Status::BindError("column '" + expr.column +
                             "' must appear in GROUP BY or inside an "
                             "aggregate");
  }
  for (const sql::Expr* child :
       {expr.child.get(), expr.left.get(), expr.right.get(),
        expr.between_lo.get(), expr.between_hi.get()}) {
    if (child != nullptr) {
      MOSAIC_RETURN_IF_ERROR(ValidateGroupColumnRefs(*child, group_by));
    }
  }
  return Status::OK();
}

/// Add an output column, suffixing "_2", "_3", ... on name collisions
/// (SQL permits duplicate select-item names; our schemas do not).
Status AddOutputColumn(Schema* schema, std::string name, DataType type) {
  if (!schema->FindColumn(name)) {
    return schema->AddColumn(ColumnDef{std::move(name), type});
  }
  for (int suffix = 2;; ++suffix) {
    std::string candidate = name + "_" + std::to_string(suffix);
    if (!schema->FindColumn(candidate)) {
      return schema->AddColumn(ColumnDef{std::move(candidate), type});
    }
  }
}

Result<Value> Finalize(const AggSpec& spec, const AggAccum& acc,
                       bool weighted) {
  switch (spec.func) {
    case sql::AggFunc::kCount:
      if (weighted) return Value(acc.sum_w);
      return Value(acc.count_n);
    case sql::AggFunc::kSum:
      return Value(acc.sum_wx);
    case sql::AggFunc::kAvg:
      if (acc.sum_w == 0.0) {
        return Status::ExecutionError("AVG over empty/zero-weight group");
      }
      return Value(acc.sum_wx / acc.sum_w);
    case sql::AggFunc::kMin:
      if (!acc.any) {
        return Status::ExecutionError("MIN over empty group");
      }
      return acc.vmin;
    case sql::AggFunc::kMax:
      if (!acc.any) {
        return Status::ExecutionError("MAX over empty group");
      }
      return acc.vmax;
  }
  return Status::Internal("unreachable aggregate func");
}

DataType AggOutputType(const AggSpec& spec, bool weighted) {
  switch (spec.func) {
    case sql::AggFunc::kCount:
      return weighted ? DataType::kDouble : DataType::kInt64;
    case sql::AggFunc::kSum:
    case sql::AggFunc::kAvg:
      return DataType::kDouble;
    case sql::AggFunc::kMin:
    case sql::AggFunc::kMax:
      return spec.arg != nullptr ? spec.arg->type : DataType::kDouble;
  }
  return DataType::kDouble;
}

Status ApplyOrderByAndLimit(const sql::SelectStmt& stmt, Table* out,
                            bool skip_order = false) {
  if (!stmt.order_by.empty() && !skip_order) {
    std::vector<std::pair<size_t, bool>> keys;  // (col, desc)
    for (const auto& o : stmt.order_by) {
      auto idx = out->schema().FindColumn(o.column);
      if (!idx) {
        return Status::BindError("ORDER BY column '" + o.column +
                                 "' not in result set");
      }
      keys.emplace_back(*idx, o.descending);
    }
    std::vector<size_t> order(out->num_rows());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (const auto& [col, desc] : keys) {
        Value va = out->GetValue(a, col);
        Value vb = out->GetValue(b, col);
        if (va < vb) return !desc;
        if (vb < va) return desc;
      }
      return false;
    });
    *out = out->Filter(order);
  }
  if (stmt.limit && static_cast<size_t>(*stmt.limit) < out->num_rows()) {
    std::vector<size_t> head(static_cast<size_t>(*stmt.limit));
    std::iota(head.begin(), head.end(), size_t{0});
    *out = out->Filter(head);
  }
  return Status::OK();
}

}  // namespace

Result<double> TotalWeight(const Table& table,
                           const std::string& weight_column) {
  if (weight_column.empty()) {
    return static_cast<double>(table.num_rows());
  }
  MOSAIC_ASSIGN_OR_RETURN(const Column* col,
                          table.ColumnByName(weight_column));
  double total = 0.0;
  for (size_t r = 0; r < col->size(); ++r) {
    MOSAIC_ASSIGN_OR_RETURN(double w, col->GetDouble(r));
    total += w;
  }
  return total;
}

Result<Table> ExecuteSelect(const Table& source, const sql::SelectStmt& stmt,
                            const ExecOptions& opts) {
  const Schema& schema = source.schema();
  const bool weighted = !opts.weight_column.empty();
  std::optional<size_t> weight_idx;
  if (weighted) {
    auto idx = schema.FindColumn(opts.weight_column);
    if (!idx) {
      return Status::BindError("weight column '" + opts.weight_column +
                               "' not found");
    }
    weight_idx = *idx;
  }

  // --- WHERE ---------------------------------------------------------------
  std::vector<size_t> rows;
  if (stmt.where != nullptr) {
    if (stmt.where->ContainsAggregate()) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    MOSAIC_ASSIGN_OR_RETURN(rows, FilterRows(source, *stmt.where));
  } else {
    rows.resize(source.num_rows());
    std::iota(rows.begin(), rows.end(), size_t{0});
  }

  // --- Detect aggregation --------------------------------------------------
  bool has_aggregates = false;
  for (const auto& item : stmt.items) {
    if (item.expr->ContainsAggregate()) has_aggregates = true;
  }
  if (stmt.having != nullptr && stmt.having->ContainsAggregate()) {
    has_aggregates = true;
  }
  if (stmt.select_star && (has_aggregates || !stmt.group_by.empty())) {
    return Status::BindError("SELECT * cannot be combined with aggregation");
  }
  if (!stmt.group_by.empty() && !has_aggregates) {
    return Status::BindError("GROUP BY requires aggregates in SELECT list");
  }

  // --- Projection-only path ------------------------------------------------
  if (!has_aggregates) {
    Binder binder(&schema);
    std::vector<BoundExprPtr> bound_items;
    Schema out_schema;
    if (stmt.select_star) {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        if (weight_idx && c == *weight_idx) continue;  // hide weight
        auto e = std::make_unique<BoundExpr>();
        e->kind = BoundExpr::Kind::kColumnRef;
        e->column_index = c;
        e->type = schema.column(c).type;
        bound_items.push_back(std::move(e));
        MOSAIC_RETURN_IF_ERROR(out_schema.AddColumn(schema.column(c)));
      }
    } else {
      for (const auto& item : stmt.items) {
        MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(*item.expr));
        MOSAIC_RETURN_IF_ERROR(
            AddOutputColumn(&out_schema, OutputName(item), bound->type));
        bound_items.push_back(std::move(bound));
      }
    }
    // ORDER BY may reference columns of the source relation that are
    // not projected (standard SQL): when any order column is missing
    // from the output, sort the selected row ids by the source
    // columns before projecting.
    bool presorted = false;
    if (!stmt.order_by.empty()) {
      bool all_in_output = true;
      for (const auto& o : stmt.order_by) {
        if (!out_schema.FindColumn(o.column)) all_in_output = false;
      }
      if (!all_in_output) {
        std::vector<std::pair<size_t, bool>> keys;
        for (const auto& o : stmt.order_by) {
          auto idx = schema.FindColumn(o.column);
          if (!idx) {
            return Status::BindError("ORDER BY column '" + o.column +
                                     "' not found");
          }
          keys.emplace_back(*idx, o.descending);
        }
        std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
          for (const auto& [col, desc] : keys) {
            Value va = source.GetValue(a, col);
            Value vb = source.GetValue(b, col);
            if (va < vb) return !desc;
            if (vb < va) return desc;
          }
          return false;
        });
        presorted = true;
      }
    }
    Table out(out_schema);
    out.Reserve(rows.size());
    std::vector<Value> row(bound_items.size());
    for (size_t r : rows) {
      for (size_t c = 0; c < bound_items.size(); ++c) {
        MOSAIC_ASSIGN_OR_RETURN(row[c],
                                EvaluateExpr(*bound_items[c], source, r));
      }
      MOSAIC_RETURN_IF_ERROR(out.AppendRow(row));
    }
    MOSAIC_RETURN_IF_ERROR(ApplyOrderByAndLimit(stmt, &out, presorted));
    return out;
  }

  // --- Aggregation path ----------------------------------------------------
  // Resolve GROUP BY columns.
  std::vector<size_t> group_cols;
  for (const auto& name : stmt.group_by) {
    auto idx = schema.FindColumn(name);
    if (!idx) {
      return Status::BindError("GROUP BY column '" + name + "' not found");
    }
    group_cols.push_back(*idx);
  }

  // Lift aggregates out of the SELECT items; bind post-aggregation
  // projections against group keys + agg slots.
  Binder binder(&schema);
  AggCollection aggs;
  aggs.binder = &binder;
  binder.set_aggregate_mapper(&AggCollection::MapAggregateThunk, &aggs);

  std::vector<BoundExprPtr> bound_items;
  for (const auto& item : stmt.items) {
    // Column refs outside aggregates must be GROUP BY keys.
    MOSAIC_RETURN_IF_ERROR(
        ValidateGroupColumnRefs(*item.expr, stmt.group_by));
    MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(*item.expr));
    bound_items.push_back(std::move(bound));
  }
  // HAVING binds through the same aggregate-lifting machinery, so any
  // aggregates it mentions get slots and are accumulated below.
  BoundExprPtr bound_having;
  if (stmt.having != nullptr) {
    MOSAIC_RETURN_IF_ERROR(
        ValidateGroupColumnRefs(*stmt.having, stmt.group_by));
    MOSAIC_ASSIGN_OR_RETURN(bound_having, binder.Bind(*stmt.having));
    if (bound_having->type != DataType::kBool) {
      return Status::TypeError("HAVING predicate must be boolean");
    }
  }

  // Accumulate per group. std::map over key vectors gives a
  // deterministic (sorted) group order.
  std::map<std::vector<Value>, std::vector<AggAccum>> groups;
  for (size_t r : rows) {
    std::vector<Value> key;
    key.reserve(group_cols.size());
    for (size_t c : group_cols) key.push_back(source.GetValue(r, c));
    auto [it, inserted] = groups.try_emplace(
        std::move(key), std::vector<AggAccum>(aggs.specs.size()));
    double w = 1.0;
    if (weight_idx) {
      MOSAIC_ASSIGN_OR_RETURN(w, source.column(*weight_idx).GetDouble(r));
    }
    for (size_t a = 0; a < aggs.specs.size(); ++a) {
      AggAccum& acc = it->second[a];
      const AggSpec& spec = aggs.specs[a];
      acc.sum_w += w;
      acc.count_n += 1;
      if (!spec.is_star && spec.arg != nullptr) {
        MOSAIC_ASSIGN_OR_RETURN(Value v,
                                EvaluateExpr(*spec.arg, source, r));
        if (spec.func == sql::AggFunc::kSum ||
            spec.func == sql::AggFunc::kAvg) {
          MOSAIC_ASSIGN_OR_RETURN(double x, v.ToDouble());
          acc.sum_wx += w * x;
        }
        if (!acc.any || v < acc.vmin) acc.vmin = v;
        if (!acc.any || acc.vmax < v) acc.vmax = v;
        acc.any = true;
      }
    }
  }
  // GROUP BY with no matching rows yields an empty result; a global
  // aggregate (no GROUP BY) yields one row even over zero rows.
  if (groups.empty() && stmt.group_by.empty()) {
    groups.emplace(std::vector<Value>{},
                   std::vector<AggAccum>(aggs.specs.size()));
  }

  // Output schema: SELECT items, typed by bound expression (group key
  // columns keep their source type).
  Schema out_schema;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    DataType type = bound_items[i]->type;
    if (bound_items[i]->kind == BoundExpr::Kind::kAggResult) {
      type = AggOutputType(aggs.specs[bound_items[i]->agg_slot], weighted);
    }
    MOSAIC_RETURN_IF_ERROR(
        AddOutputColumn(&out_schema, OutputName(stmt.items[i]), type));
  }
  Table out(out_schema);
  out.Reserve(groups.size());

  // Build a per-group synthetic row table so post-aggregation
  // expressions (e.g. AVG(x)/2, key columns) can be evaluated through
  // the normal path: group keys live in a one-row table, aggregate
  // values in agg_values.
  for (const auto& [key, accs] : groups) {
    std::vector<Value> agg_values(aggs.specs.size());
    for (size_t a = 0; a < aggs.specs.size(); ++a) {
      MOSAIC_ASSIGN_OR_RETURN(agg_values[a],
                              Finalize(aggs.specs[a], accs[a], weighted));
    }
    Table key_row(schema);
    if (!key.empty()) {
      // A full-width row carrying the group key values; non-key
      // columns hold the first value of the group (never read:
      // non-key column refs were rejected at bind time, and aggregate
      // args were evaluated during accumulation).
      std::vector<Value> row_vals(schema.num_columns(), Value(int64_t{0}));
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        // Fill with a type-correct placeholder.
        switch (schema.column(c).type) {
          case DataType::kInt64:
            row_vals[c] = Value(int64_t{0});
            break;
          case DataType::kDouble:
            row_vals[c] = Value(0.0);
            break;
          case DataType::kBool:
            row_vals[c] = Value(false);
            break;
          case DataType::kString:
            row_vals[c] = Value(std::string());
            break;
          default:
            break;
        }
      }
      for (size_t k = 0; k < group_cols.size(); ++k) {
        row_vals[group_cols[k]] = key[k];
      }
      MOSAIC_RETURN_IF_ERROR(key_row.AppendRow(row_vals));
    } else {
      // Global aggregate: no key columns may be referenced.
      std::vector<Value> row_vals;
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        switch (schema.column(c).type) {
          case DataType::kInt64:
            row_vals.emplace_back(int64_t{0});
            break;
          case DataType::kDouble:
            row_vals.emplace_back(0.0);
            break;
          case DataType::kBool:
            row_vals.emplace_back(false);
            break;
          case DataType::kString:
            row_vals.emplace_back(std::string());
            break;
          default:
            break;
        }
      }
      MOSAIC_RETURN_IF_ERROR(key_row.AppendRow(row_vals));
    }
    if (bound_having != nullptr) {
      MOSAIC_ASSIGN_OR_RETURN(
          Value keep, EvaluateExpr(*bound_having, key_row, 0, &agg_values));
      if (!keep.AsBool()) continue;
    }
    std::vector<Value> out_row(bound_items.size());
    for (size_t c = 0; c < bound_items.size(); ++c) {
      MOSAIC_ASSIGN_OR_RETURN(
          out_row[c], EvaluateExpr(*bound_items[c], key_row, 0, &agg_values));
    }
    MOSAIC_RETURN_IF_ERROR(out.AppendRow(out_row));
  }

  MOSAIC_RETURN_IF_ERROR(ApplyOrderByAndLimit(stmt, &out));
  return out;
}

}  // namespace exec
}  // namespace mosaic
