#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "common/aligned.h"
#include "common/string_util.h"
#include "exec/batch_eval.h"
#include "exec/expr_eval.h"
#include "exec/simd.h"

namespace mosaic {
namespace exec {

namespace {

/// One aggregate call site lifted out of the SELECT list.
struct AggSpec {
  sql::AggFunc func;
  bool is_star = false;
  BoundExprPtr arg;       // null for COUNT(*)
  std::string rendering;  // dedup key, e.g. "AVG(distance)"
};

/// Accumulator for one aggregate within one group.
struct AggAccum {
  double sum_w = 0.0;
  double sum_wx = 0.0;
  int64_t count_n = 0;
  Value vmin;
  Value vmax;
  bool any = false;
};

/// Groups in output order: (key values, one accumulator per spec).
using SortedGroups =
    std::vector<std::pair<std::vector<Value>, std::vector<AggAccum>>>;

struct AggCollection {
  std::vector<AggSpec> specs;
  Binder* binder = nullptr;
  Status error;

  [[nodiscard]] Result<size_t> MapAggregate(const sql::Expr& expr) {
    std::string key = expr.ToString();
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].rendering == key) return i;
    }
    AggSpec spec;
    spec.func = expr.agg_func;
    spec.is_star = expr.agg_is_star;
    spec.rendering = key;
    if (!spec.is_star) {
      if (expr.child == nullptr) {
        return Status::BindError("aggregate missing argument: " + key);
      }
      if (expr.child->ContainsAggregate()) {
        return Status::BindError("nested aggregates are not allowed: " + key);
      }
      MOSAIC_ASSIGN_OR_RETURN(spec.arg, binder->Bind(*expr.child));
    }
    specs.push_back(std::move(spec));
    return specs.size() - 1;
  }

  [[nodiscard]] static Result<size_t> MapAggregateThunk(const sql::Expr& expr, void* ctx) {
    return static_cast<AggCollection*>(ctx)->MapAggregate(expr);
  }
};

/// Column name for an output select item.
std::string OutputName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == sql::Expr::Kind::kColumnRef) {
    return item.expr->column;
  }
  return item.expr->ToString();
}

/// In an aggregate query, any column reference outside an aggregate
/// must be a GROUP BY key (non-key columns have no single value per
/// group).
[[nodiscard]] Status ValidateGroupColumnRefs(const sql::Expr& expr,
                               const std::vector<std::string>& group_by) {
  if (expr.kind == sql::Expr::Kind::kAggregate) return Status::OK();
  if (expr.kind == sql::Expr::Kind::kColumnRef) {
    for (const auto& g : group_by) {
      if (EqualsIgnoreCase(g, expr.column)) return Status::OK();
    }
    return Status::BindError("column '" + expr.column +
                             "' must appear in GROUP BY or inside an "
                             "aggregate");
  }
  for (const sql::Expr* child :
       {expr.child.get(), expr.left.get(), expr.right.get(),
        expr.between_lo.get(), expr.between_hi.get()}) {
    if (child != nullptr) {
      MOSAIC_RETURN_IF_ERROR(ValidateGroupColumnRefs(*child, group_by));
    }
  }
  return Status::OK();
}

/// Add an output column, suffixing "_2", "_3", ... on name collisions
/// (SQL permits duplicate select-item names; our schemas do not).
[[nodiscard]] Status AddOutputColumn(Schema* schema, std::string name, DataType type) {
  if (!schema->FindColumn(name)) {
    return schema->AddColumn(ColumnDef{std::move(name), type});
  }
  for (int suffix = 2;; ++suffix) {
    std::string candidate = name + "_" + std::to_string(suffix);
    if (!schema->FindColumn(candidate)) {
      return schema->AddColumn(ColumnDef{std::move(candidate), type});
    }
  }
}

[[nodiscard]] Result<Value> Finalize(const AggSpec& spec, const AggAccum& acc,
                       bool weighted) {
  switch (spec.func) {
    case sql::AggFunc::kCount:
      if (weighted) return Value(acc.sum_w);
      return Value(acc.count_n);
    case sql::AggFunc::kSum:
      return Value(acc.sum_wx);
    case sql::AggFunc::kAvg:
      if (acc.sum_w == 0.0) {
        return Status::ExecutionError("AVG over empty/zero-weight group");
      }
      return Value(acc.sum_wx / acc.sum_w);
    case sql::AggFunc::kMin:
      if (!acc.any) {
        return Status::ExecutionError("MIN over empty group");
      }
      return acc.vmin;
    case sql::AggFunc::kMax:
      if (!acc.any) {
        return Status::ExecutionError("MAX over empty group");
      }
      return acc.vmax;
  }
  return Status::Internal("unreachable aggregate func");
}

DataType AggOutputType(const AggSpec& spec, bool weighted) {
  switch (spec.func) {
    case sql::AggFunc::kCount:
      return weighted ? DataType::kDouble : DataType::kInt64;
    case sql::AggFunc::kSum:
    case sql::AggFunc::kAvg:
      return DataType::kDouble;
    case sql::AggFunc::kMin:
    case sql::AggFunc::kMax:
      return spec.arg != nullptr ? spec.arg->type : DataType::kDouble;
  }
  return DataType::kDouble;
}

/// Project finalized groups through the SELECT items (and HAVING),
/// via a one-row synthetic table carrying the group key — shared by
/// the row and batch paths so post-aggregation semantics cannot
/// drift.
[[nodiscard]] Result<Table> EmitGroups(const Schema& schema, const sql::SelectStmt& stmt,
                         const std::vector<BoundExprPtr>& bound_items,
                         const BoundExpr* bound_having,
                         const std::vector<AggSpec>& specs,
                         const std::vector<size_t>& group_cols,
                         const SortedGroups& groups, bool weighted) {
  // Output schema: SELECT items, typed by bound expression (group key
  // columns keep their source type).
  Schema out_schema;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    DataType type = bound_items[i]->type;
    if (bound_items[i]->kind == BoundExpr::Kind::kAggResult) {
      type = AggOutputType(specs[bound_items[i]->agg_slot], weighted);
    }
    MOSAIC_RETURN_IF_ERROR(
        AddOutputColumn(&out_schema, OutputName(stmt.items[i]), type));
  }
  Table out(out_schema);
  out.Reserve(groups.size());

  for (const auto& [key, accs] : groups) {
    std::vector<Value> agg_values(specs.size());
    for (size_t a = 0; a < specs.size(); ++a) {
      MOSAIC_ASSIGN_OR_RETURN(agg_values[a],
                              Finalize(specs[a], accs[a], weighted));
    }
    Table key_row(schema);
    // A full-width row carrying the group key values; non-key columns
    // hold a type-correct placeholder (never read: non-key column
    // refs were rejected at bind time, and aggregate args were
    // evaluated during accumulation).
    std::vector<Value> row_vals;
    row_vals.reserve(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      switch (schema.column(c).type) {
        case DataType::kInt64:
          row_vals.emplace_back(int64_t{0});
          break;
        case DataType::kDouble:
          row_vals.emplace_back(0.0);
          break;
        case DataType::kBool:
          row_vals.emplace_back(false);
          break;
        case DataType::kString:
          row_vals.emplace_back(std::string());
          break;
        default:
          break;
      }
    }
    for (size_t k = 0; k < group_cols.size() && k < key.size(); ++k) {
      row_vals[group_cols[k]] = key[k];
    }
    MOSAIC_RETURN_IF_ERROR(key_row.AppendRow(row_vals));
    if (bound_having != nullptr) {
      MOSAIC_ASSIGN_OR_RETURN(
          Value keep, EvaluateExpr(*bound_having, key_row, 0, &agg_values));
      if (!keep.AsBool()) continue;
    }
    std::vector<Value> out_row(bound_items.size());
    for (size_t c = 0; c < bound_items.size(); ++c) {
      MOSAIC_ASSIGN_OR_RETURN(
          out_row[c], EvaluateExpr(*bound_items[c], key_row, 0, &agg_values));
    }
    MOSAIC_RETURN_IF_ERROR(out.AppendRow(out_row));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Row path (legacy interpreter, kept as the parity oracle)
// ---------------------------------------------------------------------------

[[nodiscard]] Status ApplyOrderByAndLimit(const sql::SelectStmt& stmt, Table* out,
                            bool skip_order = false) {
  if (!stmt.order_by.empty() && !skip_order) {
    std::vector<std::pair<size_t, bool>> keys;  // (col, desc)
    for (const auto& o : stmt.order_by) {
      auto idx = out->schema().FindColumn(o.column);
      if (!idx) {
        return Status::BindError("ORDER BY column '" + o.column +
                                 "' not in result set");
      }
      keys.emplace_back(*idx, o.descending);
    }
    std::vector<size_t> order(out->num_rows());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (const auto& [col, desc] : keys) {
        Value va = out->GetValue(a, col);
        Value vb = out->GetValue(b, col);
        if (va < vb) return !desc;
        if (vb < va) return desc;
      }
      return false;
    });
    *out = out->Filter(order);
  }
  if (stmt.limit && static_cast<size_t>(*stmt.limit) < out->num_rows()) {
    std::vector<size_t> head(static_cast<size_t>(*stmt.limit));
    std::iota(head.begin(), head.end(), size_t{0});
    *out = out->Filter(head);
  }
  return Status::OK();
}

[[nodiscard]] Result<Table> ExecuteSelectRow(const Table& source,
                               const sql::SelectStmt& stmt,
                               const ExecOptions& opts) {
  const Schema& schema = source.schema();
  const bool weighted = !opts.weight_column.empty();
  std::optional<size_t> weight_idx;
  if (weighted) {
    auto idx = schema.FindColumn(opts.weight_column);
    if (!idx) {
      return Status::BindError("weight column '" + opts.weight_column +
                               "' not found");
    }
    weight_idx = *idx;
  }

  // --- WHERE ---------------------------------------------------------------
  std::vector<size_t> rows;
  if (stmt.where != nullptr) {
    if (stmt.where->ContainsAggregate()) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    MOSAIC_ASSIGN_OR_RETURN(rows, FilterRows(source, *stmt.where));
  } else {
    rows.resize(source.num_rows());
    std::iota(rows.begin(), rows.end(), size_t{0});
  }

  // --- Detect aggregation --------------------------------------------------
  bool has_aggregates = false;
  for (const auto& item : stmt.items) {
    if (item.expr->ContainsAggregate()) has_aggregates = true;
  }
  if (stmt.having != nullptr && stmt.having->ContainsAggregate()) {
    has_aggregates = true;
  }
  if (stmt.select_star && (has_aggregates || !stmt.group_by.empty())) {
    return Status::BindError("SELECT * cannot be combined with aggregation");
  }
  if (!stmt.group_by.empty() && !has_aggregates) {
    return Status::BindError("GROUP BY requires aggregates in SELECT list");
  }

  // --- Projection-only path ------------------------------------------------
  if (!has_aggregates) {
    Binder binder(&schema);
    std::vector<BoundExprPtr> bound_items;
    Schema out_schema;
    if (stmt.select_star) {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        if (weight_idx && c == *weight_idx) continue;  // hide weight
        auto e = std::make_unique<BoundExpr>();
        e->kind = BoundExpr::Kind::kColumnRef;
        e->column_index = c;
        e->type = schema.column(c).type;
        bound_items.push_back(std::move(e));
        MOSAIC_RETURN_IF_ERROR(out_schema.AddColumn(schema.column(c)));
      }
    } else {
      for (const auto& item : stmt.items) {
        MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(*item.expr));
        MOSAIC_RETURN_IF_ERROR(
            AddOutputColumn(&out_schema, OutputName(item), bound->type));
        bound_items.push_back(std::move(bound));
      }
    }
    // ORDER BY may reference columns of the source relation that are
    // not projected (standard SQL): when any order column is missing
    // from the output, sort the selected row ids by the source
    // columns before projecting.
    bool presorted = false;
    if (!stmt.order_by.empty()) {
      bool all_in_output = true;
      for (const auto& o : stmt.order_by) {
        if (!out_schema.FindColumn(o.column)) all_in_output = false;
      }
      if (!all_in_output) {
        std::vector<std::pair<size_t, bool>> keys;
        for (const auto& o : stmt.order_by) {
          auto idx = schema.FindColumn(o.column);
          if (!idx) {
            return Status::BindError("ORDER BY column '" + o.column +
                                     "' not found");
          }
          keys.emplace_back(*idx, o.descending);
        }
        std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
          for (const auto& [col, desc] : keys) {
            Value va = source.GetValue(a, col);
            Value vb = source.GetValue(b, col);
            if (va < vb) return !desc;
            if (vb < va) return desc;
          }
          return false;
        });
        presorted = true;
      }
    }
    Table out(out_schema);
    out.Reserve(rows.size());
    std::vector<Value> row(bound_items.size());
    for (size_t r : rows) {
      for (size_t c = 0; c < bound_items.size(); ++c) {
        MOSAIC_ASSIGN_OR_RETURN(row[c],
                                EvaluateExpr(*bound_items[c], source, r));
      }
      MOSAIC_RETURN_IF_ERROR(out.AppendRow(row));
    }
    MOSAIC_RETURN_IF_ERROR(ApplyOrderByAndLimit(stmt, &out, presorted));
    return out;
  }

  // --- Aggregation path ----------------------------------------------------
  // Resolve GROUP BY columns.
  std::vector<size_t> group_cols;
  for (const auto& name : stmt.group_by) {
    auto idx = schema.FindColumn(name);
    if (!idx) {
      return Status::BindError("GROUP BY column '" + name + "' not found");
    }
    group_cols.push_back(*idx);
  }

  // Lift aggregates out of the SELECT items; bind post-aggregation
  // projections against group keys + agg slots.
  Binder binder(&schema);
  AggCollection aggs;
  aggs.binder = &binder;
  binder.set_aggregate_mapper(&AggCollection::MapAggregateThunk, &aggs);

  std::vector<BoundExprPtr> bound_items;
  for (const auto& item : stmt.items) {
    // Column refs outside aggregates must be GROUP BY keys.
    MOSAIC_RETURN_IF_ERROR(
        ValidateGroupColumnRefs(*item.expr, stmt.group_by));
    MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(*item.expr));
    bound_items.push_back(std::move(bound));
  }
  // HAVING binds through the same aggregate-lifting machinery, so any
  // aggregates it mentions get slots and are accumulated below.
  BoundExprPtr bound_having;
  if (stmt.having != nullptr) {
    MOSAIC_RETURN_IF_ERROR(
        ValidateGroupColumnRefs(*stmt.having, stmt.group_by));
    MOSAIC_ASSIGN_OR_RETURN(bound_having, binder.Bind(*stmt.having));
    if (bound_having->type != DataType::kBool) {
      return Status::TypeError("HAVING predicate must be boolean");
    }
  }

  // Accumulate per group. std::map over key vectors gives a
  // deterministic (sorted) group order.
  std::map<std::vector<Value>, std::vector<AggAccum>> groups;
  for (size_t r : rows) {
    std::vector<Value> key;
    key.reserve(group_cols.size());
    for (size_t c : group_cols) key.push_back(source.GetValue(r, c));
    auto [it, inserted] = groups.try_emplace(
        std::move(key), std::vector<AggAccum>(aggs.specs.size()));
    double w = 1.0;
    if (weight_idx) {
      MOSAIC_ASSIGN_OR_RETURN(w, source.column(*weight_idx).GetDouble(r));
    }
    for (size_t a = 0; a < aggs.specs.size(); ++a) {
      AggAccum& acc = it->second[a];
      const AggSpec& spec = aggs.specs[a];
      acc.sum_w += w;
      acc.count_n += 1;
      if (!spec.is_star && spec.arg != nullptr) {
        MOSAIC_ASSIGN_OR_RETURN(Value v,
                                EvaluateExpr(*spec.arg, source, r));
        if (spec.func == sql::AggFunc::kSum ||
            spec.func == sql::AggFunc::kAvg) {
          MOSAIC_ASSIGN_OR_RETURN(double x, v.ToDouble());
          acc.sum_wx += w * x;
        }
        if (!acc.any || v < acc.vmin) acc.vmin = v;
        if (!acc.any || acc.vmax < v) acc.vmax = v;
        acc.any = true;
      }
    }
  }
  // GROUP BY with no matching rows yields an empty result; a global
  // aggregate (no GROUP BY) yields one row even over zero rows.
  if (groups.empty() && stmt.group_by.empty()) {
    groups.emplace(std::vector<Value>{},
                   std::vector<AggAccum>(aggs.specs.size()));
  }

  SortedGroups sorted_groups;
  sorted_groups.reserve(groups.size());
  for (auto& [key, accs] : groups) {
    sorted_groups.emplace_back(key, std::move(accs));
  }
  MOSAIC_ASSIGN_OR_RETURN(
      Table out, EmitGroups(schema, stmt, bound_items, bound_having.get(),
                            aggs.specs, group_cols, sorted_groups, weighted));
  MOSAIC_RETURN_IF_ERROR(ApplyOrderByAndLimit(stmt, &out));
  return out;
}

// ---------------------------------------------------------------------------
// Batch path (vectorized columnar pipeline)
// ---------------------------------------------------------------------------

/// Typed sort key for one ORDER BY column, precomputed once per row
/// position: numeric columns compare through double (exactly like
/// Value::operator<), string columns through the code's lexicographic
/// rank in its dictionary.
struct SortKeyCol {
  bool is_string = false;
  bool desc = false;
  std::vector<double> num;
  std::vector<int32_t> rank;
};

/// rank[code] = lexicographic position of the code's string.
std::vector<int32_t> DictionaryRanks(const Dictionary& dict) {
  std::vector<int32_t> order(dict.size());
  std::iota(order.begin(), order.end(), 0);
  const std::vector<std::string>& values = dict.values();
  std::sort(order.begin(), order.end(),
            [&](int32_t a, int32_t b) { return values[a] < values[b]; });
  std::vector<int32_t> rank(dict.size());
  for (size_t i = 0; i < order.size(); ++i) rank[order[i]] = i;
  return rank;
}

/// Numeric sort-key gather through the active kernel table.
void GatherNumKey(const ColumnSpan& span, const uint32_t* rows, size_t n,
                  double* out) {
  const simd::KernelTable& k = simd::ActiveKernels();
  switch (span.type) {
    case DataType::kInt64:
      k.gather_i64_f64(span.i64, rows, n, out);
      break;
    case DataType::kDouble:
      k.gather_f64(span.f64, rows, n, out);
      break;
    default:
      k.gather_b8_f64(span.b8, rows, n, out);
      break;
  }
}

SortKeyCol MakeSortKey(const ColumnSpan& span, SelectionSlice rows,
                       bool desc) {
  SortKeyCol key;
  key.desc = desc;
  if (span.type == DataType::kString) {
    key.is_string = true;
    std::vector<int32_t> ranks = DictionaryRanks(*span.dict);
    key.rank.resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      key.rank[i] = ranks[span.codes[rows[i]]];
    }
  } else {
    key.num.resize(rows.size());
    GatherNumKey(span, rows.data(), rows.size(), key.num.data());
  }
  return key;
}

/// Positions 0..n-1 ordered by the keys; index tiebreak makes the
/// order total, so the result equals a stable sort and partial_sort
/// under LIMIT yields exactly the stable-sorted prefix.
///
/// Single numeric key with a small LIMIT takes a top-N fast path: a
/// k-element heap holds the current best, and the SIMD compare kernel
/// scans the remaining keys in blocks against the heap's worst value,
/// compacting only the (rare) candidates that beat it. Ties with the
/// threshold are skipped soundly because heap indices are always
/// smaller than scanned indices, so an equal-valued candidate loses
/// the index tiebreak anyway. NaN keys disable the path (the
/// threshold compare would mis-prune); `*used_topn` reports the
/// choice for trace annotation.
std::vector<uint32_t> SortPermutation(const std::vector<SortKeyCol>& keys,
                                      size_t n, std::optional<size_t> limit,
                                      bool* used_topn = nullptr) {
  if (used_topn != nullptr) *used_topn = false;
  auto cmp = [&](uint32_t a, uint32_t b) {
    for (const SortKeyCol& k : keys) {
      if (k.is_string) {
        if (k.rank[a] < k.rank[b]) return !k.desc;
        if (k.rank[b] < k.rank[a]) return k.desc;
      } else {
        if (k.num[a] < k.num[b]) return !k.desc;
        if (k.num[b] < k.num[a]) return k.desc;
      }
    }
    return a < b;
  };
  if (limit && *limit > 0 && *limit < n && *limit * 8 <= n &&
      keys.size() == 1 && !keys[0].is_string) {
    const std::vector<double>& num = keys[0].num;
    bool has_nan = false;
    for (size_t i = 0; i < n && !has_nan; ++i) has_nan = std::isnan(num[i]);
    if (!has_nan) {
      const size_t k = *limit;
      // Max-heap under cmp: the front is the worst of the current
      // best-k, and num[front] is the pruning threshold.
      std::vector<uint32_t> heap(k);
      std::iota(heap.begin(), heap.end(), uint32_t{0});
      std::make_heap(heap.begin(), heap.end(), cmp);
      double tau = num[heap.front()];
      const simd::KernelTable& kt = simd::ActiveKernels();
      const simd::CmpOp op =
          keys[0].desc ? simd::CmpOp::kGt : simd::CmpOp::kLt;
      constexpr size_t kBlock = 4096;
      AlignedVector<uint8_t> mask(kBlock);
      AlignedVector<uint32_t> cand(kBlock);
      for (size_t base = k; base < n; base += kBlock) {
        const size_t bn = std::min(kBlock, n - base);
        kt.mask_cmp_f64(num.data() + base, nullptr, bn, op, tau,
                        mask.data());
        const size_t c =
            kt.compact_rows(nullptr, mask.data(), 1, bn, cand.data());
        for (size_t j = 0; j < c; ++j) {
          const uint32_t idx = static_cast<uint32_t>(base + cand[j]);
          // Re-check with the full comparator: tau only tightens
          // within a block, so the mask can be stale-loose but never
          // drops a true member.
          if (cmp(idx, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), cmp);
            heap.back() = idx;
            std::push_heap(heap.begin(), heap.end(), cmp);
            tau = num[heap.front()];
          }
        }
      }
      std::sort(heap.begin(), heap.end(), cmp);
      if (used_topn != nullptr) *used_topn = true;
      return heap;
    }
  }
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), uint32_t{0});
  if (limit && *limit < n) {
    std::partial_sort(perm.begin(), perm.begin() + *limit, perm.end(), cmp);
    perm.resize(*limit);
  } else {
    std::sort(perm.begin(), perm.end(), cmp);
  }
  return perm;
}

std::optional<size_t> LimitOf(const sql::SelectStmt& stmt) {
  if (!stmt.limit) return std::nullopt;
  if (*stmt.limit < 0) return std::nullopt;  // row path: cast never truncates
  return static_cast<size_t>(*stmt.limit);
}

/// ORDER BY + LIMIT over a materialized result table using typed sort
/// keys (and top-N selection instead of full sort when LIMIT is
/// present).
[[nodiscard]] Status SortLimitTable(const sql::SelectStmt& stmt, Table* out,
                      bool* used_topn = nullptr) {
  std::optional<size_t> limit = LimitOf(stmt);
  if (!stmt.order_by.empty()) {
    std::vector<SortKeyCol> keys;
    std::vector<uint32_t> identity(out->num_rows());
    std::iota(identity.begin(), identity.end(), uint32_t{0});
    for (const auto& o : stmt.order_by) {
      auto idx = out->schema().FindColumn(o.column);
      if (!idx) {
        return Status::BindError("ORDER BY column '" + o.column +
                                 "' not in result set");
      }
      keys.push_back(MakeSortKey(ColumnSpan::FromColumn(out->column(*idx)),
                                 identity, o.descending));
    }
    std::vector<uint32_t> perm =
        SortPermutation(keys, out->num_rows(), limit, used_topn);
    std::vector<size_t> order(perm.begin(), perm.end());
    *out = out->Filter(order);
    return Status::OK();
  }
  if (limit && *limit < out->num_rows()) {
    std::vector<size_t> head(*limit);
    std::iota(head.begin(), head.end(), size_t{0});
    *out = out->Filter(head);
  }
  return Status::OK();
}

[[nodiscard]] Result<Column> ColumnFromBatch(BatchVec batch) {
  switch (batch.type) {
    case DataType::kInt64:
      return Column::FromInt64(std::move(batch.i64));
    case DataType::kDouble:
      return Column::FromDouble(std::move(batch.f64));
    case DataType::kBool:
      return Column::FromBool(std::move(batch.b8));
    case DataType::kString: {
      if (batch.dict != nullptr) {
        // Result columns must own a private dictionary: the source
        // dictionary belongs to a live relation and a later ingest
        // would grow it under readers holding this result outside the
        // service lock. Small dictionaries are cloned wholesale (the
        // codes stay valid, no decoding); dictionaries much larger
        // than the result are compacted through decode instead.
        if (batch.dict->size() <= batch.codes.size() + 64) {
          return Column::FromCodes(std::make_shared<Dictionary>(*batch.dict),
                                   std::move(batch.codes));
        }
        Column col(DataType::kString);
        col.Reserve(batch.codes.size());
        for (int32_t code : batch.codes) {
          col.AppendString(batch.dict->Decode(code));
        }
        return col;
      }
      Column col(DataType::kString);
      col.Reserve(batch.strs.size());
      for (const auto& s : batch.strs) col.AppendString(s);
      return col;
    }
    default:
      return Status::Internal("cannot materialize NULL-typed batch");
  }
}

/// True if evaluating the expression can raise a runtime error
/// (division is the only erroring scalar op). Guards LIMIT pushdown:
/// the row path evaluates every selected row before truncating, so
/// the batch path may only skip rows whose evaluation cannot error.
bool ContainsDiv(const BoundExpr& e) {
  if (e.kind == BoundExpr::Kind::kBinary &&
      e.binary_op == sql::BinaryOp::kDiv) {
    return true;
  }
  for (const BoundExpr* c :
       {e.child.get(), e.left.get(), e.right.get(), e.between_lo.get(),
        e.between_hi.get()}) {
    if (c != nullptr && ContainsDiv(*c)) return true;
  }
  return false;
}

/// Per-GROUP BY-column dense codes over the selected rows, plus the
/// decode table back to Values.
struct GroupKeyCol {
  DataType type = DataType::kNull;
  std::vector<uint32_t> codes;  // per selected position
  uint64_t card = 1;
  std::vector<int64_t> i64_vals;   // kInt64 decode table
  std::vector<double> f64_vals;    // kDouble decode table
  const Dictionary* dict = nullptr;  // kString decode

  Value Decode(uint64_t code) const {
    switch (type) {
      case DataType::kInt64:
        return Value(i64_vals[code]);
      case DataType::kDouble:
        return Value(f64_vals[code]);
      case DataType::kBool:
        return Value(code != 0);
      case DataType::kString:
        return Value(dict->Decode(static_cast<int32_t>(code)));
      default:
        return Value::Null();
    }
  }
};

/// Open-addressing map from a 64-bit group key to its dense
/// first-seen group id — the probe pass of the two-pass group-id
/// build (the hash pass runs the SIMD hash kernel over key blocks).
/// Linear probing over a power-of-two table; a slot is empty while
/// its gid is kEmpty. Probing serially in selection order assigns
/// gids in exactly the first-seen order the unordered_map paths
/// produced.
///
/// `self_equal` carries NaN semantics for double keys: a NaN key
/// never equals anything (matching unordered_map's operator==), so
/// each NaN probe walks to an empty slot and allocates a fresh group.
class GroupIdIndex {
 public:
  GroupIdIndex() {
    bits_.resize(kInitialCap);
    gids_.assign(kInitialCap, kEmpty);
    mask_ = kInitialCap - 1;
  }

  /// Group id for `key` (its hash precomputed by the hash pass);
  /// `next_gid` is assigned on a miss, and `*inserted` tells the
  /// caller to extend its decode table.
  uint32_t InsertOrGet(uint64_t key, uint64_t hash, bool self_equal,
                       uint32_t next_gid, bool* inserted) {
    if ((filled_ + 1) * 4 > (mask_ + 1) * 3) Grow();
    size_t i = hash & mask_;
    while (true) {
      if (gids_[i] == kEmpty) {
        bits_[i] = key;
        gids_[i] = next_gid;
        ++filled_;
        *inserted = true;
        return next_gid;
      }
      if (self_equal && bits_[i] == key) {
        *inserted = false;
        return gids_[i];
      }
      i = (i + 1) & mask_;
    }
  }

 private:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr size_t kInitialCap = 2048;

  void Grow() {
    std::vector<uint64_t> old_bits = std::move(bits_);
    std::vector<uint32_t> old_gids = std::move(gids_);
    const size_t cap = (mask_ + 1) * 2;
    bits_.assign(cap, 0);
    gids_.assign(cap, kEmpty);
    mask_ = cap - 1;
    // Reinsert with the same hash function the SIMD pass uses, so
    // grown tables stay probe-compatible; gids carry over unchanged.
    for (size_t j = 0; j < old_gids.size(); ++j) {
      if (old_gids[j] == kEmpty) continue;
      size_t i = simd::HashU64(old_bits[j]) & mask_;
      while (gids_[i] != kEmpty) i = (i + 1) & mask_;
      bits_[i] = old_bits[j];
      gids_[i] = old_gids[j];
    }
  }

  std::vector<uint64_t> bits_;
  std::vector<uint32_t> gids_;
  size_t mask_ = 0;
  size_t filled_ = 0;
};

/// Block size for the two-pass group-id builds: values/hashes for one
/// block are produced by SIMD kernels, then the probe pass walks them
/// serially (first-seen order is part of the executor's contract).
constexpr size_t kGroupHashBlock = 4096;

GroupKeyCol MakeGroupKey(const ColumnSpan& span, SelectionSlice rows) {
  GroupKeyCol key;
  key.type = span.type;
  key.codes.resize(rows.size());
  switch (span.type) {
    case DataType::kString: {
      key.dict = span.dict.get();
      for (size_t i = 0; i < rows.size(); ++i) {
        key.codes[i] = static_cast<uint32_t>(span.codes[rows[i]]);
      }
      key.card = std::max<uint64_t>(1, span.dict->size());
      break;
    }
    case DataType::kBool: {
      for (size_t i = 0; i < rows.size(); ++i) {
        key.codes[i] = span.b8[rows[i]] != 0 ? 1 : 0;
      }
      key.card = 2;
      break;
    }
    case DataType::kInt64:
    case DataType::kDouble: {
      // Key identity goes through double, matching the row path's
      // std::map<Value> comparator (Value compares all numerics as
      // doubles, merging int64 keys that collide beyond 2^53). The
      // decode table keeps the first-seen value, which is exactly the
      // key the row path's map retains.
      //
      // Two-pass build: gather + hash one block of keys with the SIMD
      // kernels, then probe serially in selection order.
      const bool is_int = span.type == DataType::kInt64;
      const simd::KernelTable& k = simd::ActiveKernels();
      AlignedVector<double> vals(kGroupHashBlock);
      AlignedVector<uint64_t> hashes(kGroupHashBlock);
      GroupIdIndex index;
      for (size_t base = 0; base < rows.size(); base += kGroupHashBlock) {
        const size_t m = std::min(kGroupHashBlock, rows.size() - base);
        if (is_int) {
          k.gather_i64_f64(span.i64, rows.data() + base, m, vals.data());
        } else {
          k.gather_f64(span.f64, rows.data() + base, m, vals.data());
        }
        k.hash_f64(vals.data(), m, hashes.data());
        for (size_t i = 0; i < m; ++i) {
          const double v = vals[i];
          const uint32_t next = static_cast<uint32_t>(
              is_int ? key.i64_vals.size() : key.f64_vals.size());
          bool inserted = false;
          key.codes[base + i] =
              index.InsertOrGet(simd::CanonicalF64Bits(v), hashes[i],
                                !std::isnan(v), next, &inserted);
          if (inserted) {
            if (is_int) {
              key.i64_vals.push_back(span.i64[rows[base + i]]);
            } else {
              key.f64_vals.push_back(v);
            }
          }
        }
      }
      key.card = std::max<uint64_t>(
          1, is_int ? key.i64_vals.size() : key.f64_vals.size());
      break;
    }
    default:
      break;
  }
  return key;
}

/// Double view of a typed aggregate-argument batch, matching what the
/// row path obtains via Value::ToDouble (its exact error on string
/// input included). kDouble aliases the batch payload directly;
/// kInt64/kBool widen into `scratch`, which must outlive the view.
[[nodiscard]] Result<const double*> BatchDoubles(const BatchVec& batch,
                                   AlignedVector<double>* scratch) {
  switch (batch.type) {
    case DataType::kInt64:
      scratch->resize(batch.i64.size());
      simd::ActiveKernels().widen_i64_f64(batch.i64.data(), batch.i64.size(),
                                          scratch->data());
      return static_cast<const double*>(scratch->data());
    case DataType::kDouble:
      return batch.f64.data();
    case DataType::kBool:
      scratch->resize(batch.b8.size());
      for (size_t i = 0; i < batch.b8.size(); ++i) {
        (*scratch)[i] = batch.b8[i] != 0 ? 1.0 : 0.0;
      }
      return static_cast<const double*>(scratch->data());
    case DataType::kString: {
      if (batch.size() == 0) {
        scratch->clear();
        return static_cast<const double*>(scratch->data());
      }
      auto err = Value(batch.StringAt(0)).ToDouble();
      return err.status();
    }
    default:
      return Status::Internal("cannot convert batch to doubles");
  }
}

Value BatchValueAt(const BatchVec& batch, size_t i) {
  switch (batch.type) {
    case DataType::kInt64:
      return Value(batch.i64[i]);
    case DataType::kDouble:
      return Value(batch.f64[i]);
    case DataType::kBool:
      return Value(batch.b8[i] != 0);
    case DataType::kString:
      return Value(batch.StringAt(i));
    default:
      return Value::Null();
  }
}

/// Strict `a < b` over batch positions with Value semantics (numeric
/// through double, strings lexicographic).
bool BatchLess(const BatchVec& batch, size_t a, size_t b) {
  switch (batch.type) {
    case DataType::kInt64:
      return static_cast<double>(batch.i64[a]) <
             static_cast<double>(batch.i64[b]);
    case DataType::kDouble:
      return batch.f64[a] < batch.f64[b];
    case DataType::kBool:
      return batch.b8[a] < batch.b8[b];
    case DataType::kString:
      return batch.StringAt(a) < batch.StringAt(b);
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Morsel-parallel building blocks (exec/morsel.h)
//
// Each helper degrades to its single-threaded counterpart when the
// driver is disabled or the input fits one morsel, and otherwise
// produces the identical result by running per-morsel and merging in
// morsel order: the concatenation of per-morsel outputs is exactly
// the sequence the whole-selection kernel produces, because every
// per-row value depends only on its own row.
// ---------------------------------------------------------------------------

/// WHERE refinement per morsel over zero-copy slices of the base
/// selection; survivors concatenate in morsel order.
[[nodiscard]] Result<SelectionVector> MorselFilter(const TableView& view,
                                     const BoundExpr& pred,
                                     SelectionVector base,
                                     const MorselDriver& driver,
                                     trace::QueryTrace* trace = nullptr,
                                     uint32_t trace_parent = 0) {
  const size_t n = base.size();
  const size_t num_morsels = driver.NumMorsels(n);
  if (num_morsels <= 1) return FilterView(view, pred, std::move(base));
  std::vector<SelectionVector> parts(num_morsels);
  trace::CountMorsels(trace, num_morsels);  // bulk: keep RMWs out of the lambda
  MOSAIC_RETURN_IF_ERROR(driver.Run(num_morsels, [&](size_t m) -> Status {
    // One span per claimed morsel: its wall time covers claim-to-done
    // on whichever pool thread ran it, so a trace shows how the
    // claim loop spread work across workers.
    trace::ScopedSpan span(trace, trace_parent,
                           ("morsel " + std::to_string(m)).c_str());
    auto [begin, end] = driver.Range(n, m);
    MOSAIC_ASSIGN_OR_RETURN(
        parts[m], FilterSlice(view, pred, base.Slice(begin, end - begin)));
    if (trace != nullptr) {
      span.Note("rows=" + std::to_string(end - begin) +
                " kept=" + std::to_string(parts[m].size()));
    }
    return Status::OK();
  }));
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  AlignedVector<uint32_t> rows;
  rows.reserve(total);
  for (const auto& part : parts) {
    rows.insert(rows.end(), part.rows().begin(), part.rows().end());
  }
  return SelectionVector(std::move(rows));
}

/// Expression evaluation per morsel into a single preallocated
/// output: the offset-writing kernels (EvalBatchInto) aim each
/// morsel's final evaluation loop directly at its disjoint range, so
/// there is no per-morsel result vector and no splice copy afterwards
/// — the write that computes a value is the write that lands it.
[[nodiscard]] Result<BatchVec> MorselEvalBatch(const BoundExpr& expr, const TableView& view,
                                 const SelectionVector& sel,
                                 const MorselDriver& driver) {
  const size_t n = sel.size();
  const size_t num_morsels = driver.NumMorsels(n);
  if (num_morsels <= 1) return EvalBatch(expr, view, sel.rows());
  BatchVec out;
  MOSAIC_RETURN_IF_ERROR(PrepareBatchVec(expr, view, n, &out));
  MOSAIC_RETURN_IF_ERROR(driver.Run(num_morsels, [&](size_t m) -> Status {
    auto [begin, end] = driver.Range(n, m);
    return EvalBatchInto(expr, view, sel.Slice(begin, end - begin), &out,
                         begin);
  }));
  return out;
}

/// Per-tuple weight gather, each morsel writing its disjoint range of
/// the preallocated output.
[[nodiscard]] Result<std::vector<double>> MorselGatherWeights(const ColumnSpan& wspan,
                                                const SelectionVector& sel,
                                                const MorselDriver& driver) {
  const AlignedVector<uint32_t>& rows = sel.rows();
  const size_t n = rows.size();
  std::vector<double> w(n);
  MOSAIC_RETURN_IF_ERROR(
      driver.Run(driver.NumMorsels(n), [&](size_t m) -> Status {
        auto [begin, end] = driver.Range(n, m);
        if (wspan.type == DataType::kDouble) {
          // The managed weight column is always a double span.
          simd::ActiveKernels().gather_f64(wspan.f64, rows.data() + begin,
                                           end - begin, w.data() + begin);
        } else {
          for (size_t i = begin; i < end; ++i) {
            MOSAIC_ASSIGN_OR_RETURN(w[i], wspan.GetDouble(rows[i]));
          }
        }
        return Status::OK();
      }));
  return w;
}

/// MakeSortKey with the gather split across morsels (dictionary ranks
/// are computed once, serially).
SortKeyCol MakeSortKeyMorsel(const ColumnSpan& span,
                             const SelectionVector& sel, bool desc,
                             const MorselDriver& driver) {
  const AlignedVector<uint32_t>& rows = sel.rows();
  const size_t n = rows.size();
  const size_t num_morsels = driver.NumMorsels(n);
  if (num_morsels <= 1) return MakeSortKey(span, rows, desc);
  SortKeyCol key;
  key.desc = desc;
  if (span.type == DataType::kString) {
    key.is_string = true;
    std::vector<int32_t> ranks = DictionaryRanks(*span.dict);
    key.rank.resize(n);
    (void)driver.Run(num_morsels, [&](size_t m) {
      auto [begin, end] = driver.Range(n, m);
      for (size_t i = begin; i < end; ++i) {
        key.rank[i] = ranks[span.codes[rows[i]]];
      }
      return Status::OK();
    });
  } else {
    key.num.resize(n);
    (void)driver.Run(num_morsels, [&](size_t m) {
      auto [begin, end] = driver.Range(n, m);
      GatherNumKey(span, rows.data() + begin, end - begin,
                   key.num.data() + begin);
      return Status::OK();
    });
  }
  return key;
}

/// MakeGroupKey with per-morsel work: string/bool codes are pure
/// gathers; int64/double columns build per-morsel local dictionaries
/// that a serial merge (in morsel order) folds into the global
/// first-seen code assignment — identical to the sequential one,
/// because a value first occurring in morsel m cannot occur in any
/// earlier morsel — followed by a parallel remap of local to global
/// codes.
GroupKeyCol MakeGroupKeyMorsel(const ColumnSpan& span,
                               const SelectionVector& sel,
                               const MorselDriver& driver) {
  const AlignedVector<uint32_t>& rows = sel.rows();
  const size_t n = rows.size();
  const size_t num_morsels = driver.NumMorsels(n);
  if (num_morsels <= 1) return MakeGroupKey(span, rows);
  GroupKeyCol key;
  key.type = span.type;
  key.codes.resize(n);
  switch (span.type) {
    case DataType::kString: {
      key.dict = span.dict.get();
      key.card = std::max<uint64_t>(1, span.dict->size());
      (void)driver.Run(num_morsels, [&](size_t m) {
        auto [begin, end] = driver.Range(n, m);
        for (size_t i = begin; i < end; ++i) {
          key.codes[i] = static_cast<uint32_t>(span.codes[rows[i]]);
        }
        return Status::OK();
      });
      return key;
    }
    case DataType::kBool: {
      key.card = 2;
      (void)driver.Run(num_morsels, [&](size_t m) {
        auto [begin, end] = driver.Range(n, m);
        for (size_t i = begin; i < end; ++i) {
          key.codes[i] = span.b8[rows[i]] != 0 ? 1 : 0;
        }
        return Status::OK();
      });
      return key;
    }
    case DataType::kInt64:
    case DataType::kDouble: {
      const bool is_int = span.type == DataType::kInt64;
      // Key identity goes through double (see MakeGroupKey); local
      // dictionaries record first-seen order within their morsel.
      std::vector<std::vector<double>> local_vals(num_morsels);
      std::vector<std::vector<int64_t>> local_i64(num_morsels);
      (void)driver.Run(num_morsels, [&](size_t m) {
        auto [begin, end] = driver.Range(n, m);
        std::unordered_map<double, uint32_t> ids;
        ids.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          const double v = is_int ? static_cast<double>(span.i64[rows[i]])
                                  : span.f64[rows[i]];
          auto [it, inserted] = ids.try_emplace(
              v, static_cast<uint32_t>(local_vals[m].size()));
          if (inserted) {
            local_vals[m].push_back(v);
            if (is_int) local_i64[m].push_back(span.i64[rows[i]]);
          }
          key.codes[i] = it->second;
        }
        return Status::OK();
      });
      std::unordered_map<double, uint32_t> global;
      std::vector<std::vector<uint32_t>> remap(num_morsels);
      for (size_t m = 0; m < num_morsels; ++m) {
        remap[m].resize(local_vals[m].size());
        for (size_t j = 0; j < local_vals[m].size(); ++j) {
          const uint32_t next_code = static_cast<uint32_t>(
              is_int ? key.i64_vals.size() : key.f64_vals.size());
          auto [it, inserted] = global.try_emplace(local_vals[m][j],
                                                   next_code);
          if (inserted) {
            if (is_int) {
              key.i64_vals.push_back(local_i64[m][j]);
            } else {
              key.f64_vals.push_back(local_vals[m][j]);
            }
          }
          remap[m][j] = it->second;
        }
      }
      (void)driver.Run(num_morsels, [&](size_t m) {
        auto [begin, end] = driver.Range(n, m);
        for (size_t i = begin; i < end; ++i) {
          key.codes[i] = remap[m][key.codes[i]];
        }
        return Status::OK();
      });
      key.card = std::max<uint64_t>(
          1, is_int ? key.i64_vals.size() : key.f64_vals.size());
      return key;
    }
    default:
      return key;
  }
}

/// Vectorized SELECT over a view restricted to `sel`. Returns nullopt
/// when the plan must fall back to the row path (group-key code space
/// overflowing 64-bit packing).
[[nodiscard]] Result<std::optional<Table>> ExecuteSelectBatch(const TableView& view,
                                                SelectionVector sel,
                                                const sql::SelectStmt& stmt,
                                                const ExecOptions& opts) {
  const Schema& schema = view.schema();
  const MorselDriver morsels(opts.morsels);
  const bool weighted = !opts.weight_column.empty();
  std::optional<size_t> weight_idx;
  if (weighted) {
    auto idx = schema.FindColumn(opts.weight_column);
    if (!idx) {
      return Status::BindError("weight column '" + opts.weight_column +
                               "' not found");
    }
    weight_idx = *idx;
  }

  // --- WHERE: refine the selection vector ----------------------------------
  if (stmt.where != nullptr) {
    if (stmt.where->ContainsAggregate()) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    trace::ScopedSpan span(opts.trace, opts.trace_parent, "filter");
    const size_t rows_in = sel.size();
    Binder where_binder(&schema);
    MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr pred,
                            where_binder.Bind(*stmt.where));
    if (pred->type != DataType::kBool) {
      return Status::TypeError("WHERE predicate must be boolean, got " +
                               std::string(DataTypeName(pred->type)));
    }
    MOSAIC_ASSIGN_OR_RETURN(
        sel, MorselFilter(view, *pred, std::move(sel), morsels, opts.trace,
                          span.id()));
    if (opts.trace != nullptr) {
      span.Note("rows=" + std::to_string(rows_in) + " kept=" +
                std::to_string(sel.size()) + " isa=" +
                simd::ActiveIsaName());
    }
  }

  bool has_aggregates = false;
  for (const auto& item : stmt.items) {
    if (item.expr->ContainsAggregate()) has_aggregates = true;
  }
  if (stmt.having != nullptr && stmt.having->ContainsAggregate()) {
    has_aggregates = true;
  }
  if (stmt.select_star && (has_aggregates || !stmt.group_by.empty())) {
    return Status::BindError("SELECT * cannot be combined with aggregation");
  }
  if (!stmt.group_by.empty() && !has_aggregates) {
    return Status::BindError("GROUP BY requires aggregates in SELECT list");
  }

  // --- Projection-only path ------------------------------------------------
  if (!has_aggregates) {
    Binder binder(&schema);
    std::vector<BoundExprPtr> bound_items;
    Schema out_schema;
    if (stmt.select_star) {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        if (weight_idx && c == *weight_idx) continue;  // hide weight
        auto e = std::make_unique<BoundExpr>();
        e->kind = BoundExpr::Kind::kColumnRef;
        e->column_index = c;
        e->type = schema.column(c).type;
        bound_items.push_back(std::move(e));
        MOSAIC_RETURN_IF_ERROR(out_schema.AddColumn(schema.column(c)));
      }
    } else {
      for (const auto& item : stmt.items) {
        MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(*item.expr));
        MOSAIC_RETURN_IF_ERROR(
            AddOutputColumn(&out_schema, OutputName(item), bound->type));
        bound_items.push_back(std::move(bound));
      }
    }
    std::optional<size_t> limit = LimitOf(stmt);
    bool items_can_error = false;
    for (const auto& item : bound_items) {
      if (ContainsDiv(*item)) items_can_error = true;
    }
    // LIMIT pushdown below the projection is only sound when no item
    // can raise a runtime error on a truncated row.
    const std::optional<size_t> eval_limit =
        items_can_error ? std::nullopt : limit;
    bool presorted = false;
    if (!stmt.order_by.empty()) {
      // Sorting the selection before projection works whenever every
      // ORDER BY key can be read off a source span: either the key
      // names an output column that is a plain column reference (its
      // projected values equal the source values row for row), or it
      // is not in the output at all (only the source has it). Under
      // LIMIT only the prefix is then materialized; the index
      // tiebreak over selection positions reproduces exactly the
      // post-materialize table sort. Computed output columns fall
      // back to sorting the materialized table.
      bool presortable = true;
      std::vector<size_t> order_src;
      order_src.reserve(stmt.order_by.size());
      for (const auto& o : stmt.order_by) {
        auto out_idx = out_schema.FindColumn(o.column);
        if (out_idx) {
          const BoundExpr& item = *bound_items[*out_idx];
          if (item.kind == BoundExpr::Kind::kColumnRef) {
            order_src.push_back(item.column_index);
          } else {
            presortable = false;
            break;
          }
        } else {
          auto idx = schema.FindColumn(o.column);
          if (!idx) {
            return Status::BindError("ORDER BY column '" + o.column +
                                     "' not found");
          }
          order_src.push_back(*idx);
        }
      }
      if (presortable) {
        trace::ScopedSpan span(opts.trace, opts.trace_parent, "sort");
        std::vector<SortKeyCol> keys;
        for (size_t ki = 0; ki < stmt.order_by.size(); ++ki) {
          keys.push_back(MakeSortKeyMorsel(view.column(order_src[ki]), sel,
                                           stmt.order_by[ki].descending,
                                           morsels));
        }
        bool topn = false;
        std::vector<uint32_t> perm =
            SortPermutation(keys, sel.size(), eval_limit, &topn);
        AlignedVector<uint32_t> sorted(perm.size());
        for (size_t i = 0; i < perm.size(); ++i) sorted[i] = sel[perm[i]];
        *sel.mutable_rows() = std::move(sorted);
        presorted = true;
        if (opts.trace != nullptr) {
          span.Note(std::string("sort=") + (topn ? "topn" : "full") +
                    " presort isa=" + simd::ActiveIsaName());
        }
      }
    }
    const bool limit_only = presorted || stmt.order_by.empty();
    if (limit_only && eval_limit && *eval_limit < sel.size()) {
      sel.mutable_rows()->resize(*eval_limit);
    }
    std::vector<Column> columns;
    columns.reserve(bound_items.size());
    {
      trace::ScopedSpan span(opts.trace, opts.trace_parent, "materialize");
      for (const auto& item : bound_items) {
        MOSAIC_ASSIGN_OR_RETURN(BatchVec batch,
                                MorselEvalBatch(*item, view, sel, morsels));
        MOSAIC_ASSIGN_OR_RETURN(Column col,
                                ColumnFromBatch(std::move(batch)));
        columns.push_back(std::move(col));
      }
      if (opts.trace != nullptr) {
        span.Note("rows=" + std::to_string(sel.size()) +
                  " cols=" + std::to_string(columns.size()));
      }
    }
    Table out(out_schema, std::move(columns), sel.size());
    if (limit_only && limit && *limit < out.num_rows()) {
      std::vector<size_t> head(*limit);
      std::iota(head.begin(), head.end(), size_t{0});
      out = out.Filter(head);
    }
    if (!limit_only) {
      trace::ScopedSpan span(opts.trace, opts.trace_parent, "sort");
      bool topn = false;
      MOSAIC_RETURN_IF_ERROR(SortLimitTable(stmt, &out, &topn));
      if (opts.trace != nullptr) {
        span.Note(std::string("sort=") + (topn ? "topn" : "full"));
      }
    }
    return std::optional<Table>(std::move(out));
  }

  // --- Aggregation path ----------------------------------------------------
  std::vector<size_t> group_cols;
  for (const auto& name : stmt.group_by) {
    auto idx = schema.FindColumn(name);
    if (!idx) {
      return Status::BindError("GROUP BY column '" + name + "' not found");
    }
    group_cols.push_back(*idx);
  }

  Binder binder(&schema);
  AggCollection aggs;
  aggs.binder = &binder;
  binder.set_aggregate_mapper(&AggCollection::MapAggregateThunk, &aggs);

  std::vector<BoundExprPtr> bound_items;
  for (const auto& item : stmt.items) {
    MOSAIC_RETURN_IF_ERROR(
        ValidateGroupColumnRefs(*item.expr, stmt.group_by));
    MOSAIC_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(*item.expr));
    bound_items.push_back(std::move(bound));
  }
  BoundExprPtr bound_having;
  if (stmt.having != nullptr) {
    MOSAIC_RETURN_IF_ERROR(
        ValidateGroupColumnRefs(*stmt.having, stmt.group_by));
    MOSAIC_ASSIGN_OR_RETURN(bound_having, binder.Bind(*stmt.having));
    if (bound_having->type != DataType::kBool) {
      return Status::TypeError("HAVING predicate must be boolean");
    }
  }

  const size_t n = sel.size();

  // Covers group-key building, accumulation, and emit; the phases
  // inside are recorded retroactively (AddTimed) so the early
  // returns (bind errors, row-path fallback) need no unwind hooks.
  trace::ScopedSpan agg_span(opts.trace, opts.trace_parent, "aggregate");
  uint64_t phase_t0 = opts.trace != nullptr ? opts.trace->NowUs() : 0;

  // --- Group ids: per-column dense codes packed into a uint64 key ----------
  std::vector<uint32_t> gid(n, 0);
  std::vector<uint64_t> group_packed;
  std::vector<GroupKeyCol> key_cols;
  const char* idx_mode = "global";
  if (group_cols.empty()) {
    // Global aggregate: one group, even over zero rows.
    group_packed.push_back(0);
  } else {
    key_cols.reserve(group_cols.size());
    // Guard the code-space product per multiply: each card is < 2^32,
    // so checking after every step keeps the 128-bit product far from
    // wrapping before the decline triggers.
    unsigned __int128 code_space = 1;
    bool overflow = false;
    for (size_t c : group_cols) {
      key_cols.push_back(MakeGroupKeyMorsel(view.column(c), sel, morsels));
      code_space *= key_cols.back().card;
      if (code_space > (static_cast<unsigned __int128>(1) << 62)) {
        overflow = true;
        break;
      }
    }
    if (overflow) {
      return std::optional<Table>();  // fall back to the row path
    }
    const uint64_t packed_card = static_cast<uint64_t>(code_space);
    // Mixed-radix packing through the widen / mul-add kernels; each
    // morsel covers its disjoint range, so the concatenation equals
    // the serial loop.
    AlignedVector<uint64_t> packed(n);
    (void)morsels.Run(morsels.NumMorsels(n), [&](size_t m) {
      auto [begin, end] = morsels.Range(n, m);
      const simd::KernelTable& k = simd::ActiveKernels();
      k.widen_u32_u64(key_cols[0].codes.data() + begin, end - begin,
                      packed.data() + begin);
      for (size_t c = 1; c < key_cols.size(); ++c) {
        k.pack_mul_add(packed.data() + begin, key_cols[c].codes.data() + begin,
                       key_cols[c].card, end - begin);
      }
      return Status::OK();
    });
    // Flat (direct-indexed) table when the packed code space is
    // small — both absolutely and relative to the selection, so a
    // tiny selection over a huge dictionary does not zero-fill
    // megabytes per query. Open hashing otherwise. Group ids are
    // first-seen order.
    constexpr uint64_t kDirectTableMax = uint64_t{1} << 20;
    if (packed_card <= kDirectTableMax &&
        packed_card <= std::max<uint64_t>(1024, 4 * n)) {
      idx_mode = "direct";
      std::vector<int32_t> slot(packed_card, -1);
      for (size_t i = 0; i < n; ++i) {
        int32_t& g = slot[packed[i]];
        if (g < 0) {
          g = static_cast<int32_t>(group_packed.size());
          group_packed.push_back(packed[i]);
        }
        gid[i] = static_cast<uint32_t>(g);
      }
    } else {
      // Two-pass open addressing: the SIMD kernel hashes a block of
      // packed keys, then the probe pass assigns first-seen group ids
      // serially in selection order.
      idx_mode = "two_pass";
      const simd::KernelTable& k = simd::ActiveKernels();
      AlignedVector<uint64_t> hashes(kGroupHashBlock);
      GroupIdIndex index;
      for (size_t base = 0; base < n; base += kGroupHashBlock) {
        const size_t m = std::min(kGroupHashBlock, n - base);
        k.hash_u64(packed.data() + base, m, hashes.data());
        for (size_t i = 0; i < m; ++i) {
          bool inserted = false;
          gid[base + i] = index.InsertOrGet(
              packed[base + i], hashes[i], /*self_equal=*/true,
              static_cast<uint32_t>(group_packed.size()), &inserted);
          if (inserted) group_packed.push_back(packed[base + i]);
        }
      }
    }
  }
  const size_t num_groups = group_packed.size();
  if (opts.trace != nullptr) {
    opts.trace->AddTimed(agg_span.id(), "group_keys", phase_t0,
                         opts.trace->NowUs());
    agg_span.Note("rows=" + std::to_string(n) +
                  " groups=" + std::to_string(num_groups) + " idx=" +
                  idx_mode + " isa=" + simd::ActiveIsaName());
    phase_t0 = opts.trace->NowUs();
  }

  // --- Accumulate: tight loops over the selection --------------------------
  //
  // Under morsels, the per-row work (weight gather, aggregate-argument
  // evaluation) and the exact aggregates (COUNT, MIN, MAX — integer
  // adds and order-exact comparisons) run as per-morsel partial
  // flat-hash states merged in morsel order. Floating-point sums are
  // the exception: addition is not associative, so merging per-morsel
  // partial sums would make the rounding depend on the morsel size.
  // They reduce serially in selection order over per-row values that
  // were computed in parallel, which keeps every morsel configuration
  // bit-identical to the single-threaded batch path.
  std::vector<double> w;
  if (weighted) {
    MOSAIC_ASSIGN_OR_RETURN(
        w, MorselGatherWeights(view.column(*weight_idx), sel, morsels));
  }
  const size_t num_agg_morsels = morsels.NumMorsels(n);
  // Partial states cost one num_groups-sized array per morsel; fall
  // back to the (identical-result) serial scan when that would dwarf
  // the selection itself.
  const bool partial_agg =
      num_agg_morsels > 1 &&
      static_cast<uint64_t>(num_agg_morsels) * num_groups <=
          std::max<uint64_t>(4096, 8 * n);
  // sum_w / count are identical across specs (accumulated in the same
  // row order), so compute them once.
  std::vector<double> sum_w(num_groups, 0.0);
  std::vector<int64_t> count_n(num_groups, 0);
  if (partial_agg) {
    std::vector<std::vector<int64_t>> part(num_agg_morsels);
    // Morsel accounting happens in bulk out here, NOT inside the
    // lambda: an atomic RMW next to the counting loop wrecks its
    // codegen (measured ~5% on the group_by bench).
    trace::CountMorsels(opts.trace, num_agg_morsels);
    (void)morsels.Run(num_agg_morsels, [&](size_t m) {
      auto [begin, end] = morsels.Range(n, m);
      part[m].assign(num_groups, 0);
      for (size_t i = begin; i < end; ++i) part[m][gid[i]] += 1;
      return Status::OK();
    });
    for (size_t m = 0; m < num_agg_morsels; ++m) {
      for (size_t g = 0; g < num_groups; ++g) count_n[g] += part[m][g];
    }
  } else {
    for (size_t i = 0; i < n; ++i) count_n[gid[i]] += 1;
  }
  if (weighted) {
    // Ordered serial reduction (see block comment above).
    for (size_t i = 0; i < n; ++i) sum_w[gid[i]] += w[i];
  } else {
    // Sequentially accumulating 1.0 per row yields exactly the
    // integer count (counts are far below 2^53), so the exact partial
    // counts reproduce the unweighted sum bit for bit.
    for (size_t g = 0; g < num_groups; ++g) {
      sum_w[g] = static_cast<double>(count_n[g]);
    }
  }

  const size_t num_specs = aggs.specs.size();
  std::vector<std::vector<double>> sum_wx(num_specs);
  std::vector<std::vector<int64_t>> min_pos(num_specs);
  std::vector<std::vector<int64_t>> max_pos(num_specs);
  std::vector<BatchVec> arg_batches(num_specs);
  for (size_t a = 0; a < num_specs; ++a) {
    const AggSpec& spec = aggs.specs[a];
    if (spec.is_star || spec.arg == nullptr) continue;
    MOSAIC_ASSIGN_OR_RETURN(arg_batches[a],
                            MorselEvalBatch(*spec.arg, view, sel, morsels));
    if (spec.func == sql::AggFunc::kSum || spec.func == sql::AggFunc::kAvg) {
      AlignedVector<double> x_scratch;
      MOSAIC_ASSIGN_OR_RETURN(const double* x,
                              BatchDoubles(arg_batches[a], &x_scratch));
      auto& acc = sum_wx[a];
      acc.assign(num_groups, 0.0);
      // Ordered serial reduction (see block comment above); the
      // per-row products w[i] * x[i] are exact inputs evaluated in
      // parallel above.
      if (weighted) {
        for (size_t i = 0; i < n; ++i) acc[gid[i]] += w[i] * x[i];
      } else {
        for (size_t i = 0; i < n; ++i) acc[gid[i]] += x[i];
      }
    }
    if (spec.func == sql::AggFunc::kMin ||
        spec.func == sql::AggFunc::kMax) {
      const BatchVec& batch = arg_batches[a];
      auto& mins = min_pos[a];
      auto& maxs = max_pos[a];
      mins.assign(num_groups, -1);
      maxs.assign(num_groups, -1);
      if (partial_agg) {
        // Per-morsel partial argmin/argmax, merged in morsel order
        // with the same strict comparisons as the serial scan — the
        // first-seen winner among equals is preserved, so the merge
        // is bit-identical to the sequential result.
        std::vector<std::vector<int64_t>> pmin(num_agg_morsels);
        std::vector<std::vector<int64_t>> pmax(num_agg_morsels);
        (void)morsels.Run(num_agg_morsels, [&](size_t m) {
          auto [begin, end] = morsels.Range(n, m);
          auto& lmin = pmin[m];
          auto& lmax = pmax[m];
          lmin.assign(num_groups, -1);
          lmax.assign(num_groups, -1);
          for (size_t i = begin; i < end; ++i) {
            int64_t& mn = lmin[gid[i]];
            int64_t& mx = lmax[gid[i]];
            if (mn < 0 || BatchLess(batch, i, static_cast<size_t>(mn))) {
              mn = static_cast<int64_t>(i);
            }
            if (mx < 0 || BatchLess(batch, static_cast<size_t>(mx), i)) {
              mx = static_cast<int64_t>(i);
            }
          }
          return Status::OK();
        });
        for (size_t m = 0; m < num_agg_morsels; ++m) {
          for (size_t g = 0; g < num_groups; ++g) {
            if (pmin[m][g] >= 0 &&
                (mins[g] < 0 ||
                 BatchLess(batch, static_cast<size_t>(pmin[m][g]),
                           static_cast<size_t>(mins[g])))) {
              mins[g] = pmin[m][g];
            }
            if (pmax[m][g] >= 0 &&
                (maxs[g] < 0 ||
                 BatchLess(batch, static_cast<size_t>(maxs[g]),
                           static_cast<size_t>(pmax[m][g])))) {
              maxs[g] = pmax[m][g];
            }
          }
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          int64_t& mn = mins[gid[i]];
          int64_t& mx = maxs[gid[i]];
          if (mn < 0 || BatchLess(batch, i, static_cast<size_t>(mn))) {
            mn = static_cast<int64_t>(i);
          }
          if (mx < 0 || BatchLess(batch, static_cast<size_t>(mx), i)) {
            mx = static_cast<int64_t>(i);
          }
        }
      }
    }
  }

  if (opts.trace != nullptr) {
    opts.trace->AddTimed(agg_span.id(), "accumulate", phase_t0,
                         opts.trace->NowUs());
    phase_t0 = opts.trace->NowUs();
  }

  // --- Finalize into sorted groups and emit --------------------------------
  SortedGroups sorted_groups;
  sorted_groups.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<Value> key;
    if (!key_cols.empty()) {
      key.resize(key_cols.size());
      uint64_t packed = group_packed[g];
      for (size_t k = key_cols.size(); k-- > 1;) {
        key[k] = key_cols[k].Decode(packed % key_cols[k].card);
        packed /= key_cols[k].card;
      }
      key[0] = key_cols[0].Decode(packed);
    }
    std::vector<AggAccum> accs(num_specs);
    for (size_t a = 0; a < num_specs; ++a) {
      AggAccum& acc = accs[a];
      acc.sum_w = sum_w[g];
      acc.count_n = count_n[g];
      if (!sum_wx[a].empty()) acc.sum_wx = sum_wx[a][g];
      if (!min_pos[a].empty() && min_pos[a][g] >= 0) {
        acc.any = true;
        acc.vmin = BatchValueAt(arg_batches[a],
                                static_cast<size_t>(min_pos[a][g]));
        acc.vmax = BatchValueAt(arg_batches[a],
                                static_cast<size_t>(max_pos[a][g]));
      }
    }
    sorted_groups.emplace_back(std::move(key), std::move(accs));
  }
  // The row path's std::map emits groups in sorted key order.
  std::sort(sorted_groups.begin(), sorted_groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  MOSAIC_ASSIGN_OR_RETURN(
      Table out, EmitGroups(schema, stmt, bound_items, bound_having.get(),
                            aggs.specs, group_cols, sorted_groups, weighted));
  MOSAIC_RETURN_IF_ERROR(SortLimitTable(stmt, &out));
  if (opts.trace != nullptr) {
    opts.trace->AddTimed(agg_span.id(), "emit", phase_t0,
                         opts.trace->NowUs());
  }
  return std::optional<Table>(std::move(out));
}

}  // namespace

[[nodiscard]] Result<double> TotalWeight(const Table& table,
                           const std::string& weight_column) {
  if (weight_column.empty()) {
    return static_cast<double>(table.num_rows());
  }
  MOSAIC_ASSIGN_OR_RETURN(const Column* col,
                          table.ColumnByName(weight_column));
  double total = 0.0;
  for (size_t r = 0; r < col->size(); ++r) {
    MOSAIC_ASSIGN_OR_RETURN(double w, col->GetDouble(r));
    total += w;
  }
  return total;
}

namespace {

/// Roll the scan/produce tallies of one SELECT into the trace's
/// resource counters. Callers keep their original `return` statements
/// (preserving RVO/move elision — an extra Result<Table> move showed
/// up on the batch bench) and tally in place just before returning;
/// with tracing off this is a single cold branch.
void CountScanProduce(const ExecOptions& opts, uint64_t rows_scanned,
                      const Result<Table>& result) {
  if (opts.trace == nullptr) return;
  trace::CountRowsScanned(opts.trace, rows_scanned);
  if (result.ok()) {
    trace::CountRowsProduced(opts.trace, result->num_rows());
  }
}

}  // namespace

[[nodiscard]] Result<Table> ExecuteSelect(const Table& source, const sql::SelectStmt& stmt,
                            const ExecOptions& opts) {
  const uint64_t rows_in = source.num_rows();
  if (opts.use_row_path) {
    trace::ScopedSpan span(opts.trace, opts.trace_parent, "row_exec");
    span.Note("agg=per_row");
    Result<Table> result = ExecuteSelectRow(source, stmt, opts);
    CountScanProduce(opts, rows_in, result);
    return result;
  }
  TableView view(source);
  MOSAIC_ASSIGN_OR_RETURN(
      std::optional<Table> batched,
      ExecuteSelectBatch(view, SelectionVector::All(source.num_rows()), stmt,
                         opts));
  if (batched) {
    if (opts.trace != nullptr) {
      trace::CountRowsScanned(opts.trace, rows_in);
      trace::CountRowsProduced(opts.trace, batched->num_rows());
    }
    return std::move(*batched);
  }
  trace::ScopedSpan span(opts.trace, opts.trace_parent, "row_exec");
  span.Note("batch path declined");
  Result<Table> result = ExecuteSelectRow(source, stmt, opts);
  CountScanProduce(opts, rows_in, result);
  return result;
}

[[nodiscard]] Result<Table> ExecuteSelect(const TableView& view, SelectionVector sel,
                            const sql::SelectStmt& stmt,
                            const ExecOptions& opts) {
  const uint64_t rows_in = sel.size();
  if (!opts.use_row_path) {
    // The batch planner only declines grouped plans (group-key code
    // spaces overflowing 64-bit packing), so the original selection
    // is kept for the fallback only when GROUP BY is present.
    SelectionVector backup;
    if (!stmt.group_by.empty()) backup = sel;
    MOSAIC_ASSIGN_OR_RETURN(
        std::optional<Table> batched,
        ExecuteSelectBatch(view, std::move(sel), stmt, opts));
    if (batched) {
      if (opts.trace != nullptr) {
        trace::CountRowsScanned(opts.trace, rows_in);
        trace::CountRowsProduced(opts.trace, batched->num_rows());
      }
      return std::move(*batched);
    }
    sel = std::move(backup);
  }
  // Row-path oracle (or batch fallback): materialize the selected
  // rows and run the legacy interpreter.
  trace::ScopedSpan span(opts.trace, opts.trace_parent, "row_exec");
  Table materialized = view.Materialize(sel);
  Result<Table> result = ExecuteSelectRow(materialized, stmt, opts);
  CountScanProduce(opts, rows_in, result);
  return result;
}

}  // namespace exec
}  // namespace mosaic
