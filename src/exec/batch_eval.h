// Vectorized expression evaluation over TableView + SelectionVector.
//
// This is the batch counterpart of the row binder/evaluator in
// expr_eval.h: the same BoundExpr tree, evaluated for a whole list of
// rows at once into typed vectors, with no boxed Values on the hot
// path. WHERE predicates refine selection vectors (string equality and
// IN compare dictionary codes, never decoded strings); arithmetic and
// comparisons run in tight type-specialized loops.
//
// Semantics parity: every kernel reproduces the row evaluator's
// observable behaviour exactly — numeric comparisons go through
// double like Value::operator<, AND/OR only evaluate the right side
// on rows the left side did not short-circuit, and int-typed
// arithmetic rounds through double like the row path — so results are
// bit-identical to EvaluateExpr row by row. tests/test_exec_parity.cc
// enforces this against randomized queries.
#ifndef MOSAIC_EXEC_BATCH_EVAL_H_
#define MOSAIC_EXEC_BATCH_EVAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"
#include "exec/expr_eval.h"
#include "storage/table_view.h"

namespace mosaic {
namespace exec {

/// One evaluated batch: `type` selects the payload. String batches
/// from columns carry dictionary codes; string literals are broadcast
/// into `strs` (no dictionary).
struct BatchVec {
  DataType type = DataType::kNull;
  // Aligned payloads: these move zero-copy into Column storage when a
  // batch is materialized, and the SIMD kernels want 64-byte bases.
  AlignedVector<int64_t> i64;
  AlignedVector<double> f64;
  AlignedVector<uint8_t> b8;
  AlignedVector<int32_t> codes;
  std::shared_ptr<const Dictionary> dict;
  std::vector<std::string> strs;

  size_t size() const {
    switch (type) {
      case DataType::kInt64:
        return i64.size();
      case DataType::kDouble:
        return f64.size();
      case DataType::kBool:
        return b8.size();
      case DataType::kString:
        return dict != nullptr ? codes.size() : strs.size();
      default:
        return 0;
    }
  }

  /// Decoded string at batch position i (string batches only).
  const std::string& StringAt(size_t i) const {
    return dict != nullptr ? dict->Decode(codes[i]) : strs[i];
  }
};

/// Evaluate a boolean expression over `rows`; out[i] is the truth
/// value at view row rows[i].
[[nodiscard]] Result<std::vector<uint8_t>> EvalMask(const BoundExpr& expr,
                                      const TableView& view,
                                      SelectionSlice rows);

/// Offset-writing form: the final kernel writes truth values straight
/// into dst[0..rows.size()), which the morsel executor points at its
/// disjoint range of a shared preallocated output — no per-morsel
/// result vector, no splice copy afterwards. `dst` must hold
/// rows.size() bytes.
[[nodiscard]] Status EvalMaskInto(const BoundExpr& expr, const TableView& view,
                    SelectionSlice rows, uint8_t* dst);

/// Evaluate a numeric expression over `rows` as doubles (the
/// aggregation input form). Errors exactly like Value::ToDouble for
/// non-numeric expressions (on the first row).
[[nodiscard]] Result<std::vector<double>> EvalDoubleBatch(const BoundExpr& expr,
                                            const TableView& view,
                                            SelectionSlice rows);

/// Offset-writing form of EvalDoubleBatch; `dst` must hold
/// rows.size() doubles.
[[nodiscard]] Status EvalDoubleInto(const BoundExpr& expr, const TableView& view,
                      SelectionSlice rows, double* dst);

/// Evaluate an expression over `rows` into its statically typed batch.
[[nodiscard]] Result<BatchVec> EvalBatch(const BoundExpr& expr, const TableView& view,
                           SelectionSlice rows);

/// Size `out` for `n` results of `expr` (type, payload vector, and —
/// for string column refs — the shared dictionary), without
/// evaluating anything. The morsel executor prepares one output this
/// way, then each morsel fills its range via EvalBatchInto. Errors on
/// untyped expressions, like EvalBatch.
[[nodiscard]] Status PrepareBatchVec(const BoundExpr& expr, const TableView& view,
                       size_t n, BatchVec* out);

/// Evaluate into `out` at [offset, offset + rows.size()): the
/// offset-writing form of EvalBatch over a prepared output. The
/// payload must already be sized (PrepareBatchVec) and `out->type`
/// must match the expression.
[[nodiscard]] Status EvalBatchInto(const BoundExpr& expr, const TableView& view,
                     SelectionSlice rows, BatchVec* out, size_t offset);

/// Rows of `view` where the bound boolean predicate holds. Conjuncts
/// refine the selection left to right, so the right side of an AND is
/// only evaluated on surviving rows (row-path short-circuit parity).
[[nodiscard]] Result<SelectionVector> FilterView(const TableView& view,
                                   const BoundExpr& predicate);

/// As above, but refines an existing selection (e.g. a population
/// restriction) instead of starting from all rows.
[[nodiscard]] Result<SelectionVector> FilterView(const TableView& view,
                                   const BoundExpr& predicate,
                                   SelectionVector base);

/// Refine a zero-copy slice of a selection — the morsel unit. Row ids
/// that survive the predicate are returned as a fresh (owning)
/// SelectionVector; concatenating the results of consecutive slices
/// in slice order reproduces the whole-selection filter exactly.
[[nodiscard]] Result<SelectionVector> FilterSlice(const TableView& view,
                                    const BoundExpr& predicate,
                                    SelectionSlice base);

/// Bind `predicate` against the view's schema and filter. The batch
/// counterpart of FilterRows (expr_eval.h).
[[nodiscard]] Result<SelectionVector> SelectRows(const TableView& view,
                                   const sql::Expr& predicate);

}  // namespace exec
}  // namespace mosaic

#endif  // MOSAIC_EXEC_BATCH_EVAL_H_
