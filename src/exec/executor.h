// SELECT execution over a single in-memory table, with optional
// per-tuple weights.
//
// Weighted aggregation implements the paper's §5.3 rewrite: "To run
// the aggregate queries over a weighted sample, we simply modify the
// aggregate to be over a weight attribute (e.g. COUNT(*) becomes
// SUM(weight))":
//
//   COUNT(*)  -> SUM(w)
//   COUNT(e)  -> SUM(w)            (columns are non-nullable)
//   SUM(e)    -> SUM(w * e)
//   AVG(e)    -> SUM(w * e) / SUM(w)
//   MIN/MAX   -> unchanged (weights do not affect extrema)
//
// The engine-managed weight column is hidden from `SELECT *`.
//
// Three execution paths produce bit-identical results:
//
//   batch (default) — vectorized columnar pipeline over TableView +
//     SelectionVector: WHERE predicates refine selection vectors in
//     typed kernels (dictionary-code compares for strings), GROUP BY
//     is a flat hash aggregation keyed on packed per-column group
//     codes, aggregates accumulate over selected spans in tight
//     loops, and ORDER BY sorts precomputed typed keys (partial_sort
//     when LIMIT is present).
//   morsel (batch + ExecOptions::morsels) — the same pipeline with
//     the selection split into fixed-size morsels executed on a
//     shared thread pool and merged in deterministic morsel order
//     (exec/morsel.h); bit-identical to the batch path at every
//     morsel size and thread count, enforced by
//     tests/test_sql_fuzz.cc.
//   row (parity oracle) — the original Value-at-a-time interpreter,
//     kept behind ExecOptions::use_row_path for differential testing
//     (tests/test_exec_parity.cc) and as the fallback for the rare
//     plans the batch path declines (e.g. group-key code spaces that
//     overflow 64-bit packing).
//
// Thread-safety contract: every function here is a pure function of
// its inputs — no globals, no caches — so concurrent calls over
// tables that no writer is mutating are safe. The query service's
// shared-lock read path and the parallel OPEN generation tasks both
// depend on this.
#ifndef MOSAIC_EXEC_EXECUTOR_H_
#define MOSAIC_EXEC_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "common/trace.h"
#include "exec/morsel.h"
#include "sql/ast.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace mosaic {
namespace exec {

struct ExecOptions {
  /// Name of the weight column in the source table; empty = every
  /// tuple has weight 1 (plain SQL).
  std::string weight_column;
  /// Run the legacy row-at-a-time interpreter instead of the batch
  /// pipeline. Results are bit-identical; the row path exists as a
  /// parity oracle and fallback.
  bool use_row_path = false;
  /// Morsel-parallel execution of the batch pipeline: when
  /// morsels.morsel_size > 0 the selection vector is split into
  /// morsels whose WHERE kernels, expression evaluation, and exact
  /// aggregate partials run per morsel (on morsels.pool when set) and
  /// merge in deterministic morsel order. Results are bit-identical
  /// to the single-threaded batch path at every morsel size and
  /// thread count; float sums reduce serially in selection order to
  /// keep the rounding independent of the split (see exec/morsel.h).
  MorselOptions morsels;
  /// Per-query trace to record execution spans (filter, aggregate,
  /// sort, materialize, per-morsel work) into; null = tracing off,
  /// and the instrumented paths cost two branches and no clock read.
  /// Tracing never changes results — enforced by the fuzzer's traced
  /// leg (scripts/check.sh).
  trace::QueryTrace* trace = nullptr;
  /// Span id the executor's spans hang under (kNoParent when the
  /// caller has no enclosing span).
  uint32_t trace_parent = 0;
};

/// Execute `stmt` against `source`. `stmt.from` is ignored — the
/// caller has already resolved the relation (Mosaic's core engine
/// routes population queries to reweighted/generated tables first).
[[nodiscard]] Result<Table> ExecuteSelect(const Table& source, const sql::SelectStmt& stmt,
                            const ExecOptions& opts = {});

/// Execute `stmt` against a zero-copy view restricted to `sel` —
/// the core engine answers population queries this way without
/// materializing the restricted (or weight-extended) relation. WHERE
/// further refines `sel` (taken by value: move it in).
[[nodiscard]] Result<Table> ExecuteSelect(const TableView& view, SelectionVector sel,
                            const sql::SelectStmt& stmt,
                            const ExecOptions& opts = {});

/// Total weight of the table (sum of the weight column, or row count
/// when `weight_column` is empty).
[[nodiscard]] Result<double> TotalWeight(const Table& table,
                           const std::string& weight_column);

}  // namespace exec
}  // namespace mosaic

#endif  // MOSAIC_EXEC_EXECUTOR_H_
