// SELECT execution over a single in-memory table, with optional
// per-tuple weights.
//
// Weighted aggregation implements the paper's §5.3 rewrite: "To run
// the aggregate queries over a weighted sample, we simply modify the
// aggregate to be over a weight attribute (e.g. COUNT(*) becomes
// SUM(weight))":
//
//   COUNT(*)  -> SUM(w)
//   COUNT(e)  -> SUM(w)            (columns are non-nullable)
//   SUM(e)    -> SUM(w * e)
//   AVG(e)    -> SUM(w * e) / SUM(w)
//   MIN/MAX   -> unchanged (weights do not affect extrema)
//
// The engine-managed weight column is hidden from `SELECT *`.
//
// Thread-safety contract: every function here is a pure function of
// its inputs — no globals, no caches — so concurrent calls over
// tables that no writer is mutating are safe. The query service's
// shared-lock read path and the parallel OPEN generation tasks both
// depend on this.
#ifndef MOSAIC_EXEC_EXECUTOR_H_
#define MOSAIC_EXEC_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace mosaic {
namespace exec {

struct ExecOptions {
  /// Name of the weight column in the source table; empty = every
  /// tuple has weight 1 (plain SQL).
  std::string weight_column;
};

/// Execute `stmt` against `source`. `stmt.from` is ignored — the
/// caller has already resolved the relation (Mosaic's core engine
/// routes population queries to reweighted/generated tables first).
Result<Table> ExecuteSelect(const Table& source, const sql::SelectStmt& stmt,
                            const ExecOptions& opts = {});

/// Total weight of the table (sum of the weight column, or row count
/// when `weight_column` is empty).
Result<double> TotalWeight(const Table& table,
                           const std::string& weight_column);

}  // namespace exec
}  // namespace mosaic

#endif  // MOSAIC_EXEC_EXECUTOR_H_
