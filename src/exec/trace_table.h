// Renders a QueryTrace as a result table — the body of EXPLAIN
// ANALYZE output. Lives in exec/ (not common/) because common/ sits
// below storage/ in the layering and cannot produce Tables.
#ifndef MOSAIC_EXEC_TRACE_TABLE_H_
#define MOSAIC_EXEC_TRACE_TABLE_H_

#include "common/trace.h"
#include "storage/table.h"

namespace mosaic {
namespace exec {

/// Columns (span, start_us, duration_us, detail); one row per span in
/// tree pre-order, with two-space indentation in the span column.
Table TraceToTable(const trace::QueryTrace& trace);

}  // namespace exec
}  // namespace mosaic

#endif  // MOSAIC_EXEC_TRACE_TABLE_H_
