// Portable SIMD kernel layer for the vectorized executor.
//
// Every inner loop the batch executor runs per element — WHERE mask
// evaluation (col-op-literal, BETWEEN, dictionary-code compares),
// selection-vector compaction, typed gathers, group-code packing, and
// group-key hashing — exists here as an entry in a KernelTable of
// function pointers. One table per instruction set (pure scalar,
// SSE2, AVX2, NEON); the active table is chosen once at startup from
// CPU detection (common/cpu.h) and the MOSAIC_SIMD override.
//
// Parity contract: the scalar table defines the semantics, and every
// wider implementation must be BIT-IDENTICAL to it on every input —
// including NaN comparisons (IEEE: only != holds), -0.0 (== 0.0), and
// int64 values beyond 2^53 (compared through their double rounding,
// like Value::operator<). tests/test_simd_kernels.cc enforces this
// per kernel at adversarial lengths; scripts/check.sh re-proves it
// end-to-end by running the SQL fuzzer with MOSAIC_SIMD=0.
//
// Calling conventions shared by all kernels:
//  - `rows` selects elements base[rows[0..n)]; it is ascending (a
//    selection vector or a slice of one). nullptr means the identity
//    selection base[0..n). Kernels detect contiguous runs
//    (rows[n-1]-rows[0]+1 == n) and switch to linear loads.
//  - Mask bytes are strictly 0 or 1 — producers guarantee it and the
//    branchless consumers (compact_rows) rely on it.
//  - Output buffers may be unaligned (morsel offsets land anywhere);
//    kernels use unaligned stores. Allocation *bases* of column /
//    selection storage are 64-byte aligned (common/aligned.h) so
//    full-width loads at span heads never straddle a cache line.
//  - compact_rows writes up to n entries into `out` (not just the
//    kept count): it stores unconditionally and bumps conditionally,
//    so `out` must have capacity n. `out == rows` (in-place
//    compaction) is explicitly supported.
#ifndef MOSAIC_EXEC_SIMD_H_
#define MOSAIC_EXEC_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/cpu.h"

namespace mosaic {
namespace exec {
namespace simd {

/// Comparison predicate with scalar-double semantics (NaN: only kNe).
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Reference comparison — the single definition of predicate
/// semantics every kernel (scalar and vector) must reproduce.
inline bool CmpApply(CmpOp op, double l, double r) {
  switch (op) {
    case CmpOp::kEq:
      return l == r;
    case CmpOp::kNe:
      return l != r;
    case CmpOp::kLt:
      return l < r;
    case CmpOp::kLe:
      return l <= r;
    case CmpOp::kGt:
      return l > r;
    case CmpOp::kGe:
      return l >= r;
  }
  return false;
}

/// Mixing hash for packed group keys. Scalar definition; hash_u64 /
/// hash_f64 kernels must produce these exact values so a group table
/// built with SIMD hashing probes identically to a scalar build.
inline uint64_t HashU64(uint64_t x) {
  x ^= x >> 33;
  x *= 0x9E3779B97F4A7C15ull;
  x ^= x >> 29;
  return x;
}

/// Canonical bit pattern for a double group key: -0.0 maps to +0.0
/// (they compare equal, so they must hash equal); every other value —
/// NaN patterns included — keeps its own bits.
inline uint64_t CanonicalF64Bits(double v) {
  if (v == 0.0) return 0;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// True when `rows` denotes a contiguous ascending run (or the
/// identity). Kernels use this to replace gathers with linear loads.
/// The endpoint test settles ascending selections in O(1), but a
/// permuted selection (the executor gathers through ORDER BY-sorted
/// row lists) can alias it, so a positive endpoint test is verified
/// element-wise — a branch-free 8-wide loop that vectorizes, and
/// permutations that pass the endpoint test fail it within a block.
inline bool DenseRows(const uint32_t* rows, size_t n) {
  if (rows == nullptr || n == 0) return true;
  if (static_cast<uint64_t>(rows[n - 1]) - rows[0] + 1 != n) return false;
  const uint32_t r0 = rows[0];
  size_t i = 1;
  for (; i + 8 <= n; i += 8) {
    uint32_t d = 0;
    for (size_t j = 0; j < 8; ++j) {
      d |= rows[i + j] ^ (r0 + static_cast<uint32_t>(i + j));
    }
    if (d != 0) return false;
  }
  for (; i < n; ++i) {
    if (rows[i] != r0 + static_cast<uint32_t>(i)) return false;
  }
  return true;
}

/// One instruction-set's implementation of every executor kernel.
/// All mask outputs are byte masks (0/1 per element).
struct KernelTable {
  SimdIsa isa = SimdIsa::kScalar;

  /// out[i] = CmpApply(op, base[rows[i]], lit)
  void (*mask_cmp_f64)(const double* base, const uint32_t* rows, size_t n,
                       CmpOp op, double lit, uint8_t* out);
  /// out[i] = CmpApply(op, double(base[rows[i]]), lit)
  void (*mask_cmp_i64)(const int64_t* base, const uint32_t* rows, size_t n,
                       CmpOp op, double lit, uint8_t* out);
  /// out[i] = CmpApply(op, a[i], b[i]) over two contiguous arrays
  void (*mask_cmp_f64_pair)(const double* a, const double* b, size_t n,
                            CmpOp op, uint8_t* out);
  /// out[i] = base[rows[i]] >= lo && base[rows[i]] <= hi
  void (*mask_between_f64)(const double* base, const uint32_t* rows, size_t n,
                           double lo, double hi, uint8_t* out);
  /// out[i] = double(base[rows[i]]) >= lo && double(base[rows[i]]) <= hi
  void (*mask_between_i64)(const int64_t* base, const uint32_t* rows, size_t n,
                           double lo, double hi, uint8_t* out);
  /// out[i] = (base[rows[i]] == code) == want_eq
  void (*mask_cmp_codes)(const int32_t* base, const uint32_t* rows, size_t n,
                         int32_t code, bool want_eq, uint8_t* out);
  /// out[i] = table[base[rows[i]]] — per-code truth table (IN lists,
  /// dictionary ordering compares); codes must be valid table indices
  void (*mask_table_codes)(const int32_t* base, const uint32_t* rows, size_t n,
                           const uint8_t* table, uint8_t* out);
  /// out[i] = any(vals[i] == items[k]) over a contiguous value array
  void (*mask_in_f64)(const double* vals, size_t n, const double* items,
                      size_t k, uint8_t* out);
  /// mask[i] = !mask[i]
  void (*mask_not)(uint8_t* mask, size_t n);

  /// out <- {rows[i] : mask[i] == want} (indices i when rows is
  /// null), preserving order; returns the kept count. `out` needs
  /// capacity n and may alias `rows`.
  size_t (*compact_rows)(const uint32_t* rows, const uint8_t* mask,
                         uint8_t want, size_t n, uint32_t* out);

  /// out[i] = base[rows[i]]
  void (*gather_f64)(const double* base, const uint32_t* rows, size_t n,
                     double* out);
  /// out[i] = double(base[rows[i]])
  void (*gather_i64_f64)(const int64_t* base, const uint32_t* rows, size_t n,
                         double* out);
  /// out[i] = base[rows[i]] != 0 ? 1.0 : 0.0
  void (*gather_b8_f64)(const uint8_t* base, const uint32_t* rows, size_t n,
                        double* out);
  /// out[i] = base[rows[i]]
  void (*gather_i64)(const int64_t* base, const uint32_t* rows, size_t n,
                     int64_t* out);
  /// out[i] = base[rows[i]]
  void (*gather_i32)(const int32_t* base, const uint32_t* rows, size_t n,
                     int32_t* out);

  /// out[i] = double(vals[i]) — contiguous int64 -> double widening
  void (*widen_i64_f64)(const int64_t* vals, size_t n, double* out);
  /// out[i] = uint64(codes[i]) — seeds group-key packing
  void (*widen_u32_u64)(const uint32_t* codes, size_t n, uint64_t* out);
  /// acc[i] = acc[i] * card + codes[i]; card < 2^32 (mixed-radix
  /// group-code packing)
  void (*pack_mul_add)(uint64_t* acc, const uint32_t* codes, uint64_t card,
                       size_t n);

  /// out[i] = HashU64(keys[i])
  void (*hash_u64)(const uint64_t* keys, size_t n, uint64_t* out);
  /// out[i] = HashU64(CanonicalF64Bits(vals[i]))
  void (*hash_f64)(const double* vals, size_t n, uint64_t* out);
};

/// The always-available scalar table (also the parity reference).
const KernelTable& ScalarKernels();

/// Table for a specific level, or nullptr when that level was not
/// compiled in or cannot run on this CPU.
const KernelTable* KernelsFor(SimdIsa isa);

/// The table the executor uses: best compiled+supported level, unless
/// MOSAIC_SIMD overrides (0/off/scalar, sse2, avx2, neon, or auto).
/// Resolved once, cached for the process.
const KernelTable& ActiveKernels();

/// Level of ActiveKernels(), and its stable name ("avx2", ...) for
/// bench JSON and EXPLAIN ANALYZE annotations.
SimdIsa ActiveIsa();
const char* ActiveIsaName();

}  // namespace simd
}  // namespace exec
}  // namespace mosaic

#endif  // MOSAIC_EXEC_SIMD_H_
