// Runtime kernel dispatch: combine what was compiled (per-ISA
// translation units), what the CPU supports (common/cpu.h), and the
// MOSAIC_SIMD override into the one table the executor uses.
#include "exec/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>

#include "exec/simd_internal.h"

namespace mosaic {
namespace exec {
namespace simd {

namespace {

const KernelTable* BestAvailable() {
  for (SimdIsa isa :
       {SimdIsa::kNeon, SimdIsa::kAvx2, SimdIsa::kSse2}) {
    const KernelTable* t = KernelsFor(isa);
    if (t != nullptr) return t;
  }
  return &ScalarKernels();
}

/// Resolve MOSAIC_SIMD once. Values: unset/""/"1"/"auto" = best
/// available; "0"/"off"/"scalar" = scalar; "sse2"/"avx2"/"neon" =
/// that level (falling back to auto with a warning when it is not
/// available on this build/CPU).
const KernelTable* Resolve() {
  const char* env = std::getenv("MOSAIC_SIMD");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "1") == 0 ||
      std::strcmp(env, "auto") == 0) {
    return BestAvailable();
  }
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
      std::strcmp(env, "scalar") == 0) {
    return &ScalarKernels();
  }
  SimdIsa want = SimdIsa::kScalar;
  bool known = true;
  if (std::strcmp(env, "sse2") == 0) {
    want = SimdIsa::kSse2;
  } else if (std::strcmp(env, "avx2") == 0) {
    want = SimdIsa::kAvx2;
  } else if (std::strcmp(env, "neon") == 0) {
    want = SimdIsa::kNeon;
  } else {
    known = false;
  }
  if (known) {
    const KernelTable* t = KernelsFor(want);
    if (t != nullptr) return t;
    std::fprintf(stderr,
                 "mosaic: MOSAIC_SIMD=%s not available on this build/CPU; "
                 "using auto\n",
                 env);
    return BestAvailable();
  }
  std::fprintf(stderr,
               "mosaic: unknown MOSAIC_SIMD value '%s' "
               "(want 0|scalar|sse2|avx2|neon|auto); using auto\n",
               env);
  return BestAvailable();
}

}  // namespace

const KernelTable* KernelsFor(SimdIsa isa) {
  if (!CpuSupports(isa)) return isa == SimdIsa::kScalar ? &ScalarKernels()
                                                        : nullptr;
  switch (isa) {
    case SimdIsa::kScalar:
      return &ScalarKernels();
    case SimdIsa::kSse2:
      return internal::Sse2KernelsOrNull();
    case SimdIsa::kAvx2:
      return internal::Avx2KernelsOrNull();
    case SimdIsa::kNeon:
      return internal::NeonKernelsOrNull();
  }
  return nullptr;
}

const KernelTable& ActiveKernels() {
  static const KernelTable* table = Resolve();
  return *table;
}

SimdIsa ActiveIsa() { return ActiveKernels().isa; }

const char* ActiveIsaName() { return SimdIsaName(ActiveIsa()); }

}  // namespace simd
}  // namespace exec
}  // namespace mosaic
