// Shared internals for the per-ISA kernel translation units. Not part
// of the public simd.h surface.
#ifndef MOSAIC_EXEC_SIMD_INTERNAL_H_
#define MOSAIC_EXEC_SIMD_INTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "exec/simd.h"

namespace mosaic {
namespace exec {
namespace simd {
namespace internal {

/// Per-ISA table getters, each defined in its own translation unit
/// (so ISA-specific compile flags stay per-file). A getter returns
/// nullptr when its level is not compiled for this target.
const KernelTable* Sse2KernelsOrNull();
const KernelTable* Avx2KernelsOrNull();
const KernelTable* NeonKernelsOrNull();

/// Spread the low 4 bits of `bits` into 4 bytes (0/1 each) at `out`.
/// Single multiply: bit j lands on byte j's LSB with no carry
/// collisions (positions j+7k collide only at j==k).
inline void StoreMaskBytes4(uint8_t* out, unsigned bits) {
  uint32_t y = (static_cast<uint32_t>(bits) * 0x00204081u) & 0x01010101u;
  std::memcpy(out, &y, 4);
}

/// Low 8 bits of `bits` as 8 bytes (0/1 each). The single-multiply
/// trick carries at 8 lanes, so broadcast + per-byte bit select +
/// nonzero-normalize instead.
inline uint64_t ExpandBits8(unsigned bits) {
  uint64_t y = (static_cast<uint64_t>(bits) * 0x0101010101010101ull) &
               0x8040201008040201ull;
  return ((y + 0x7f7f7f7f7f7f7f7full) & 0x8080808080808080ull) >> 7;
}

inline void StoreMaskBytes8(uint8_t* out, unsigned bits) {
  const uint64_t y = ExpandBits8(bits);
  std::memcpy(out, &y, 8);
}

/// 8 mask bytes (each strictly 0/1) -> 8 bits, byte j -> bit j.
/// Single multiply; the only potential position collisions (j-j'=7)
/// sit outside the extracted top byte's source terms.
inline unsigned MaskBytesToBits8(const uint8_t* mask) {
  uint64_t x;
  std::memcpy(&x, mask, 8);
  return static_cast<unsigned>((x * 0x0102040810204080ull) >> 56);
}

/// Row ids sign-extend through 32-bit SIMD gather indices, so gather
/// paths require ids below 2^31; the ascending-rows invariant makes
/// checking the last id sufficient. (Row kernels fall back to scalar
/// loops above that — tables that large do not fit this engine's
/// memory model anyway.)
inline bool RowsFitGather(const uint32_t* rows, size_t n) {
  if (n == 0 || rows == nullptr) return true;
  // Selections may be permuted (ORDER BY gathers), so the last element
  // is not necessarily the max; OR-reduce the whole list instead — any
  // row id with the top bit set poisons the i32 gather indices.
  uint32_t m = 0;
  for (size_t i = 0; i < n; ++i) m |= rows[i];
  return (m & 0x80000000u) == 0;
}

/// Scalar reference bodies, shared verbatim by the scalar table and
/// by wider tables for the kernels they do not accelerate.
namespace ref {

inline void MaskCmpF64(const double* base, const uint32_t* rows, size_t n,
                       CmpOp op, double lit, uint8_t* out) {
  if (rows == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = CmpApply(op, base[i], lit);
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = CmpApply(op, base[rows[i]], lit);
  }
}

inline void MaskCmpI64(const int64_t* base, const uint32_t* rows, size_t n,
                       CmpOp op, double lit, uint8_t* out) {
  if (rows == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = CmpApply(op, static_cast<double>(base[i]), lit);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      out[i] = CmpApply(op, static_cast<double>(base[rows[i]]), lit);
    }
  }
}

inline void MaskCmpF64Pair(const double* a, const double* b, size_t n,
                           CmpOp op, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = CmpApply(op, a[i], b[i]);
}

inline void MaskBetweenF64(const double* base, const uint32_t* rows, size_t n,
                           double lo, double hi, uint8_t* out) {
  if (rows == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = base[i] >= lo && base[i] <= hi;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const double v = base[rows[i]];
      out[i] = v >= lo && v <= hi;
    }
  }
}

inline void MaskBetweenI64(const int64_t* base, const uint32_t* rows, size_t n,
                           double lo, double hi, uint8_t* out) {
  if (rows == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      const double v = static_cast<double>(base[i]);
      out[i] = v >= lo && v <= hi;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const double v = static_cast<double>(base[rows[i]]);
      out[i] = v >= lo && v <= hi;
    }
  }
}

inline void MaskCmpCodes(const int32_t* base, const uint32_t* rows, size_t n,
                         int32_t code, bool want_eq, uint8_t* out) {
  if (rows == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = (base[i] == code) == want_eq;
  } else {
    for (size_t i = 0; i < n; ++i) {
      out[i] = (base[rows[i]] == code) == want_eq;
    }
  }
}

inline void MaskTableCodes(const int32_t* base, const uint32_t* rows,
                           size_t n, const uint8_t* table, uint8_t* out) {
  if (rows == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = table[base[i]];
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = table[base[rows[i]]];
  }
}

inline void MaskInF64(const double* vals, size_t n, const double* items,
                      size_t k, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    uint8_t hit = 0;
    for (size_t j = 0; j < k; ++j) hit |= (vals[i] == items[j]);
    out[i] = hit;
  }
}

inline void MaskNot(uint8_t* mask, size_t n) {
  for (size_t i = 0; i < n; ++i) mask[i] = mask[i] == 0;
}

inline size_t CompactRows(const uint32_t* rows, const uint8_t* mask,
                          uint8_t want, size_t n, uint32_t* out) {
  // Store-always / bump-conditionally: no per-row branch to
  // mispredict; in-place (out == rows) is safe because the write
  // index never passes the read index.
  size_t k = 0;
  if (rows == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      out[k] = static_cast<uint32_t>(i);
      k += (mask[i] == want);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      out[k] = rows[i];
      k += (mask[i] == want);
    }
  }
  return k;
}

inline void GatherF64(const double* base, const uint32_t* rows, size_t n,
                      double* out) {
  if (rows == nullptr) {
    if (n != 0) std::memcpy(out, base, n * sizeof(double));
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = base[rows[i]];
  }
}

inline void GatherI64F64(const int64_t* base, const uint32_t* rows, size_t n,
                         double* out) {
  if (rows == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(base[i]);
  } else {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<double>(base[rows[i]]);
    }
  }
}

inline void GatherB8F64(const uint8_t* base, const uint32_t* rows, size_t n,
                        double* out) {
  if (rows == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = base[i] != 0 ? 1.0 : 0.0;
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = base[rows[i]] != 0 ? 1.0 : 0.0;
  }
}

inline void GatherI64(const int64_t* base, const uint32_t* rows, size_t n,
                      int64_t* out) {
  if (rows == nullptr) {
    if (n != 0) std::memcpy(out, base, n * sizeof(int64_t));
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = base[rows[i]];
  }
}

inline void GatherI32(const int32_t* base, const uint32_t* rows, size_t n,
                      int32_t* out) {
  if (rows == nullptr) {
    if (n != 0) std::memcpy(out, base, n * sizeof(int32_t));
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = base[rows[i]];
  }
}

inline void WidenI64F64(const int64_t* vals, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(vals[i]);
}

inline void WidenU32U64(const uint32_t* codes, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = codes[i];
}

inline void PackMulAdd(uint64_t* acc, const uint32_t* codes, uint64_t card,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] = acc[i] * card + codes[i];
}

inline void HashU64Batch(const uint64_t* keys, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = HashU64(keys[i]);
}

inline void HashF64Batch(const double* vals, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = HashU64(CanonicalF64Bits(vals[i]));
}

}  // namespace ref

/// A table with every entry pointing at the scalar reference —
/// wider ISAs copy this and overwrite what they accelerate.
inline KernelTable MakeScalarTable() {
  KernelTable t;
  t.isa = SimdIsa::kScalar;
  t.mask_cmp_f64 = &ref::MaskCmpF64;
  t.mask_cmp_i64 = &ref::MaskCmpI64;
  t.mask_cmp_f64_pair = &ref::MaskCmpF64Pair;
  t.mask_between_f64 = &ref::MaskBetweenF64;
  t.mask_between_i64 = &ref::MaskBetweenI64;
  t.mask_cmp_codes = &ref::MaskCmpCodes;
  t.mask_table_codes = &ref::MaskTableCodes;
  t.mask_in_f64 = &ref::MaskInF64;
  t.mask_not = &ref::MaskNot;
  t.compact_rows = &ref::CompactRows;
  t.gather_f64 = &ref::GatherF64;
  t.gather_i64_f64 = &ref::GatherI64F64;
  t.gather_b8_f64 = &ref::GatherB8F64;
  t.gather_i64 = &ref::GatherI64;
  t.gather_i32 = &ref::GatherI32;
  t.widen_i64_f64 = &ref::WidenI64F64;
  t.widen_u32_u64 = &ref::WidenU32U64;
  t.pack_mul_add = &ref::PackMulAdd;
  t.hash_u64 = &ref::HashU64Batch;
  t.hash_f64 = &ref::HashF64Batch;
  return t;
}

}  // namespace internal
}  // namespace simd
}  // namespace exec
}  // namespace mosaic

#endif  // MOSAIC_EXEC_SIMD_INTERNAL_H_
