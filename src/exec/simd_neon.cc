// NEON kernel table for aarch64: 2x f64 / 4x i32 lanes. Same modest
// subset as SSE2 (dense compare + BETWEEN masks, code compares, IN
// lists, mask negation); everything else runs the scalar reference.
#include "exec/simd_internal.h"

#if defined(__aarch64__) && !defined(MOSAIC_SIMD_DISABLED)

#include <arm_neon.h>

namespace mosaic {
namespace exec {
namespace simd {
namespace internal {
namespace {

inline void StoreMask2(uint8_t* out, uint64x2_t m) {
  out[0] = static_cast<uint8_t>(vgetq_lane_u64(m, 0) & 1);
  out[1] = static_cast<uint8_t>(vgetq_lane_u64(m, 1) & 1);
}

template <typename Cmp>
void CmpF64DenseLoop(const double* base, size_t n, double lit, uint8_t* out,
                     Cmp cmp) {
  const float64x2_t vlit = vdupq_n_f64(lit);
  for (size_t i = 0; i + 2 <= n; i += 2) {
    StoreMask2(out + i, cmp(vld1q_f64(base + i), vlit));
  }
}

void MaskCmpF64(const double* base, const uint32_t* rows, size_t n,
                CmpOp op, double lit, uint8_t* out) {
  if (!DenseRows(rows, n)) {
    ref::MaskCmpF64(base, rows, n, op, lit, out);
    return;
  }
  const double* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
  switch (op) {
    case CmpOp::kEq:
      CmpF64DenseLoop(b, n, lit, out, [](float64x2_t a, float64x2_t c) {
        return vceqq_f64(a, c);
      });
      break;
    case CmpOp::kNe:
      // NaN != x is true: negate the (ordered, NaN-false) equality.
      CmpF64DenseLoop(b, n, lit, out, [](float64x2_t a, float64x2_t c) {
        return veorq_u64(vceqq_f64(a, c), vdupq_n_u64(~0ull));
      });
      break;
    case CmpOp::kLt:
      CmpF64DenseLoop(b, n, lit, out, [](float64x2_t a, float64x2_t c) {
        return vcltq_f64(a, c);
      });
      break;
    case CmpOp::kLe:
      CmpF64DenseLoop(b, n, lit, out, [](float64x2_t a, float64x2_t c) {
        return vcleq_f64(a, c);
      });
      break;
    case CmpOp::kGt:
      CmpF64DenseLoop(b, n, lit, out, [](float64x2_t a, float64x2_t c) {
        return vcgtq_f64(a, c);
      });
      break;
    case CmpOp::kGe:
      CmpF64DenseLoop(b, n, lit, out, [](float64x2_t a, float64x2_t c) {
        return vcgeq_f64(a, c);
      });
      break;
  }
  const size_t main = n & ~size_t{1};
  ref::MaskCmpF64(b + main, nullptr, n - main, op, lit, out + main);
}

void MaskBetweenF64(const double* base, const uint32_t* rows, size_t n,
                    double lo, double hi, uint8_t* out) {
  if (!DenseRows(rows, n)) {
    ref::MaskBetweenF64(base, rows, n, lo, hi, out);
    return;
  }
  const double* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
  const float64x2_t vlo = vdupq_n_f64(lo);
  const float64x2_t vhi = vdupq_n_f64(hi);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(b + i);
    StoreMask2(out + i, vandq_u64(vcgeq_f64(v, vlo), vcleq_f64(v, vhi)));
  }
  ref::MaskBetweenF64(b + i, nullptr, n - i, lo, hi, out + i);
}

void MaskCmpCodes(const int32_t* base, const uint32_t* rows, size_t n,
                  int32_t code, bool want_eq, uint8_t* out) {
  if (!DenseRows(rows, n)) {
    ref::MaskCmpCodes(base, rows, n, code, want_eq, out);
    return;
  }
  const int32_t* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
  const int32x4_t vcode = vdupq_n_s32(code);
  const uint32x4_t flip = vdupq_n_u32(want_eq ? 0u : ~0u);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t m = veorq_u32(vceqq_s32(vld1q_s32(b + i), vcode), flip);
    out[i] = static_cast<uint8_t>(vgetq_lane_u32(m, 0) & 1);
    out[i + 1] = static_cast<uint8_t>(vgetq_lane_u32(m, 1) & 1);
    out[i + 2] = static_cast<uint8_t>(vgetq_lane_u32(m, 2) & 1);
    out[i + 3] = static_cast<uint8_t>(vgetq_lane_u32(m, 3) & 1);
  }
  ref::MaskCmpCodes(b + i, nullptr, n - i, code, want_eq, out + i);
}

void MaskInF64(const double* vals, size_t n, const double* items, size_t k,
               uint8_t* out) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(vals + i);
    uint64x2_t acc = vdupq_n_u64(0);
    for (size_t j = 0; j < k; ++j) {
      acc = vorrq_u64(acc, vceqq_f64(v, vdupq_n_f64(items[j])));
    }
    StoreMask2(out + i, acc);
  }
  ref::MaskInF64(vals + i, n - i, items, k, out + i);
}

void MaskNot(uint8_t* mask, size_t n) {
  const uint8x16_t zero = vdupq_n_u8(0);
  const uint8x16_t one = vdupq_n_u8(1);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(mask + i);
    vst1q_u8(mask + i, vandq_u8(vceqq_u8(v, zero), one));
  }
  ref::MaskNot(mask + i, n - i);
}

}  // namespace

const KernelTable* NeonKernelsOrNull() {
  static const KernelTable table = [] {
    KernelTable t = MakeScalarTable();
    t.isa = SimdIsa::kNeon;
    t.mask_cmp_f64 = &MaskCmpF64;
    t.mask_between_f64 = &MaskBetweenF64;
    t.mask_cmp_codes = &MaskCmpCodes;
    t.mask_in_f64 = &MaskInF64;
    t.mask_not = &MaskNot;
    return t;
  }();
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace exec
}  // namespace mosaic

#else  // !__aarch64__ || MOSAIC_SIMD_DISABLED

namespace mosaic {
namespace exec {
namespace simd {
namespace internal {

const KernelTable* NeonKernelsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace exec
}  // namespace mosaic

#endif
