// Bound expressions and row-at-a-time evaluation.
//
// The binder resolves AST column names to column indices against a
// schema and computes static result types; the evaluator then runs a
// bound expression over table rows. Aggregates never appear inside
// bound scalar expressions — the executor lifts them out first
// (see executor.h).
#ifndef MOSAIC_EXEC_EXPR_EVAL_H_
#define MOSAIC_EXEC_EXPR_EVAL_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace mosaic {
namespace exec {

struct BoundExpr;
using BoundExprPtr = std::unique_ptr<BoundExpr>;

struct BoundExpr {
  enum class Kind {
    kLiteral,
    kColumnRef,
    kUnary,
    kBinary,
    kIn,
    kBetween,
    kAggResult,  ///< reference to a pre-computed aggregate slot
  };

  Kind kind;
  DataType type = DataType::kNull;  ///< static result type

  Value literal;                      // kLiteral
  size_t column_index = 0;            // kColumnRef
  sql::UnaryOp unary_op = sql::UnaryOp::kNot;
  sql::BinaryOp binary_op = sql::BinaryOp::kEq;
  BoundExprPtr child;
  BoundExprPtr left;
  BoundExprPtr right;
  BoundExprPtr between_lo;
  BoundExprPtr between_hi;
  std::vector<Value> in_list;
  size_t agg_slot = 0;                // kAggResult

  // Filled by SpecializeStringPredicates: string =/!=/IN evaluated on
  // dictionary codes instead of decoding a string per row.
  bool use_codes = false;
  bool code_pair = false;     ///< kBinary: both sides are same-dict columns
  int32_t literal_code = -1;  ///< kBinary: literal's code in the column dict
  std::vector<int32_t> in_codes;  ///< kIn: list codes present in the dict
};

/// Binds scalar (non-aggregate) expressions against a schema.
/// `agg_slots` optionally maps aggregate AST nodes to result slots for
/// use in post-aggregation projection (executor internal).
class Binder {
 public:
  explicit Binder(const Schema* schema) : schema_(schema) {}

  /// Bind a scalar expression. Errors on aggregates unless an
  /// aggregate mapper is installed via set_aggregate_mapper.
  [[nodiscard]] Result<BoundExprPtr> Bind(const sql::Expr& expr);

  /// Install a callback that maps an aggregate AST node to a slot
  /// index (used when projecting SELECT items after aggregation).
  using AggregateMapper = Result<size_t> (*)(const sql::Expr&, void*);
  void set_aggregate_mapper(AggregateMapper mapper, void* ctx) {
    agg_mapper_ = mapper;
    agg_ctx_ = ctx;
  }

 private:
  const Schema* schema_;
  AggregateMapper agg_mapper_ = nullptr;
  void* agg_ctx_ = nullptr;
};

/// Evaluate a bound expression for one row of `table`. For
/// kAggResult nodes, `agg_values` supplies the slot values.
[[nodiscard]] Result<Value> EvaluateExpr(const BoundExpr& expr, const Table& table,
                           size_t row,
                           const std::vector<Value>* agg_values = nullptr);

/// Rewrite string =/!=/IN nodes of a bound expression to compare
/// dictionary codes against `table`'s columns: literals are resolved
/// through the column's dictionary once (absent strings can never
/// match), and same-dictionary column pairs compare codes directly.
/// The specialized expression is only valid against tables sharing
/// `table`'s dictionaries (Filter/Gather results qualify).
void SpecializeStringPredicates(BoundExpr* expr, const Table& table);

/// Evaluate a predicate over every row; returns indices where it is
/// true. The predicate must be aggregate-free and boolean-typed.
[[nodiscard]] Result<std::vector<size_t>> FilterRows(const Table& table,
                                       const sql::Expr& predicate);

/// Convenience: bind + evaluate an aggregate-free expression on one
/// row.
[[nodiscard]] Result<Value> EvaluateScalarOnRow(const Table& table, size_t row,
                                  const sql::Expr& expr);

}  // namespace exec
}  // namespace mosaic

#endif  // MOSAIC_EXEC_EXPR_EVAL_H_
