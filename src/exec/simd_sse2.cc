// SSE2 kernel table: 2x f64 / 4x i32 lanes, baseline x86-64 (no extra
// compile flags needed). A deliberately modest subset — dense compare
// and BETWEEN masks, dictionary-code compares, IN lists, mask
// negation — everything else stays on the scalar reference. Mostly
// exercised via MOSAIC_SIMD=sse2 in the parity tests; AVX2 is the
// production path on current x86.
#include "exec/simd_internal.h"

#if (defined(__x86_64__) || defined(_M_X64) || defined(__SSE2__)) && \
    !defined(MOSAIC_SIMD_DISABLED)

#include <emmintrin.h>

namespace mosaic {
namespace exec {
namespace simd {
namespace internal {
namespace {

template <typename Cmp>
void CmpF64DenseLoop(const double* base, size_t n, double lit, uint8_t* out,
                     Cmp cmp) {
  const __m128d vlit = _mm_set1_pd(lit);
  for (size_t i = 0; i + 2 <= n; i += 2) {
    const int bits = _mm_movemask_pd(cmp(_mm_loadu_pd(base + i), vlit));
    out[i] = static_cast<uint8_t>(bits & 1);
    out[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
  }
}

void MaskCmpF64(const double* base, const uint32_t* rows, size_t n,
                CmpOp op, double lit, uint8_t* out) {
  if (!DenseRows(rows, n)) {
    ref::MaskCmpF64(base, rows, n, op, lit, out);
    return;
  }
  const double* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
  // The fixed-predicate SSE2 compare intrinsics match C's ordered
  // semantics (cmpneq is the unordered one, as != requires).
  switch (op) {
    case CmpOp::kEq:
      CmpF64DenseLoop(b, n, lit, out,
                      [](__m128d a, __m128d c) { return _mm_cmpeq_pd(a, c); });
      break;
    case CmpOp::kNe:
      CmpF64DenseLoop(b, n, lit, out, [](__m128d a, __m128d c) {
        return _mm_cmpneq_pd(a, c);
      });
      break;
    case CmpOp::kLt:
      CmpF64DenseLoop(b, n, lit, out,
                      [](__m128d a, __m128d c) { return _mm_cmplt_pd(a, c); });
      break;
    case CmpOp::kLe:
      CmpF64DenseLoop(b, n, lit, out,
                      [](__m128d a, __m128d c) { return _mm_cmple_pd(a, c); });
      break;
    case CmpOp::kGt:
      CmpF64DenseLoop(b, n, lit, out,
                      [](__m128d a, __m128d c) { return _mm_cmpgt_pd(a, c); });
      break;
    case CmpOp::kGe:
      CmpF64DenseLoop(b, n, lit, out,
                      [](__m128d a, __m128d c) { return _mm_cmpge_pd(a, c); });
      break;
  }
  const size_t main = n & ~size_t{1};
  ref::MaskCmpF64(b + main, nullptr, n - main, op, lit, out + main);
}

void MaskBetweenF64(const double* base, const uint32_t* rows, size_t n,
                    double lo, double hi, uint8_t* out) {
  if (!DenseRows(rows, n)) {
    ref::MaskBetweenF64(base, rows, n, lo, hi, out);
    return;
  }
  const double* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
  const __m128d vlo = _mm_set1_pd(lo);
  const __m128d vhi = _mm_set1_pd(hi);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(b + i);
    const int bits = _mm_movemask_pd(
        _mm_and_pd(_mm_cmpge_pd(v, vlo), _mm_cmple_pd(v, vhi)));
    out[i] = static_cast<uint8_t>(bits & 1);
    out[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
  }
  ref::MaskBetweenF64(b + i, nullptr, n - i, lo, hi, out + i);
}

void MaskCmpCodes(const int32_t* base, const uint32_t* rows, size_t n,
                  int32_t code, bool want_eq, uint8_t* out) {
  if (!DenseRows(rows, n)) {
    ref::MaskCmpCodes(base, rows, n, code, want_eq, out);
    return;
  }
  const int32_t* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
  const __m128i vcode = _mm_set1_epi32(code);
  const unsigned flip = want_eq ? 0u : 0xFu;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const unsigned bits =
        static_cast<unsigned>(_mm_movemask_ps(
            _mm_castsi128_ps(_mm_cmpeq_epi32(v, vcode)))) ^
        flip;
    StoreMaskBytes4(out + i, bits);
  }
  ref::MaskCmpCodes(b + i, nullptr, n - i, code, want_eq, out + i);
}

void MaskInF64(const double* vals, size_t n, const double* items, size_t k,
               uint8_t* out) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(vals + i);
    __m128d acc = _mm_setzero_pd();
    for (size_t j = 0; j < k; ++j) {
      acc = _mm_or_pd(acc, _mm_cmpeq_pd(v, _mm_set1_pd(items[j])));
    }
    const int bits = _mm_movemask_pd(acc);
    out[i] = static_cast<uint8_t>(bits & 1);
    out[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
  }
  ref::MaskInF64(vals + i, n - i, items, k, out + i);
}

void MaskNot(uint8_t* mask, size_t n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi8(1);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i* p = reinterpret_cast<__m128i*>(mask + i);
    const __m128i v = _mm_loadu_si128(p);
    _mm_storeu_si128(p, _mm_and_si128(_mm_cmpeq_epi8(v, zero), one));
  }
  ref::MaskNot(mask + i, n - i);
}

}  // namespace

const KernelTable* Sse2KernelsOrNull() {
  static const KernelTable table = [] {
    KernelTable t = MakeScalarTable();
    t.isa = SimdIsa::kSse2;
    t.mask_cmp_f64 = &MaskCmpF64;
    t.mask_between_f64 = &MaskBetweenF64;
    t.mask_cmp_codes = &MaskCmpCodes;
    t.mask_in_f64 = &MaskInF64;
    t.mask_not = &MaskNot;
    return t;
  }();
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace exec
}  // namespace mosaic

#else  // not x86-64 || MOSAIC_SIMD_DISABLED

namespace mosaic {
namespace exec {
namespace simd {
namespace internal {

const KernelTable* Sse2KernelsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace exec
}  // namespace mosaic

#endif
