// AVX2 kernel table: 4x f64 / 8x i32 lanes, hardware gathers, and
// LUT-driven left-packing compaction. Compiled with -mavx2 -mbmi2 on
// x86-64 (per-file flags in CMakeLists.txt); every kernel is
// bit-identical to the scalar reference, including NaN predicates
// (ordered/unordered compare immediates chosen to match C semantics)
// and int64->double conversion (exact in-range fast path, scalar
// convert per 4-lane block otherwise).
#include "exec/simd_internal.h"

#if defined(__AVX2__) && !defined(MOSAIC_SIMD_DISABLED)

#include <immintrin.h>

// GCC's gather intrinsics seed their unmasked lanes with
// _mm256_undefined_pd(), which trips -Wmaybe-uninitialized even
// though every lane is overwritten (the mask is all-ones).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace mosaic {
namespace exec {
namespace simd {
namespace internal {
namespace {

// --- mask byte <-> lane plumbing -------------------------------------------

/// idx[m] = positions of the set bits of m, left-packed — the operand
/// of vpermd that moves surviving lanes to the front.
struct CompactLut {
  alignas(32) uint32_t idx[256][8];
  constexpr CompactLut() : idx{} {
    for (unsigned m = 0; m < 256; ++m) {
      unsigned k = 0;
      for (unsigned b = 0; b < 8; ++b) {
        if (m & (1u << b)) idx[m][k++] = b;
      }
      for (; k < 8; ++k) idx[m][k] = 0;
    }
  }
};
constexpr CompactLut kCompactLut{};

// --- exact int64 -> double -------------------------------------------------

constexpr double kMagic = 6755399441055744.0;  // 1.5 * 2^52

/// Exact conversion for |v| < 2^51 via the add-magic bit trick;
/// returns false (leaving *out untouched) when any lane is out of
/// range so the caller can convert that block scalar-exactly.
inline bool CvtI64F64InRange(__m256i v, __m256d* out) {
  const __m256i biased = _mm256_add_epi64(v, _mm256_set1_epi64x(1ll << 51));
  const __m256i hi_bits = _mm256_set1_epi64x(~((1ll << 52) - 1));
  if (!_mm256_testz_si256(biased, hi_bits)) return false;
  const __m256i magic_bits = _mm256_castpd_si256(_mm256_set1_pd(kMagic));
  *out = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_add_epi64(v, magic_bits)),
      _mm256_set1_pd(kMagic));
  return true;
}

inline __m256d CvtI64F64(__m256i v) {
  __m256d d;
  if (CvtI64F64InRange(v, &d)) return d;
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return _mm256_set_pd(
      static_cast<double>(lanes[3]), static_cast<double>(lanes[2]),
      static_cast<double>(lanes[1]), static_cast<double>(lanes[0]));
}

// --- loads -----------------------------------------------------------------

inline __m128i LoadRows4(const uint32_t* rows, size_t i) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i));
}

inline __m256i LoadRows8(const uint32_t* rows, size_t i) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
}

template <bool Dense>
inline __m256d LoadF64(const double* base, const uint32_t* rows, size_t i) {
  if (Dense) return _mm256_loadu_pd(base + i);
  return _mm256_i32gather_pd(base, LoadRows4(rows, i), 8);
}

template <bool Dense>
inline __m256i LoadI64(const int64_t* base, const uint32_t* rows, size_t i) {
  if (Dense) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i));
  }
  return _mm256_i32gather_epi64(
      reinterpret_cast<const long long*>(base), LoadRows4(rows, i), 8);
}

template <bool Dense>
inline __m256i LoadI32(const int32_t* base, const uint32_t* rows, size_t i) {
  if (Dense) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i));
  }
  return _mm256_i32gather_epi32(base, LoadRows8(rows, i), 4);
}

// --- comparison loops ------------------------------------------------------
//
// Each loop handles n & ~3 elements; entry functions delegate the
// tail (and any non-gatherable row list) to the scalar reference, so
// semantics live in exactly one place.

template <int Pred, bool Dense>
void CmpF64Loop(const double* base, const uint32_t* rows, size_t n,
                double lit, uint8_t* out) {
  const __m256d vlit = _mm256_set1_pd(lit);
  for (size_t i = 0; i + 4 <= n; i += 4) {
    const __m256d v = LoadF64<Dense>(base, rows, i);
    StoreMaskBytes4(out + i,
                    _mm256_movemask_pd(_mm256_cmp_pd(v, vlit, Pred)));
  }
}

template <int Pred, bool Dense>
void CmpI64Loop(const int64_t* base, const uint32_t* rows, size_t n,
                double lit, uint8_t* out) {
  const __m256d vlit = _mm256_set1_pd(lit);
  for (size_t i = 0; i + 4 <= n; i += 4) {
    const __m256d v = CvtI64F64(LoadI64<Dense>(base, rows, i));
    StoreMaskBytes4(out + i,
                    _mm256_movemask_pd(_mm256_cmp_pd(v, vlit, Pred)));
  }
}

template <int Pred>
void CmpF64PairLoop(const double* a, const double* b, size_t n,
                    uint8_t* out) {
  for (size_t i = 0; i + 4 <= n; i += 4) {
    StoreMaskBytes4(out + i,
                    _mm256_movemask_pd(_mm256_cmp_pd(
                        _mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                        Pred)));
  }
}

/// op -> compare-immediate instantiation. The OQ/UQ immediates
/// reproduce C's scalar semantics on NaN: every predicate false
/// except !=.
template <template <int, bool> class Loop, bool Dense, typename... Args>
bool DispatchCmp(CmpOp op, Args... args) {
  switch (op) {
    case CmpOp::kEq:
      Loop<_CMP_EQ_OQ, Dense>::Run(args...);
      return true;
    case CmpOp::kNe:
      Loop<_CMP_NEQ_UQ, Dense>::Run(args...);
      return true;
    case CmpOp::kLt:
      Loop<_CMP_LT_OQ, Dense>::Run(args...);
      return true;
    case CmpOp::kLe:
      Loop<_CMP_LE_OQ, Dense>::Run(args...);
      return true;
    case CmpOp::kGt:
      Loop<_CMP_GT_OQ, Dense>::Run(args...);
      return true;
    case CmpOp::kGe:
      Loop<_CMP_GE_OQ, Dense>::Run(args...);
      return true;
  }
  return false;
}

template <int Pred, bool Dense>
struct CmpF64LoopT {
  static void Run(const double* base, const uint32_t* rows, size_t n,
                  double lit, uint8_t* out) {
    CmpF64Loop<Pred, Dense>(base, rows, n, lit, out);
  }
};

template <int Pred, bool Dense>
struct CmpI64LoopT {
  static void Run(const int64_t* base, const uint32_t* rows, size_t n,
                  double lit, uint8_t* out) {
    CmpI64Loop<Pred, Dense>(base, rows, n, lit, out);
  }
};

template <int Pred, bool Dense>
struct CmpF64PairLoopT {
  static void Run(const double* a, const double* b, size_t n, uint8_t* out) {
    CmpF64PairLoop<Pred>(a, b, n, out);
  }
};

// --- kernel entries --------------------------------------------------------

void MaskCmpF64(const double* base, const uint32_t* rows, size_t n,
                CmpOp op, double lit, uint8_t* out) {
  const size_t main = n & ~size_t{3};
  if (DenseRows(rows, n)) {
    const double* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
    DispatchCmp<CmpF64LoopT, true>(op, b, nullptr, n, lit, out);
    ref::MaskCmpF64(b + main, nullptr, n - main, op, lit, out + main);
    return;
  }
  if (!RowsFitGather(rows, n)) {
    ref::MaskCmpF64(base, rows, n, op, lit, out);
    return;
  }
  DispatchCmp<CmpF64LoopT, false>(op, base, rows, n, lit, out);
  ref::MaskCmpF64(base, rows + main, n - main, op, lit, out + main);
}

void MaskCmpI64(const int64_t* base, const uint32_t* rows, size_t n,
                CmpOp op, double lit, uint8_t* out) {
  const size_t main = n & ~size_t{3};
  if (DenseRows(rows, n)) {
    const int64_t* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
    DispatchCmp<CmpI64LoopT, true>(op, b, nullptr, n, lit, out);
    ref::MaskCmpI64(b + main, nullptr, n - main, op, lit, out + main);
    return;
  }
  if (!RowsFitGather(rows, n)) {
    ref::MaskCmpI64(base, rows, n, op, lit, out);
    return;
  }
  DispatchCmp<CmpI64LoopT, false>(op, base, rows, n, lit, out);
  ref::MaskCmpI64(base, rows + main, n - main, op, lit, out + main);
}

void MaskCmpF64Pair(const double* a, const double* b, size_t n, CmpOp op,
                    uint8_t* out) {
  const size_t main = n & ~size_t{3};
  DispatchCmp<CmpF64PairLoopT, true>(op, a, b, n, out);
  ref::MaskCmpF64Pair(a + main, b + main, n - main, op, out + main);
}

template <bool Dense>
void BetweenF64Loop(const double* base, const uint32_t* rows, size_t n,
                    double lo, double hi, uint8_t* out) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  for (size_t i = 0; i + 4 <= n; i += 4) {
    const __m256d v = LoadF64<Dense>(base, rows, i);
    const __m256d m = _mm256_and_pd(_mm256_cmp_pd(v, vlo, _CMP_GE_OQ),
                                    _mm256_cmp_pd(v, vhi, _CMP_LE_OQ));
    StoreMaskBytes4(out + i, _mm256_movemask_pd(m));
  }
}

void MaskBetweenF64(const double* base, const uint32_t* rows, size_t n,
                    double lo, double hi, uint8_t* out) {
  const size_t main = n & ~size_t{3};
  if (DenseRows(rows, n)) {
    const double* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
    BetweenF64Loop<true>(b, nullptr, n, lo, hi, out);
    ref::MaskBetweenF64(b + main, nullptr, n - main, lo, hi, out + main);
    return;
  }
  if (!RowsFitGather(rows, n)) {
    ref::MaskBetweenF64(base, rows, n, lo, hi, out);
    return;
  }
  BetweenF64Loop<false>(base, rows, n, lo, hi, out);
  ref::MaskBetweenF64(base, rows + main, n - main, lo, hi, out + main);
}

template <bool Dense>
void BetweenI64Loop(const int64_t* base, const uint32_t* rows, size_t n,
                    double lo, double hi, uint8_t* out) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  for (size_t i = 0; i + 4 <= n; i += 4) {
    const __m256d v = CvtI64F64(LoadI64<Dense>(base, rows, i));
    const __m256d m = _mm256_and_pd(_mm256_cmp_pd(v, vlo, _CMP_GE_OQ),
                                    _mm256_cmp_pd(v, vhi, _CMP_LE_OQ));
    StoreMaskBytes4(out + i, _mm256_movemask_pd(m));
  }
}

void MaskBetweenI64(const int64_t* base, const uint32_t* rows, size_t n,
                    double lo, double hi, uint8_t* out) {
  const size_t main = n & ~size_t{3};
  if (DenseRows(rows, n)) {
    const int64_t* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
    BetweenI64Loop<true>(b, nullptr, n, lo, hi, out);
    ref::MaskBetweenI64(b + main, nullptr, n - main, lo, hi, out + main);
    return;
  }
  if (!RowsFitGather(rows, n)) {
    ref::MaskBetweenI64(base, rows, n, lo, hi, out);
    return;
  }
  BetweenI64Loop<false>(base, rows, n, lo, hi, out);
  ref::MaskBetweenI64(base, rows + main, n - main, lo, hi, out + main);
}

template <bool Dense>
void CmpCodesLoop(const int32_t* base, const uint32_t* rows, size_t n,
                  int32_t code, unsigned flip, uint8_t* out) {
  const __m256i vcode = _mm256_set1_epi32(code);
  for (size_t i = 0; i + 8 <= n; i += 8) {
    const __m256i v = LoadI32<Dense>(base, rows, i);
    const unsigned bits =
        static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, vcode)))) ^
        flip;
    StoreMaskBytes8(out + i, bits & 0xFFu);
  }
}

void MaskCmpCodes(const int32_t* base, const uint32_t* rows, size_t n,
                  int32_t code, bool want_eq, uint8_t* out) {
  const size_t main = n & ~size_t{7};
  const unsigned flip = want_eq ? 0u : 0xFFu;
  if (DenseRows(rows, n)) {
    const int32_t* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
    CmpCodesLoop<true>(b, nullptr, n, code, flip, out);
    ref::MaskCmpCodes(b + main, nullptr, n - main, code, want_eq,
                      out + main);
    return;
  }
  if (!RowsFitGather(rows, n)) {
    ref::MaskCmpCodes(base, rows, n, code, want_eq, out);
    return;
  }
  CmpCodesLoop<false>(base, rows, n, code, flip, out);
  ref::MaskCmpCodes(base, rows + main, n - main, code, want_eq, out + main);
}

void MaskInF64(const double* vals, size_t n, const double* items, size_t k,
               uint8_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(vals + i);
    __m256d acc = _mm256_setzero_pd();
    for (size_t j = 0; j < k; ++j) {
      acc = _mm256_or_pd(
          acc, _mm256_cmp_pd(v, _mm256_set1_pd(items[j]), _CMP_EQ_OQ));
    }
    StoreMaskBytes4(out + i, _mm256_movemask_pd(acc));
  }
  ref::MaskInF64(vals + i, n - i, items, k, out + i);
}

void MaskNot(uint8_t* mask, size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i* p = reinterpret_cast<__m256i*>(mask + i);
    const __m256i v = _mm256_loadu_si256(p);
    _mm256_storeu_si256(
        p, _mm256_and_si256(_mm256_cmpeq_epi8(v, zero), one));
  }
  ref::MaskNot(mask + i, n - i);
}

size_t CompactRows(const uint32_t* rows, const uint8_t* mask, uint8_t want,
                   size_t n, uint32_t* out) {
  const uint64_t want_xor = want != 0 ? 0ull : 0x0101010101010101ull;
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  size_t k = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t m8;
    std::memcpy(&m8, mask + i, 8);
    m8 ^= want_xor;
    const unsigned bits =
        static_cast<unsigned>((m8 * 0x0102040810204080ull) >> 56);
    const __m256i v =
        rows != nullptr
            ? LoadRows8(rows, i)
            : _mm256_add_epi32(iota, _mm256_set1_epi32(static_cast<int>(i)));
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kCompactLut.idx[bits]));
    // Writing 8 lanes at out+k is safe for in-place use: k <= i
    // always, so the store never reaches unread input.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                        _mm256_permutevar8x32_epi32(v, perm));
    k += static_cast<size_t>(__builtin_popcount(bits));
  }
  for (; i < n; ++i) {
    out[k] = rows != nullptr ? rows[i] : static_cast<uint32_t>(i);
    k += (mask[i] == want);
  }
  return k;
}

void GatherF64(const double* base, const uint32_t* rows, size_t n,
               double* out) {
  const bool dense = DenseRows(rows, n);
  if (dense || !RowsFitGather(rows, n)) {
    ref::GatherF64(rows != nullptr && n > 0 && dense ? base + rows[0] : base,
              dense ? nullptr : rows, n, out);
    return;
  }
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_i32gather_pd(base, LoadRows4(rows, i), 8));
  }
  for (; i < n; ++i) out[i] = base[rows[i]];
}

void GatherI64(const int64_t* base, const uint32_t* rows, size_t n,
               int64_t* out) {
  const bool dense = DenseRows(rows, n);
  if (dense || !RowsFitGather(rows, n)) {
    ref::GatherI64(rows != nullptr && n > 0 && dense ? base + rows[0] : base,
              dense ? nullptr : rows, n, out);
    return;
  }
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_i32gather_epi64(reinterpret_cast<const long long*>(base),
                               LoadRows4(rows, i), 8));
  }
  for (; i < n; ++i) out[i] = base[rows[i]];
}

void GatherI32(const int32_t* base, const uint32_t* rows, size_t n,
               int32_t* out) {
  const bool dense = DenseRows(rows, n);
  if (dense || !RowsFitGather(rows, n)) {
    ref::GatherI32(rows != nullptr && n > 0 && dense ? base + rows[0] : base,
              dense ? nullptr : rows, n, out);
    return;
  }
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_i32gather_epi32(base, LoadRows8(rows, i), 4));
  }
  for (; i < n; ++i) out[i] = base[rows[i]];
}

template <bool Dense>
void GatherI64F64Loop(const int64_t* base, const uint32_t* rows, size_t n,
                      double* out) {
  for (size_t i = 0; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, CvtI64F64(LoadI64<Dense>(base, rows, i)));
  }
}

void GatherI64F64(const int64_t* base, const uint32_t* rows, size_t n,
                  double* out) {
  const size_t main = n & ~size_t{3};
  if (DenseRows(rows, n)) {
    const int64_t* b = base + (rows != nullptr && n > 0 ? rows[0] : 0);
    GatherI64F64Loop<true>(b, nullptr, n, out);
    ref::GatherI64F64(b + main, nullptr, n - main, out + main);
    return;
  }
  if (!RowsFitGather(rows, n)) {
    ref::GatherI64F64(base, rows, n, out);
    return;
  }
  GatherI64F64Loop<false>(base, rows, n, out);
  ref::GatherI64F64(base, rows + main, n - main, out + main);
}

void WidenI64F64(const int64_t* vals, size_t n, double* out) {
  const size_t main = n & ~size_t{3};
  GatherI64F64Loop<true>(vals, nullptr, n, out);
  ref::WidenI64F64(vals + main, n - main, out + main);
}

void WidenU32U64(const uint32_t* codes, size_t n, uint64_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_cvtepu32_epi64(LoadRows4(codes, i)));
  }
  for (; i < n; ++i) out[i] = codes[i];
}

void PackMulAdd(uint64_t* acc, const uint32_t* codes, uint64_t card,
                size_t n) {
  // 64x32 multiply from two 32x32 halves (card < 2^32).
  const __m256i vcard = _mm256_set1_epi64x(static_cast<long long>(card));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i lo = _mm256_mul_epu32(a, vcard);
    const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), vcard);
    const __m256i prod = _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
    const __m256i c = _mm256_cvtepu32_epi64(LoadRows4(codes, i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_add_epi64(prod, c));
  }
  for (; i < n; ++i) acc[i] = acc[i] * card + codes[i];
}

inline __m256i HashVec(__m256i x) {
  constexpr uint64_t kC = 0x9E3779B97F4A7C15ull;
  const __m256i clo =
      _mm256_set1_epi64x(static_cast<long long>(kC & 0xffffffffull));
  const __m256i chi = _mm256_set1_epi64x(static_cast<long long>(kC >> 32));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  // 64-bit mullo by constant: lo*Clo + ((lo*Chi + hi*Clo) << 32).
  const __m256i lo = _mm256_mul_epu32(x, clo);
  const __m256i mid =
      _mm256_add_epi64(_mm256_mul_epu32(x, chi),
                       _mm256_mul_epu32(_mm256_srli_epi64(x, 32), clo));
  x = _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 29));
}

void HashU64Batch(const uint64_t* keys, size_t n, uint64_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), HashVec(k));
  }
  ref::HashU64Batch(keys + i, n - i, out + i);
}

void HashF64Batch(const double* vals, size_t n, uint64_t* out) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(vals + i);
    // Canonicalize: lanes equal to 0.0 (that includes -0.0; NaN
    // compares false and keeps its bits) hash as bit pattern 0.
    const __m256d is_zero = _mm256_cmp_pd(v, zero, _CMP_EQ_OQ);
    const __m256i bits = _mm256_andnot_si256(_mm256_castpd_si256(is_zero),
                                             _mm256_castpd_si256(v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), HashVec(bits));
  }
  ref::HashF64Batch(vals + i, n - i, out + i);
}

}  // namespace

const KernelTable* Avx2KernelsOrNull() {
  static const KernelTable table = [] {
    KernelTable t = MakeScalarTable();
    t.isa = SimdIsa::kAvx2;
    t.mask_cmp_f64 = &MaskCmpF64;
    t.mask_cmp_i64 = &MaskCmpI64;
    t.mask_cmp_f64_pair = &MaskCmpF64Pair;
    t.mask_between_f64 = &MaskBetweenF64;
    t.mask_between_i64 = &MaskBetweenI64;
    t.mask_cmp_codes = &MaskCmpCodes;
    t.mask_in_f64 = &MaskInF64;
    t.mask_not = &MaskNot;
    t.compact_rows = &CompactRows;
    t.gather_f64 = &GatherF64;
    t.gather_i64_f64 = &GatherI64F64;
    t.gather_i64 = &GatherI64;
    t.gather_i32 = &GatherI32;
    t.widen_i64_f64 = &WidenI64F64;
    t.widen_u32_u64 = &WidenU32U64;
    t.pack_mul_add = &PackMulAdd;
    t.hash_u64 = &HashU64Batch;
    t.hash_f64 = &HashF64Batch;
    // mask_table_codes / gather_b8_f64 stay scalar: byte-granular
    // table lookups have no AVX2 gather form worth the setup.
    return t;
  }();
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace exec
}  // namespace mosaic

#else  // !__AVX2__ || MOSAIC_SIMD_DISABLED

namespace mosaic {
namespace exec {
namespace simd {
namespace internal {

const KernelTable* Avx2KernelsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace exec
}  // namespace mosaic

#endif
