// Token stream definitions for Mosaic's SQL dialect.
#ifndef MOSAIC_SQL_TOKEN_H_
#define MOSAIC_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace mosaic {
namespace sql {

enum class TokenType {
  // Literals / identifiers
  kIdentifier,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  // Punctuation & operators
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,        // =
  kNe,        // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kDot,
  // Keywords (subset; the lexer marks any known keyword)
  kKeyword,
  kEof,
};

/// One lexed token. For kKeyword, `text` holds the upper-cased keyword.
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;        ///< identifier name / keyword / literal text
  int64_t int_value = 0;   ///< valid for kIntLiteral
  double double_value = 0; ///< valid for kDoubleLiteral
  size_t offset = 0;       ///< byte offset in the input (for errors)

  bool IsKeyword(const char* kw) const;
};

/// Printable description used in parser error messages.
std::string TokenTypeName(TokenType type);

}  // namespace sql
}  // namespace mosaic

#endif  // MOSAIC_SQL_TOKEN_H_
