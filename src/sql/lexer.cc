#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace mosaic {
namespace sql {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

std::string TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kIntLiteral:
      return "integer literal";
    case TokenType::kDoubleLiteral:
      return "double literal";
    case TokenType::kStringLiteral:
      return "string literal";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kSlash:
      return "'/'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'<>'";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kEof:
      return "end of input";
  }
  return "?";
}

bool IsReservedKeyword(const std::string& w) {
  static const std::unordered_set<std::string> kKeywords = {
      // Standard SQL subset
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "ASC", "DESC",
      "LIMIT", "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "INSERT", "INTO",
      "VALUES", "CREATE", "TABLE", "TEMPORARY", "DROP", "IF", "EXISTS",
      "UPDATE", "SET", "COPY", "DISTINCT", "NULL", "TRUE", "FALSE",
      "COUNT", "SUM", "AVG", "MIN", "MAX",
      // Mosaic extensions (paper §3)
      "POPULATION", "GLOBAL", "SAMPLE", "METADATA", "USING", "MECHANISM",
      "PERCENT", "UNIFORM", "STRATIFIED", "ON", "CLOSED", "SEMI", "OPEN",
      "SEMIOPEN", "FOR", "WEIGHT", "HAVING", "SHOW", "TABLES",
      "POPULATIONS", "SAMPLES",
      // Observability
      "EXPLAIN", "ANALYZE", "METRICS",
  };
  return kKeywords.count(w) > 0;
}

[[nodiscard]] Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenType type, std::string text, size_t off) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.offset = off;
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (IsReservedKeyword(upper)) {
        push(TokenType::kKeyword, upper, start);
      } else {
        push(TokenType::kIdentifier, word, start);
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool has_dot = false, has_exp = false;
      while (j < n) {
        char d = input[j];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++j;
        } else if (d == '.' && !has_dot && !has_exp) {
          has_dot = true;
          ++j;
        } else if ((d == 'e' || d == 'E') && !has_exp && j > i) {
          has_exp = true;
          ++j;
          if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        } else {
          break;
        }
      }
      std::string num = input.substr(i, j - i);
      Token t;
      t.offset = start;
      t.text = num;
      if (has_dot || has_exp) {
        t.type = TokenType::kDoubleLiteral;
        try {
          t.double_value = std::stod(num);
        } catch (...) {
          return Status::ParseError("bad numeric literal '" + num + "'");
        }
      } else {
        t.type = TokenType::kIntLiteral;
        try {
          t.int_value = std::stoll(num);
        } catch (...) {
          return Status::ParseError("integer literal out of range '" + num +
                                    "'");
        }
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string s;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            s += '\'';
            j += 2;
          } else {
            closed = true;
            ++j;
            break;
          }
        } else {
          s += input[j];
          ++j;
        }
      }
      if (!closed) {
        return Status::ParseError(StrFormat(
            "unterminated string literal at offset %zu", start));
      }
      push(TokenType::kStringLiteral, s, start);
      i = j;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, "(", start);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, ")", start);
        ++i;
        break;
      case ',':
        push(TokenType::kComma, ",", start);
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, ";", start);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, "*", start);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus, "+", start);
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, "-", start);
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, "/", start);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, ".", start);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, "=", start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kNe, "!=", start);
          i += 2;
        } else {
          return Status::ParseError(
              StrFormat("unexpected '!' at offset %zu", start));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLe, "<=", start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kNe, "<>", start);
          i += 2;
        } else {
          push(TokenType::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenType::kGt, ">", start);
          ++i;
        }
        break;
      case '[':
      case ']':
        // The paper writes IN [list]; accept brackets as parens.
        push(c == '[' ? TokenType::kLParen : TokenType::kRParen,
             std::string(1, c), start);
        ++i;
        break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  push(TokenType::kEof, "", n);
  return tokens;
}

}  // namespace sql
}  // namespace mosaic
