// Recursive-descent parser for Mosaic SQL.
//
// Grammar (informal, keywords case-insensitive):
//
//   script     := statement (';' statement)* [';']
//   statement  := select | create_table | create_population
//               | create_sample | create_metadata | insert | copy
//               | drop | update
//
//   select     := SELECT [CLOSED | SEMI-OPEN | OPEN]
//                 ('*' | item (',' item)*)
//                 FROM name [WHERE expr]
//                 [GROUP BY name (',' name)*]
//                 [ORDER BY name [ASC|DESC] (',' ...)*]
//                 [LIMIT int]
//
//   create_population := CREATE [GLOBAL] POPULATION name
//                        ['(' coldefs ')'] [AS '(' select ')']
//   create_sample     := CREATE SAMPLE name ['(' coldefs ')']
//                        AS '(' select
//                             [USING MECHANISM mech PERCENT number] ')'
//   mech              := UNIFORM | STRATIFIED ON name
//   create_metadata   := CREATE METADATA name [FOR name] AS '(' select ')'
//
// The paper writes `SEMI-OPEN`; the lexer emits SEMI '-' OPEN and the
// parser also accepts SEMIOPEN / SEMI_OPEN spellings.
#ifndef MOSAIC_SQL_PARSER_H_
#define MOSAIC_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace mosaic {
namespace sql {

/// Parse one statement (trailing ';' allowed).
[[nodiscard]] Result<Statement> ParseStatement(const std::string& input);

/// Parse a ';'-separated script.
[[nodiscard]] Result<std::vector<Statement>> ParseScript(const std::string& input);

}  // namespace sql
}  // namespace mosaic

#endif  // MOSAIC_SQL_PARSER_H_
