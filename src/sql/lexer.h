// Hand-written lexer for Mosaic SQL. ASCII, case-insensitive keywords,
// single-quoted string literals with '' escape, -- line comments.
#ifndef MOSAIC_SQL_LEXER_H_
#define MOSAIC_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace mosaic {
namespace sql {

/// True if the upper-cased word is a reserved keyword of the dialect.
bool IsReservedKeyword(const std::string& upper_word);

/// Tokenize the whole input. The returned vector always ends with an
/// kEof token. Errors carry the byte offset of the offending char.
[[nodiscard]] Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace sql
}  // namespace mosaic

#endif  // MOSAIC_SQL_LEXER_H_
