#include "sql/ast.h"

#include "common/string_util.h"

namespace mosaic {
namespace sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

const char* VisibilityName(Visibility v) {
  switch (v) {
    case Visibility::kDefault:
      return "DEFAULT";
    case Visibility::kClosed:
      return "CLOSED";
    case Visibility::kSemiOpen:
      return "SEMI-OPEN";
    case Visibility::kOpen:
      return "OPEN";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->column = column;
  out->unary_op = unary_op;
  out->binary_op = binary_op;
  if (child) out->child = child->Clone();
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  if (between_lo) out->between_lo = between_lo->Clone();
  if (between_hi) out->between_hi = between_hi->Clone();
  out->in_list = in_list;
  out->agg_func = agg_func;
  out->agg_is_star = agg_is_star;
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumnRef:
      return column;
    case Kind::kUnary:
      return std::string(unary_op == UnaryOp::kNot ? "NOT " : "-") +
             child->ToString();
    case Kind::kBinary:
      return "(" + left->ToString() + " " + BinaryOpName(binary_op) + " " +
             right->ToString() + ")";
    case Kind::kIn: {
      std::vector<std::string> vals;
      vals.reserve(in_list.size());
      for (const auto& v : in_list) vals.push_back(v.ToString());
      return child->ToString() + " IN (" + Join(vals, ", ") + ")";
    }
    case Kind::kBetween:
      return child->ToString() + " BETWEEN " + between_lo->ToString() +
             " AND " + between_hi->ToString();
    case Kind::kAggregate:
      return std::string(AggFuncName(agg_func)) + "(" +
             (agg_is_star ? "*" : child->ToString()) + ")";
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == Kind::kAggregate) return true;
  for (const Expr* e : {child.get(), left.get(), right.get(),
                        between_lo.get(), between_hi.get()}) {
    if (e != nullptr && e->ContainsAggregate()) return true;
  }
  return false;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumnRef(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->unary_op = op;
  e->child = std::move(operand);
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->binary_op = op;
  e->left = std::move(lhs);
  e->right = std::move(rhs);
  return e;
}

ExprPtr Expr::MakeIn(ExprPtr subject, std::vector<Value> list) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kIn;
  e->child = std::move(subject);
  e->in_list = std::move(list);
  return e;
}

ExprPtr Expr::MakeBetween(ExprPtr subject, ExprPtr lo, ExprPtr hi) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBetween;
  e->child = std::move(subject);
  e->between_lo = std::move(lo);
  e->between_hi = std::move(hi);
  return e;
}

ExprPtr Expr::MakeAggregate(AggFunc func, ExprPtr arg, bool star) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggregate;
  e->agg_func = func;
  e->child = std::move(arg);
  e->agg_is_star = star;
  return e;
}

std::string SelectStmt::ToString() const {
  std::string out = explain_analyze ? "EXPLAIN ANALYZE SELECT " : "SELECT ";
  if (visibility != Visibility::kDefault) {
    out += std::string(VisibilityName(visibility)) + " ";
  }
  if (select_star) {
    out += "*";
  } else {
    std::vector<std::string> parts;
    parts.reserve(items.size());
    for (const auto& item : items) {
      std::string s = item.expr->ToString();
      if (!item.alias.empty()) s += " AS " + item.alias;
      parts.push_back(std::move(s));
    }
    out += Join(parts, ", ");
  }
  out += " FROM " + from;
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) out += " GROUP BY " + Join(group_by, ", ");
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    std::vector<std::string> parts;
    for (const auto& o : order_by) {
      parts.push_back(o.column + (o.descending ? " DESC" : ""));
    }
    out += " ORDER BY " + Join(parts, ", ");
  }
  if (limit) out += " LIMIT " + std::to_string(*limit);
  return out;
}

}  // namespace sql
}  // namespace mosaic
