#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace mosaic {
namespace sql {

namespace {

/// Token-stream cursor with the usual Peek/Advance/Expect helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] Result<std::vector<Statement>> ParseScript() {
    std::vector<Statement> out;
    while (!AtEof()) {
      if (Peek().type == TokenType::kSemicolon) {
        Advance();
        continue;
      }
      MOSAIC_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      out.push_back(std::move(stmt));
      if (!AtEof() && Peek().type != TokenType::kSemicolon) {
        return Error("expected ';' after statement");
      }
    }
    return out;
  }

  [[nodiscard]] Result<Statement> ParseStatement() {
    const Token& t = Peek();
    if (t.IsKeyword("SELECT")) {
      MOSAIC_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
      Statement stmt;
      stmt.node = std::move(sel);
      return stmt;
    }
    if (t.IsKeyword("EXPLAIN")) {
      Advance();
      // Plain EXPLAIN (no execution) has no plan to print in this
      // engine; only the ANALYZE form exists.
      MOSAIC_RETURN_IF_ERROR(ExpectKeyword("ANALYZE"));
      if (!Peek().IsKeyword("SELECT")) {
        return Error("EXPLAIN ANALYZE supports SELECT statements only");
      }
      MOSAIC_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
      sel.explain_analyze = true;
      Statement stmt;
      stmt.node = std::move(sel);
      return stmt;
    }
    if (t.IsKeyword("CREATE")) return ParseCreate();
    if (t.IsKeyword("INSERT")) return ParseInsert();
    if (t.IsKeyword("COPY")) return ParseCopy();
    if (t.IsKeyword("DROP")) return ParseDrop();
    if (t.IsKeyword("UPDATE")) return ParseUpdate();
    if (t.IsKeyword("SHOW")) return ParseShow();
    return Error("expected a statement, got " + Describe(t));
  }

  bool AtEof() const { return tokens_[pos_].type == TokenType::kEof; }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Match(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }

  bool MatchKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  [[nodiscard]] Status Expect(TokenType type, const char* what) {
    if (Peek().type != type) {
      return Status::ParseError(std::string("expected ") + what + ", got " +
                                Describe(Peek()));
    }
    Advance();
    return Status::OK();
  }

  [[nodiscard]] Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + ", got " +
                                Describe(Peek()));
    }
    Advance();
    return Status::OK();
  }

  static std::string Describe(const Token& t) {
    if (t.type == TokenType::kEof) return "end of input";
    return TokenTypeName(t.type) + " '" + t.text + "'";
  }

  [[nodiscard]] Status Error(const std::string& msg) const {
    return Status::ParseError(
        msg + StrFormat(" (at offset %zu)", Peek().offset));
  }

  /// Identifier, or any keyword usable as a name (we keep the reserved
  /// set small, but e.g. a column called "percent" would clash; allow
  /// non-structural keywords as identifiers where unambiguous).
  [[nodiscard]] Result<std::string> ParseIdentifier(const char* what) {
    const Token& t = Peek();
    if (t.type == TokenType::kIdentifier) {
      Advance();
      return t.text;
    }
    // Allow a few keywords in name position (e.g. WEIGHT, COUNT used
    // as a column alias).
    if (t.type == TokenType::kKeyword &&
        (t.text == "WEIGHT" || t.text == "COUNT" || t.text == "MIN" ||
         t.text == "MAX" || t.text == "PERCENT" || t.text == "SAMPLE")) {
      // Only treat as a name when not followed by '(' (function call).
      if (Peek(1).type != TokenType::kLParen) {
        Advance();
        return ToLower(t.text);
      }
    }
    return Status::ParseError(std::string("expected ") + what + ", got " +
                              Describe(t));
  }

  // ---- SELECT ------------------------------------------------------------

  [[nodiscard]] Result<SelectStmt> ParseSelect() {
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt sel;
    // Visibility keyword (paper §3.3). "SEMI-OPEN" lexes as
    // SEMI MINUS OPEN.
    if (MatchKeyword("CLOSED")) {
      sel.visibility = Visibility::kClosed;
    } else if (MatchKeyword("SEMIOPEN")) {
      sel.visibility = Visibility::kSemiOpen;
    } else if (Peek().IsKeyword("SEMI")) {
      Advance();
      if (!Match(TokenType::kMinus)) {
        return Error("expected '-' in SEMI-OPEN");
      }
      MOSAIC_RETURN_IF_ERROR(ExpectKeyword("OPEN"));
      sel.visibility = Visibility::kSemiOpen;
    } else if (MatchKeyword("OPEN")) {
      sel.visibility = Visibility::kOpen;
    }
    (void)MatchKeyword("DISTINCT");  // tolerated, no-op for aggregates

    if (Peek().type == TokenType::kStar &&
        (Peek(1).IsKeyword("FROM"))) {
      Advance();
      sel.select_star = true;
    } else {
      for (;;) {
        SelectItem item;
        MOSAIC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("AS")) {
          MOSAIC_ASSIGN_OR_RETURN(item.alias, ParseIdentifier("alias"));
        }
        sel.items.push_back(std::move(item));
        if (!Match(TokenType::kComma)) break;
      }
    }
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    MOSAIC_ASSIGN_OR_RETURN(sel.from, ParseIdentifier("relation name"));
    // Qualified relation names ("system.queries"): keep the dot in
    // the name — resolution stays a flat catalog lookup, the `system`
    // schema is just a reserved prefix the planner intercepts.
    if (Match(TokenType::kDot)) {
      // Any keyword is a valid name segment here ("system.metrics" —
      // METRICS lexes as a keyword); nothing structural can follow a
      // dot, so there is no ambiguity to guard against.
      const Token& seg = Peek();
      if (seg.type == TokenType::kIdentifier) {
        Advance();
        sel.from += "." + seg.text;
      } else if (seg.type == TokenType::kKeyword) {
        Advance();
        sel.from += "." + ToLower(seg.text);
      } else {
        return Error("expected relation name after '.'");
      }
    }
    if (MatchKeyword("WHERE")) {
      MOSAIC_ASSIGN_OR_RETURN(sel.where, ParseExpr());
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      MOSAIC_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        MOSAIC_ASSIGN_OR_RETURN(std::string col,
                                ParseIdentifier("GROUP BY column"));
        sel.group_by.push_back(std::move(col));
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (MatchKeyword("HAVING")) {
      if (sel.group_by.empty()) {
        return Error("HAVING requires GROUP BY");
      }
      MOSAIC_ASSIGN_OR_RETURN(sel.having, ParseExpr());
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      MOSAIC_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        OrderByItem o;
        MOSAIC_ASSIGN_OR_RETURN(o.column, ParseIdentifier("ORDER BY column"));
        if (MatchKeyword("DESC")) {
          o.descending = true;
        } else {
          (void)MatchKeyword("ASC");
        }
        sel.order_by.push_back(std::move(o));
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Error("expected integer after LIMIT");
      }
      sel.limit = Advance().int_value;
    }
    return sel;
  }

  // ---- CREATE ------------------------------------------------------------

  [[nodiscard]] Result<Statement> ParseCreate() {
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    bool temporary = MatchKeyword("TEMPORARY");
    bool global = MatchKeyword("GLOBAL");
    if (MatchKeyword("TABLE")) {
      if (global) return Error("GLOBAL applies to POPULATION, not TABLE");
      return ParseCreateTable(temporary);
    }
    if (MatchKeyword("POPULATION")) {
      if (temporary) return Error("TEMPORARY applies to TABLE");
      return ParseCreatePopulation(global);
    }
    if (MatchKeyword("SAMPLE")) {
      if (temporary || global) {
        return Error("SAMPLE takes no TEMPORARY/GLOBAL modifier");
      }
      return ParseCreateSample();
    }
    if (MatchKeyword("METADATA")) {
      if (temporary || global) {
        return Error("METADATA takes no TEMPORARY/GLOBAL modifier");
      }
      return ParseCreateMetadata();
    }
    return Error("expected TABLE, POPULATION, SAMPLE or METADATA");
  }

  [[nodiscard]] Result<std::vector<ColumnDef>> ParseColumnDefs() {
    MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    std::vector<ColumnDef> defs;
    for (;;) {
      ColumnDef def;
      MOSAIC_ASSIGN_OR_RETURN(def.name, ParseIdentifier("column name"));
      MOSAIC_ASSIGN_OR_RETURN(std::string type_name,
                              ParseIdentifier("type name"));
      MOSAIC_ASSIGN_OR_RETURN(def.type, ParseDataType(type_name));
      defs.push_back(std::move(def));
      if (!Match(TokenType::kComma)) break;
    }
    MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return defs;
  }

  [[nodiscard]] Result<Statement> ParseCreateTable(bool temporary) {
    CreateTableStmt stmt;
    stmt.temporary = temporary;
    MOSAIC_ASSIGN_OR_RETURN(stmt.name, ParseIdentifier("table name"));
    if (Peek().type == TokenType::kLParen) {
      MOSAIC_ASSIGN_OR_RETURN(stmt.columns, ParseColumnDefs());
    }
    Statement out;
    out.node = std::move(stmt);
    return out;
  }

  [[nodiscard]] Result<Statement> ParseCreatePopulation(bool global) {
    CreatePopulationStmt stmt;
    stmt.global = global;
    MOSAIC_ASSIGN_OR_RETURN(stmt.name, ParseIdentifier("population name"));
    if (Peek().type == TokenType::kLParen) {
      MOSAIC_ASSIGN_OR_RETURN(stmt.columns, ParseColumnDefs());
    }
    if (MatchKeyword("AS")) {
      MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after AS"));
      MOSAIC_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
      MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      stmt.as_select = std::make_unique<SelectStmt>(std::move(sel));
    }
    Statement out;
    out.node = std::move(stmt);
    return out;
  }

  [[nodiscard]] Result<Statement> ParseCreateSample() {
    CreateSampleStmt stmt;
    MOSAIC_ASSIGN_OR_RETURN(stmt.name, ParseIdentifier("sample name"));
    if (Peek().type == TokenType::kLParen && !Peek(1).IsKeyword("SELECT")) {
      MOSAIC_ASSIGN_OR_RETURN(stmt.columns, ParseColumnDefs());
    }
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("AS"));
    MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after AS"));
    MOSAIC_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
    stmt.as_select = std::make_unique<SelectStmt>(std::move(sel));
    // Optional USING MECHANISM <mech> PERCENT <number>
    if (MatchKeyword("USING")) {
      MOSAIC_RETURN_IF_ERROR(ExpectKeyword("MECHANISM"));
      if (MatchKeyword("UNIFORM")) {
        stmt.mechanism.type = MechanismSpec::Type::kUniform;
      } else if (MatchKeyword("STRATIFIED")) {
        stmt.mechanism.type = MechanismSpec::Type::kStratified;
        MOSAIC_RETURN_IF_ERROR(ExpectKeyword("ON"));
        MOSAIC_ASSIGN_OR_RETURN(stmt.mechanism.stratify_attr,
                                ParseIdentifier("stratification attribute"));
      } else {
        return Error("expected UNIFORM or STRATIFIED mechanism");
      }
      MOSAIC_RETURN_IF_ERROR(ExpectKeyword("PERCENT"));
      const Token& t = Peek();
      if (t.type == TokenType::kIntLiteral) {
        stmt.mechanism.percent = static_cast<double>(t.int_value);
        Advance();
      } else if (t.type == TokenType::kDoubleLiteral) {
        stmt.mechanism.percent = t.double_value;
        Advance();
      } else {
        return Error("expected numeric percent");
      }
      if (stmt.mechanism.percent <= 0 || stmt.mechanism.percent > 100) {
        return Error("PERCENT must be in (0, 100]");
      }
    }
    MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    Statement out;
    out.node = std::move(stmt);
    return out;
  }

  [[nodiscard]] Result<Statement> ParseCreateMetadata() {
    CreateMetadataStmt stmt;
    MOSAIC_ASSIGN_OR_RETURN(stmt.name, ParseIdentifier("metadata name"));
    if (MatchKeyword("FOR")) {
      MOSAIC_ASSIGN_OR_RETURN(stmt.population,
                              ParseIdentifier("population name"));
    } else {
      // Paper naming convention: <Population>_M<k>.
      size_t underscore = stmt.name.rfind("_M");
      if (underscore != std::string::npos && underscore > 0) {
        stmt.population = stmt.name.substr(0, underscore);
      }
    }
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("AS"));
    MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after AS"));
    MOSAIC_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
    MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    stmt.as_select = std::make_unique<SelectStmt>(std::move(sel));
    Statement out;
    out.node = std::move(stmt);
    return out;
  }

  // ---- INSERT / COPY / DROP / UPDATE --------------------------------------

  [[nodiscard]] Result<Statement> ParseInsert() {
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    MOSAIC_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier("table name"));
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    for (;;) {
      MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      std::vector<Value> row;
      for (;;) {
        MOSAIC_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
        if (!Match(TokenType::kComma)) break;
      }
      MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      stmt.rows.push_back(std::move(row));
      if (!Match(TokenType::kComma)) break;
    }
    Statement out;
    out.node = std::move(stmt);
    return out;
  }

  [[nodiscard]] Result<Statement> ParseCopy() {
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("COPY"));
    CopyStmt stmt;
    MOSAIC_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier("table name"));
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kStringLiteral) {
      return Error("expected quoted file path after COPY ... FROM");
    }
    stmt.path = Advance().text;
    Statement out;
    out.node = std::move(stmt);
    return out;
  }

  [[nodiscard]] Result<Statement> ParseDrop() {
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    DropStmt stmt;
    if (MatchKeyword("TABLE")) {
      stmt.target = DropStmt::Target::kTable;
    } else if (MatchKeyword("POPULATION")) {
      stmt.target = DropStmt::Target::kPopulation;
    } else if (MatchKeyword("SAMPLE")) {
      stmt.target = DropStmt::Target::kSample;
    } else if (MatchKeyword("METADATA")) {
      stmt.target = DropStmt::Target::kMetadata;
    } else {
      return Error("expected TABLE, POPULATION, SAMPLE or METADATA");
    }
    if (MatchKeyword("IF")) {
      MOSAIC_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt.if_exists = true;
    }
    MOSAIC_ASSIGN_OR_RETURN(stmt.name, ParseIdentifier("name"));
    Statement out;
    out.node = std::move(stmt);
    return out;
  }

  [[nodiscard]] Result<Statement> ParseShow() {
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("SHOW"));
    ShowStmt stmt;
    if (MatchKeyword("TABLES")) {
      stmt.what = ShowStmt::What::kTables;
    } else if (MatchKeyword("POPULATIONS")) {
      stmt.what = ShowStmt::What::kPopulations;
    } else if (MatchKeyword("SAMPLES")) {
      stmt.what = ShowStmt::What::kSamples;
    } else if (MatchKeyword("METADATA")) {
      stmt.what = ShowStmt::What::kMetadata;
    } else if (MatchKeyword("METRICS")) {
      stmt.what = ShowStmt::What::kMetrics;
    } else {
      return Error(
          "expected TABLES, POPULATIONS, SAMPLES, METADATA or METRICS");
    }
    Statement out;
    out.node = stmt;
    return out;
  }

  [[nodiscard]] Result<Statement> ParseUpdate() {
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    UpdateStmt stmt;
    MOSAIC_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier("table name"));
    MOSAIC_RETURN_IF_ERROR(ExpectKeyword("SET"));
    for (;;) {
      MOSAIC_ASSIGN_OR_RETURN(std::string col,
                              ParseIdentifier("column name"));
      MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
      MOSAIC_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(value));
      if (!Match(TokenType::kComma)) break;
    }
    if (MatchKeyword("WHERE")) {
      MOSAIC_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    Statement out;
    out.node = std::move(stmt);
    return out;
  }

  // ---- Expressions ---------------------------------------------------------
  // Precedence: OR < AND < NOT < comparison/IN/BETWEEN < add < mul < unary.

  [[nodiscard]] Result<ExprPtr> ParseExpr() { return ParseOr(); }

  [[nodiscard]] Result<ExprPtr> ParseOr() {
    MOSAIC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      MOSAIC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  [[nodiscard]] Result<ExprPtr> ParseAnd() {
    MOSAIC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (MatchKeyword("AND")) {
      MOSAIC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  [[nodiscard]] Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      MOSAIC_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  [[nodiscard]] Result<ExprPtr> ParseComparison() {
    MOSAIC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IN / NOT IN / BETWEEN
    if (MatchKeyword("IN")) {
      return ParseInList(std::move(lhs), /*negated=*/false);
    }
    if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("IN")) {
      Advance();
      Advance();
      return ParseInList(std::move(lhs), /*negated=*/true);
    }
    if (MatchKeyword("BETWEEN")) {
      MOSAIC_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      MOSAIC_RETURN_IF_ERROR(ExpectKeyword("AND"));
      MOSAIC_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      return Expr::MakeBetween(std::move(lhs), std::move(lo), std::move(hi));
    }
    BinaryOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenType::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenType::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenType::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenType::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenType::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    MOSAIC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  [[nodiscard]] Result<ExprPtr> ParseInList(ExprPtr subject, bool negated) {
    MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' or '['"));
    std::vector<Value> list;
    for (;;) {
      MOSAIC_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      list.push_back(std::move(v));
      if (!Match(TokenType::kComma)) break;
    }
    MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')' or ']'"));
    ExprPtr in = Expr::MakeIn(std::move(subject), std::move(list));
    if (negated) return Expr::MakeUnary(UnaryOp::kNot, std::move(in));
    return in;
  }

  [[nodiscard]] Result<ExprPtr> ParseAdditive() {
    MOSAIC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (Peek().type == TokenType::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().type == TokenType::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      MOSAIC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  [[nodiscard]] Result<ExprPtr> ParseMultiplicative() {
    MOSAIC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (Peek().type == TokenType::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().type == TokenType::kSlash) {
        op = BinaryOp::kDiv;
      } else {
        return lhs;
      }
      Advance();
      MOSAIC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  [[nodiscard]] Result<ExprPtr> ParseUnary() {
    if (Match(TokenType::kMinus)) {
      MOSAIC_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    if (Match(TokenType::kPlus)) {
      return ParseUnary();
    }
    return ParsePrimary();
  }

  [[nodiscard]] Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntLiteral:
        Advance();
        return Expr::MakeLiteral(Value(t.int_value));
      case TokenType::kDoubleLiteral:
        Advance();
        return Expr::MakeLiteral(Value(t.double_value));
      case TokenType::kStringLiteral:
        Advance();
        return Expr::MakeLiteral(Value(t.text));
      case TokenType::kLParen: {
        Advance();
        MOSAIC_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return inner;
      }
      case TokenType::kKeyword: {
        if (t.text == "TRUE") {
          Advance();
          return Expr::MakeLiteral(Value(true));
        }
        if (t.text == "FALSE") {
          Advance();
          return Expr::MakeLiteral(Value(false));
        }
        if (t.text == "NULL") {
          Advance();
          return Expr::MakeLiteral(Value::Null());
        }
        // Aggregate functions.
        AggFunc func;
        if (t.text == "COUNT") {
          func = AggFunc::kCount;
        } else if (t.text == "SUM") {
          func = AggFunc::kSum;
        } else if (t.text == "AVG") {
          func = AggFunc::kAvg;
        } else if (t.text == "MIN") {
          func = AggFunc::kMin;
        } else if (t.text == "MAX") {
          func = AggFunc::kMax;
        } else if (t.text == "WEIGHT" || t.text == "PERCENT" ||
                   t.text == "SAMPLE") {
          // Non-structural keyword in expression position = column ref.
          Advance();
          return Expr::MakeColumnRef(ToLower(t.text));
        } else {
          return Error("unexpected keyword '" + t.text + "' in expression");
        }
        Advance();
        MOSAIC_RETURN_IF_ERROR(
            Expect(TokenType::kLParen, "'(' after aggregate"));
        if (func == AggFunc::kCount && Match(TokenType::kStar)) {
          MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return Expr::MakeAggregate(func, nullptr, /*star=*/true);
        }
        MOSAIC_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        MOSAIC_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return Expr::MakeAggregate(func, std::move(arg), /*star=*/false);
      }
      case TokenType::kIdentifier: {
        Advance();
        return Expr::MakeColumnRef(t.text);
      }
      default:
        return Error("expected an expression, got " + Describe(t));
    }
  }

  [[nodiscard]] Result<Value> ParseLiteralValue() {
    const Token& t = Peek();
    bool negate = false;
    if (t.type == TokenType::kMinus) {
      Advance();
      negate = true;
    }
    const Token& v = Peek();
    switch (v.type) {
      case TokenType::kIntLiteral:
        Advance();
        return Value(negate ? -v.int_value : v.int_value);
      case TokenType::kDoubleLiteral:
        Advance();
        return Value(negate ? -v.double_value : v.double_value);
      case TokenType::kStringLiteral:
        if (negate) return Error("cannot negate a string literal");
        Advance();
        return Value(v.text);
      case TokenType::kKeyword:
        if (negate) return Error("cannot negate " + Describe(v));
        if (v.text == "TRUE") {
          Advance();
          return Value(true);
        }
        if (v.text == "FALSE") {
          Advance();
          return Value(false);
        }
        if (v.text == "NULL") {
          Advance();
          return Value::Null();
        }
        return Error("expected a literal, got " + Describe(v));
      case TokenType::kIdentifier:
        // The paper writes `WHERE email = Yahoo` with a bare
        // identifier on the literal side; treat it as a string.
        if (negate) return Error("cannot negate an identifier literal");
        Advance();
        return Value(v.text);
      default:
        return Error("expected a literal, got " + Describe(v));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

[[nodiscard]] Result<Statement> ParseStatement(const std::string& input) {
  MOSAIC_ASSIGN_OR_RETURN(auto stmts, ParseScript(input));
  if (stmts.empty()) return Status::ParseError("empty statement");
  if (stmts.size() > 1) {
    return Status::ParseError(
        "ParseStatement called with multiple statements");
  }
  return std::move(stmts[0]);
}

[[nodiscard]] Result<std::vector<Statement>> ParseScript(const std::string& input) {
  MOSAIC_ASSIGN_OR_RETURN(auto tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseScript();
}

}  // namespace sql
}  // namespace mosaic
