// Abstract syntax tree for Mosaic SQL, including the paper's
// extensions: CREATE [GLOBAL] POPULATION, CREATE SAMPLE ... USING
// MECHANISM, CREATE METADATA, and the SELECT visibility keyword
// (CLOSED | SEMI-OPEN | OPEN).
#ifndef MOSAIC_SQL_AST_H_
#define MOSAIC_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace mosaic {
namespace sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

enum class UnaryOp { kNot, kNeg };

/// Aggregate functions supported over (possibly weighted) samples.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* BinaryOpName(BinaryOp op);
const char* AggFuncName(AggFunc func);

struct Expr {
  enum class Kind {
    kLiteral,    ///< constant Value
    kColumnRef,  ///< bare column name
    kUnary,
    kBinary,
    kIn,         ///< expr IN (v1, v2, ...)
    kBetween,    ///< expr BETWEEN lo AND hi
    kAggregate,  ///< COUNT(*) / SUM(e) / AVG(e) / MIN(e) / MAX(e)
  };

  Kind kind;

  // kLiteral
  Value literal;
  // kColumnRef
  std::string column;
  // kUnary / kBinary / kIn / kBetween / kAggregate argument slots
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kEq;
  ExprPtr child;          // unary operand / IN & BETWEEN subject / agg arg
  ExprPtr left;           // binary lhs
  ExprPtr right;          // binary rhs
  ExprPtr between_lo;
  ExprPtr between_hi;
  std::vector<Value> in_list;
  AggFunc agg_func = AggFunc::kCount;
  bool agg_is_star = false;  ///< COUNT(*)

  /// Deep copy.
  ExprPtr Clone() const;

  /// Readable rendering for error messages and tests.
  std::string ToString() const;

  /// True if this subtree contains an aggregate node.
  bool ContainsAggregate() const;

  // Factory helpers.
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumnRef(std::string name);
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeIn(ExprPtr subject, std::vector<Value> list);
  static ExprPtr MakeBetween(ExprPtr subject, ExprPtr lo, ExprPtr hi);
  static ExprPtr MakeAggregate(AggFunc func, ExprPtr arg, bool star);
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// Query visibility level (§3.3 of the paper). kDefault means the
/// user wrote no keyword: auxiliary tables run as plain SQL; for
/// population targets Mosaic falls back to CLOSED, the conservative
/// choice (no reweighting, no generated tuples).
enum class Visibility { kDefault, kClosed, kSemiOpen, kOpen };

const char* VisibilityName(Visibility v);

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty = derive from the expression
};

struct OrderByItem {
  std::string column;
  bool descending = false;
};

struct SelectStmt {
  /// EXPLAIN ANALYZE SELECT ...: execute the query normally but
  /// return the span tree of the traced execution instead of the
  /// query's rows. Never served from or stored into the result cache.
  bool explain_analyze = false;
  Visibility visibility = Visibility::kDefault;
  bool select_star = false;       ///< SELECT *
  std::vector<SelectItem> items;  ///< empty when select_star
  std::string from;               ///< single relation name
  ExprPtr where;                  ///< may be null
  std::vector<std::string> group_by;
  ExprPtr having;                 ///< may be null; aggregates allowed
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;

  std::string ToString() const;
};

struct CreateTableStmt {
  std::string name;
  bool temporary = false;
  std::vector<ColumnDef> columns;
};

/// Sampling mechanism clause (CREATE SAMPLE ... USING MECHANISM ...).
struct MechanismSpec {
  enum class Type { kNone, kUniform, kStratified };
  Type type = Type::kNone;
  std::string stratify_attr;  ///< for kStratified
  double percent = 0.0;       ///< sample size as percent of the GP

  bool has_mechanism() const { return type != Type::kNone; }
};

struct CreatePopulationStmt {
  std::string name;
  bool global = false;
  std::vector<ColumnDef> columns;           ///< may be empty when AS used
  std::unique_ptr<SelectStmt> as_select;    ///< defines non-global pops
};

struct CreateSampleStmt {
  std::string name;
  std::vector<ColumnDef> columns;  ///< may be empty (inherit from select)
  std::unique_ptr<SelectStmt> as_select;  ///< SELECT ... FROM <gl_pop> ...
  MechanismSpec mechanism;
};

struct CreateMetadataStmt {
  std::string name;
  /// Population the metadata describes. Comes from `FOR <pop>` when
  /// present, else derived from the `<pop>_Mk` naming convention the
  /// paper uses in §2.
  std::string population;
  std::unique_ptr<SelectStmt> as_select;  ///< SELECT A[,B], COUNT(*) ... GROUP BY
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<Value>> rows;
};

struct CopyStmt {
  std::string table;
  std::string path;  ///< CSV file
};

struct DropStmt {
  enum class Target { kTable, kPopulation, kSample, kMetadata };
  Target target = Target::kTable;
  std::string name;
  bool if_exists = false;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< may be null
};

/// SHOW TABLES | POPULATIONS | SAMPLES | METADATA | METRICS —
/// catalog introspection (used by the interactive shell). METRICS
/// dumps the process-wide metrics registry; unlike the catalog
/// variants it is never result-cached (the registry moves on every
/// query).
struct ShowStmt {
  enum class What { kTables, kPopulations, kSamples, kMetadata, kMetrics };
  What what = What::kTables;
};

struct Statement {
  std::variant<SelectStmt, CreateTableStmt, CreatePopulationStmt,
               CreateSampleStmt, CreateMetadataStmt, InsertStmt, CopyStmt,
               DropStmt, UpdateStmt, ShowStmt>
      node;

  template <typename T>
  bool Is() const {
    return std::holds_alternative<T>(node);
  }
  template <typename T>
  const T& As() const {
    return std::get<T>(node);
  }
  template <typename T>
  T& As() {
    return std::get<T>(node);
  }
};

}  // namespace sql
}  // namespace mosaic

#endif  // MOSAIC_SQL_AST_H_
