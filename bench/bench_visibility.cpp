// Reproduces the §3.3 visibility trade-off table:
//
//                 False Negative   False Positive   Assumption
//   CLOSED        n                0                Closed
//   SEMI-OPEN     n                0                Open
//   OPEN          <= n             >= 0             Open
//
// where n is the number of tuples existing in the population but not
// present in the sample. We build a small categorical world with a
// biased sample that misses entire cells, ask each visibility level
// for the distinct (color, size) tuples it believes exist, and count
// false negatives / false positives against ground truth.
#include <cstdio>
#include <set>

#include "bench_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/database.h"

using namespace mosaic;
using bench::Check;
using bench::Unwrap;

namespace {

std::set<std::pair<std::string, std::string>> TupleSet(const Table& t) {
  std::set<std::pair<std::string, std::string>> out;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    out.emplace(t.GetValue(r, 0).AsString(), t.GetValue(r, 1).AsString());
  }
  return out;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("=== bench_visibility: the §3.3 FN/FP trade-off table ===\n\n");

  core::Database db;
  auto exec = [&](const std::string& sql) {
    return Unwrap(db.Execute(sql), sql.c_str());
  };
  exec("CREATE GLOBAL POPULATION Things (color VARCHAR, size VARCHAR)");
  exec("CREATE TABLE ColorReport (color VARCHAR, cnt INT)");
  exec("INSERT INTO ColorReport VALUES ('red', 50), ('blue', 30), "
       "('green', 20)");
  exec("CREATE TABLE SizeReport (size VARCHAR, cnt INT)");
  exec("INSERT INTO SizeReport VALUES ('S', 55), ('L', 45)");
  exec("CREATE METADATA Things_M1 AS (SELECT color, cnt FROM ColorReport)");
  exec("CREATE METADATA Things_M2 AS (SELECT size, cnt FROM SizeReport)");
  exec("CREATE SAMPLE Reds AS (SELECT * FROM Things WHERE color = 'red')");
  // The sample only covers red tuples; blue and green cells are the
  // population tuples missing from the sample.
  exec("INSERT INTO Reds VALUES ('red','S'), ('red','S'), ('red','S'), "
       "('red','L'), ('red','L')");

  // Ground truth: every (color, size) combination exists.
  std::set<std::pair<std::string, std::string>> truth;
  for (const char* c : {"red", "blue", "green"}) {
    for (const char* s : {"S", "L"}) truth.emplace(c, s);
  }

  auto* open_opts = db.mutable_open_options();
  open_opts->mswg.epochs = 15;
  open_opts->mswg.steps_per_epoch = 30;
  open_opts->mswg.batch_size = 256;
  open_opts->mswg.lambda = 1e-4;
  open_opts->generated_rows = 2000;

  std::vector<std::vector<std::string>> rows;
  for (const char* vis : {"CLOSED", "SEMI-OPEN", "OPEN"}) {
    Table r = Unwrap(
        db.Execute(std::string("SELECT ") + vis +
                   " color, size, COUNT(*) FROM Things GROUP BY color, "
                   "size"),
        vis);
    auto answered = TupleSet(r);
    size_t fn = 0, fp = 0;
    for (const auto& t : truth) {
      if (answered.count(t) == 0) ++fn;
    }
    for (const auto& t : answered) {
      if (truth.count(t) == 0) ++fp;
    }
    rows.push_back({vis, std::to_string(fn), std::to_string(fp),
                    std::string(vis) == "CLOSED" ? "Closed" : "Open"});
  }
  std::printf("missing population tuples n = 4 (blue/green x S/L)\n");
  std::printf("%s\n",
              RenderTable({"visibility", "false negatives",
                           "false positives", "assumption"},
                          rows)
                  .c_str());
  std::printf(
      "(expected shape: CLOSED and SEMI-OPEN report n=4 false negatives "
      "and 0 false positives; OPEN reports fewer false negatives and may "
      "report false positives)\n");
  return 0;
}
